// Quickstart: the full ASRank workflow in ~60 lines.
//
//   1. Generate a synthetic Internet with ground-truth relationships.
//   2. Simulate BGP route collection from a set of vantage points.
//   3. Run the ASRank inference pipeline on the observed paths.
//   4. Score the inferences against exact ground truth.
//   5. Compute customer cones and print the top-10 AS Rank.
//
// Usage: quickstart [preset] [seed]     (preset: tiny|small|medium|large)
#include <cstdlib>
#include <iostream>

#include "bgpsim/observation.h"
#include "core/asrank.h"
#include "core/cones.h"
#include "core/ranking.h"
#include "topogen/topogen.h"
#include "util/table.h"
#include "validation/ppv.h"

int main(int argc, char** argv) {
  using namespace asrank;

  const std::string preset = argc > 1 ? argv[1] : "small";
  auto gen_params = topogen::GenParams::preset(preset);
  if (argc > 2) gen_params.seed = std::strtoull(argv[2], nullptr, 10);

  // 1. Ground-truth topology.
  const auto truth = topogen::generate(gen_params);
  const auto truth_counts = truth.graph.link_counts();
  std::cout << "topology: " << truth.graph.as_count() << " ASes, "
            << truth_counts.p2c << " p2c / " << truth_counts.p2p << " p2p / "
            << truth_counts.s2s << " s2s links, clique size "
            << truth.clique.size() << "\n";

  // 2. Observe paths from vantage points.
  bgpsim::ObservationParams obs_params;
  obs_params.seed = gen_params.seed + 1;
  obs_params.threads = 0;
  const auto observation = bgpsim::observe(truth, obs_params);
  std::cout << "observed: " << observation.routes.size() << " routes from "
            << observation.vps.size() << " VPs\n";

  // 3. Infer relationships.
  core::InferenceConfig config;
  config.sanitizer.ixp_asns.insert(truth.ixp_asns.begin(), truth.ixp_asns.end());
  const auto result =
      core::AsRankInference(config).run(paths::PathCorpus::from_records(observation.routes));
  const auto inferred_counts = result.graph.link_counts();
  std::cout << "inferred: " << inferred_counts.p2c << " c2p / " << inferred_counts.p2p
            << " p2p links; clique size " << result.clique.size() << "\n";

  // 4. Score against ground truth.
  const auto accuracy = validation::evaluate_against_truth(result.graph, truth.graph);
  std::cout << "accuracy: c2p PPV " << util::fmt_pct(accuracy.c2p.ppv())
            << " (" << accuracy.c2p.correct << "/" << accuracy.c2p.validated << ")"
            << ", p2p PPV " << util::fmt_pct(accuracy.p2p.ppv())
            << " (" << accuracy.p2p.correct << "/" << accuracy.p2p.validated << ")"
            << ", overall " << util::fmt_pct(accuracy.accuracy()) << "\n";
  if (accuracy.s2s.validated > 0) {
    std::cout << "siblings: " << accuracy.s2s.correct << "/" << accuracy.s2s.validated
              << " inferred s2s links are true siblings\n";
  }

  // 5. Customer cones and AS Rank.
  const auto cones = core::provider_peer_observed_cone(result.graph, result.sanitized);
  util::TableWriter table({"rank", "AS", "cone size", "transit degree"});
  for (const auto& entry : core::top_n(cones, result.degrees, 10)) {
    table.add_row({std::to_string(entry.rank), "AS" + entry.as.str(),
                   std::to_string(entry.cone_size), std::to_string(entry.transit_degree)});
  }
  table.set_caption("top-10 ASes by provider/peer observed customer cone:");
  table.render(std::cout);
  return 0;
}
