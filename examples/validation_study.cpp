// Validation study: the paper's §3/§6 workflow end to end, on one topology.
//
//   * assemble the three-source relationship corpus (direct, RPSL
//     aut-num policies via text round-trip, BGP communities via decode);
//   * run inference and score PPV per source, comparing against exact truth;
//   * mine IRR route objects into a longest-prefix-match origin table and
//     validate the originations observed in BGP against it;
//   * expand registered customer as-sets and compare them with the inferred
//     customer links.
//
// Usage: validation_study [preset] [seed]
#include <cstdlib>
#include <iostream>

#include "bgpsim/observation.h"
#include "core/asrank.h"
#include "topogen/topogen.h"
#include "util/table.h"
#include "validation/ppv.h"
#include "validation/synthesize.h"

int main(int argc, char** argv) {
  using namespace asrank;
  auto gen_params = topogen::GenParams::preset(argc > 1 ? argv[1] : "small");
  if (argc > 2) gen_params.seed = std::strtoull(argv[2], nullptr, 10);

  const auto truth = topogen::generate(gen_params);
  bgpsim::ObservationParams obs_params;
  obs_params.seed = gen_params.seed + 1;
  obs_params.threads = 0;
  const auto observation = bgpsim::observe(truth, obs_params);

  core::InferenceConfig config;
  config.sanitizer.ixp_asns.insert(truth.ixp_asns.begin(), truth.ixp_asns.end());
  const auto result =
      core::AsRankInference(config).run(paths::PathCorpus::from_records(observation.routes));

  // ---- Relationship validation (paper §6) --------------------------------
  const auto synth = validation::synthesize_validation(truth, observation,
                                                       validation::SynthesisParams{});
  const auto ppv = validation::evaluate_ppv(result.graph, synth.corpus);
  const auto exact = validation::evaluate_against_truth(result.graph, truth.graph);

  util::TableWriter rel_table({"source", "validated", "PPV"});
  for (const auto source : {validation::Source::kDirectReport,
                            validation::Source::kCommunities, validation::Source::kRpsl}) {
    const auto& c2p = ppv.cells[static_cast<std::size_t>(source)][0];
    const auto& p2p = ppv.cells[static_cast<std::size_t>(source)][1];
    validation::PpvCell combined;
    combined.validated = c2p.validated + p2p.validated;
    combined.correct = c2p.correct + p2p.correct;
    rel_table.add_row({std::string(to_string(source)), util::fmt_count(combined.validated),
                       util::fmt_pct(combined.ppv())});
  }
  rel_table.add_row({"all sources", util::fmt_count(ppv.overall.validated),
                     util::fmt_pct(ppv.overall.ppv())});
  rel_table.add_row({"exact ground truth",
                     util::fmt_count(exact.c2p.validated + exact.p2p.validated),
                     util::fmt_pct(exact.accuracy())});
  rel_table.set_caption("relationship validation (corpus coverage " +
                        util::fmt_pct(ppv.coverage()) + "):");
  rel_table.render(std::cout);

  // ---- Origin validation against IRR route objects -----------------------
  const auto irr = validation::synthesize_irr(truth, validation::IrrSynthesisParams{});
  const auto registry = validation::origin_table(irr);
  std::vector<std::pair<Prefix, Asn>> observed_origins;
  for (const auto& route : observation.routes) {
    if (route.path.empty()) continue;
    observed_origins.emplace_back(route.prefix, route.path.last());
  }
  const auto origins = validation::validate_origins(registry, observed_origins);
  std::cout << "\norigin validation: " << util::fmt_count(irr.routes.size())
            << " route objects cover " << origins.checked << " of "
            << observed_origins.size() << " observed originations; match rate "
            << util::fmt_pct(origins.match_rate())
            << " (mismatches are stale registrations and poisoned paths)\n";

  // ---- Customer as-sets vs inferred customers -----------------------------
  std::size_t sets_checked = 0;
  double agreement_sum = 0.0;
  for (const auto& [name, set] : irr.as_sets) {
    // Recover the owner from the conventional name.
    const auto colon = name.find(':');
    const auto owner = Asn::parse(name.substr(0, colon));
    if (!owner) continue;
    const auto registered = validation::expand_as_set(irr, name);
    const auto inferred = result.graph.customers(*owner);
    if (registered.empty() || inferred.empty()) continue;
    std::size_t shared = 0;
    for (const Asn customer : inferred) {
      if (std::binary_search(registered.begin(), registered.end(), customer)) ++shared;
    }
    agreement_sum += static_cast<double>(shared) / static_cast<double>(inferred.size());
    ++sets_checked;
  }
  if (sets_checked > 0) {
    std::cout << "customer as-sets: " << sets_checked
              << " registered sets; on average "
              << util::fmt_pct(agreement_sum / static_cast<double>(sets_checked))
              << " of inferred customers appear in the owner's registered set\n";
  }
  return 0;
}
