// Longitudinal study: how inferred structure evolves as the topology grows
// and flattens — the workflow behind the paper's multi-year time-series
// figures, here over simulated snapshots.
//
// For each snapshot the study:
//   1. evolves the ground-truth topology (new stubs, new peering, re-homing);
//   2. produces a RIB observation and a BGP4MP update stream against the
//      previous snapshot (exercising the incremental ingestion path);
//   3. re-runs inference and reports clique stability, hierarchy shape,
//      rank churn, and cone overlap for the top ASes.
//
// Usage: evolution_study [preset] [seed] [snapshots]
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "bgpsim/observation.h"
#include "bgpsim/update_stream.h"
#include "core/asrank.h"
#include "core/cones.h"
#include "core/hierarchy.h"
#include "core/ranking.h"
#include "topogen/topogen.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace asrank;
  const std::string preset = argc > 1 ? argv[1] : "small";
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  const int snapshots = argc > 3 ? std::atoi(argv[3]) : 6;

  auto gen_params = topogen::GenParams::preset(preset);
  gen_params.seed = seed;
  auto truth = topogen::generate(gen_params);
  util::Rng rng(seed + 1000);

  bgpsim::ObservationParams obs_params;
  obs_params.seed = seed + 1;
  obs_params.threads = 0;

  std::vector<Asn> previous_ranked;
  ConeMap previous_cones;
  bgpsim::Observation previous_observation;

  util::TableWriter table({"snapshot", "ASes", "p2p share", "depth", "mean providers",
                           "clique", "updates", "rank churn(top20)", "cone jaccard(top10)"});

  for (int snapshot = 0; snapshot < snapshots; ++snapshot) {
    if (snapshot > 0) {
      topogen::EvolveParams evolve_params;
      evolve_params.new_stubs = truth.graph.as_count() / 50;
      evolve_params.new_peerings = truth.graph.link_count() / 40;
      topogen::evolve(truth, rng, evolve_params);
    }
    const auto observation = bgpsim::observe(truth, obs_params);

    // Incremental feed: what a collector's updates file would contain.
    std::size_t update_count = 0;
    if (snapshot > 0) {
      const auto updates = bgpsim::diff_observations(previous_observation, observation,
                                                     1000 + snapshot);
      // Round-trip the stream through the BGP4MP wire format.
      std::stringstream stream;
      for (const auto& update : updates) mrt::write_update(update, stream);
      update_count = mrt::read_updates(stream).size();
    }

    core::InferenceConfig config;
    config.sanitizer.ixp_asns.insert(truth.ixp_asns.begin(), truth.ixp_asns.end());
    const auto result = core::AsRankInference(config).run(
        paths::PathCorpus::from_records(observation.routes));

    const auto hierarchy = core::analyze_hierarchy(result.graph, result.clique);
    const auto depths = core::hierarchy_depths(result.graph);
    std::size_t max_depth = 0;
    for (const auto& [as, depth] : depths) max_depth = std::max(max_depth, depth);

    const auto cones = core::provider_peer_observed_cone(result.graph, result.sanitized);
    std::vector<Asn> ranked;
    for (const auto& entry : core::rank_by_cone(cones, result.degrees)) {
      ranked.push_back(entry.as);
    }

    std::string churn = "-", jaccard = "-";
    if (snapshot > 0) {
      churn = util::fmt(core::mean_rank_change(previous_ranked, ranked, 20), 2);
      double total = 0;
      std::size_t counted = 0;
      for (std::size_t i = 0; i < std::min<std::size_t>(10, previous_ranked.size()); ++i) {
        const auto before_it = previous_cones.find(previous_ranked[i]);
        const auto after_it = cones.find(previous_ranked[i]);
        if (before_it == previous_cones.end() || after_it == cones.end()) continue;
        total += core::cone_jaccard(before_it->second, after_it->second);
        ++counted;
      }
      if (counted > 0) jaccard = util::fmt(total / static_cast<double>(counted), 3);
    }

    table.add_row({std::to_string(snapshot), util::fmt_count(truth.graph.as_count()),
                   util::fmt_pct(hierarchy.p2p_share), std::to_string(max_depth),
                   util::fmt(hierarchy.mean_providers, 2),
                   std::to_string(result.clique.size()), util::fmt_count(update_count),
                   churn, jaccard});

    previous_ranked = std::move(ranked);
    previous_cones = std::move(cones);
    previous_observation = std::move(observation);
  }
  table.set_caption("evolution across snapshots (flattening Internet):");
  table.render(std::cout);
  std::cout << "expected shape: p2p share rises, hierarchy depth is stable, the\n"
               "clique persists, top-of-ranking churn stays low, and top cones\n"
               "overlap heavily between snapshots.\n";
  return 0;
}
