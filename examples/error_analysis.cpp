// Error analysis: break inference errors down by ground-truth link class and
// topological position.  This is the debugging companion to quickstart — it
// answers "which links do we get wrong, and why" the way the paper's §6.3
// discusses its own error sources.
//
// Usage: error_analysis [preset] [seed]
#include <cstdlib>
#include <iostream>
#include <map>

#include "bgpsim/observation.h"
#include "core/asrank.h"
#include "topogen/topogen.h"
#include "util/table.h"

namespace {

const char* tier_name(asrank::topogen::Tier tier) {
  using asrank::topogen::Tier;
  switch (tier) {
    case Tier::kClique: return "clique";
    case Tier::kTransit: return "tier2";
    case Tier::kRegional: return "tier3";
    case Tier::kStub: return "stub";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace asrank;

  auto gen_params = topogen::GenParams::preset(argc > 1 ? argv[1] : "medium");
  if (argc > 2) gen_params.seed = std::strtoull(argv[2], nullptr, 10);
  const auto truth = topogen::generate(gen_params);

  bgpsim::ObservationParams obs_params;
  obs_params.seed = gen_params.seed + 1;
  obs_params.threads = 0;
  const auto observation = bgpsim::observe(truth, obs_params);

  core::InferenceConfig config;
  config.sanitizer.ixp_asns.insert(truth.ixp_asns.begin(), truth.ixp_asns.end());
  const auto result =
      core::AsRankInference(config).run(paths::PathCorpus::from_records(observation.routes));

  // Error matrix: (true type, inferred type) -> count per tier pair.
  std::map<std::string, std::size_t> error_classes;
  std::size_t correct = 0, wrong = 0;
  for (const Link& inferred : result.graph.links()) {
    const auto true_link = truth.graph.link(inferred.a, inferred.b);
    if (!true_link || true_link->type == LinkType::kS2S) continue;
    const bool ok =
        inferred.type == true_link->type &&
        (inferred.type != LinkType::kP2C || inferred.a == true_link->a);
    if (ok) {
      ++correct;
      continue;
    }
    ++wrong;
    const auto ta = truth.tiers.at(true_link->a);
    const auto tb = truth.tiers.at(true_link->b);
    std::string klass = std::string(to_string(true_link->type)) + "->" +
                        std::string(to_string(inferred.type));
    if (inferred.type == LinkType::kP2C && true_link->type == LinkType::kP2C) {
      klass = "p2c-direction-flip";
    }
    klass += " [" + std::string(tier_name(ta)) + "-" + std::string(tier_name(tb)) + "]";
    if (truth.content_stubs.contains(true_link->a) ||
        truth.content_stubs.contains(true_link->b)) {
      klass += " content";
    }
    if (truth.ixp_links.contains(AsGraph::link_key(true_link->a, true_link->b))) {
      klass += " ixp-born";
    }
    ++error_classes[klass];
  }

  std::cout << "correct " << correct << ", wrong " << wrong << " ("
            << util::fmt_pct(static_cast<double>(wrong) /
                             static_cast<double>(correct + wrong))
            << " of compared links)\n\n";
  util::TableWriter table({"error class (true->inferred) [tier pair]", "count"});
  for (const auto& [klass, count] : error_classes) {
    table.add_row({klass, std::to_string(count)});
  }
  table.render(std::cout);

  std::cout << "\naudit: votes " << result.audit.c2p_votes << ", deferred "
            << result.audit.apex_links_deferred << ", conflicts "
            << result.audit.vote_conflicts << ", triplet "
            << result.audit.triplet_inferred << ", valley violations "
            << result.audit.valley_violations << ", providerless repaired "
            << result.audit.providerless_repaired << ", stub-clique "
            << result.audit.stub_clique_links << ", p2p fallback "
            << result.audit.p2p_fallback << "\n";
  return 0;
}
