// asrank_cli — end-to-end command-line workflow over files, mirroring how
// the CAIDA pipeline is driven in practice:
//
//   asrank_cli generate --preset medium --seed 42 --out truth.as-rel
//   asrank_cli observe  --preset medium --seed 42 --mrt rib.mrt
//   asrank_cli infer    --mrt rib.mrt --out inferred.as-rel
//   asrank_cli infer    --pipe paths.txt --out inferred.as-rel
//   asrank_cli cones    --as-rel inferred.as-rel --mrt rib.mrt --method ppdc --out cones.ppdc
//   asrank_cli rank     --as-rel inferred.as-rel --mrt rib.mrt --top 15
//   asrank_cli validate --inferred inferred.as-rel --truth truth.as-rel
//   asrank_cli snapshot --as-rel inferred.as-rel --mrt rib.mrt --out run.asrk
//   asrank_cli serve    --snapshot run.asrk --port 7464
//   asrank_cli query    --port 7464 --op rank --a 3356
//
// Every artifact is a documented interchange format: .as-rel and .ppdc-ases
// (CAIDA text formats), MRT TABLE_DUMP_V2 (binary RIB), "prefix|path" pipe
// tables, or ASRK1 binary snapshots (docs/FORMATS.md).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "bgpsim/collector.h"
#include "bgpsim/observation.h"
#include "bgpsim/update_stream.h"
#include "core/asrank.h"
#include "core/cones.h"
#include "core/hierarchy.h"
#include "core/ranking.h"
#include "mrt/bgp4mp.h"
#include "obs/log.h"
#include "mrt/table_dump_v2.h"
#include "mrt/text_table.h"
#include "serve/client.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "snapshot/snapshot.h"
#include "topogen/topogen.h"
#include "topology/graph_diff.h"
#include "topology/serialization.h"
#include "util/strings.h"
#include "util/table.h"
#include "validation/ppv.h"

namespace {

using namespace asrank;

/// Bad invocation (unknown command/flag, missing value): exit code 2, as
/// opposed to runtime failures (unreadable file, refused connection): 1.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Minimal --flag value argument parser.  Flags in kBooleanFlags take no
/// value ("--log-json"); everything else is --flag value.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw UsageError("expected --flag, got '" + key + "'");
      }
      key = key.substr(2);
      if (is_boolean(key)) {
        values_[key] = "true";
        continue;
      }
      if (i + 1 >= argc) throw UsageError("missing value for --" + key);
      values_[key] = argv[++i];
    }
  }

  [[nodiscard]] static bool is_boolean(const std::string& key) {
    return key == "log-json";
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::string require(const std::string& key) const {
    const auto value = get(key);
    if (!value) throw std::runtime_error("missing required --" + key);
    return *value;
  }
  [[nodiscard]] std::string get_or(const std::string& key, const std::string& fallback) const {
    return get(key).value_or(fallback);
  }
  [[nodiscard]] std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    const auto value = get(key);
    return value ? std::strtoull(value->c_str(), nullptr, 10) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
};

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  return out;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return in;
}

topogen::GroundTruth generate_truth(const Args& args) {
  auto params = topogen::GenParams::preset(args.get_or("preset", "medium"));
  params.seed = args.get_u64("seed", 42);
  return topogen::generate(params);
}

bgpsim::Observation observe_world(const topogen::GroundTruth& truth, const Args& args) {
  bgpsim::ObservationParams params;
  params.seed = args.get_u64("seed", 42) + 1;
  params.full_vps = args.get_u64("full-vps", 30);
  params.partial_vps = args.get_u64("partial-vps", 10);
  return bgpsim::observe(truth, params);
}

/// Load a path corpus from --mrt (binary) or --pipe (text) input.
paths::PathCorpus load_corpus(const Args& args) {
  if (const auto mrt_path = args.get("mrt")) {
    auto in = open_in(*mrt_path);
    const auto dump = mrt::read_table_dump_v2(in);
    return paths::PathCorpus::from_records(bgpsim::from_rib_dump(dump));
  }
  if (const auto pipe_path = args.get("pipe")) {
    auto in = open_in(*pipe_path);
    paths::PathCorpus corpus;
    for (const auto& route : mrt::parse_pipe_table(in)) {
      // Pipe tables carry no VP column; the first hop is the VP's AS.
      if (route.path.empty()) continue;
      corpus.add(route.path.first(), route.prefix, route.path);
    }
    return corpus;
  }
  throw std::runtime_error("need --mrt <file> or --pipe <file> input");
}

int cmd_generate(const Args& args) {
  const auto truth = generate_truth(args);
  auto out = open_out(args.require("out"));
  write_as_rel(truth.graph, out);
  if (const auto ppdc_path = args.get("ppdc")) {
    auto ppdc_out = open_out(*ppdc_path);
    write_ppdc(core::recursive_cone(truth.graph), ppdc_out);
  }
  std::cerr << "wrote " << truth.graph.as_count() << " ASes, "
            << truth.graph.link_count() << " links\n";
  return 0;
}

int cmd_observe(const Args& args) {
  const auto truth = generate_truth(args);
  const auto observation = observe_world(truth, args);
  if (const auto mrt_path = args.get("mrt")) {
    auto out = open_out(*mrt_path);
    mrt::write_table_dump_v2(bgpsim::to_rib_dump(observation), out);
  } else if (const auto pipe_path = args.get("pipe")) {
    auto out = open_out(*pipe_path);
    std::vector<mrt::TextRoute> routes;
    routes.reserve(observation.routes.size());
    for (const auto& route : observation.routes) {
      routes.push_back({route.prefix, route.path, true});
    }
    mrt::write_pipe_table(routes, out);
  } else {
    throw std::runtime_error("need --mrt <file> or --pipe <file> output");
  }
  std::cerr << "wrote " << observation.routes.size() << " routes from "
            << observation.vps.size() << " VPs\n";
  return 0;
}

int cmd_infer(const Args& args) {
  const auto corpus = load_corpus(args);
  core::InferenceConfig config;
  config.threads = args.get_u64("threads", 0);  // 0 = all hardware threads
  if (const auto ixps = args.get("ixp")) {
    for (const auto token : util::split(*ixps, ',')) {
      if (const auto asn = Asn::parse(token)) config.sanitizer.ixp_asns.insert(*asn);
    }
  }
  const auto result = core::AsRankInference(config).run(corpus);
  auto out = open_out(args.require("out"));
  write_as_rel(result.graph, out);

  const auto counts = result.graph.link_counts();
  std::cerr << "inferred " << counts.p2c << " c2p + " << counts.p2p << " p2p links; clique";
  for (const Asn as : result.clique) std::cerr << " AS" << as.value();
  std::cerr << "\nsanitize: " << result.audit.sanitize.input_records << " -> "
            << result.audit.sanitize.output_records << " records; poisoned discarded "
            << result.audit.poisoned_discarded << "; acyclic "
            << (result.audit.p2c_acyclic ? "yes" : "NO") << "\n";
  return 0;
}

int cmd_cones(const Args& args) {
  auto graph_in = open_in(args.require("as-rel"));
  const AsGraph graph = read_as_rel(graph_in);
  const std::string method = args.get_or("method", "ppdc");
  const std::size_t threads = args.get_u64("threads", 0);  // 0 = all hardware threads
  ConeMap cones;
  if (method == "recursive") {
    cones = core::recursive_cone(graph, threads);
  } else {
    const auto corpus = load_corpus(args);
    cones = method == "observed"
                ? core::bgp_observed_cone(graph, corpus, threads)
                : core::provider_peer_observed_cone(graph, corpus, threads);
  }
  auto out = open_out(args.require("out"));
  write_ppdc(cones, out);
  std::cerr << "wrote " << cones.size() << " cones (" << method << ")\n";
  return 0;
}

int cmd_rank(const Args& args) {
  auto graph_in = open_in(args.require("as-rel"));
  const AsGraph graph = read_as_rel(graph_in);
  const auto corpus = load_corpus(args);
  const std::size_t threads = args.get_u64("threads", 0);  // 0 = all hardware threads
  const auto degrees = core::Degrees::compute(corpus, threads);
  const auto cones = core::provider_peer_observed_cone(graph, corpus, threads);
  const auto hierarchy = core::analyze_hierarchy(graph, graph.provider_free_ases());

  util::TableWriter table({"rank", "AS", "cone", "transit degree", "class"});
  for (const auto& entry : core::top_n(cones, degrees, args.get_u64("top", 15))) {
    table.add_row({std::to_string(entry.rank), "AS" + entry.as.str(),
                   util::fmt_count(entry.cone_size), util::fmt_count(entry.transit_degree),
                   std::string(to_string(hierarchy.tiers.at(entry.as)))});
  }
  table.render(std::cout);
  return 0;
}

int cmd_validate(const Args& args) {
  auto inferred_in = open_in(args.require("inferred"));
  auto truth_in = open_in(args.require("truth"));
  const AsGraph inferred = read_as_rel(inferred_in);
  const AsGraph truth = read_as_rel(truth_in);
  const auto accuracy = validation::evaluate_against_truth(inferred, truth);
  util::TableWriter table({"metric", "value"});
  table.add_row({"links compared", util::fmt_count(accuracy.compared)});
  table.add_row({"c2p PPV", util::fmt_pct(accuracy.c2p.ppv())});
  table.add_row({"p2p PPV", util::fmt_pct(accuracy.p2p.ppv())});
  table.add_row({"overall accuracy", util::fmt_pct(accuracy.accuracy())});
  table.add_row({"direction flips", util::fmt_count(accuracy.direction_errors)});
  table.add_row({"phantom links", util::fmt_count(accuracy.unknown_links)});
  table.add_row({"siblings excluded", util::fmt_count(accuracy.s2s_links)});
  table.render(std::cout);
  return 0;
}

int cmd_diff(const Args& args) {
  auto before_in = open_in(args.require("before"));
  auto after_in = open_in(args.require("after"));
  const AsGraph before = read_as_rel(before_in);
  const AsGraph after = read_as_rel(after_in);
  const auto diff = diff_graphs(before, after);
  util::TableWriter table({"change", "count"});
  table.add_row({"links added", util::fmt_count(diff.added.size())});
  table.add_row({"links removed", util::fmt_count(diff.removed.size())});
  table.add_row({"relationship changed", util::fmt_count(diff.changed.size())});
  table.add_row({"unchanged", util::fmt_count(diff.unchanged)});
  table.add_row({"annotation stability", util::fmt_pct(diff.stability())});
  table.render(std::cout);
  for (const auto& change : diff.changed) {
    std::cout << "  AS" << change.before.a.value() << "-AS" << change.before.b.value()
              << ": " << to_string(change.before.type) << " -> "
              << to_string(change.after.type) << "\n";
  }
  return 0;
}

int cmd_hierarchy(const Args& args) {
  auto graph_in = open_in(args.require("as-rel"));
  const AsGraph graph = read_as_rel(graph_in);
  std::vector<Asn> clique;
  if (const auto members = args.get("clique")) {
    for (const auto token : util::split(*members, ',')) {
      if (const auto asn = Asn::parse(token)) clique.push_back(*asn);
    }
    std::sort(clique.begin(), clique.end());
  } else {
    clique = graph.provider_free_ases();
  }
  const auto summary = core::analyze_hierarchy(graph, clique);
  const auto depths = core::hierarchy_depths(graph);
  std::size_t max_depth = 0;
  for (const auto& [as, depth] : depths) max_depth = std::max(max_depth, depth);

  util::TableWriter table({"metric", "value"});
  table.add_row({"ASes", util::fmt_count(graph.as_count())});
  table.add_row({"links", util::fmt_count(graph.link_count())});
  table.add_row({"clique / provider-free roots", util::fmt_count(summary.clique)});
  table.add_row({"transit ASes", util::fmt_count(summary.transit)});
  table.add_row({"leaf providers", util::fmt_count(summary.leaf_providers)});
  table.add_row({"stub ASes", util::fmt_count(summary.stubs)});
  table.add_row({"hierarchy depth", std::to_string(max_depth)});
  table.add_row({"mean providers (multihoming)", util::fmt(summary.mean_providers, 2)});
  table.add_row({"p2p share of links", util::fmt_pct(summary.p2p_share)});
  table.render(std::cout);
  return 0;
}

int cmd_updates(const Args& args) {
  // Generate an evolution step and emit the BGP4MP update stream between
  // the two snapshots.
  auto truth = generate_truth(args);
  const auto before = observe_world(truth, args);
  util::Rng rng(args.get_u64("seed", 42) + 1000);
  topogen::EvolveParams evolve_params;
  evolve_params.new_stubs = truth.graph.as_count() / 50;
  evolve_params.new_peerings = truth.graph.link_count() / 40;
  topogen::evolve(truth, rng, evolve_params);
  const auto after = observe_world(truth, args);

  const auto updates = bgpsim::diff_observations(before, after, before.routes.empty() ? 0 : 1);
  auto out = open_out(args.require("out"));
  for (const auto& update : updates) mrt::write_update(update, out);
  if (const auto rib_path = args.get("rib")) {
    auto rib_out = open_out(*rib_path);
    mrt::write_table_dump_v2(bgpsim::to_rib_dump(before), rib_out);
  }
  std::cerr << "wrote " << updates.size() << " update messages\n";
  return 0;
}

int cmd_replay(const Args& args) {
  auto rib_in = open_in(args.require("rib"));
  auto collector = bgpsim::Collector::from_rib_dump(mrt::read_table_dump_v2(rib_in));
  auto updates_in = open_in(args.require("updates"));
  const auto updates = mrt::read_updates(updates_in);
  for (const auto& update : updates) collector.apply(update);
  auto out = open_out(args.require("out"));
  mrt::write_table_dump_v2(collector.snapshot(), out);
  std::cerr << "replayed " << updates.size() << " updates over "
            << collector.peers().size() << " peers; table now holds "
            << collector.route_count() << " routes (" << collector.ignored_updates()
            << " updates ignored)\n";
  return 0;
}

// Build an ASRK1 snapshot from text/MRT artifacts.  With a path corpus the
// pipeline's transit degrees and observed cones are frozen; without one the
// snapshot falls back to recursive cones and graph-derived degrees (customer
// count), which is exact for generated ground truth.
int cmd_snapshot(const Args& args) {
  auto graph_in = open_in(args.require("as-rel"));
  const AsGraph graph = read_as_rel(graph_in);
  const std::size_t threads = args.get_u64("threads", 0);  // 0 = all hardware threads

  std::optional<paths::PathCorpus> corpus;
  if (args.get("mrt") || args.get("pipe")) corpus = load_corpus(args);

  ConeMap cones;
  std::string method = args.get_or("method", corpus ? "ppdc" : "recursive");
  if (const auto ppdc_path = args.get("ppdc")) {
    auto ppdc_in = open_in(*ppdc_path);
    cones = read_ppdc(ppdc_in);
    method = "ppdc-file";
  } else if (method == "recursive") {
    cones = core::recursive_cone(graph, threads);
  } else if (corpus) {
    cones = method == "observed"
                ? core::bgp_observed_cone(graph, *corpus, threads)
                : core::provider_peer_observed_cone(graph, *corpus, threads);
  } else {
    throw std::runtime_error("--method " + method + " needs --mrt or --pipe input");
  }

  std::unordered_map<Asn, std::size_t> transit;
  if (corpus) {
    const auto degrees = core::Degrees::compute(*corpus, threads);
    for (const Asn as : graph.ases()) transit[as] = degrees.transit_degree(as);
  } else {
    for (const Asn as : graph.ases()) transit[as] = graph.customers(as).size();
  }

  std::vector<Asn> clique;
  if (const auto members = args.get("clique")) {
    for (const auto token : util::split(*members, ',')) {
      if (const auto asn = Asn::parse(token)) clique.push_back(*asn);
    }
  } else {
    clique = graph.provider_free_ases();
  }

  const auto index = snapshot::build_snapshot(graph, transit, cones, clique);
  snapshot::write_snapshot_file(index, args.require("out"));
  std::cerr << "froze " << index.as_count() << " ASes, " << index.link_count()
            << " links, " << cones.size() << " cones (" << method << "), clique "
            << index.clique().size() << " -> " << args.require("out") << "\n";
  return 0;
}

int cmd_serve(const Args& args) {
  const std::string snapshot_path = args.require("snapshot");

  serve::SnapshotRegistryConfig registry_config;
  registry_config.retention = args.get_u64("retention", 4);
  registry_config.cache_capacity = args.get_u64("cache", 4096);
  // --mmap=0 falls back to the fully re-validating heap parse.
  registry_config.mmap_load = args.get_u64("mmap", 1) != 0;
  registry_config.cone_bitset.min_cone_size = args.get_u64("cone-bitset-min", 256);
  serve::SnapshotRegistry registry(registry_config);

  auto loaded = registry.load_file(snapshot_path, args.get_or("epoch", ""));
  if (!loaded.ok()) throw std::runtime_error(loaded.error().message());
  const auto& index = loaded.value()->index();
  std::cerr << "loaded snapshot epoch '" << registry.current_label() << "' ("
            << (index.mmap_backed() ? "mmap" : "heap") << "): "
            << index.as_count() << " ASes, " << index.link_count()
            << " links, clique " << index.clique().size() << "\n";

  serve::ServerConfig config;
  config.host = args.get_or("host", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(args.get_u64("port", 7464));
  config.threads = args.get_u64("threads", 4);
  config.idle_timeout_ms = static_cast<int>(args.get_u64("idle-timeout-ms", 60000));
  config.query_deadline_ms = static_cast<int>(args.get_u64("deadline-ms", 5000));
  config.max_connections = args.get_u64("max-conns", 256);
  // SIGHUP re-reads the serving snapshot path (or --reload-path override).
  config.reload_path = args.get_or("reload-path", snapshot_path);
  config.reload_label = args.get_or("epoch", "");
  serve::Server server(registry, config);
  server.install_signal_handlers();
  std::cerr << "asrankd " << ASRANK_VERSION << " listening on " << config.host << ":"
            << server.port() << " (" << config.threads << " workers)\n";
  server.run();
  std::cerr << "asrankd: clean shutdown after " << server.connections_served()
            << " connections\n" << registry.current()->render_stats();
  return 0;
}

/// Unwrap a client Result at the CLI boundary (exit code 1 on error).
template <typename T>
T need(Result<T> result) {
  if (!result.ok()) throw std::runtime_error(result.error().message());
  return std::move(result).value();
}

void need_void(Result<void> result) {
  if (!result.ok()) throw std::runtime_error(result.error().message());
}

int cmd_query(const Args& args) {
  serve::Client client(args.get_or("host", "127.0.0.1"),
                       static_cast<std::uint16_t>(args.get_u64("port", 7464)));
  const std::string op = args.require("op");
  const std::string epoch = args.get_or("epoch", "");
  const auto as_arg = [&args](const char* key) {
    const auto asn = Asn::parse(args.require(key));
    if (!asn) throw std::runtime_error(std::string("malformed ASN in --") + key);
    return *asn;
  };
  const auto print_list = [](const std::vector<Asn>& list) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      std::cout << (i == 0 ? "" : " ") << list[i].value();
    }
    std::cout << "\n";
  };

  if (op == "ping") {
    need_void(client.try_ping());
    std::cout << "pong\n";
  } else if (op == "rel") {
    const auto view = need(client.try_relationship(as_arg("a"), as_arg("b"), epoch));
    std::cout << (view ? to_string(*view) : "none") << "\n";
  } else if (op == "rank") {
    const auto rank = need(client.try_rank(as_arg("a"), epoch));
    std::cout << (rank ? std::to_string(*rank) : "unranked") << "\n";
  } else if (op == "conesize") {
    std::cout << need(client.try_cone_size(as_arg("a"), epoch)) << "\n";
  } else if (op == "cone") {
    print_list(need(client.try_cone(as_arg("a"), epoch)));
  } else if (op == "incone") {
    std::cout << (need(client.try_in_cone(as_arg("a"), as_arg("b"), epoch)) ? "yes" : "no")
              << "\n";
  } else if (op == "providers") {
    print_list(need(client.try_providers(as_arg("a"), epoch)));
  } else if (op == "customers") {
    print_list(need(client.try_customers(as_arg("a"), epoch)));
  } else if (op == "peers") {
    print_list(need(client.try_peers(as_arg("a"), epoch)));
  } else if (op == "top") {
    util::TableWriter table({"rank", "AS", "cone", "transit degree"});
    const auto entries =
        need(client.try_top(static_cast<std::uint32_t>(args.get_u64("n", 15)), epoch));
    for (const auto& entry : entries) {
      table.add_row({std::to_string(entry.rank), "AS" + entry.as.str(),
                     util::fmt_count(entry.cone_size),
                     util::fmt_count(entry.transit_degree)});
    }
    table.render(std::cout);
  } else if (op == "intersect") {
    print_list(need(client.try_cone_intersection(as_arg("a"), as_arg("b"), epoch)));
  } else if (op == "cliquepath") {
    print_list(need(client.try_path_to_clique(as_arg("a"), epoch)));
  } else if (op == "clique") {
    print_list(need(client.try_clique(epoch)));
  } else if (op == "stats") {
    std::cout << need(client.try_stats_text(epoch));
  } else if (op == "metrics") {
    std::cout << need(client.try_metrics_text());
  } else if (op == "epochs") {
    for (const auto& label : need(client.try_epochs())) std::cout << label << "\n";
  } else if (op == "conediff") {
    const auto diff = need(client.try_cone_diff(as_arg("a"), args.require("ea"),
                                                args.require("eb")));
    for (const Asn as : diff.added) std::cout << "+" << as.value() << "\n";
    for (const Asn as : diff.removed) std::cout << "-" << as.value() << "\n";
  } else {
    throw UsageError("unknown --op '" + op + "'");
  }
  return 0;
}

std::pair<std::string, std::uint16_t> parse_target(const std::string& target);

// Ask a running asrankd (loopback only) to hot-load a snapshot file.
int cmd_reload(const std::optional<std::string>& target, const Args& args) {
  const auto [host, port] =
      target ? parse_target(*target)
             : std::pair<std::string, std::uint16_t>{
                   args.get_or("host", "127.0.0.1"),
                   static_cast<std::uint16_t>(args.get_u64("port", 7464))};
  serve::Client client(host, port);
  const auto info =
      need(client.try_reload(args.require("snapshot"), args.get_or("epoch", "")));
  std::cout << "reloaded epoch '" << info.label << "' (" << info.ases << " ASes)\n";
  return 0;
}

/// Split "host:port" (":port" optional, default 7464).
std::pair<std::string, std::uint16_t> parse_target(const std::string& target) {
  const auto colon = target.rfind(':');
  if (colon == std::string::npos) return {target, 7464};
  const std::string host = target.substr(0, colon);
  const auto port = std::strtoul(target.c_str() + colon + 1, nullptr, 10);
  if (host.empty() || port == 0 || port > 65535) {
    throw UsageError("malformed <host:port> '" + target + "'");
  }
  return {host, static_cast<std::uint16_t>(port)};
}

// Scrape a running asrankd's Prometheus exposition, like
// `curl host:port/metrics` would against an HTTP daemon.
int cmd_metrics(const std::optional<std::string>& target, const Args& args) {
  const auto [host, port] =
      target ? parse_target(*target)
             : std::pair<std::string, std::uint16_t>{
                   args.get_or("host", "127.0.0.1"),
                   static_cast<std::uint16_t>(args.get_u64("port", 7464))};
  serve::Client client(host, port);
  std::cout << client.metrics_text();
  return 0;
}

void usage(std::ostream& os) {
  os <<
      "usage: asrank_cli <command> [--flag value ...]\n"
      "commands:\n"
      "  generate --out F.as-rel [--ppdc F.ppdc] [--preset P] [--seed N]\n"
      "  observe  (--mrt F | --pipe F) [--preset P] [--seed N] [--full-vps N] [--partial-vps N]\n"
      "  infer    (--mrt F | --pipe F) --out F.as-rel [--ixp a,b,c]\n"
      "  cones    --as-rel F --out F.ppdc [--method recursive|ppdc|observed] [--mrt F | --pipe F]\n"
      "  rank     --as-rel F (--mrt F | --pipe F) [--top N]\n"
      "  validate --inferred F.as-rel --truth F.as-rel\n"
      "  hierarchy --as-rel F [--clique a,b,c]\n"
      "  diff     --before F.as-rel --after F.as-rel\n"
      "  updates  --out F.updates [--rib F.mrt] [--preset P] [--seed N]\n"
      "  replay   --rib F.mrt --updates F.updates --out F2.mrt\n"
      "  snapshot --as-rel F --out F.asrk [--ppdc F | --mrt F | --pipe F]\n"
      "           [--method recursive|ppdc|observed] [--clique a,b,c]\n"
      "  serve    --snapshot F.asrk [--host H] [--port N] [--threads N] [--cache N]\n"
      "           [--epoch LABEL] [--retention N] [--idle-timeout-ms N]\n"
      "           [--deadline-ms N] [--max-conns N] [--reload-path F]\n"
      "           (SIGHUP hot-reloads the snapshot; old epochs stay queryable)\n"
      "  query    --op OP [--host H] [--port N] [--a ASN] [--b ASN] [--n N]\n"
      "           [--epoch LABEL] (answer from a named resident epoch)\n"
      "           OP: ping rel rank conesize cone incone providers customers\n"
      "               peers top intersect cliquepath clique stats metrics\n"
      "               epochs conediff (--a ASN --ea EPOCH --eb EPOCH)\n"
      "  reload   [host:port] --snapshot F.asrk [--epoch LABEL]\n"
      "           hot-load a snapshot into a running asrankd (loopback only)\n"
      "  metrics  [host:port] (default 127.0.0.1:7464; or --host H --port N)\n"
      "           print a running asrankd's Prometheus metrics\n"
      "  help     print this usage\n"
      "global flags (every command):\n"
      "  --log-level trace|debug|info|warn|error|off   (default info)\n"
      "  --log-json                                    JSON-lines log output\n"
      "  --version                                     print version and exit\n"
      "exit codes: 0 success, 1 runtime error, 2 usage error\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(std::cerr);
    return 2;
  }
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    usage(std::cout);
    return 0;
  }
  if (command == "--version" || command == "version") {
    std::cout << "asrank_cli " << ASRANK_VERSION << "\n";
    return 0;
  }
  try {
    // `metrics` and `reload` accept one optional positional <host:port>
    // before flags.
    std::optional<std::string> target;
    int first_flag = 2;
    if ((command == "metrics" || command == "reload") && argc > 2 &&
        std::string(argv[2]).rfind("--", 0) != 0) {
      target = argv[2];
      first_flag = 3;
    }
    const Args args(argc, argv, first_flag);
    // Logging flags apply before any command body and override the
    // ASRANK_LOG / ASRANK_LOG_JSON environment.
    if (const auto level_text = args.get("log-level")) {
      const auto level = obs::parse_log_level(*level_text);
      if (!level) throw UsageError("bad --log-level '" + *level_text + "'");
      obs::Logger::global().set_level(*level);
    }
    if (args.get("log-json")) obs::Logger::global().set_json(true);
    if (command == "generate") return cmd_generate(args);
    if (command == "observe") return cmd_observe(args);
    if (command == "infer") return cmd_infer(args);
    if (command == "cones") return cmd_cones(args);
    if (command == "rank") return cmd_rank(args);
    if (command == "validate") return cmd_validate(args);
    if (command == "hierarchy") return cmd_hierarchy(args);
    if (command == "diff") return cmd_diff(args);
    if (command == "updates") return cmd_updates(args);
    if (command == "replay") return cmd_replay(args);
    if (command == "snapshot") return cmd_snapshot(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "query") return cmd_query(args);
    if (command == "reload") return cmd_reload(target, args);
    if (command == "metrics") return cmd_metrics(target, args);
    std::cerr << "asrank_cli: unknown command '" << command
              << "' (try 'asrank_cli help')\n";
    return 2;
  } catch (const UsageError& error) {
    std::cerr << "asrank_cli " << command << ": " << error.what()
              << " (try 'asrank_cli help')\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "asrank_cli " << command << ": " << error.what() << "\n";
    return 1;
  }
}
