// asrank_cli — end-to-end command-line workflow over files, mirroring how
// the CAIDA pipeline is driven in practice:
//
//   asrank_cli generate --preset medium --seed 42 --out truth.as-rel
//   asrank_cli observe  --preset medium --seed 42 --mrt rib.mrt
//   asrank_cli infer    --mrt rib.mrt --out inferred.as-rel
//   asrank_cli infer    --pipe paths.txt --out inferred.as-rel
//   asrank_cli cones    --as-rel inferred.as-rel --mrt rib.mrt --method ppdc --out cones.ppdc
//   asrank_cli rank     --as-rel inferred.as-rel --mrt rib.mrt --top 15
//   asrank_cli validate --inferred inferred.as-rel --truth truth.as-rel
//   asrank_cli snapshot --as-rel inferred.as-rel --mrt rib.mrt --out run.asrk
//   asrank_cli serve    --snapshot run.asrk --port 7464
//   asrank_cli query    --port 7464 --op rank --a 3356
//
// Every artifact is a documented interchange format: .as-rel and .ppdc-ases
// (CAIDA text formats), MRT TABLE_DUMP_V2 (binary RIB), "prefix|path" pipe
// tables, or ASRK1 binary snapshots (docs/FORMATS.md).
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "algo/registry.h"
#include "bgpsim/collector.h"
#include "bgpsim/observation.h"
#include "bgpsim/update_stream.h"
#include "core/asrank.h"
#include "core/cones.h"
#include "core/hierarchy.h"
#include "core/ranking.h"
#include "ingest/epoch_builder.h"
#include "ingest/update_applier.h"
#include "mrt/bgp4mp.h"
#include "obs/log.h"
#include "mrt/table_dump_v2.h"
#include "mrt/text_table.h"
#include "serve/client.h"
#include "serve/cluster_client.h"
#include "serve/cluster_map.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "snapshot/snapshot.h"
#include "topogen/topogen.h"
#include "topology/graph_diff.h"
#include "topology/serialization.h"
#include "util/strings.h"
#include "util/table.h"
#include "validation/ppv.h"

namespace {

using namespace asrank;

/// Bad invocation (unknown command/flag, missing value): exit code 2, as
/// opposed to runtime failures (unreadable file, refused connection): 1.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Minimal --flag value argument parser.  Flags in kBooleanFlags take no
/// value ("--log-json"); everything else is --flag value.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw UsageError("expected --flag, got '" + key + "'");
      }
      key = key.substr(2);
      if (is_boolean(key)) {
        values_[key] = "true";
        continue;
      }
      if (i + 1 >= argc) throw UsageError("missing value for --" + key);
      values_[key] = argv[++i];
    }
  }

  [[nodiscard]] static bool is_boolean(const std::string& key) {
    return key == "log-json" || key == "bootstrap" || key == "follow" ||
           key == "flush-on-ts" || key == "verify-batch" || key == "metrics";
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::string require(const std::string& key) const {
    const auto value = get(key);
    if (!value) throw std::runtime_error("missing required --" + key);
    return *value;
  }
  [[nodiscard]] std::string get_or(const std::string& key, const std::string& fallback) const {
    return get(key).value_or(fallback);
  }
  [[nodiscard]] std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    const auto value = get(key);
    return value ? std::strtoull(value->c_str(), nullptr, 10) : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
};

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  return out;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return in;
}

topogen::GroundTruth generate_truth(const Args& args) {
  auto params = topogen::GenParams::preset(args.get_or("preset", "medium"));
  params.seed = args.get_u64("seed", 42);
  // Adversarial scenario knobs (EXPERIMENTS.md): both default off.
  params.hybrid_link_fraction =
      std::strtod(args.get_or("hybrid-fraction", "0").c_str(), nullptr);
  params.route_leaker_fraction =
      std::strtod(args.get_or("leaker-fraction", "0").c_str(), nullptr);
  return topogen::generate(params);
}

bgpsim::Observation observe_world(const topogen::GroundTruth& truth, const Args& args) {
  bgpsim::ObservationParams params;
  params.seed = args.get_u64("seed", 42) + 1;
  params.full_vps = args.get_u64("full-vps", 30);
  params.partial_vps = args.get_u64("partial-vps", 10);
  return bgpsim::observe(truth, params);
}

/// Resolve a --algorithm value (one name, or a comma list for snapshot and
/// ingest builds) to canonical registry names.  Unknown names are usage
/// errors — exit 2 with the registered-name list, same as an unknown --op.
std::vector<std::string> algorithm_list(const std::string& spec) {
  std::vector<std::string> out;
  for (const auto token : util::split(spec, ',')) {
    auto canonical = algo::resolve(util::trim(token));
    if (!canonical.ok()) throw UsageError(canonical.error().context);
    if (std::find(out.begin(), out.end(), canonical.value()) == out.end()) {
      out.push_back(std::move(canonical).value());
    }
  }
  if (out.empty()) throw UsageError("--algorithm needs at least one name");
  return out;
}

/// Build one single-algorithm snapshot part: infer from the corpus, freeze
/// recursive cones over the inferred graph and the corpus transit degrees.
/// "asrank" keeps its own clique; the baselines use provider-free ASes.
snapshot::SnapshotIndex build_algorithm_part(const std::string& name,
                                             const paths::PathCorpus& corpus,
                                             const core::Degrees& degrees,
                                             std::size_t threads) {
  AsGraph graph;
  std::vector<Asn> clique;
  if (name == "asrank") {
    core::InferenceConfig config;
    config.threads = threads;
    auto result = core::AsRankInference(config).run(corpus);
    graph = std::move(result.graph);
    clique = std::move(result.clique);
  } else {
    algo::AlgorithmOptions options;
    options.threads = threads;
    auto algorithm = algo::create(name, options);
    if (!algorithm.ok()) throw UsageError(algorithm.error().context);
    graph = algorithm.value()->infer(corpus);
    // The baselines promise nothing about provider-cycle freedom, but the
    // recursive cone closure (and so the snapshot) requires a DAG; impose
    // the same rank-order repair the asrank pipeline applies (step 11).
    core::break_provider_cycles(graph, degrees);
    clique = graph.provider_free_ases();
  }
  std::unordered_map<Asn, std::size_t> transit;
  for (const Asn as : graph.ases()) transit[as] = degrees.transit_degree(as);
  const auto cones = core::recursive_cone(graph, threads);
  return snapshot::build_snapshot(graph, transit, cones, clique);
}

/// Load a path corpus from --mrt (binary) or --pipe (text) input.
paths::PathCorpus load_corpus(const Args& args) {
  if (const auto mrt_path = args.get("mrt")) {
    auto in = open_in(*mrt_path);
    const auto dump = mrt::read_table_dump_v2(in);
    return paths::PathCorpus::from_records(bgpsim::from_rib_dump(dump));
  }
  if (const auto pipe_path = args.get("pipe")) {
    auto in = open_in(*pipe_path);
    paths::PathCorpus corpus;
    for (const auto& route : mrt::parse_pipe_table(in)) {
      // Pipe tables carry no VP column; the first hop is the VP's AS.
      if (route.path.empty()) continue;
      corpus.add(route.path.first(), route.prefix, route.path);
    }
    return corpus;
  }
  throw std::runtime_error("need --mrt <file> or --pipe <file> input");
}

int cmd_generate(const Args& args) {
  const auto truth = generate_truth(args);
  auto out = open_out(args.require("out"));
  write_as_rel(truth.graph, out);
  if (const auto ppdc_path = args.get("ppdc")) {
    auto ppdc_out = open_out(*ppdc_path);
    write_ppdc(core::recursive_cone(truth.graph), ppdc_out);
  }
  std::cerr << "wrote " << truth.graph.as_count() << " ASes, "
            << truth.graph.link_count() << " links\n";
  return 0;
}

int cmd_observe(const Args& args) {
  const auto truth = generate_truth(args);
  const auto observation = observe_world(truth, args);
  if (const auto mrt_path = args.get("mrt")) {
    auto out = open_out(*mrt_path);
    mrt::write_table_dump_v2(bgpsim::to_rib_dump(observation), out);
  } else if (const auto pipe_path = args.get("pipe")) {
    auto out = open_out(*pipe_path);
    std::vector<mrt::TextRoute> routes;
    routes.reserve(observation.routes.size());
    for (const auto& route : observation.routes) {
      routes.push_back({route.prefix, route.path, true});
    }
    mrt::write_pipe_table(routes, out);
  } else {
    throw std::runtime_error("need --mrt <file> or --pipe <file> output");
  }
  std::cerr << "wrote " << observation.routes.size() << " routes from "
            << observation.vps.size() << " VPs\n";
  return 0;
}

int cmd_infer(const Args& args) {
  const auto corpus = load_corpus(args);
  const auto algorithms = algorithm_list(args.get_or("algorithm", "asrank"));
  if (algorithms.size() != 1) {
    throw UsageError("infer takes one --algorithm (snapshot accepts a list)");
  }
  if (algorithms[0] != "asrank") {
    // Baselines run through the registry; they have no audit/clique output.
    algo::AlgorithmOptions options;
    options.threads = args.get_u64("threads", 0);
    auto algorithm = algo::create(algorithms[0], options);
    if (!algorithm.ok()) throw UsageError(algorithm.error().context);
    const AsGraph graph = algorithm.value()->infer(corpus);
    auto out = open_out(args.require("out"));
    write_as_rel(graph, out);
    const auto counts = graph.link_counts();
    std::cerr << algorithms[0] << ": inferred " << counts.p2c << " c2p + "
              << counts.p2p << " p2p links\n";
    return 0;
  }
  core::InferenceConfig config;
  config.threads = args.get_u64("threads", 0);  // 0 = all hardware threads
  if (const auto ixps = args.get("ixp")) {
    for (const auto token : util::split(*ixps, ',')) {
      if (const auto asn = Asn::parse(token)) config.sanitizer.ixp_asns.insert(*asn);
    }
  }
  const auto result = core::AsRankInference(config).run(corpus);
  auto out = open_out(args.require("out"));
  write_as_rel(result.graph, out);

  const auto counts = result.graph.link_counts();
  std::cerr << "inferred " << counts.p2c << " c2p + " << counts.p2p << " p2p links; clique";
  for (const Asn as : result.clique) std::cerr << " AS" << as.value();
  std::cerr << "\nsanitize: " << result.audit.sanitize.input_records << " -> "
            << result.audit.sanitize.output_records << " records; poisoned discarded "
            << result.audit.poisoned_discarded << "; acyclic "
            << (result.audit.p2c_acyclic ? "yes" : "NO") << "\n";
  return 0;
}

int cmd_cones(const Args& args) {
  auto graph_in = open_in(args.require("as-rel"));
  const AsGraph graph = read_as_rel(graph_in);
  const std::string method = args.get_or("method", "ppdc");
  const std::size_t threads = args.get_u64("threads", 0);  // 0 = all hardware threads
  ConeMap cones;
  if (method == "recursive") {
    cones = core::recursive_cone(graph, threads);
  } else {
    const auto corpus = load_corpus(args);
    cones = method == "observed"
                ? core::bgp_observed_cone(graph, corpus, threads)
                : core::provider_peer_observed_cone(graph, corpus, threads);
  }
  auto out = open_out(args.require("out"));
  write_ppdc(cones, out);
  std::cerr << "wrote " << cones.size() << " cones (" << method << ")\n";
  return 0;
}

int cmd_rank(const Args& args) {
  auto graph_in = open_in(args.require("as-rel"));
  const AsGraph graph = read_as_rel(graph_in);
  const auto corpus = load_corpus(args);
  const std::size_t threads = args.get_u64("threads", 0);  // 0 = all hardware threads
  const auto degrees = core::Degrees::compute(corpus, threads);
  const auto cones = core::provider_peer_observed_cone(graph, corpus, threads);
  const auto hierarchy = core::analyze_hierarchy(graph, graph.provider_free_ases());

  util::TableWriter table({"rank", "AS", "cone", "transit degree", "class"});
  for (const auto& entry : core::top_n(cones, degrees, args.get_u64("top", 15))) {
    table.add_row({std::to_string(entry.rank), "AS" + entry.as.str(),
                   util::fmt_count(entry.cone_size), util::fmt_count(entry.transit_degree),
                   std::string(to_string(hierarchy.tiers.at(entry.as)))});
  }
  table.render(std::cout);
  return 0;
}

int cmd_validate(const Args& args) {
  if (const auto spec = args.get("algorithm")) {
    // Comparison mode: infer the same corpus under every named algorithm
    // and score each against ground truth (the EXPERIMENTS.md PPV tables).
    const auto algorithms = algorithm_list(*spec);
    auto truth_in = open_in(args.require("truth"));
    const AsGraph truth = read_as_rel(truth_in);
    const auto corpus = load_corpus(args);
    const std::size_t threads = args.get_u64("threads", 0);
    util::TableWriter table({"algorithm", "links", "c2p PPV", "p2p PPV",
                             "accuracy", "flips", "phantom"});
    for (const auto& name : algorithms) {
      AsGraph inferred;
      if (name == "asrank") {
        core::InferenceConfig config;
        config.threads = threads;
        inferred = core::AsRankInference(config).run(corpus).graph;
      } else {
        algo::AlgorithmOptions options;
        options.threads = threads;
        auto algorithm = algo::create(name, options);
        if (!algorithm.ok()) throw UsageError(algorithm.error().context);
        inferred = algorithm.value()->infer(corpus);
      }
      const auto accuracy = validation::evaluate_against_truth(inferred, truth);
      table.add_row({name, util::fmt_count(accuracy.compared),
                     util::fmt_pct(accuracy.c2p.ppv()),
                     util::fmt_pct(accuracy.p2p.ppv()),
                     util::fmt_pct(accuracy.accuracy()),
                     util::fmt_count(accuracy.direction_errors),
                     util::fmt_count(accuracy.unknown_links)});
    }
    table.render(std::cout);
    return 0;
  }
  auto inferred_in = open_in(args.require("inferred"));
  auto truth_in = open_in(args.require("truth"));
  const AsGraph inferred = read_as_rel(inferred_in);
  const AsGraph truth = read_as_rel(truth_in);
  const auto accuracy = validation::evaluate_against_truth(inferred, truth);
  util::TableWriter table({"metric", "value"});
  table.add_row({"links compared", util::fmt_count(accuracy.compared)});
  table.add_row({"c2p PPV", util::fmt_pct(accuracy.c2p.ppv())});
  table.add_row({"p2p PPV", util::fmt_pct(accuracy.p2p.ppv())});
  table.add_row({"overall accuracy", util::fmt_pct(accuracy.accuracy())});
  table.add_row({"direction flips", util::fmt_count(accuracy.direction_errors)});
  table.add_row({"phantom links", util::fmt_count(accuracy.unknown_links)});
  table.add_row({"siblings excluded", util::fmt_count(accuracy.s2s_links)});
  table.render(std::cout);
  return 0;
}

int cmd_diff(const Args& args) {
  auto before_in = open_in(args.require("before"));
  auto after_in = open_in(args.require("after"));
  const AsGraph before = read_as_rel(before_in);
  const AsGraph after = read_as_rel(after_in);
  const auto diff = diff_graphs(before, after);
  util::TableWriter table({"change", "count"});
  table.add_row({"links added", util::fmt_count(diff.added.size())});
  table.add_row({"links removed", util::fmt_count(diff.removed.size())});
  table.add_row({"relationship changed", util::fmt_count(diff.changed.size())});
  table.add_row({"unchanged", util::fmt_count(diff.unchanged)});
  table.add_row({"annotation stability", util::fmt_pct(diff.stability())});
  table.render(std::cout);
  for (const auto& change : diff.changed) {
    std::cout << "  AS" << change.before.a.value() << "-AS" << change.before.b.value()
              << ": " << to_string(change.before.type) << " -> "
              << to_string(change.after.type) << "\n";
  }
  return 0;
}

int cmd_hierarchy(const Args& args) {
  auto graph_in = open_in(args.require("as-rel"));
  const AsGraph graph = read_as_rel(graph_in);
  std::vector<Asn> clique;
  if (const auto members = args.get("clique")) {
    for (const auto token : util::split(*members, ',')) {
      if (const auto asn = Asn::parse(token)) clique.push_back(*asn);
    }
    std::sort(clique.begin(), clique.end());
  } else {
    clique = graph.provider_free_ases();
  }
  const auto summary = core::analyze_hierarchy(graph, clique);
  const auto depths = core::hierarchy_depths(graph);
  std::size_t max_depth = 0;
  for (const auto& [as, depth] : depths) max_depth = std::max(max_depth, depth);

  util::TableWriter table({"metric", "value"});
  table.add_row({"ASes", util::fmt_count(graph.as_count())});
  table.add_row({"links", util::fmt_count(graph.link_count())});
  table.add_row({"clique / provider-free roots", util::fmt_count(summary.clique)});
  table.add_row({"transit ASes", util::fmt_count(summary.transit)});
  table.add_row({"leaf providers", util::fmt_count(summary.leaf_providers)});
  table.add_row({"stub ASes", util::fmt_count(summary.stubs)});
  table.add_row({"hierarchy depth", std::to_string(max_depth)});
  table.add_row({"mean providers (multihoming)", util::fmt(summary.mean_providers, 2)});
  table.add_row({"p2p share of links", util::fmt_pct(summary.p2p_share)});
  table.render(std::cout);
  return 0;
}

int cmd_updates(const Args& args) {
  auto truth = generate_truth(args);
  const std::size_t steps = args.get_u64("steps", 0);
  const bool bootstrap = args.get("bootstrap").has_value();

  if (steps == 0 && !bootstrap) {
    // Legacy single-step mode: one evolution, one diff.
    const auto before = observe_world(truth, args);
    util::Rng rng(args.get_u64("seed", 42) + 1000);
    topogen::EvolveParams evolve_params;
    evolve_params.new_stubs = truth.graph.as_count() / 50;
    evolve_params.new_peerings = truth.graph.link_count() / 40;
    topogen::evolve(truth, rng, evolve_params);
    const auto after = observe_world(truth, args);

    const auto updates =
        bgpsim::diff_observations(before, after, before.routes.empty() ? 0 : 1);
    auto out = open_out(args.require("out"));
    for (const auto& update : updates) mrt::write_update(update, out);
    if (const auto rib_path = args.get("rib")) {
      auto rib_out = open_out(*rib_path);
      mrt::write_table_dump_v2(bgpsim::to_rib_dump(before), rib_out);
    }
    std::cerr << "wrote " << updates.size() << " update messages\n";
    return 0;
  }

  // Stream mode: a multi-step timestamped feed for the ingest pipeline.
  bgpsim::ObservationParams obs_params;
  obs_params.seed = args.get_u64("seed", 42) + 1;
  obs_params.full_vps = args.get_u64("full-vps", 30);
  obs_params.partial_vps = args.get_u64("partial-vps", 10);

  if (const auto rib_path = args.get("rib")) {
    // Base table before any step (what a non-bootstrap consumer seeds from).
    const auto base = bgpsim::observe(truth, obs_params);
    auto rib_out = open_out(*rib_path);
    mrt::write_table_dump_v2(bgpsim::to_rib_dump(base), rib_out);
  }

  bgpsim::UpdateStreamParams stream_params;
  stream_params.steps = steps;
  stream_params.seed = args.get_u64("seed", 42) + 1000;
  stream_params.bootstrap = bootstrap;
  stream_params.base_timestamp =
      static_cast<std::uint32_t>(args.get_u64("base-ts", 1367193600));
  stream_params.step_seconds =
      static_cast<std::uint32_t>(args.get_u64("step-seconds", 60));
  stream_params.evolve.new_stubs = truth.graph.as_count() / 50;
  stream_params.evolve.new_peerings = truth.graph.link_count() / 40;

  const auto stream = bgpsim::generate_update_stream(truth, obs_params, stream_params);
  auto out = open_out(args.require("out"));
  std::size_t total = 0;
  for (const auto& step : stream) {
    for (const auto& update : step.updates) mrt::write_update(update, out);
    total += step.updates.size();
  }
  std::cerr << "wrote " << total << " update messages across " << stream.size()
            << " timestamped steps\n";
  return 0;
}

int cmd_replay(const Args& args) {
  auto rib_in = open_in(args.require("rib"));
  auto collector = bgpsim::Collector::from_rib_dump(mrt::read_table_dump_v2(rib_in));
  auto updates_in = open_in(args.require("updates"));
  const auto updates = mrt::read_updates(updates_in);
  for (const auto& update : updates) collector.apply(update);
  auto out = open_out(args.require("out"));
  mrt::write_table_dump_v2(collector.snapshot(), out);
  std::cerr << "replayed " << updates.size() << " updates over "
            << collector.peers().size() << " peers; table now holds "
            << collector.route_count() << " routes (" << collector.ignored_updates()
            << " updates ignored)\n";
  return 0;
}

// Build an ASRK1 snapshot from text/MRT artifacts.  With a path corpus the
// pipeline's transit degrees and observed cones are frozen; without one the
// snapshot falls back to recursive cones and graph-derived degrees (customer
// count), which is exact for generated ground truth.
int cmd_snapshot(const Args& args) {
  if (const auto spec = args.get("algorithm")) {
    // Multi-algorithm build: infer each named algorithm from the path
    // corpus and merge the per-algorithm indexes into one tagged snapshot
    // (the first name becomes the primary slot the daemon defaults to).
    const auto algorithms = algorithm_list(*spec);
    const std::size_t threads = args.get_u64("threads", 0);
    const auto corpus = load_corpus(args);
    const auto degrees = core::Degrees::compute(corpus, threads);
    std::vector<std::pair<std::string, snapshot::SnapshotIndex>> parts;
    parts.reserve(algorithms.size());
    for (const auto& name : algorithms) {
      parts.emplace_back(name,
                         build_algorithm_part(name, corpus, degrees, threads));
    }
    auto combined = snapshot::combine_snapshots(std::move(parts));
    if (!combined.ok()) throw std::runtime_error(combined.error().message());
    snapshot::write_snapshot_file(combined.value(), args.require("out"));
    std::cerr << "froze " << combined.value().as_count() << " ASes under "
              << algorithms.size() << " algorithm section(s) (";
    for (std::size_t i = 0; i < algorithms.size(); ++i) {
      std::cerr << (i == 0 ? "" : ", ") << algorithms[i];
    }
    std::cerr << ") -> " << args.require("out") << "\n";
    return 0;
  }
  auto graph_in = open_in(args.require("as-rel"));
  const AsGraph graph = read_as_rel(graph_in);
  const std::size_t threads = args.get_u64("threads", 0);  // 0 = all hardware threads

  std::optional<paths::PathCorpus> corpus;
  if (args.get("mrt") || args.get("pipe")) corpus = load_corpus(args);

  ConeMap cones;
  std::string method = args.get_or("method", corpus ? "ppdc" : "recursive");
  if (const auto ppdc_path = args.get("ppdc")) {
    auto ppdc_in = open_in(*ppdc_path);
    cones = read_ppdc(ppdc_in);
    method = "ppdc-file";
  } else if (method == "recursive") {
    cones = core::recursive_cone(graph, threads);
  } else if (corpus) {
    cones = method == "observed"
                ? core::bgp_observed_cone(graph, *corpus, threads)
                : core::provider_peer_observed_cone(graph, *corpus, threads);
  } else {
    throw std::runtime_error("--method " + method + " needs --mrt or --pipe input");
  }

  std::unordered_map<Asn, std::size_t> transit;
  if (corpus) {
    const auto degrees = core::Degrees::compute(*corpus, threads);
    for (const Asn as : graph.ases()) transit[as] = degrees.transit_degree(as);
  } else {
    for (const Asn as : graph.ases()) transit[as] = graph.customers(as).size();
  }

  std::vector<Asn> clique;
  if (const auto members = args.get("clique")) {
    for (const auto token : util::split(*members, ',')) {
      if (const auto asn = Asn::parse(token)) clique.push_back(*asn);
    }
  } else {
    clique = graph.provider_free_ases();
  }

  const auto index = snapshot::build_snapshot(graph, transit, cones, clique);
  snapshot::write_snapshot_file(index, args.require("out"));
  std::cerr << "froze " << index.as_count() << " ASes, " << index.link_count()
            << " links, " << cones.size() << " cones (" << method << "), clique "
            << index.clique().size() << " -> " << args.require("out") << "\n";
  return 0;
}

int cmd_serve(const Args& args) {
  const std::string snapshot_path = args.require("snapshot");

  serve::SnapshotRegistryConfig registry_config;
  registry_config.retention = args.get_u64("retention", 4);
  registry_config.cache_capacity = args.get_u64("cache", 4096);
  // --mmap=0 falls back to the fully re-validating heap parse.
  registry_config.mmap_load = args.get_u64("mmap", 1) != 0;
  registry_config.cone_bitset.min_cone_size = args.get_u64("cone-bitset-min", 256);
  serve::SnapshotRegistry registry(registry_config);

  auto loaded = registry.load_file(snapshot_path, args.get_or("epoch", ""));
  if (!loaded.ok()) throw std::runtime_error(loaded.error().message());
  const auto& index = loaded.value().engine->index();
  std::cerr << "loaded snapshot epoch '" << loaded.value().label << "' ("
            << (index.mmap_backed() ? "mmap" : "heap") << "): "
            << index.as_count() << " ASes, " << index.link_count()
            << " links, clique " << index.clique().size() << "\n";

  serve::ServerConfig config;
  config.host = args.get_or("host", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(args.get_u64("port", 7464));
  config.threads = args.get_u64("threads", 0);  // 0 = all hardware threads
  config.idle_timeout_ms = static_cast<int>(args.get_u64("idle-timeout-ms", 60000));
  config.query_deadline_ms = static_cast<int>(args.get_u64("deadline-ms", 5000));
  config.max_connections = args.get_u64("max-conns", 256);
  // --runtime blocking keeps the thread-per-connection baseline around for
  // A/B comparisons; the task runtime is the default.
  const std::string runtime = args.get_or("runtime", "task");
  if (runtime == "blocking") {
    config.runtime = serve::RuntimeMode::kBlocking;
  } else if (runtime != "task") {
    throw UsageError("unknown --runtime '" + runtime + "' (task|blocking)");
  }
  // SIGHUP re-reads the serving snapshot path (or --reload-path override).
  config.reload_path = args.get_or("reload-path", snapshot_path);
  config.reload_label = args.get_or("epoch", "");
  serve::Server server(registry, config);
  server.install_signal_handlers();
  std::cerr << "asrankd " << ASRANK_VERSION << " listening on " << config.host << ":"
            << server.port() << " (" << server.worker_threads() << " "
            << runtime << " workers)\n";
  server.run();
  std::cerr << "asrankd: clean shutdown after " << server.connections_served()
            << " connections\n" << registry.current()->render_stats();
  return 0;
}

/// Unwrap a client Result at the CLI boundary (exit code 1 on error).
template <typename T>
T need(Result<T> result) {
  if (!result.ok()) throw std::runtime_error(result.error().message());
  return std::move(result).value();
}

void need_void(Result<void> result) {
  if (!result.ok()) throw std::runtime_error(result.error().message());
}

/// One query op against the scoped surface both serve::Client and
/// serve::ClusterClient expose (the scope carries epoch + algorithm; no
/// mutable client state).  The single divergence is `metrics`, which is
/// inherently per-endpoint and thus monolithic-only.
template <typename ClientT>
int run_query_op(ClientT& client, const std::string& op, const Args& args,
                 const serve::QueryScope& scope) {
  const auto as_arg = [&args](const char* key) {
    const auto asn = Asn::parse(args.require(key));
    if (!asn) throw std::runtime_error(std::string("malformed ASN in --") + key);
    return *asn;
  };
  const auto print_list = [](const std::vector<Asn>& list) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      std::cout << (i == 0 ? "" : " ") << list[i].value();
    }
    std::cout << "\n";
  };

  if (op == "ping") {
    need_void(client.try_ping());
    std::cout << "pong\n";
  } else if (op == "rel") {
    const auto view = need(client.try_relationship(as_arg("a"), as_arg("b"), scope));
    std::cout << (view ? to_string(*view) : "none") << "\n";
  } else if (op == "rank") {
    const auto rank = need(client.try_rank(as_arg("a"), scope));
    std::cout << (rank ? std::to_string(*rank) : "unranked") << "\n";
  } else if (op == "conesize") {
    std::cout << need(client.try_cone_size(as_arg("a"), scope)) << "\n";
  } else if (op == "cone") {
    print_list(need(client.try_cone(as_arg("a"), scope)));
  } else if (op == "incone") {
    std::cout << (need(client.try_in_cone(as_arg("a"), as_arg("b"), scope)) ? "yes" : "no")
              << "\n";
  } else if (op == "providers") {
    print_list(need(client.try_providers(as_arg("a"), scope)));
  } else if (op == "customers") {
    print_list(need(client.try_customers(as_arg("a"), scope)));
  } else if (op == "peers") {
    print_list(need(client.try_peers(as_arg("a"), scope)));
  } else if (op == "top") {
    util::TableWriter table({"rank", "AS", "cone", "transit degree"});
    const auto entries =
        need(client.try_top(static_cast<std::uint32_t>(args.get_u64("n", 15)), scope));
    for (const auto& entry : entries) {
      table.add_row({std::to_string(entry.rank), "AS" + entry.as.str(),
                     util::fmt_count(entry.cone_size),
                     util::fmt_count(entry.transit_degree)});
    }
    table.render(std::cout);
  } else if (op == "intersect") {
    print_list(need(client.try_cone_intersection(as_arg("a"), as_arg("b"), scope)));
  } else if (op == "cliquepath") {
    print_list(need(client.try_path_to_clique(as_arg("a"), scope)));
  } else if (op == "clique") {
    print_list(need(client.try_clique(scope)));
  } else if (op == "stats") {
    std::cout << need(client.try_stats_text(scope));
  } else if (op == "metrics") {
    if constexpr (requires { client.try_metrics_text(); }) {
      std::cout << need(client.try_metrics_text());
    } else {
      throw UsageError(
          "--op metrics is per-endpoint; use `asrank_cli metrics host:port` "
          "per member or `cluster-status ... --metrics` for client metrics");
    }
  } else if (op == "epochs") {
    for (const auto& label : need(client.try_epochs())) std::cout << label << "\n";
  } else if (op == "algos") {
    for (const auto& name : need(client.try_algos(scope))) std::cout << name << "\n";
  } else if (op == "disagree") {
    const auto first = algorithm_list(args.require("first"));
    const auto second = algorithm_list(args.require("second"));
    if (first.size() != 1 || second.size() != 1) {
      throw UsageError("disagree compares exactly two algorithms");
    }
    const auto report = need(client.try_disagree(
        first[0], second[0],
        static_cast<std::uint32_t>(args.get_u64("limit", 0)), scope));
    const auto rel_text = [](const std::optional<RelView>& rel) {
      return rel ? std::string(to_string(*rel)) : std::string("none");
    };
    for (const auto& row : report.rows) {
      std::cout << "AS" << row.a.value() << "-AS" << row.b.value() << ": "
                << rel_text(row.first) << " vs " << rel_text(row.second) << "\n";
    }
    std::cerr << report.total << " disagreement(s), " << report.rows.size()
              << " shown\n";
  } else if (op == "conediff") {
    const auto diff = need(client.try_cone_diff(as_arg("a"), args.require("ea"),
                                                args.require("eb")));
    for (const Asn as : diff.added) std::cout << "+" << as.value() << "\n";
    for (const Asn as : diff.removed) std::cout << "-" << as.value() << "\n";
  } else {
    throw UsageError("unknown --op '" + op + "'");
  }
  return 0;
}

/// ClusterMap + ClusterClient from the shared --cluster/--slots/--replication/
/// --fanout flags (used by `query --cluster` and `cluster-status`).
serve::ClusterClient make_cluster_client(const std::string& spec, const Args& args) {
  serve::ClusterMapConfig map_config;
  map_config.slots = args.get_u64("slots", map_config.slots);
  map_config.replication = args.get_u64("replication", map_config.replication);
  auto map = need(serve::ClusterMap::parse(spec, map_config));
  serve::ClusterClientConfig config;
  config.max_fanout = args.get_u64("fanout", config.max_fanout);
  return serve::ClusterClient(std::move(map), std::move(config));
}

int cmd_query(const Args& args) {
  const std::string op = args.require("op");
  serve::QueryScope scope{args.get_or("epoch", ""), ""};
  if (const auto spec = args.get("algorithm")) {
    const auto algorithms = algorithm_list(*spec);
    if (algorithms.size() != 1) throw UsageError("query takes one --algorithm");
    scope.algorithm = algorithms[0];
  }
  if (const auto cluster = args.get("cluster")) {
    serve::ClusterClient client = make_cluster_client(*cluster, args);
    return run_query_op(client, op, args, scope);
  }
  serve::Client client =
      need(serve::Client::dial(args.get_or("host", "127.0.0.1"),
                               static_cast<std::uint16_t>(args.get_u64("port", 7464))));
  return run_query_op(client, op, args, scope);
}

// Probe every member of a cluster (endpoint list as positional arg or
// --cluster) and print breaker state, reachability, and resident epoch per
// endpoint, then the resolved cluster-wide epoch (or the typed skew/
// unavailable error).  --metrics appends the client-side asrank_cluster_*
// Prometheus exposition.
int cmd_cluster_status(const std::optional<std::string>& target, const Args& args) {
  const std::string spec = target ? *target : args.require("cluster");
  serve::ClusterClient client = make_cluster_client(spec, args);
  util::TableWriter table({"endpoint", "state", "reachable", "epoch", "error"});
  for (const auto& row : client.probe_endpoints()) {
    table.add_row({row.endpoint, std::string(serve::to_string(row.state)),
                   row.reachable ? "yes" : "no", row.current_epoch, row.error});
  }
  table.render(std::cout);
  std::cout << "slots: " << client.map().slot_count()
            << ", replication: " << client.map().replication() << "\n";
  const auto epoch = client.try_resolved_epoch();
  if (epoch.ok()) {
    std::cout << "cluster epoch: " << epoch.value() << "\n";
  } else {
    std::cout << "cluster epoch: unresolved (" << epoch.error().message() << ")\n";
  }
  if (args.get("metrics")) std::cout << client.metrics().render_prometheus();
  return 0;
}

std::pair<std::string, std::uint16_t> parse_target(const std::string& target);

// Ask a running asrankd (loopback only) to hot-load a snapshot file.
int cmd_reload(const std::optional<std::string>& target, const Args& args) {
  const auto [host, port] =
      target ? parse_target(*target)
             : std::pair<std::string, std::uint16_t>{
                   args.get_or("host", "127.0.0.1"),
                   static_cast<std::uint16_t>(args.get_u64("port", 7464))};
  serve::Client client = need(serve::Client::dial(host, port));
  const auto info =
      need(client.try_reload(args.require("snapshot"), args.get_or("epoch", "")));
  std::cout << "reloaded epoch '" << info.label << "' (" << info.ases << " ASes)\n";
  return 0;
}

/// Split "host:port" (":port" optional, default 7464).
std::pair<std::string, std::uint16_t> parse_target(const std::string& target) {
  const auto colon = target.rfind(':');
  if (colon == std::string::npos) return {target, 7464};
  const std::string host = target.substr(0, colon);
  const auto port = std::strtoul(target.c_str() + colon + 1, nullptr, 10);
  if (host.empty() || port == 0 || port > 65535) {
    throw UsageError("malformed <host:port> '" + target + "'");
  }
  return {host, static_cast<std::uint16_t>(port)};
}

// Scrape a running asrankd's Prometheus exposition, like
// `curl host:port/metrics` would against an HTTP daemon.
int cmd_metrics(const std::optional<std::string>& target, const Args& args) {
  const auto [host, port] =
      target ? parse_target(*target)
             : std::pair<std::string, std::uint16_t>{
                   args.get_or("host", "127.0.0.1"),
                   static_cast<std::uint16_t>(args.get_u64("port", 7464))};
  serve::Client client = need(serve::Client::dial(host, port));
  std::cout << need(client.try_metrics_text());
  return 0;
}

/// SIGINT/SIGTERM flag for the long-running ingest loop (which deliberately
/// does NOT use Server::install_signal_handlers: the ingest loop — not the
/// embedded server — owns shutdown, so it can cut a final epoch first).
volatile std::sig_atomic_t g_ingest_stop = 0;

extern "C" void ingest_stop_handler(int) { g_ingest_stop = 1; }

// Long-running streaming ingest: tail a BGP4MP update feed, maintain the
// route table, and periodically emit fresh epochs — to disk (--out-dir),
// into an embedded asrankd (--serve-port), and/or into a separate daemon
// via loopback RELOAD (--target host:port, needs --out-dir).
int cmd_ingest(const Args& args) {
  const std::string updates_path = args.require("updates");
  const bool follow = args.get("follow").has_value();
  if (follow && updates_path == "-") {
    throw UsageError("--follow tails a seekable file, not stdin");
  }
  const std::string out_dir = args.get_or("out-dir", "");
  const auto target = args.get("target");
  const bool serve = args.get("serve-port").has_value();
  if (target && out_dir.empty()) {
    throw UsageError("--target needs --out-dir (the daemon reloads from a file path)");
  }
  if (!serve && !target && out_dir.empty()) {
    throw UsageError("need an epoch sink: --serve-port, --out-dir, and/or --target");
  }

  ingest::EpochBuilderConfig builder_config;
  builder_config.inference.threads = args.get_u64("threads", 0);
  builder_config.cone_threads = args.get_u64("threads", 0);
  builder_config.full_closure_threshold =
      std::strtod(args.get_or("dirty-threshold", "0.5").c_str(), nullptr);
  builder_config.verify_batch = args.get("verify-batch").has_value();
  // Extra algorithm sections per emitted epoch.  The incremental builder is
  // asrank-only, so asrank stays the primary slot; the rest re-infer from
  // the live corpus at each flush and ride along as tagged sections.
  const auto algorithms = algorithm_list(args.get_or("algorithm", "asrank"));
  if (algorithms[0] != "asrank") {
    throw UsageError("ingest's incremental builder is asrank; list it first "
                     "(e.g. --algorithm asrank," + algorithms[0] + ")");
  }
  const std::vector<std::string> extra_algos(algorithms.begin() + 1,
                                             algorithms.end());
  const std::size_t infer_threads = args.get_u64("threads", 0);

  ingest::EpochBuilder builder(builder_config);
  ingest::UpdateApplier applier;

  if (const auto rib_path = args.get("rib")) {
    auto rib_in = open_in(*rib_path);
    for (const auto& route : bgpsim::from_rib_dump(mrt::read_table_dump_v2(rib_in))) {
      applier.seed(route.vp, route.prefix, route.path);
    }
    std::cerr << "ingest: seeded " << applier.route_count() << " routes from "
              << *rib_path << "\n";
  }

  const std::uint64_t flush_n = args.get_u64("flush-every-n", 0);
  const std::uint64_t flush_ms = args.get_u64("flush-every-ms", 0);
  const bool flush_ts = args.get("flush-on-ts").has_value();
  // With no trigger armed, default to a count policy so the loop still cuts
  // epochs instead of buffering forever.
  ingest::FlushPolicy policy(
      flush_n == 0 && flush_ms == 0 && !flush_ts ? 10000 : flush_n, flush_ms,
      flush_ts);
  const std::string label_format = args.get_or("epoch-label-format", "epoch-%N");

  serve::SnapshotRegistryConfig registry_config;
  registry_config.retention = args.get_u64("retention", 8);
  registry_config.cache_capacity = args.get_u64("cache", 4096);
  serve::SnapshotRegistry registry(registry_config);
  std::unique_ptr<serve::Server> server;
  std::thread server_thread;
  if (serve) {
    serve::ServerConfig server_config;
    server_config.host = args.get_or("serve-host", "127.0.0.1");
    server_config.port = static_cast<std::uint16_t>(args.get_u64("serve-port", 7474));
    server_config.threads = args.get_u64("serve-threads", 2);
    server = std::make_unique<serve::Server>(registry, server_config);
    server_thread = std::thread([&server] { server->run(); });
    std::cerr << "ingest: serving on " << server_config.host << ":" << server->port()
              << " (" << server_config.threads << " workers)\n";
  }

  const auto now_ms = [] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  };
  const std::uint64_t poll_ms = std::max<std::uint64_t>(1, args.get_u64("poll-ms", 200));
  const auto sleep_poll = [poll_ms] {
    for (std::uint64_t slept = 0; slept < poll_ms && !g_ingest_stop; slept += 20) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::min<std::uint64_t>(20, poll_ms - slept)));
    }
  };

  std::uint32_t last_ts = 0;
  const auto flush = [&](const char* reason) {
    // Nothing new since the last cut (and at least one epoch exists): no-op.
    if (policy.pending() == 0 && builder.epochs_built() > 0) return;
    if (applier.route_count() == 0) {
      policy.flushed(now_ms());
      return;  // empty table — an epoch with zero ASes helps nobody
    }
    ingest::EpochBuildInfo info;
    auto built = builder.build(applier.corpus(), &info);
    if (!built.ok()) {
      obs::log_warn("ingest epoch build failed",
                    {{"reason", reason}, {"error", built.error().context}});
      policy.flushed(now_ms());  // back off; retry at the next boundary
      return;
    }
    if (!extra_algos.empty()) {
      const auto corpus = applier.corpus();
      const auto degrees = core::Degrees::compute(corpus, infer_threads);
      std::vector<std::pair<std::string, snapshot::SnapshotIndex>> parts;
      parts.emplace_back("asrank", std::move(built).value());
      for (const auto& name : extra_algos) {
        parts.emplace_back(
            name, build_algorithm_part(name, corpus, degrees, infer_threads));
      }
      built = snapshot::combine_snapshots(std::move(parts));
      if (!built.ok()) {
        obs::log_warn("ingest epoch combine failed",
                      {{"reason", reason}, {"error", built.error().context}});
        policy.flushed(now_ms());
        return;
      }
    }
    const std::string label =
        ingest::expand_epoch_label(label_format, info.sequence, last_ts);
    std::string snapshot_path;
    if (!out_dir.empty()) {
      snapshot_path = out_dir + "/" + label + ".asrk";
      snapshot::write_snapshot_file(built.value(), snapshot_path);
    }
    if (serve) {
      auto installed = registry.install(label, std::move(built).value());
      if (!installed.ok()) {
        obs::log_warn("ingest epoch install failed",
                      {{"epoch", label}, {"error", installed.error().context}});
      }
    }
    if (target) {
      const auto [host, port] = parse_target(*target);
      auto client = serve::Client::dial(host, port);
      Result<serve::ReloadInfo> pushed =
          client.ok() ? client.value().try_reload(snapshot_path, label)
                      : Result<serve::ReloadInfo>(client.take_error());
      if (!pushed.ok()) {
        obs::log_warn("ingest remote reload failed",
                      {{"target", *target}, {"error", pushed.error().context}});
      }
    }
    applier.mark();
    policy.flushed(now_ms());
    std::cerr << "ingest: epoch '" << label << "' (" << reason << "): "
              << (info.cones.full_recompute ? "full" : "incremental")
              << " cones, dirty " << info.cones.dirty_asns << ", "
              << info.build_micros << " us\n";
  };

  g_ingest_stop = 0;
  std::signal(SIGINT, ingest_stop_handler);
  std::signal(SIGTERM, ingest_stop_handler);
  policy.flushed(now_ms());  // arm the interval trigger from "now", not 0

  std::ifstream file_in;
  std::istream* in = &std::cin;
  if (updates_path != "-") {
    file_in = open_in(updates_path);
    in = &file_in;
  }
  mrt::UpdateReader reader(*in);

  int exit_code = 0;
  while (!g_ingest_stop) {
    const std::streampos pos = in->tellg();
    auto next = reader.next();
    if (!next.ok()) {
      if (follow && next.error().code == ErrorCode::kTruncated) {
        // Partially written record: rewind to its start and wait for the
        // writer to finish it.
        in->clear();
        if (pos != std::streampos(-1)) in->seekg(pos);
        if (policy.due(now_ms())) flush("interval");
        sleep_poll();
        continue;
      }
      std::cerr << "ingest: stream error: " << next.error().message() << "\n";
      exit_code = 1;
      break;
    }
    if (!next.value().has_value()) {  // clean EOF
      if (follow) {
        in->clear();
        if (pos != std::streampos(-1)) in->seekg(pos);
        if (policy.due(now_ms())) flush("interval");
        sleep_poll();
        continue;
      }
      break;
    }
    const mrt::UpdateMessage message = std::move(*std::move(next).value());
    if (policy.due_before(message.timestamp)) flush("timestamp");
    applier.apply(message);
    policy.applied(message.timestamp);
    last_ts = message.timestamp;
    if (policy.due(now_ms())) flush("batch");
  }

  flush("final");

  if (server && !g_ingest_stop && exit_code == 0 && !follow) {
    std::cerr << "ingest: stream complete; serving until SIGINT/SIGTERM\n";
    while (!g_ingest_stop) sleep_poll();
  }
  if (server) {
    server->stop();
    server_thread.join();
  }

  const auto& rstats = reader.stats();
  const auto& astats = applier.stats();
  std::cerr << "ingest: " << (exit_code == 0 ? "clean shutdown" : "stopped on error")
            << ": " << rstats.records << " records ("
            << rstats.updates << " updates, " << rstats.skipped() << " skipped), "
            << astats.announced << " announced / " << astats.withdrawn
            << " withdrawn (" << astats.as_set_rejected << " AS_SET rejected), "
            << builder.epochs_built() << " epochs emitted\n";
  return exit_code;
}

void usage(std::ostream& os) {
  os <<
      "usage: asrank_cli <command> [--flag value ...]\n"
      "commands:\n"
      "  generate --out F.as-rel [--ppdc F.ppdc] [--preset P] [--seed N]\n"
      "           [--hybrid-fraction X] [--leaker-fraction X] (adversarial scenarios)\n"
      "  observe  (--mrt F | --pipe F) [--preset P] [--seed N] [--full-vps N] [--partial-vps N]\n"
      "           [--hybrid-fraction X] [--leaker-fraction X] (must match generate)\n"
      "  infer    (--mrt F | --pipe F) --out F.as-rel [--ixp a,b,c]\n"
      "           [--algorithm NAME] (default asrank)\n"
      "  cones    --as-rel F --out F.ppdc [--method recursive|ppdc|observed] [--mrt F | --pipe F]\n"
      "  rank     --as-rel F (--mrt F | --pipe F) [--top N]\n"
      "  validate --inferred F.as-rel --truth F.as-rel\n"
      "           or: --truth F.as-rel (--mrt F | --pipe F) --algorithm a,b,c\n"
      "           (per-algorithm PPV comparison against ground truth)\n"
      "  hierarchy --as-rel F [--clique a,b,c]\n"
      "  diff     --before F.as-rel --after F.as-rel\n"
      "  updates  --out F.updates [--rib F.mrt] [--preset P] [--seed N]\n"
      "           [--steps N] [--bootstrap] [--base-ts N] [--step-seconds N]\n"
      "           (--steps/--bootstrap emit a timestamped multi-step stream)\n"
      "  ingest   --updates F|- [--rib F.mrt] [--follow] [--poll-ms N]\n"
      "           [--flush-every-n N] [--flush-every-ms N] [--flush-on-ts]\n"
      "           [--epoch-label-format FMT] [--out-dir D] [--serve-port N]\n"
      "           [--serve-host H] [--serve-threads N] [--target host:port]\n"
      "           [--threads N] [--dirty-threshold X] [--retention N]\n"
      "           [--verify-batch] [--algorithm asrank,b,c]\n"
      "           long-running: BGP4MP updates in, fresh served epochs out\n"
      "  replay   --rib F.mrt --updates F.updates --out F2.mrt\n"
      "  snapshot --as-rel F --out F.asrk [--ppdc F | --mrt F | --pipe F]\n"
      "           [--method recursive|ppdc|observed] [--clique a,b,c]\n"
      "           or: --out F.asrk (--mrt F | --pipe F) --algorithm a,b,c\n"
      "           (multi-algorithm snapshot; first name is the primary slot)\n"
      "  serve    --snapshot F.asrk [--host H] [--port N] [--threads N] [--cache N]\n"
      "           [--epoch LABEL] [--retention N] [--idle-timeout-ms N]\n"
      "           [--deadline-ms N] [--max-conns N] [--reload-path F]\n"
      "           (SIGHUP hot-reloads the snapshot; old epochs stay queryable)\n"
      "  query    --op OP [--host H] [--port N] [--a ASN] [--b ASN] [--n N]\n"
      "           [--epoch LABEL] (answer from a named resident epoch)\n"
      "           [--algorithm NAME] (answer from a named algorithm section)\n"
      "           [--cluster host:port,host:port,...] (sharded cluster instead\n"
      "           of one server; with [--slots N] [--replication N] [--fanout N])\n"
      "           OP: ping rel rank conesize cone incone providers customers\n"
      "               peers top intersect cliquepath clique stats metrics\n"
      "               epochs algos conediff (--a ASN --ea EPOCH --eb EPOCH)\n"
      "               disagree (--first ALGO --second ALGO [--limit N])\n"
      "  cluster-status host:port,host:port,... [--slots N] [--replication N]\n"
      "           [--metrics] probe every member: breaker state, reachability,\n"
      "           resident epoch, and the resolved cluster-wide epoch\n"
      "  reload   [host:port] --snapshot F.asrk [--epoch LABEL]\n"
      "           hot-load a snapshot into a running asrankd (loopback only)\n"
      "  metrics  [host:port] (default 127.0.0.1:7464; or --host H --port N)\n"
      "           print a running asrankd's Prometheus metrics\n"
      "  help     print this usage\n"
      "global flags (every command):\n"
      "  --log-level trace|debug|info|warn|error|off   (default info)\n"
      "  --log-json                                    JSON-lines log output\n"
      "  --version                                     print version and exit\n"
      "exit codes: 0 success, 1 runtime error, 2 usage error\n";
  os << "registered algorithms: " << algo::names_csv()
     << " (docs/ALGORITHMS.md)\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(std::cerr);
    return 2;
  }
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    usage(std::cout);
    return 0;
  }
  if (command == "--version" || command == "version") {
    std::cout << "asrank_cli " << ASRANK_VERSION << "\n";
    return 0;
  }
  try {
    // `metrics`, `reload`, and `cluster-status` accept one optional
    // positional <host:port[,host:port...]> before flags.
    std::optional<std::string> target;
    int first_flag = 2;
    if ((command == "metrics" || command == "reload" ||
         command == "cluster-status") &&
        argc > 2 && std::string(argv[2]).rfind("--", 0) != 0) {
      target = argv[2];
      first_flag = 3;
    }
    const Args args(argc, argv, first_flag);
    // Logging flags apply before any command body and override the
    // ASRANK_LOG / ASRANK_LOG_JSON environment.
    if (const auto level_text = args.get("log-level")) {
      const auto level = obs::parse_log_level(*level_text);
      if (!level) throw UsageError("bad --log-level '" + *level_text + "'");
      obs::Logger::global().set_level(*level);
    }
    if (args.get("log-json")) obs::Logger::global().set_json(true);
    if (command == "generate") return cmd_generate(args);
    if (command == "observe") return cmd_observe(args);
    if (command == "infer") return cmd_infer(args);
    if (command == "cones") return cmd_cones(args);
    if (command == "rank") return cmd_rank(args);
    if (command == "validate") return cmd_validate(args);
    if (command == "hierarchy") return cmd_hierarchy(args);
    if (command == "diff") return cmd_diff(args);
    if (command == "updates") return cmd_updates(args);
    if (command == "ingest") return cmd_ingest(args);
    if (command == "replay") return cmd_replay(args);
    if (command == "snapshot") return cmd_snapshot(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "query") return cmd_query(args);
    if (command == "reload") return cmd_reload(target, args);
    if (command == "metrics") return cmd_metrics(target, args);
    if (command == "cluster-status") return cmd_cluster_status(target, args);
    std::cerr << "asrank_cli: unknown command '" << command
              << "' (try 'asrank_cli help')\n";
    return 2;
  } catch (const UsageError& error) {
    std::cerr << "asrank_cli " << command << ": " << error.what()
              << " (try 'asrank_cli help')\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "asrank_cli " << command << ": " << error.what() << "\n";
    return 1;
  }
}
