#include "ingest/epoch_builder.h"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/timer.h"

namespace asrank::ingest {

namespace {

/// The one snapshot-build entry point for both the incremental and the batch
/// path: byte-identity between them rests on the two paths handing identical
/// (graph, degrees, cones, clique) to identical freezing code.
snapshot::SnapshotIndex freeze(const core::InferenceResult& result, const ConeMap& cones) {
  return snapshot::build_snapshot(result.graph, result.degrees, cones, result.clique);
}

std::string serialized(const snapshot::SnapshotIndex& index) {
  std::ostringstream os;
  snapshot::write_snapshot(index, os);
  return std::move(os).str();
}

/// Same alphabet serve::SnapshotRegistry accepts for epoch labels.
bool valid_label_char(char c) noexcept {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
         c == '.' || c == '_' || c == ':' || c == '-';
}

}  // namespace

EpochBuilder::EpochBuilder(EpochBuilderConfig config, obs::Registry& metrics)
    : config_(std::move(config)),
      build_latency_(&metrics.histogram("asrank_ingest_epoch_build_micros",
                                        "Wall-clock cost of building one ingest epoch")),
      dirty_gauge_(&metrics.gauge("asrank_ingest_dirty_asns",
                                  "ASes whose cone the last epoch build recomputed")),
      full_closures_(&metrics.counter(
          "asrank_ingest_full_closures_total",
          "Epoch builds that ran a full cone closure (first build or fallback)")),
      epochs_total_(&metrics.counter("asrank_ingest_epochs_emitted_total",
                                     "Epochs built by the ingest pipeline")) {}

Result<snapshot::SnapshotIndex> EpochBuilder::build(const paths::PathCorpus& corpus,
                                                    EpochBuildInfo* info) {
  obs::ScopedTimer timer(build_latency_);
  EpochBuildInfo local;
  try {
    const core::AsRankInference inference(config_.inference);
    core::InferenceResult result = inference.run(corpus);

    ConeMap cones;
    if (has_prev_) {
      cones = core::recursive_cone_incremental(prev_graph_, prev_cones_, result.graph,
                                               config_.full_closure_threshold,
                                               config_.cone_threads, &local.cones);
    } else {
      cones = core::recursive_cone(result.graph, config_.cone_threads);
      local.cones.full_recompute = true;
      local.cones.dirty_asns = cones.size();
      local.cones.dirty_fraction = cones.empty() ? 0.0 : 1.0;
    }

    snapshot::SnapshotIndex index = freeze(result, cones);

    if (config_.verify_batch) {
      const snapshot::SnapshotIndex reference = batch_build(corpus, config_);
      if (serialized(index) != serialized(reference)) {
        return make_error(ErrorCode::kInternal,
                          "ingest: incremental epoch diverged from batch build");
      }
    }

    prev_graph_ = std::move(result.graph);
    prev_cones_ = std::move(cones);
    has_prev_ = true;
    ++sequence_;
    local.sequence = sequence_;
    local.build_micros = timer.elapsed_micros();
    dirty_gauge_->set(static_cast<std::int64_t>(local.cones.dirty_asns));
    if (local.cones.full_recompute) full_closures_->inc();
    epochs_total_->inc();
    if (info != nullptr) *info = local;
    return index;
  } catch (const std::exception& error) {
    // Provider cycles, snapshot invariant violations, bad-alloc on absurd
    // input: a long-running ingest loop must survive all of them.
    return make_error(ErrorCode::kInternal,
                      std::string("ingest: epoch build failed: ") + error.what());
  }
}

snapshot::SnapshotIndex EpochBuilder::batch_build(const paths::PathCorpus& corpus,
                                                  const EpochBuilderConfig& config) {
  const core::AsRankInference inference(config.inference);
  const core::InferenceResult result = inference.run(corpus);
  const ConeMap cones = core::recursive_cone(result.graph, config.cone_threads);
  return freeze(result, cones);
}

std::string expand_epoch_label(std::string_view format, std::uint64_t sequence,
                               std::uint64_t timestamp) {
  std::string out;
  for (std::size_t i = 0; i < format.size(); ++i) {
    const char c = format[i];
    if (c != '%') {
      out.push_back(c);
      continue;
    }
    if (++i >= format.size()) {
      throw std::invalid_argument("epoch label format: dangling '%'");
    }
    switch (format[i]) {
      case 'N': {
        std::string digits = std::to_string(sequence);
        if (digits.size() < 6) digits.insert(0, 6 - digits.size(), '0');
        out += digits;
        break;
      }
      case 'T':
        out += std::to_string(timestamp);
        break;
      case '%':
        out.push_back('%');
        break;
      default:
        throw std::invalid_argument(std::string("epoch label format: unknown escape '%") +
                                    format[i] + "'");
    }
  }
  if (out.empty() || out.size() > 64) {
    throw std::invalid_argument("epoch label format: expansion must be 1-64 characters");
  }
  for (const char c : out) {
    if (!valid_label_char(c)) {
      throw std::invalid_argument(
          "epoch label format: expansion has characters outside [A-Za-z0-9._:-]");
    }
  }
  return out;
}

}  // namespace asrank::ingest
