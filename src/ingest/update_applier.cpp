#include "ingest/update_applier.h"

namespace asrank::ingest {

UpdateApplier::UpdateApplier(obs::Registry& metrics)
    : announce_total_(&metrics.counter("asrank_ingest_updates_total",
                                       "Announced/withdrawn prefixes applied by ingest",
                                       {{"kind", "announce"}})),
      withdraw_total_(&metrics.counter("asrank_ingest_updates_total",
                                       "Announced/withdrawn prefixes applied by ingest",
                                       {{"kind", "withdraw"}})),
      as_set_total_(&metrics.counter("asrank_ingest_as_set_rejected_total",
                                     "Announcements rejected for carrying an AS_SET")),
      routes_gauge_(&metrics.gauge("asrank_ingest_routes",
                                   "Live (vp, prefix) rows in the ingest table")) {}

void UpdateApplier::seed(Asn vp, const Prefix& prefix, AsPath path) {
  routes_[{vp, prefix}] = std::move(path);
  ++stats_.announced;
  announce_total_->inc();
  routes_gauge_->set(static_cast<std::int64_t>(routes_.size()));
}

void UpdateApplier::apply(const mrt::UpdateMessage& update) {
  ++stats_.messages;
  for (const Prefix& prefix : update.withdrawn) {
    if (routes_.erase({update.peer_as, prefix}) == 0) ++stats_.noop_withdrawn;
    ++stats_.withdrawn;
    withdraw_total_->inc();
  }
  if (!update.announced.empty()) {
    if (update.attrs.has_as_set) {
      stats_.as_set_rejected += update.announced.size();
      as_set_total_->inc(update.announced.size());
    } else if (update.attrs.as_path.hops().empty()) {
      stats_.empty_path_rejected += update.announced.size();
    } else {
      for (const Prefix& prefix : update.announced) {
        routes_[{update.peer_as, prefix}] = update.attrs.as_path;
        ++stats_.announced;
        announce_total_->inc();
      }
    }
  }
  routes_gauge_->set(static_cast<std::int64_t>(routes_.size()));
}

paths::PathCorpus UpdateApplier::corpus() const {
  paths::PathCorpus out;
  for (const auto& [key, path] : routes_) out.add(key.first, key.second, path);
  return out;
}

}  // namespace asrank::ingest
