// Incremental route-table maintenance: the front half of the streaming
// ingest conveyor (docs/INGEST.md).
//
// An UpdateApplier consumes decoded BGP4MP UPDATE messages one at a time
// (typically straight off an mrt::UpdateReader) and maintains the (vantage
// point, prefix) -> AS-path table a collector would hold — withdrawals erase
// rows, announcements insert or implicitly replace them.  The table
// materializes on demand as a paths::PathCorpus in deterministic (vp,
// prefix) order, so feeding the same cumulative update stream always yields
// the same corpus bytes and therefore (via the deterministic inference
// pipeline) the same ASRK1 epoch bytes.
//
// Semantics deliberately mirror bgpsim::apply_updates — the differential
// suite replays streams through both and asserts the emitted epochs match a
// from-scratch batch build — with one widening: an applier accepts every
// peer it sees (a long-running ingest daemon has no pre-configured peer
// list), where the simulator's collector tracks only its configured VPs.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "asn/as_path.h"
#include "asn/asn.h"
#include "asn/prefix.h"
#include "mrt/bgp4mp.h"
#include "obs/metrics.h"
#include "paths/corpus.h"

namespace asrank::ingest {

/// Running tallies over every message an applier has consumed.
struct ApplierStats {
  std::uint64_t messages = 0;         ///< UPDATE messages applied
  std::uint64_t announced = 0;        ///< announced prefixes accepted
  std::uint64_t withdrawn = 0;        ///< withdrawn prefixes processed
  std::uint64_t as_set_rejected = 0;  ///< announcements refused (AS_SET path)
  std::uint64_t empty_path_rejected = 0;  ///< announcements with no AS_PATH hops
  std::uint64_t noop_withdrawn = 0;   ///< withdrawals for routes never held

  friend bool operator==(const ApplierStats&, const ApplierStats&) = default;
};

class UpdateApplier {
 public:
  explicit UpdateApplier(obs::Registry& metrics = obs::Registry::global());

  /// Install one base-RIB row (bootstrap before replaying a stream).
  /// Counted as an announcement but not as a message.
  void seed(Asn vp, const Prefix& prefix, AsPath path);

  /// Apply one UPDATE: withdrawals first, then announcements, exactly as the
  /// message orders them.  Announcements carrying an AS_SET or an empty
  /// AS_PATH are rejected (counted; any previously held route survives) —
  /// the sanitizer would drop such paths anyway, and rejecting them here
  /// keeps the table equal to what bgpsim::apply_updates reconstructs.
  void apply(const mrt::UpdateMessage& update);

  /// The current table as an inference input, rows in ascending (vp, prefix)
  /// order.  O(routes); called once per epoch flush.
  [[nodiscard]] paths::PathCorpus corpus() const;

  [[nodiscard]] std::size_t route_count() const noexcept { return routes_.size(); }
  [[nodiscard]] const ApplierStats& stats() const noexcept { return stats_; }

  /// Flush bookkeeping: mark() at each epoch cut; messages_since_mark()
  /// drives count-based flush policies.
  void mark() noexcept { mark_ = stats_.messages; }
  [[nodiscard]] std::uint64_t messages_since_mark() const noexcept {
    return stats_.messages - mark_;
  }

 private:
  std::map<std::pair<Asn, Prefix>, AsPath> routes_;
  ApplierStats stats_;
  std::uint64_t mark_ = 0;

  obs::Counter* announce_total_;
  obs::Counter* withdraw_total_;
  obs::Counter* as_set_total_;
  obs::Gauge* routes_gauge_;
};

}  // namespace asrank::ingest
