// Epoch construction: the back half of the streaming ingest conveyor
// (docs/INGEST.md).
//
// An EpochBuilder turns the applier's current corpus into a fresh ASRK1
// SnapshotIndex: run relationship inference, recompute customer cones
// incrementally against the previous epoch's graph (safe over-invalidation
// with a full-closure fallback — see core::recursive_cone_incremental), and
// freeze the result with snapshot::build_snapshot.  Because inference is
// deterministic and the incremental closure is output-identical to the full
// one, every emitted epoch is byte-identical to a from-scratch batch build
// of the same corpus — batch_build() is that reference path, and the
// differential suite (tests/test_differential.cpp) holds the two equal.
//
// FlushPolicy and expand_epoch_label are the scheduling/naming companions
// the long-running CLI mode drives; both are pure and unit-testable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/asrank.h"
#include "core/cones.h"
#include "obs/metrics.h"
#include "paths/corpus.h"
#include "snapshot/snapshot.h"
#include "topology/as_graph.h"
#include "util/result.h"

namespace asrank::ingest {

struct EpochBuilderConfig {
  core::InferenceConfig inference;

  /// Worker threads for cone closure (full builds and the incremental
  /// fallback).  Same contract as core::recursive_cone.
  std::size_t cone_threads = 1;

  /// Dirty fraction above which the incremental closure abandons reuse for
  /// a plain full closure.
  double full_closure_threshold = 0.5;

  /// Paranoia knob: after every incremental build, serialize both it and a
  /// from-scratch batch build and fail (kInternal) on any byte difference.
  /// The differential tests run with this on; production ingest leaves it
  /// off (it doubles the build cost).
  bool verify_batch = false;
};

/// What one build() did, for logs/benches.
struct EpochBuildInfo {
  std::uint64_t sequence = 0;  ///< 1-based epoch number from this builder
  core::IncrementalConeStats cones;
  std::uint64_t build_micros = 0;

  friend bool operator==(const EpochBuildInfo&, const EpochBuildInfo&) = default;
};

class EpochBuilder {
 public:
  explicit EpochBuilder(EpochBuilderConfig config = {},
                        obs::Registry& metrics = obs::Registry::global());

  /// Build the next epoch from `corpus`.  The first call runs a full cone
  /// closure; later calls recompute only dirty cones against the previous
  /// epoch.  Pipeline exceptions (provider cycles, snapshot invariant
  /// violations) surface as kInternal on the Result rail — a bad corpus
  /// must not kill a long-running ingest process.
  [[nodiscard]] Result<snapshot::SnapshotIndex> build(const paths::PathCorpus& corpus,
                                                      EpochBuildInfo* info = nullptr);

  /// Stateless reference path: full inference + full closure + snapshot.
  /// build() is byte-identical to this for the same corpus.
  [[nodiscard]] static snapshot::SnapshotIndex batch_build(
      const paths::PathCorpus& corpus, const EpochBuilderConfig& config = {});

  [[nodiscard]] std::uint64_t epochs_built() const noexcept { return sequence_; }
  [[nodiscard]] const EpochBuilderConfig& config() const noexcept { return config_; }

 private:
  EpochBuilderConfig config_;
  AsGraph prev_graph_;
  ConeMap prev_cones_;
  bool has_prev_ = false;
  std::uint64_t sequence_ = 0;

  obs::Histogram* build_latency_;
  obs::Gauge* dirty_gauge_;
  obs::Counter* full_closures_;
  obs::Counter* epochs_total_;
};

/// When to cut an epoch.  The caller drives it with one call per applied
/// message plus a periodic due() poll; time is caller-supplied monotonic
/// milliseconds so policies are unit-testable without sleeping.
class FlushPolicy {
 public:
  /// All triggers disabled by zero/false; any combination may be armed.
  FlushPolicy(std::uint64_t every_updates, std::uint64_t every_ms,
              bool on_timestamp_change) noexcept
      : every_updates_(every_updates),
        every_ms_(every_ms),
        on_timestamp_change_(on_timestamp_change) {}

  /// Is an epoch boundary due *before* applying a message stamped
  /// `timestamp`?  True only in timestamp mode, when the stamp advances past
  /// the batch being accumulated — the natural replay boundary between
  /// bgpsim stream steps.
  [[nodiscard]] bool due_before(std::uint32_t timestamp) const noexcept {
    return on_timestamp_change_ && pending_ > 0 && timestamp != last_timestamp_;
  }

  /// Record one applied message.
  void applied(std::uint32_t timestamp) noexcept {
    ++pending_;
    last_timestamp_ = timestamp;
  }

  /// Is a count- or interval-based boundary due at `now_ms`?  Never true
  /// with nothing pending (no empty epochs).
  [[nodiscard]] bool due(std::uint64_t now_ms) const noexcept {
    if (pending_ == 0) return false;
    if (every_updates_ != 0 && pending_ >= every_updates_) return true;
    return every_ms_ != 0 && now_ms - last_flush_ms_ >= every_ms_;
  }

  /// Reset after a flush.
  void flushed(std::uint64_t now_ms) noexcept {
    pending_ = 0;
    last_flush_ms_ = now_ms;
  }

  [[nodiscard]] std::uint64_t pending() const noexcept { return pending_; }

 private:
  std::uint64_t every_updates_;
  std::uint64_t every_ms_;
  bool on_timestamp_change_;
  std::uint64_t pending_ = 0;
  std::uint32_t last_timestamp_ = 0;
  std::uint64_t last_flush_ms_ = 0;
};

/// Expand an epoch-label format string: `%N` becomes the zero-padded 6-digit
/// sequence number, `%T` the decimal timestamp, `%%` a literal percent;
/// every other byte passes through.  The default ingest format is
/// "epoch-%N".  Throws std::invalid_argument on an unknown % escape or when
/// the expansion is not a valid registry epoch label.
[[nodiscard]] std::string expand_epoch_label(std::string_view format,
                                             std::uint64_t sequence,
                                             std::uint64_t timestamp);

}  // namespace asrank::ingest
