#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

namespace asrank::runtime {

/// Single-threaded min-heap of deadline checkpoints, owned by one worker.
///
/// Entries are fire-and-forget: cancellation is lazy. Callers attach an
/// (id, kind) pair; when an entry fires the callback decides whether the
/// logical deadline it tracked is still live (and may re-schedule a new
/// checkpoint if the logical deadline moved later). Ids that no longer
/// resolve (closed connections) are simply ignored by the callback.
class TimerQueue {
 public:
  using Clock = std::chrono::steady_clock;

  void schedule(Clock::time_point deadline, std::uint64_t id, std::uint32_t kind) {
    heap_.push(Entry{deadline, id, kind});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Milliseconds until the earliest entry, clamped to [0, cap_ms].
  /// Returns cap_ms when no entries are pending.
  [[nodiscard]] int poll_timeout_ms(Clock::time_point now, int cap_ms) const {
    if (heap_.empty()) return cap_ms;
    auto delta = heap_.top().deadline - now;
    if (delta <= Clock::duration::zero()) return 0;
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(delta).count();
    // Round up so we do not spin-wake just before the deadline.
    if (std::chrono::milliseconds(ms) < delta) ++ms;
    if (cap_ms >= 0 && ms > cap_ms) return cap_ms;
    return static_cast<int>(ms);
  }

  /// Pops every entry due at `now` and invokes fn(id, kind) for each.
  /// Returns the number fired. fn may schedule() new entries.
  template <typename Fn>
  std::size_t expire(Clock::time_point now, Fn&& fn) {
    std::size_t fired = 0;
    while (!heap_.empty() && heap_.top().deadline <= now) {
      Entry e = heap_.top();
      heap_.pop();
      ++fired;
      fn(e.id, e.kind);
    }
    return fired;
  }

 private:
  struct Entry {
    Clock::time_point deadline;
    std::uint64_t id;
    std::uint32_t kind;
    bool operator>(const Entry& other) const { return deadline > other.deadline; }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
};

}  // namespace asrank::runtime
