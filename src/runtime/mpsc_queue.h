#pragma once

#include <atomic>
#include <cstddef>

namespace asrank::runtime {

/// Intrusive multi-producer single-consumer queue (Vyukov's algorithm).
///
/// Producers on any thread push nodes with two atomic stores (an exchange on
/// the tail plus a release of the predecessor's `next`); the single consumer
/// pops without any atomic RMW in the common case. The queue is linearizable
/// for producers but a pop can observe a transient "empty" while a producer
/// is between its two stores — callers that loop (the worker schedulers do)
/// will see the node on a later pass.
///
/// T must expose a `std::atomic<T*> next` member and be default-constructible
/// (one stub instance lives inside the queue). Nodes are caller-owned: the
/// queue never allocates or frees.
template <typename T>
class MpscQueue {
 public:
  MpscQueue() noexcept : head_(&stub_), tail_(&stub_) {
    stub_.next.store(nullptr, std::memory_order_relaxed);
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Push from any thread. Wait-free (one exchange).
  void push(T* node) noexcept {
    node->next.store(nullptr, std::memory_order_relaxed);
    T* prev = tail_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  /// Pop from the single consumer thread. Returns nullptr when the queue is
  /// empty or a producer is mid-push (transient; retry later).
  T* pop() noexcept {
    T* head = head_;
    T* next = head->next.load(std::memory_order_acquire);
    if (head == &stub_) {
      if (next == nullptr) return nullptr;
      head_ = next;
      head = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      head_ = next;
      return head;
    }
    T* tail = tail_.load(std::memory_order_acquire);
    if (head != tail) return nullptr;  // producer between its two stores
    // Queue holds exactly `head`; push the stub back so `head` gains a
    // successor and can be unlinked.
    stub_.next.store(nullptr, std::memory_order_relaxed);
    T* prev = tail_.exchange(&stub_, std::memory_order_acq_rel);
    prev->next.store(&stub_, std::memory_order_release);
    next = head->next.load(std::memory_order_acquire);
    if (next != nullptr) {
      head_ = next;
      return head;
    }
    return nullptr;  // concurrent push raced in ahead of the stub; retry
  }

  /// Consumer-side emptiness hint. May report non-empty for a node that is
  /// still being linked; never reports empty when a fully linked node exists.
  [[nodiscard]] bool empty() const noexcept {
    const T* head = head_;
    if (head != &stub_) return false;
    return head->next.load(std::memory_order_acquire) == nullptr &&
           tail_.load(std::memory_order_acquire) == head;
  }

 private:
  T* head_;  // consumer-owned
  alignas(64) std::atomic<T*> tail_;
  alignas(64) T stub_;
};

}  // namespace asrank::runtime
