#include "runtime/reactor.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace asrank::runtime {

namespace {

void set_nonblocking(int fd) noexcept {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

Reactor::Reactor(bool force_poll) {
  if (::pipe(wake_fds_) != 0) {
    wake_fds_[0] = wake_fds_[1] = -1;
  } else {
    set_nonblocking(wake_fds_[0]);
    set_nonblocking(wake_fds_[1]);
  }
#ifdef __linux__
  if (!force_poll) {
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd_ >= 0 && wake_fds_[0] >= 0) {
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLET;
      ev.data.ptr = nullptr;  // nullptr marks the wake pipe
      if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, wake_fds_[0], &ev) != 0) {
        ::close(epfd_);
        epfd_ = -1;
      }
    }
  }
#else
  (void)force_poll;
#endif
}

Reactor::~Reactor() {
  if (epfd_ >= 0) ::close(epfd_);
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

bool Reactor::add(int fd, std::uint32_t interest, IoHandler* handler) {
#ifdef __linux__
  if (epfd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLET | EPOLLRDHUP;
    if (interest & kRead) ev.events |= EPOLLIN;
    if (interest & kWrite) ev.events |= EPOLLOUT;
    ev.data.ptr = handler;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  }
#endif
  handlers_[fd] = Registration{interest, handler};
  pollset_dirty_ = true;
  return true;
}

bool Reactor::modify(int fd, std::uint32_t interest) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) return false;
#ifdef __linux__
  if (epfd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLET | EPOLLRDHUP;
    if (interest & kRead) ev.events |= EPOLLIN;
    if (interest & kWrite) ev.events |= EPOLLOUT;
    ev.data.ptr = it->second.handler;
    if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) return false;
  }
#endif
  it->second.interest = interest;
  pollset_dirty_ = true;
  return true;
}

void Reactor::remove(int fd) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) return;
#ifdef __linux__
  if (epfd_ >= 0) ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
  handlers_.erase(it);
  pollset_dirty_ = true;
}

void Reactor::wake() noexcept {
  bool expected = false;
  if (!wake_pending_.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
    return;  // a wakeup byte is already in flight
  }
  if (wake_fds_[1] >= 0) {
    char byte = 0;
    [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
  }
}

void Reactor::drain_wake_pipe() noexcept {
  char buf[64];
  while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
  }
  wake_pending_.store(false, std::memory_order_release);
}

int Reactor::poll_once(int timeout_ms) {
#ifdef __linux__
  if (epfd_ >= 0) {
    epoll_event events[128];
    int n;
    do {
      n = ::epoll_wait(epfd_, events, 128, timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return 0;
    int dispatched = 0;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.ptr == nullptr) {
        drain_wake_pipe();
        continue;
      }
      std::uint32_t ev = 0;
      if (events[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
        ev |= kRead;
      }
      if (events[i].events & EPOLLOUT) ev |= kWrite;
      if (ev == 0) continue;
      static_cast<IoHandler*>(events[i].data.ptr)->on_io(ev);
      ++dispatched;
    }
    return dispatched;
  }
#endif
  // poll(2) fallback (level-triggered; same handler contract works).
  if (pollset_dirty_) {
    pollset_fds_.clear();
    pollset_fds_.reserve(handlers_.size());
    for (const auto& [fd, reg] : handlers_) pollset_fds_.push_back(fd);
    pollset_dirty_ = false;
  }
  std::vector<pollfd> pfds;
  pfds.reserve(pollset_fds_.size() + 1);
  pfds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
  for (int fd : pollset_fds_) {
    auto it = handlers_.find(fd);
    if (it == handlers_.end()) continue;
    short ev = 0;
    if (it->second.interest & kRead) ev |= POLLIN;
    if (it->second.interest & kWrite) ev |= POLLOUT;
    pfds.push_back(pollfd{fd, ev, 0});
  }
  int n;
  do {
    n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) return 0;
  if (pfds[0].revents != 0) drain_wake_pipe();
  int dispatched = 0;
  for (std::size_t i = 1; i < pfds.size(); ++i) {
    if (pfds[i].revents == 0) continue;
    auto it = handlers_.find(pfds[i].fd);
    if (it == handlers_.end()) continue;  // removed during this dispatch batch
    std::uint32_t ev = 0;
    if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) ev |= kRead;
    if (pfds[i].revents & POLLOUT) ev |= kWrite;
    if (ev == 0) continue;
    it->second.handler->on_io(ev);
    ++dispatched;
  }
  return dispatched;
}

}  // namespace asrank::runtime
