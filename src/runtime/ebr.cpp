#include "runtime/ebr.h"

#include <utility>

namespace asrank::runtime::ebr {

Domain::~Domain() {
  std::deque<Retired> leftover;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftover.swap(retired_);
  }
  for (auto& r : leftover) r.reclaim();
  pending_.store(0, std::memory_order_relaxed);
}

Domain::Slot* Domain::acquire_slot() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!free_slots_.empty()) {
    Slot* slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.push_back(std::make_unique<Slot>());
  return slots_.back().get();
}

void Domain::release_slot(Slot* slot) noexcept {
  if (slot == nullptr) return;
  slot->state_.store(Slot::kIdle, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mutex_);
  free_slots_.push_back(slot);
}

void Domain::retire(std::function<void()> reclaimer) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    retired_.push_back(
        Retired{global_epoch_.load(std::memory_order_seq_cst), std::move(reclaimer)});
  }
  pending_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t Domain::try_advance() {
  std::vector<std::function<void()>> ready;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
    bool can_advance = true;
    for (const auto& slot : slots_) {
      std::uint64_t st = slot->state_.load(std::memory_order_seq_cst);
      if ((st & 1) != 0 && (st >> 1) != epoch) {
        can_advance = false;
        break;
      }
    }
    if (can_advance && !retired_.empty()) {
      ++epoch;
      global_epoch_.store(epoch, std::memory_order_seq_cst);
    }
    // A reclaimer retired in epoch r is safe once epoch >= r + 2: readers
    // pinned when the object was still reachable were at epoch <= r, and the
    // epoch only advanced past r after every such pin was released or caught
    // up (and again past r + 1).
    while (!retired_.empty() && retired_.front().epoch + 2 <= epoch) {
      ready.push_back(std::move(retired_.front().reclaim));
      retired_.pop_front();
    }
  }
  if (!ready.empty()) {
    pending_.fetch_sub(ready.size(), std::memory_order_relaxed);
    for (auto& fn : ready) fn();
  }
  return ready.size();
}

}  // namespace asrank::runtime::ebr
