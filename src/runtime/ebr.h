#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace asrank::runtime::ebr {

/// Epoch-based reclamation domain.
///
/// Readers pin a `Slot` (one per thread, or per call on slow paths) for the
/// duration of a critical section; writers unlink an object, then `retire()`
/// a reclaimer closure for it. The global epoch only advances when every
/// pinned slot has caught up to the current epoch, and a retired object is
/// reclaimed once the epoch has advanced twice past its retirement epoch —
/// at that point no reader can still hold a reference obtained before the
/// unlink. This lets the serve hot path read the current snapshot generation
/// through a raw pointer instead of bumping `shared_ptr` refcounts per query.
///
/// Slots are allocated once and recycled through a free list, so a domain
/// never invalidates a Slot pointer while it lives.
class Domain {
 public:
  class Slot {
   public:
    Slot() noexcept : state_(kIdle) {}

   private:
    friend class Domain;
    friend class Guard;
    static constexpr std::uint64_t kIdle = 0;
    // Pinned slots hold (epoch << 1) | 1.
    alignas(64) std::atomic<std::uint64_t> state_;
  };

  Domain() = default;
  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  /// Runs every still-pending reclaimer; the caller guarantees no reader is
  /// pinned any more.
  ~Domain();

  /// Registers a participant. O(1) amortized; takes the domain mutex. Cache
  /// the slot per thread on hot paths. Never returns nullptr.
  Slot* acquire_slot();

  /// Returns a slot to the free list. The slot must not be pinned.
  void release_slot(Slot* slot) noexcept;

  /// Hands an unlinked object's destructor to the domain. The closure runs
  /// once no pinned reader can still observe the object (or in ~Domain).
  void retire(std::function<void()> reclaimer);

  /// Tries to advance the global epoch and reclaim eligible retirees.
  /// Returns the number of reclaimers run. Safe to call from any thread,
  /// including one that is itself pinned — reclamation is simply deferred
  /// until lagging readers unpin or catch up; there is no deadlock.
  std::size_t try_advance();

  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return global_epoch_.load(std::memory_order_seq_cst);
  }

  /// Retired-but-not-yet-reclaimed count (cheap, racy).
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_relaxed);
  }

 private:
  friend class Guard;

  std::atomic<std::uint64_t> global_epoch_{1};
  std::atomic<std::size_t> pending_{0};

  mutable std::mutex mutex_;  // guards slots_, free_slots_, retired_
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<Slot*> free_slots_;
  struct Retired {
    std::uint64_t epoch;
    std::function<void()> reclaim;
  };
  std::deque<Retired> retired_;
};

/// RAII pin on a Domain. While alive, objects the reader can still reach are
/// not reclaimed. Cheap (two seq_cst stores + a validation load); safe to
/// construct per request.
class Guard {
 public:
  /// Hot path: pin a pre-acquired slot.
  Guard(Domain& domain, Domain::Slot& slot) noexcept
      : domain_(domain), slot_(&slot), owned_(false) {
    pin();
  }

  /// Slow path: acquire a slot for the guard's lifetime (takes the domain
  /// mutex twice). For infrequent callers such as tests and CLI paths.
  explicit Guard(Domain& domain)
      : domain_(domain), slot_(domain.acquire_slot()), owned_(true) {
    pin();
  }

  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

  ~Guard() {
    slot_->state_.store(Domain::Slot::kIdle, std::memory_order_release);
    if (owned_) domain_.release_slot(slot_);
  }

 private:
  void pin() noexcept {
    std::uint64_t e = domain_.global_epoch_.load(std::memory_order_seq_cst);
    for (;;) {
      slot_->state_.store((e << 1) | 1, std::memory_order_seq_cst);
      std::uint64_t cur = domain_.global_epoch_.load(std::memory_order_seq_cst);
      if (cur == e) break;  // advance cannot have missed this pin
      e = cur;
    }
  }

  Domain& domain_;
  Domain::Slot* slot_;
  bool owned_;
};

}  // namespace asrank::runtime::ebr
