#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>

namespace asrank::runtime {

/// Bounded multi-producer multi-consumer queue (Vyukov's array algorithm).
///
/// A fixed ring of cells, each tagged with a sequence number that encodes
/// whether the cell is free for the next producer lap or holds a value for
/// the next consumer lap. Push and pop are lock-free (one CAS each, no
/// spinning while another thread is inside a cell). Used as the connection
/// admission queue: the acceptor pushes, any worker pops.
template <typename T>
class BoundedMpmcQueue {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit BoundedMpmcQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
    enqueue_pos_.store(0, std::memory_order_relaxed);
    dequeue_pos_.store(0, std::memory_order_relaxed);
  }

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  /// Returns false when the queue is full.
  bool try_push(T value) noexcept {
    Cell* cell;
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      auto diff = static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Returns nullopt when the queue is empty.
  std::optional<T> try_pop() noexcept {
    Cell* cell;
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      auto diff =
          static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return std::nullopt;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    std::optional<T> out(std::move(cell->value));
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return out;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Racy size estimate; only a hint (used to decide whether a worker should
  /// bother draining admissions on an idle pass).
  [[nodiscard]] std::size_t size_approx() const noexcept {
    std::size_t enq = enqueue_pos_.load(std::memory_order_relaxed);
    std::size_t deq = dequeue_pos_.load(std::memory_order_relaxed);
    return enq > deq ? enq - deq : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence;
    T value;
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> enqueue_pos_;
  alignas(64) std::atomic<std::size_t> dequeue_pos_;
};

}  // namespace asrank::runtime
