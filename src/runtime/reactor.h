#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace asrank::runtime {

/// Receives readiness notifications from a Reactor. Implementations may
/// deregister and even destroy themselves from inside on_io() as long as the
/// owning worker defers destruction until the dispatch batch ends (the serve
/// layer parks closed connections in a graveyard for exactly this reason).
class IoHandler {
 public:
  virtual void on_io(std::uint32_t events) = 0;

 protected:
  ~IoHandler() = default;
};

/// Single-threaded readiness reactor: epoll-backed (edge-triggered) on Linux
/// with a portable poll(2) fallback, selectable at construction for tests.
/// All methods except wake() must be called from the owning worker thread;
/// wake() is safe from any thread and makes a concurrent/next poll_once()
/// return immediately.
///
/// Edge-triggered contract: on a kRead notification the handler must read
/// until EAGAIN; kWrite is only delivered while write interest is armed and
/// the handler must likewise write until EAGAIN or done. The same handler
/// discipline is level-trigger-safe, so the poll fallback needs no special
/// casing by callers.
class Reactor {
 public:
  static constexpr std::uint32_t kRead = 0x1;
  static constexpr std::uint32_t kWrite = 0x2;

  explicit Reactor(bool force_poll = false);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  [[nodiscard]] bool epoll_backed() const noexcept { return epfd_ >= 0; }

  /// Registers fd with the given interest set. Returns false on failure
  /// (e.g. fd limit). The handler must outlive the registration.
  bool add(int fd, std::uint32_t interest, IoHandler* handler);

  /// Updates the interest set of a registered fd.
  bool modify(int fd, std::uint32_t interest);

  /// Deregisters fd. Safe to call for fds that were never added.
  void remove(int fd);

  /// Waits up to timeout_ms (-1 = forever, 0 = non-blocking) and dispatches
  /// readiness to handlers. Returns the number of I/O events dispatched
  /// (wake-pipe traffic excluded).
  int poll_once(int timeout_ms);

  /// Cross-thread wakeup; coalesces.
  void wake() noexcept;

  [[nodiscard]] std::size_t watched() const noexcept { return handlers_.size(); }

 private:
  struct Registration {
    std::uint32_t interest;
    IoHandler* handler;
  };

  void drain_wake_pipe() noexcept;

  int epfd_ = -1;  // -1 => poll fallback
  int wake_fds_[2] = {-1, -1};
  std::atomic<bool> wake_pending_{false};
  std::unordered_map<int, Registration> handlers_;
  // poll fallback state: pollfd set rebuilt when the registration map changes
  bool pollset_dirty_ = true;
  std::vector<int> pollset_fds_;
};

}  // namespace asrank::runtime
