#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "runtime/mpsc_queue.h"
#include "runtime/reactor.h"
#include "runtime/timer_queue.h"

namespace asrank::runtime {

struct TaskSchedulerConfig {
  /// 0 = hardware concurrency.
  std::size_t workers = 0;
  /// Upper bound on how long a worker parks with no timers pending.
  int tick_ms = 200;
  /// Force the poll(2) reactor backend (tests).
  bool force_poll_reactor = false;
  /// Metric name prefix, e.g. "asrankd_runtime".
  std::string metric_prefix = "asrank_runtime";
};

/// Per-core worker scheduler: each worker owns a lock-free MPSC task queue,
/// an edge-notified Reactor, and a TimerQueue, and runs a single-threaded
/// event loop over them. Cross-core submission lands on the owning worker's
/// queue (`post(worker, fn)`); there is no work stealing of posted tasks, so
/// any state a task touches is single-threaded once it is owned by a worker.
///
/// The embedding layer (the serve daemon) drives connection state machines
/// from reactor callbacks and uses the hooks for lifecycle and per-pass work
/// such as draining a shared admission queue.
class TaskScheduler {
 public:
  struct Hooks {
    /// Runs on the worker thread before the first pass.
    std::function<void(std::size_t worker)> on_start;
    /// Runs on the worker thread after the loop exits (final task drain done).
    std::function<void(std::size_t worker)> on_stop;
    /// Runs every pass after tasks and timers; return true if it did work
    /// (suppresses parking this pass).
    std::function<bool(std::size_t worker)> on_pass;
    /// Fired timer checkpoints: (worker, id, kind).
    std::function<void(std::size_t worker, std::uint64_t id, std::uint32_t kind)>
        on_timer;
  };

  TaskScheduler(TaskSchedulerConfig config, obs::Registry* registry);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Spawns the worker threads. Call at most once.
  void start(Hooks hooks);

  /// Requests shutdown and wakes every worker. Idempotent, thread-safe.
  void stop() noexcept;

  /// Joins the worker threads (after stop()).
  void join();

  /// Enqueues fn on the given worker's queue and wakes it if parked.
  /// Safe from any thread, including the workers themselves.
  void post(std::size_t worker, std::function<void()> fn);

  /// The worker's reactor/timers. Only the worker thread itself may use
  /// these (except Reactor::wake).
  Reactor& reactor(std::size_t worker) { return *workers_[worker]->reactor; }
  TimerQueue& timers(std::size_t worker) { return workers_[worker]->timers; }

  [[nodiscard]] bool stopping() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }

 private:
  struct TaskNode {
    std::atomic<TaskNode*> next{nullptr};
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued{};
  };

  struct Worker {
    MpscQueue<TaskNode> queue;
    std::atomic<bool> sleeping{false};
    std::atomic<std::int64_t> depth{0};
    std::unique_ptr<Reactor> reactor;
    TimerQueue timers;
    std::thread thread;
    obs::Gauge* queue_depth = nullptr;
    obs::Counter* tasks_total = nullptr;
    obs::Counter* parks_total = nullptr;
    obs::Counter* wakeups_total = nullptr;
  };

  void worker_main(std::size_t index);
  std::size_t drain_tasks(Worker& w);

  TaskSchedulerConfig config_;
  std::vector<std::unique_ptr<Worker>> workers_;
  Hooks hooks_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool joined_ = false;
  obs::Histogram* task_latency_ = nullptr;
};

}  // namespace asrank::runtime
