#include "runtime/scheduler.h"

#include "util/thread_pool.h"

namespace asrank::runtime {

TaskScheduler::TaskScheduler(TaskSchedulerConfig config, obs::Registry* registry)
    : config_(std::move(config)) {
  std::size_t n = util::resolve_threads(config_.workers);
  workers_.reserve(n);
  const std::string& p = config_.metric_prefix;
  task_latency_ = &registry->histogram(p + "_task_latency_micros",
                                       "post-to-run latency of scheduled tasks");
  for (std::size_t i = 0; i < n; ++i) {
    auto w = std::make_unique<Worker>();
    w->reactor = std::make_unique<Reactor>(config_.force_poll_reactor);
    obs::Labels labels{{"worker", std::to_string(i)}};
    w->queue_depth =
        &registry->gauge(p + "_queue_depth", "tasks waiting per worker", labels);
    w->tasks_total =
        &registry->counter(p + "_tasks_total", "tasks executed per worker", labels);
    w->parks_total = &registry->counter(
        p + "_parks_total", "idle reactor parks (no tasks, no io) per worker", labels);
    w->wakeups_total = &registry->counter(
        p + "_wakeups_total", "cross-thread wakeups delivered per worker", labels);
    workers_.push_back(std::move(w));
  }
  registry->gauge(p + "_workers", "worker threads in the task scheduler")
      .set(static_cast<std::int64_t>(n));
}

TaskScheduler::~TaskScheduler() {
  stop();
  join();
  // Free any tasks posted after the workers exited (none should run).
  for (auto& w : workers_) {
    while (TaskNode* node = w->queue.pop()) delete node;
  }
}

void TaskScheduler::start(Hooks hooks) {
  hooks_ = std::move(hooks);
  started_ = true;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_main(i); });
  }
}

void TaskScheduler::stop() noexcept {
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) w->reactor->wake();
}

void TaskScheduler::join() {
  if (!started_ || joined_) return;
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  joined_ = true;
}

void TaskScheduler::post(std::size_t worker, std::function<void()> fn) {
  Worker& w = *workers_[worker];
  auto* node = new TaskNode;
  node->fn = std::move(fn);
  node->enqueued = std::chrono::steady_clock::now();
  w.depth.fetch_add(1, std::memory_order_relaxed);
  w.queue.push(node);
  // Pairs with the sleeping protocol in worker_main: the push above is
  // visible to the worker's post-flag emptiness re-check, so either we see
  // sleeping==true and wake it, or the worker sees our node and skips the
  // park.
  if (w.sleeping.load(std::memory_order_seq_cst)) {
    w.wakeups_total->inc();
    w.reactor->wake();
  }
}

std::size_t TaskScheduler::drain_tasks(Worker& w) {
  std::size_t ran = 0;
  while (TaskNode* node = w.queue.pop()) {
    w.depth.fetch_sub(1, std::memory_order_relaxed);
    auto now = std::chrono::steady_clock::now();
    task_latency_->observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now - node->enqueued)
            .count()));
    node->fn();
    delete node;
    ++ran;
  }
  if (ran != 0) w.tasks_total->inc(ran);
  w.queue_depth->set(w.depth.load(std::memory_order_relaxed));
  return ran;
}

void TaskScheduler::worker_main(std::size_t index) {
  Worker& w = *workers_[index];
  if (hooks_.on_start) hooks_.on_start(index);
  while (!stop_.load(std::memory_order_acquire)) {
    bool did_work = drain_tasks(w) != 0;

    auto now = TimerQueue::Clock::now();
    did_work |= w.timers.expire(now, [&](std::uint64_t id, std::uint32_t kind) {
                  if (hooks_.on_timer) hooks_.on_timer(index, id, kind);
                }) != 0;

    if (hooks_.on_pass) did_work |= hooks_.on_pass(index);

    if (stop_.load(std::memory_order_acquire)) break;

    int timeout = 0;
    if (!did_work) {
      timeout = w.timers.poll_timeout_ms(TimerQueue::Clock::now(), config_.tick_ms);
    }
    if (timeout > 0) {
      // Park protocol: announce intent to sleep, then re-check the queue.
      // A producer that pushed before reading `sleeping` is either seen by
      // this re-check or sees sleeping==true and wakes the reactor.
      w.sleeping.store(true, std::memory_order_seq_cst);
      if (!w.queue.empty() || stop_.load(std::memory_order_acquire)) {
        w.sleeping.store(false, std::memory_order_relaxed);
        continue;
      }
      int events = w.reactor->poll_once(timeout);
      w.sleeping.store(false, std::memory_order_relaxed);
      if (events == 0) w.parks_total->inc();
    } else {
      w.reactor->poll_once(0);
    }
  }
  // Final drain so no posted closure is silently dropped (e.g. admission
  // drains racing shutdown); on_stop then cleans up whatever they produced.
  drain_tasks(w);
  if (hooks_.on_stop) hooks_.on_stop(index);
}

}  // namespace asrank::runtime
