#include "asn/as_path.h"

#include <unordered_set>

#include "util/strings.h"

namespace asrank {

bool AsPath::has_loop() const {
  std::unordered_set<Asn> seen;
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (i > 0 && hops_[i] == hops_[i - 1]) continue;  // prepending run
    if (!seen.insert(hops_[i]).second) return true;
  }
  return false;
}

bool AsPath::has_reserved_asn() const noexcept {
  for (const Asn hop : hops_) {
    if (hop.reserved()) return true;
  }
  return false;
}

bool AsPath::has_prepending() const noexcept {
  for (std::size_t i = 1; i < hops_.size(); ++i) {
    if (hops_[i] == hops_[i - 1]) return true;
  }
  return false;
}

bool AsPath::contains(Asn a) const noexcept {
  for (const Asn hop : hops_) {
    if (hop == a) return true;
  }
  return false;
}

std::optional<std::size_t> AsPath::index_of(Asn a) const noexcept {
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (hops_[i] == a) return i;
  }
  return std::nullopt;
}

AsPath AsPath::compress_prepending() const {
  std::vector<Asn> out;
  out.reserve(hops_.size());
  for (const Asn hop : hops_) {
    if (out.empty() || out.back() != hop) out.push_back(hop);
  }
  return AsPath(std::move(out));
}

std::string AsPath::str() const {
  std::string out;
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (i != 0) out += ' ';
    out += hops_[i].str();
  }
  return out;
}

std::optional<AsPath> AsPath::parse(std::string_view text) {
  std::vector<Asn> hops;
  for (const auto token : util::split_ws(text)) {
    const auto asn = Asn::parse(token);
    if (!asn) return std::nullopt;
    hops.push_back(*asn);
  }
  return AsPath(std::move(hops));
}

}  // namespace asrank
