// IP prefix type covering IPv4 and IPv6, stored canonically (host bits
// zeroed) in a 128-bit value.  Prefixes identify destinations in the BGP
// simulator's RIBs and key the MRT RIB entries.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace asrank {

/// An IPv4 or IPv6 prefix in canonical form.  IPv4 addresses occupy the low
/// 32 bits of the 128-bit storage.  Construction canonicalizes by masking
/// host bits; `parse` rejects malformed textual input.
class Prefix {
 public:
  enum class Family : std::uint8_t { kIpv4, kIpv6 };

  constexpr Prefix() noexcept = default;

  /// Build a canonical prefix from raw bits; length is clamped to the family
  /// maximum (32 or 128).
  Prefix(Family family, unsigned __int128 bits, std::uint8_t length) noexcept;

  /// Convenience constructor for IPv4, e.g. Prefix::v4(0x0A000000, 8) == 10.0.0.0/8.
  [[nodiscard]] static Prefix v4(std::uint32_t addr, std::uint8_t length) noexcept {
    return Prefix(Family::kIpv4, addr, length);
  }

  [[nodiscard]] Family family() const noexcept { return family_; }
  [[nodiscard]] std::uint8_t length() const noexcept { return length_; }
  [[nodiscard]] unsigned __int128 bits() const noexcept { return bits_; }
  [[nodiscard]] std::uint8_t max_length() const noexcept {
    return family_ == Family::kIpv4 ? 32 : 128;
  }

  /// True if `other` is equal to or more specific than (contained in) *this.
  [[nodiscard]] bool contains(const Prefix& other) const noexcept;

  /// Dotted-quad/colon-hex "addr/len" rendering.
  [[nodiscard]] std::string str() const;

  /// Parse "10.0.0.0/8" or "2001:db8::/32".  Nonzero host bits are
  /// canonicalized away (masked), matching router behaviour.
  [[nodiscard]] static std::optional<Prefix> parse(std::string_view text) noexcept;

  friend bool operator==(const Prefix& a, const Prefix& b) noexcept = default;
  friend std::strong_ordering operator<=>(const Prefix& a, const Prefix& b) noexcept {
    if (a.family_ != b.family_) return a.family_ <=> b.family_;
    if (a.bits_ != b.bits_) return a.bits_ < b.bits_ ? std::strong_ordering::less
                                                     : std::strong_ordering::greater;
    return a.length_ <=> b.length_;
  }

 private:
  unsigned __int128 bits_ = 0;
  std::uint8_t length_ = 0;
  Family family_ = Family::kIpv4;
};

}  // namespace asrank

template <>
struct std::hash<asrank::Prefix> {
  std::size_t operator()(const asrank::Prefix& p) const noexcept {
    const auto bits = p.bits();
    const auto low = static_cast<std::uint64_t>(bits);
    const auto high = static_cast<std::uint64_t>(bits >> 64);
    std::uint64_t h = low * 0x9e3779b97f4a7c15ULL;
    h ^= high + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= (static_cast<std::uint64_t>(p.length()) << 8) |
         static_cast<std::uint64_t>(p.family());
    return static_cast<std::size_t>(h);
  }
};
