// AS path representation.  A path is the sequence of ASNs a route
// announcement traversed, nearest-AS (the vantage point side) first — the
// same orientation as RouteViews table dumps.  Prepending (an AS repeating
// itself for traffic engineering) is preserved on ingestion and removed by
// the sanitization pipeline, so the type distinguishes raw from compressed
// forms explicitly.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "asn/asn.h"

namespace asrank {

class AsPath {
 public:
  AsPath() = default;
  explicit AsPath(std::vector<Asn> hops) : hops_(std::move(hops)) {}
  AsPath(std::initializer_list<std::uint32_t> raw) {
    hops_.reserve(raw.size());
    for (auto v : raw) hops_.emplace_back(v);
  }

  [[nodiscard]] bool empty() const noexcept { return hops_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return hops_.size(); }
  [[nodiscard]] Asn at(std::size_t i) const { return hops_.at(i); }
  [[nodiscard]] std::span<const Asn> hops() const noexcept { return hops_; }

  /// Nearest AS (the collector peer / vantage point side).
  [[nodiscard]] Asn first() const { return hops_.at(0); }
  /// Origin AS (announced the prefix).
  [[nodiscard]] Asn last() const { return hops_.at(hops_.size() - 1); }

  void push_back(Asn a) { hops_.push_back(a); }

  /// True if any AS appears at two non-adjacent positions (adjacent repeats
  /// are prepending, not loops).  Looped paths signal poisoning or
  /// measurement error and are discarded by the sanitizer (paper §4 step 1).
  [[nodiscard]] bool has_loop() const;

  /// True if any hop is an IANA-reserved ASN.
  [[nodiscard]] bool has_reserved_asn() const noexcept;

  /// True if adjacent duplicate hops exist.
  [[nodiscard]] bool has_prepending() const noexcept;

  [[nodiscard]] bool contains(Asn a) const noexcept;

  /// Position of the first occurrence of `a`, if present.
  [[nodiscard]] std::optional<std::size_t> index_of(Asn a) const noexcept;

  /// Copy with adjacent duplicates collapsed ("701 701 174" -> "701 174").
  [[nodiscard]] AsPath compress_prepending() const;

  /// Space-separated rendering, e.g. "701 174 3356".
  [[nodiscard]] std::string str() const;

  /// Parse a space-separated path.  Returns nullopt if any token is not a
  /// valid ASN.  Tokens in braces (AS_SET remnants, "{1,2}") are rejected:
  /// the sanitizer drops AS_SET paths before they reach this representation.
  [[nodiscard]] static std::optional<AsPath> parse(std::string_view text);

  friend bool operator==(const AsPath& a, const AsPath& b) = default;

 private:
  std::vector<Asn> hops_;
};

}  // namespace asrank
