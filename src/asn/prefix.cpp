#include "asn/prefix.h"

#include <algorithm>
#include <array>
#include <sstream>

#include "util/strings.h"

namespace asrank {

namespace {

/// Mask that keeps the top `length` bits of a `width`-bit value stored in the
/// low bits of a 128-bit integer.
unsigned __int128 top_mask(std::uint8_t length, std::uint8_t width) noexcept {
  if (length == 0) return 0;
  const unsigned __int128 ones = ~static_cast<unsigned __int128>(0);
  const unsigned __int128 field = width == 128 ? ones : ((static_cast<unsigned __int128>(1) << width) - 1);
  return field & ~(length >= width ? static_cast<unsigned __int128>(0)
                                   : (static_cast<unsigned __int128>(1) << (width - length)) - 1);
}

std::optional<unsigned __int128> parse_ipv4_bits(std::string_view text) noexcept {
  const auto parts = asrank::util::split(text, '.', /*keep_empty=*/true);
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t addr = 0;
  for (const auto part : parts) {
    const auto octet = asrank::util::parse_unsigned<std::uint8_t>(part);
    if (!octet) return std::nullopt;
    addr = (addr << 8) | *octet;
  }
  return addr;
}

std::optional<unsigned __int128> parse_ipv6_bits(std::string_view text) noexcept {
  // Supports the standard form with one optional "::" elision; no embedded
  // IPv4 tail (not needed for our datasets).
  std::array<std::uint16_t, 8> groups{};
  std::size_t count = 0;
  int elide_at = -1;

  const auto gap = text.find("::");
  std::string_view head = text, tail;
  if (gap != std::string_view::npos) {
    head = text.substr(0, gap);
    tail = text.substr(gap + 2);
    if (tail.find("::") != std::string_view::npos) return std::nullopt;
  }
  auto parse_groups = [&](std::string_view part) -> std::optional<std::size_t> {
    if (part.empty()) return 0;
    std::size_t n = 0;
    for (const auto g : asrank::util::split(part, ':', /*keep_empty=*/true)) {
      if (g.empty() || g.size() > 4 || count >= 8) return std::nullopt;
      std::uint16_t value = 0;
      for (char c : g) {
        int digit;
        if (c >= '0' && c <= '9') digit = c - '0';
        else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
        else return std::nullopt;
        value = static_cast<std::uint16_t>(value << 4 | digit);
      }
      groups[count++] = value;
      ++n;
    }
    return n;
  };
  const auto head_n = parse_groups(head);
  if (!head_n) return std::nullopt;
  if (gap != std::string_view::npos) {
    elide_at = static_cast<int>(*head_n);
    const auto tail_n = parse_groups(tail);
    if (!tail_n) return std::nullopt;
    if (count > 7) return std::nullopt;  // "::" must cover at least one group
  } else if (count != 8) {
    return std::nullopt;
  }

  std::array<std::uint16_t, 8> full{};
  if (elide_at < 0) {
    full = groups;
  } else {
    const std::size_t head_count = static_cast<std::size_t>(elide_at);
    const std::size_t tail_count = count - head_count;
    for (std::size_t i = 0; i < head_count; ++i) full[i] = groups[i];
    for (std::size_t i = 0; i < tail_count; ++i) {
      full[8 - tail_count + i] = groups[head_count + i];
    }
  }
  unsigned __int128 bits = 0;
  for (const auto group : full) bits = (bits << 16) | group;
  return bits;
}

}  // namespace

Prefix::Prefix(Family family, unsigned __int128 bits, std::uint8_t length) noexcept
    : family_(family) {
  const std::uint8_t width = family == Family::kIpv4 ? 32 : 128;
  length_ = std::min(length, width);
  bits_ = bits & top_mask(length_, width);
}

bool Prefix::contains(const Prefix& other) const noexcept {
  if (family_ != other.family_ || other.length_ < length_) return false;
  const std::uint8_t width = max_length();
  const auto mask = top_mask(length_, width);
  return (bits_ & mask) == (other.bits_ & mask);
}

std::string Prefix::str() const {
  std::ostringstream oss;
  if (family_ == Family::kIpv4) {
    const auto addr = static_cast<std::uint32_t>(bits_);
    oss << ((addr >> 24) & 0xff) << '.' << ((addr >> 16) & 0xff) << '.'
        << ((addr >> 8) & 0xff) << '.' << (addr & 0xff);
  } else {
    // Uncompressed colon-hex; adequate for logs and round-trip parsing.
    oss << std::hex;
    for (int g = 7; g >= 0; --g) {
      oss << static_cast<std::uint16_t>(bits_ >> (g * 16));
      if (g != 0) oss << ':';
    }
  }
  oss << std::dec << '/' << static_cast<unsigned>(length_);
  return oss.str();
}

std::optional<Prefix> Prefix::parse(std::string_view text) noexcept {
  text = util::trim(text);
  const auto slash = text.rfind('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto length = util::parse_unsigned<std::uint8_t>(text.substr(slash + 1));
  if (!length) return std::nullopt;
  const auto addr_text = text.substr(0, slash);
  if (addr_text.find(':') != std::string_view::npos) {
    const auto bits = parse_ipv6_bits(addr_text);
    if (!bits || *length > 128) return std::nullopt;
    return Prefix(Family::kIpv6, *bits, *length);
  }
  const auto bits = parse_ipv4_bits(addr_text);
  if (!bits || *length > 32) return std::nullopt;
  return Prefix(Family::kIpv4, *bits, *length);
}

}  // namespace asrank
