#include "asn/asn.h"

#include "util/strings.h"

namespace asrank {

std::optional<Asn> Asn::parse(std::string_view text) noexcept {
  text = util::trim(text);
  if (text.size() >= 2 && (text[0] == 'A' || text[0] == 'a') &&
      (text[1] == 'S' || text[1] == 's')) {
    text.remove_prefix(2);
  }
  if (const auto dot = text.find('.'); dot != std::string_view::npos) {
    // asdot notation: high.low with high,low both 16-bit.
    const auto high = util::parse_unsigned<std::uint16_t>(text.substr(0, dot));
    const auto low = util::parse_unsigned<std::uint16_t>(text.substr(dot + 1));
    if (!high || !low) return std::nullopt;
    return Asn((static_cast<std::uint32_t>(*high) << 16) | *low);
  }
  const auto value = util::parse_unsigned<std::uint32_t>(text);
  if (!value) return std::nullopt;
  return Asn(*value);
}

}  // namespace asrank
