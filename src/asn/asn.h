// Core Autonomous System number type and IANA-derived classification.
//
// ASNs are 32-bit (RFC 6793).  The inference pipeline must recognise and
// discard reserved/private/documentation ASNs appearing in paths (paper §3:
// path sanitization), so the classification logic lives here, next to the
// type, and is exhaustively unit-tested against the IANA special registry.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace asrank {

/// Strongly-typed AS number.  A default-constructed Asn is the invalid
/// sentinel AS0 (RFC 7607: AS0 must not be used for routing).
class Asn {
 public:
  constexpr Asn() noexcept = default;
  constexpr explicit Asn(std::uint32_t value) noexcept : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != 0; }

  /// True for ASNs reserved by IANA and thus illegal in public AS paths:
  /// AS0, AS23456 (AS_TRANS), 64496-64511 & 65536-65551 (documentation),
  /// 64512-65534 (private use), 65535, 4200000000-4294967294 (private use),
  /// and 4294967295 (last, reserved).
  [[nodiscard]] constexpr bool reserved() const noexcept {
    const std::uint32_t v = value_;
    return v == 0 || v == 23456 || (v >= 64496 && v <= 65551) ||
           v >= 4200000000U || v == 65535;
  }

  /// True for private-use ASNs specifically (subset of reserved()).
  [[nodiscard]] constexpr bool private_use() const noexcept {
    const std::uint32_t v = value_;
    return (v >= 64512 && v <= 65534) || (v >= 4200000000U && v <= 4294967294U);
  }

  [[nodiscard]] std::string str() const { return std::to_string(value_); }

  /// Parse "65000" or "AS65000" (case-insensitive); also accepts asdot
  /// notation "X.Y" for 4-byte ASNs.  Returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Asn> parse(std::string_view text) noexcept;

  friend constexpr auto operator<=>(Asn a, Asn b) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace asrank

template <>
struct std::hash<asrank::Asn> {
  std::size_t operator()(asrank::Asn a) const noexcept {
    // Fibonacci hashing spreads sequential ASNs (common in synthetic
    // topologies) across buckets.
    return static_cast<std::size_t>(a.value()) * 0x9e3779b97f4a7c15ULL;
  }
};
