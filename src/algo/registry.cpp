#include "algo/registry.h"

#include <algorithm>
#include <array>
#include <charconv>
#include <functional>

#include "baselines/degree_heuristic.h"
#include "baselines/gao.h"
#include "baselines/tor_local_search.h"
#include "core/asrank.h"

namespace asrank::algo {

namespace {

Error unknown_param(std::string_view key, std::string_view algorithm) {
  return make_error(ErrorCode::kInvalidArgument,
                    "unknown parameter '" + std::string(key) + "' for algorithm '" +
                        std::string(algorithm) + "'");
}

Result<double> parse_double(const std::string& key, const std::string& value) {
  double out = 0.0;
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "parameter '" + key + "' wants a number, got '" + value + "'");
  }
  return out;
}

Result<std::uint32_t> parse_u32(const std::string& key, const std::string& value) {
  std::uint32_t out = 0;
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "parameter '" + key + "' wants an unsigned integer, got '" + value + "'");
  }
  return out;
}

using Factory = Result<std::unique_ptr<InferenceAlgorithm>> (*)(const AlgorithmOptions&);

Result<std::unique_ptr<InferenceAlgorithm>> make_asrank(const AlgorithmOptions& options) {
  core::InferenceConfig config;
  config.threads = options.threads;
  for (const auto& [key, value] : options.params) {
    if (key == "sibling-conflict-ratio") {
      ASRANK_TRY(ratio, parse_double(key, value));
      config.sibling_conflict_ratio = ratio;
    } else if (key == "partial-vp-threshold") {
      ASRANK_TRY(threshold, parse_double(key, value));
      config.partial_vp_threshold = threshold;
    } else if (key == "apex-degree-gap") {
      ASRANK_TRY(gap, parse_double(key, value));
      config.apex_degree_gap = gap;
    } else {
      return unknown_param(key, "asrank");
    }
  }
  return std::unique_ptr<InferenceAlgorithm>(
      std::make_unique<core::AsRankInference>(std::move(config)));
}

Result<std::unique_ptr<InferenceAlgorithm>> make_gao(const AlgorithmOptions& options) {
  baselines::GaoConfig config;
  for (const auto& [key, value] : options.params) {
    if (key == "sibling-threshold") {
      ASRANK_TRY(threshold, parse_u32(key, value));
      config.sibling_threshold = threshold;
    } else if (key == "peering-degree-ratio") {
      ASRANK_TRY(ratio, parse_double(key, value));
      config.peering_degree_ratio = ratio;
    } else {
      return unknown_param(key, "gao2001");
    }
  }
  return std::unique_ptr<InferenceAlgorithm>(std::make_unique<baselines::GaoInference>(config));
}

Result<std::unique_ptr<InferenceAlgorithm>> make_degree(const AlgorithmOptions& options) {
  baselines::DegreeHeuristicConfig config;
  for (const auto& [key, value] : options.params) {
    if (key == "provider-ratio") {
      ASRANK_TRY(ratio, parse_double(key, value));
      config.provider_ratio = ratio;
    } else {
      return unknown_param(key, "degree-ratio");
    }
  }
  return std::unique_ptr<InferenceAlgorithm>(std::make_unique<baselines::DegreeHeuristic>(config));
}

Result<std::unique_ptr<InferenceAlgorithm>> make_tor(const AlgorithmOptions& options) {
  baselines::TorConfig config;
  for (const auto& [key, value] : options.params) {
    if (key == "initial-provider-ratio") {
      ASRANK_TRY(ratio, parse_double(key, value));
      config.initial_provider_ratio = ratio;
    } else if (key == "max-passes") {
      ASRANK_TRY(passes, parse_u32(key, value));
      config.max_passes = passes;
    } else {
      return unknown_param(key, "tor-local-search");
    }
  }
  return std::unique_ptr<InferenceAlgorithm>(std::make_unique<baselines::TorLocalSearch>(config));
}

struct Entry {
  AlgorithmInfo info;
  std::string_view alias;  ///< one short alias per algorithm
  Factory factory;
};

/// Sorted by canonical name (names() leans on this).
constexpr std::array<Entry, 4> kEntries = {{
    {{"asrank",
      "the paper's staged pipeline: clique, positional voting, valley-free fixpoint",
      "Luckie et al., IMC 2013"},
     "core",
     &make_asrank},
    {{"degree-ratio",
      "strawman: the much-larger-degree side of every link is the provider",
      "folklore baseline"},
     "degree",
     &make_degree},
    {{"gao2001",
      "valley-free around each path's top provider; transit counts, sibling threshold",
      "Gao, IEEE/ACM ToN 2001"},
     "gao",
     &make_gao},
    {{"tor-local-search",
      "type-of-relationship combinatorial optimization via hill climbing",
      "Di Battista et al., INFOCOM 2003; Erlebach et al. 2007"},
     "tor",
     &make_tor},
}};

const Entry* find_entry(std::string_view name) {
  for (const Entry& entry : kEntries) {
    if (entry.info.name == name || entry.alias == name) return &entry;
  }
  return nullptr;
}

}  // namespace

Result<std::string> resolve(std::string_view name) {
  if (const Entry* entry = find_entry(name)) return std::string(entry->info.name);
  return make_error(ErrorCode::kInvalidArgument, "unknown algorithm '" + std::string(name) +
                                                     "' (registered: " + names_csv() + ")");
}

Result<std::unique_ptr<InferenceAlgorithm>> create(std::string_view name,
                                                   const AlgorithmOptions& options) {
  const Entry* entry = find_entry(name);
  if (entry == nullptr) {
    return make_error(ErrorCode::kInvalidArgument, "unknown algorithm '" + std::string(name) +
                                                       "' (registered: " + names_csv() + ")");
  }
  return entry->factory(options);
}

std::vector<std::string_view> names() {
  std::vector<std::string_view> out;
  out.reserve(kEntries.size());
  for (const Entry& entry : kEntries) out.push_back(entry.info.name);
  return out;
}

std::string names_csv() {
  std::string out;
  for (const Entry& entry : kEntries) {
    if (!out.empty()) out += ", ";
    out += entry.info.name;
  }
  return out;
}

const AlgorithmInfo* info(std::string_view name) {
  const Entry* entry = find_entry(name);
  return entry == nullptr ? nullptr : &entry->info;
}

}  // namespace asrank::algo
