// Name -> factory registry over every inference algorithm in the tree.
//
// The registry is the single construction path for algorithms: the CLI's
// `--algorithm` flag, multi-algorithm snapshot builds, the comparison
// benches, and the tests all resolve names here, so adding an algorithm is
// one table row (docs/ALGORITHMS.md lists the inventory with citations).
//
// Names are canonical lowercase identifiers; common short aliases resolve to
// them ("gao" -> "gao2001", "core" -> "asrank").  Unknown names return
// kInvalidArgument with the registered-name list in the message so callers
// can surface it verbatim (the CLI exits 2 with it, matching the usage-error
// convention).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "algo/algorithm.h"
#include "util/result.h"

namespace asrank::algo {

/// Options shared by every factory.  Per-algorithm knobs travel as string
/// key=value pairs so one CLI surface covers the whole zoo; unknown keys are
/// an error (not silently ignored).
struct AlgorithmOptions {
  /// Worker threads for algorithms with parallel stages (asrank).  0 =
  /// hardware concurrency.  Ignored by the sequential baselines.
  std::size_t threads = 0;
  /// Algorithm-specific parameters, e.g. {"sibling-threshold", "2"}.
  std::map<std::string, std::string> params;
};

/// Registry metadata for one algorithm (docs/ALGORITHMS.md mirrors this).
struct AlgorithmInfo {
  std::string_view name;      ///< canonical registry name
  std::string_view summary;   ///< one-line description
  std::string_view citation;  ///< primary paper
};

/// Resolve a (possibly aliased) name to its canonical form.
/// kInvalidArgument with the registered-name list when unknown.
[[nodiscard]] Result<std::string> resolve(std::string_view name);

/// Construct an algorithm by (possibly aliased) name.  kInvalidArgument on
/// unknown names or unknown/unparseable params.
[[nodiscard]] Result<std::unique_ptr<InferenceAlgorithm>> create(
    std::string_view name, const AlgorithmOptions& options = {});

/// Canonical names, sorted.
[[nodiscard]] std::vector<std::string_view> names();

/// Comma-separated canonical names, for error messages and usage text.
[[nodiscard]] std::string names_csv();

/// Metadata for a (possibly aliased) name; nullptr when unknown.
[[nodiscard]] const AlgorithmInfo* info(std::string_view name);

}  // namespace asrank::algo
