// Common interface for relationship-inference algorithms.
//
// Every algorithm — the paper's ASRank pipeline in src/core and the rival
// reconstructions in src/baselines — consumes one sanitized path corpus and
// emits one relationship-annotated AsGraph.  The interface lives at the top
// level (not under baselines) because the whole system is generic over it:
// snapshots carry one tagged section set per algorithm, asrankd serves
// algorithm-qualified queries, and the validation experiments score every
// registered algorithm on identical corpora.
//
// This header is dependency-free apart from the corpus/graph types so that
// src/core can implement it without a cycle; construction by name goes
// through algo/registry.h.
#pragma once

#include <string>

#include "paths/corpus.h"
#include "topology/as_graph.h"

namespace asrank::algo {

class InferenceAlgorithm {
 public:
  virtual ~InferenceAlgorithm() = default;

  /// Canonical registry name ("asrank", "gao2001", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Infer relationships for every link observed in `corpus`.  The corpus is
  /// expected to be sanitized (prepending compressed, loops removed);
  /// algorithms must tolerate unsanitized input without crashing.
  [[nodiscard]] virtual AsGraph infer(const paths::PathCorpus& corpus) const = 0;
};

}  // namespace asrank::algo
