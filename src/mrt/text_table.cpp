#include "mrt/text_table.h"

#include <iomanip>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "util/strings.h"

namespace asrank::mrt {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("text table line " + std::to_string(line_no) + ": " + what);
}

bool is_origin_code(std::string_view token) noexcept {
  return token == "i" || token == "e" || token == "?";
}

}  // namespace

std::vector<TextRoute> parse_show_ip_bgp(std::istream& is) {
  std::vector<TextRoute> out;
  std::string line;
  std::size_t line_no = 0;
  Prefix current_network;
  bool have_network = false;
  while (std::getline(is, line)) {
    ++line_no;
    const auto text = util::trim(line);
    if (text.empty() || text.front() != '*') continue;  // headers, separators

    auto tokens = util::split_ws(text);
    // tokens[0] is the status field: "*", "*>", "*>i", ...
    const bool best = tokens[0].find('>') != std::string_view::npos;
    std::size_t i = 1;
    if (i >= tokens.size()) fail(line_no, "route line with no fields");

    if (tokens[i].find('/') != std::string_view::npos) {
      const auto network = Prefix::parse(tokens[i]);
      if (!network) fail(line_no, "malformed network");
      current_network = *network;
      have_network = true;
      ++i;
    } else if (!have_network) {
      fail(line_no, "continuation line before any network");
    }

    if (i >= tokens.size()) fail(line_no, "missing next hop");
    ++i;  // next hop: ignored

    // Three numeric columns: metric, local-pref, weight.
    for (int col = 0; col < 3; ++col) {
      if (i >= tokens.size() || !util::parse_unsigned<std::uint32_t>(tokens[i])) {
        fail(line_no, "missing numeric metric/locprf/weight column");
      }
      ++i;
    }

    if (tokens.empty() || !is_origin_code(tokens.back())) {
      fail(line_no, "missing origin code");
    }
    std::vector<Asn> hops;
    for (; i + 1 < tokens.size(); ++i) {
      const auto asn = Asn::parse(tokens[i]);
      if (!asn) fail(line_no, "malformed AS path hop");
      hops.push_back(*asn);
    }
    out.push_back(TextRoute{current_network, AsPath(std::move(hops)), best});
  }
  return out;
}

void write_show_ip_bgp(const std::vector<TextRoute>& routes, std::ostream& os) {
  os << "   Network          Next Hop            Metric LocPrf Weight Path\n";
  for (const TextRoute& route : routes) {
    os << (route.best ? "*> " : "*  ") << std::left << std::setw(17) << route.prefix.str()
       << std::setw(20) << "0.0.0.0" << "0 100 0 " << route.path.str() << " i\n";
  }
}

void write_pipe_table(const std::vector<TextRoute>& routes, std::ostream& os) {
  for (const TextRoute& route : routes) {
    os << route.prefix.str() << '|' << route.path.str() << '\n';
  }
}

std::vector<TextRoute> parse_pipe_table(std::istream& is) {
  std::vector<TextRoute> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto text = util::trim(line);
    if (text.empty() || text.front() == '#') continue;
    const auto fields = util::split(text, '|', /*keep_empty=*/true);
    if (fields.size() != 2) fail(line_no, "expected 'prefix|path'");
    const auto prefix = Prefix::parse(fields[0]);
    const auto path = AsPath::parse(fields[1]);
    if (!prefix || !path) fail(line_no, "malformed prefix or path");
    out.push_back(TextRoute{*prefix, *path, /*best=*/true});
  }
  return out;
}

}  // namespace asrank::mrt
