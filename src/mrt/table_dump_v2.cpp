#include "mrt/table_dump_v2.h"

#include <istream>
#include <ostream>

namespace asrank::mrt {

namespace {

/// No legitimate MRT record approaches this size; a larger declared length
/// indicates corruption and would otherwise drive a huge allocation.
constexpr std::uint32_t kMaxRecordBytes = 16u << 20;

constexpr std::uint16_t kTypeTableDumpV2 = 13;
constexpr std::uint16_t kSubPeerIndexTable = 1;
constexpr std::uint16_t kSubRibIpv4Unicast = 2;

// Peer-type flag bits (RFC 6396 §4.3.1).
constexpr std::uint8_t kPeerFlagAs4 = 0x02;

void write_mrt_record(std::ostream& os, std::uint32_t timestamp, std::uint16_t type,
                      std::uint16_t subtype, const std::vector<std::uint8_t>& body) {
  ByteWriter header;
  header.put_u32(timestamp);
  header.put_u16(type);
  header.put_u16(subtype);
  header.put_u32(static_cast<std::uint32_t>(body.size()));
  os.write(reinterpret_cast<const char*>(header.bytes().data()),
           static_cast<std::streamsize>(header.size()));
  os.write(reinterpret_cast<const char*>(body.data()),
           static_cast<std::streamsize>(body.size()));
}

/// NLRI prefix encoding: length bit-count then ceil(len/8) leading bytes.
void put_ipv4_prefix(ByteWriter& w, const Prefix& prefix) {
  w.put_u8(prefix.length());
  const auto addr = static_cast<std::uint32_t>(prefix.bits());
  const unsigned bytes = (prefix.length() + 7) / 8;
  for (unsigned i = 0; i < bytes; ++i) {
    w.put_u8(static_cast<std::uint8_t>(addr >> (24 - 8 * i)));
  }
}

Prefix get_ipv4_prefix(ByteReader& r) {
  const std::uint8_t length = r.get_u8();
  if (length > 32) throw DecodeError("IPv4 prefix length > 32");
  const unsigned bytes = (length + 7) / 8;
  std::uint32_t addr = 0;
  for (unsigned i = 0; i < bytes; ++i) {
    addr |= static_cast<std::uint32_t>(r.get_u8()) << (24 - 8 * i);
  }
  return Prefix::v4(addr, length);
}

std::vector<std::uint8_t> encode_peer_index_table(const RibDump& dump) {
  ByteWriter w;
  w.put_u32(dump.collector_bgp_id);
  if (dump.view_name.size() > 0xffff) throw std::invalid_argument("view name too long");
  w.put_u16(static_cast<std::uint16_t>(dump.view_name.size()));
  w.put_string(dump.view_name);
  if (dump.peers.size() > 0xffff) throw std::invalid_argument("too many peers");
  w.put_u16(static_cast<std::uint16_t>(dump.peers.size()));
  for (const PeerEntry& peer : dump.peers) {
    w.put_u8(kPeerFlagAs4);  // IPv4 address, 4-byte AS
    w.put_u32(peer.bgp_id);
    w.put_u32(peer.ipv4);
    w.put_u32(peer.as.value());
  }
  return w.take();
}

std::vector<std::uint8_t> encode_rib_entry(const RibEntry& entry, std::uint32_t sequence) {
  ByteWriter w;
  w.put_u32(sequence);
  put_ipv4_prefix(w, entry.prefix);
  if (entry.routes.size() > 0xffff) throw std::invalid_argument("too many routes");
  w.put_u16(static_cast<std::uint16_t>(entry.routes.size()));
  for (const RibRoute& route : entry.routes) {
    w.put_u16(route.peer_index);
    w.put_u32(route.originated_time);
    const auto attrs = encode_attributes(route.attrs);
    if (attrs.size() > 0xffff) throw std::invalid_argument("attributes too long");
    w.put_u16(static_cast<std::uint16_t>(attrs.size()));
    w.put_bytes(attrs);
  }
  return w.take();
}

void decode_peer_index_table(ByteReader r, RibDump& dump) {
  dump.collector_bgp_id = r.get_u32();
  const std::uint16_t name_len = r.get_u16();
  dump.view_name = r.get_string(name_len);
  const std::uint16_t peer_count = r.get_u16();
  dump.peers.clear();
  dump.peers.reserve(peer_count);
  for (std::uint16_t i = 0; i < peer_count; ++i) {
    const std::uint8_t peer_type = r.get_u8();
    PeerEntry peer;
    peer.bgp_id = r.get_u32();
    if (peer_type & 0x01) {
      r.get_bytes(16);  // IPv6 peer address: representable, not retained
    } else {
      peer.ipv4 = r.get_u32();
    }
    peer.as = (peer_type & kPeerFlagAs4) ? Asn(r.get_u32()) : Asn(r.get_u16());
    dump.peers.push_back(peer);
  }
}

RibEntry decode_rib_entry(ByteReader r) {
  RibEntry entry;
  r.get_u32();  // sequence number: informational
  entry.prefix = get_ipv4_prefix(r);
  const std::uint16_t count = r.get_u16();
  entry.routes.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    RibRoute route;
    route.peer_index = r.get_u16();
    route.originated_time = r.get_u32();
    const std::uint16_t attr_len = r.get_u16();
    ByteReader attrs = r.sub(attr_len);
    route.attrs = decode_attributes(attrs);
    entry.routes.push_back(std::move(route));
  }
  return entry;
}

}  // namespace

void write_table_dump_v2(const RibDump& dump, std::ostream& os) {
  write_mrt_record(os, dump.timestamp, kTypeTableDumpV2, kSubPeerIndexTable,
                   encode_peer_index_table(dump));
  std::uint32_t sequence = 0;
  for (const RibEntry& entry : dump.rib) {
    write_mrt_record(os, dump.timestamp, kTypeTableDumpV2, kSubRibIpv4Unicast,
                     encode_rib_entry(entry, sequence++));
  }
}

Result<RibDump> try_read_table_dump_v2(std::istream& is) {
  // Record-level framing and the per-record decoders share the DecodeError
  // rail internally; this top-level entry point converts each failure to an
  // Error whose context is the complete historical "mrt: ..." message.
  try {
    RibDump dump;
    bool saw_peer_table = false;
    std::vector<std::uint8_t> header_buf(12);
    while (is.read(reinterpret_cast<char*>(header_buf.data()), 12)) {
      ByteReader header(header_buf);
      const std::uint32_t timestamp = header.get_u32();
      const std::uint16_t type = header.get_u16();
      const std::uint16_t subtype = header.get_u16();
      const std::uint32_t length = header.get_u32();
      if (length > kMaxRecordBytes) {
        throw DecodeError("MRT record length " + std::to_string(length) +
                          " exceeds sanity cap");
      }
      std::vector<std::uint8_t> body(length);
      if (!is.read(reinterpret_cast<char*>(body.data()), static_cast<std::streamsize>(length))) {
        throw DecodeError("truncated MRT record body");
      }
      if (type != kTypeTableDumpV2) continue;  // tolerate interleaved other types
      if (subtype == kSubPeerIndexTable) {
        decode_peer_index_table(ByteReader(body), dump);
        dump.timestamp = timestamp;
        saw_peer_table = true;
      } else if (subtype == kSubRibIpv4Unicast) {
        if (!saw_peer_table) throw DecodeError("RIB record before PEER_INDEX_TABLE");
        dump.rib.push_back(decode_rib_entry(ByteReader(body)));
      } else {
        throw DecodeError("unsupported TABLE_DUMP_V2 subtype " + std::to_string(subtype));
      }
    }
    if (!saw_peer_table) throw DecodeError("no PEER_INDEX_TABLE record found");
    return dump;
  } catch (const DecodeError& error) {
    const std::string what = error.what();
    const auto code = what.find("truncated") != std::string::npos
                          ? ErrorCode::kTruncated
                          : ErrorCode::kCorrupt;
    return make_error(code, what);
  }
}

RibDump read_table_dump_v2(std::istream& is) {
  auto parsed = try_read_table_dump_v2(is);
  if (!parsed.ok()) {
    throw DecodeError(DecodeError::Passthrough{}, parsed.error().context);
  }
  return std::move(parsed).value();
}

}  // namespace asrank::mrt
