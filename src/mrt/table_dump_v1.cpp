#include "mrt/table_dump_v1.h"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace asrank::mrt {

namespace {

/// No legitimate MRT record approaches this size; a larger declared length
/// indicates corruption and would otherwise drive a huge allocation.
constexpr std::uint32_t kMaxRecordBytes = 16u << 20;

constexpr std::uint16_t kTypeTableDump = 12;
constexpr std::uint16_t kSubAfiIpv4 = 1;

/// v1 carries 2-byte ASNs; encode AS_PATH with 2-byte segments.
std::vector<std::uint8_t> encode_attrs_as2(const BgpAttributes& attrs) {
  if (attrs.has_as_set) {
    throw std::invalid_argument("table_dump_v1: AS_SET re-encoding unsupported");
  }
  ByteWriter w;
  // ORIGIN
  w.put_u8(0x40);
  w.put_u8(1);
  w.put_u8(1);
  w.put_u8(static_cast<std::uint8_t>(attrs.origin));
  // AS_PATH (AS_SEQUENCE, 2-byte hops)
  {
    ByteWriter body;
    const auto hops = attrs.as_path.hops();
    std::size_t i = 0;
    while (i < hops.size()) {
      const std::size_t chunk = std::min<std::size_t>(hops.size() - i, 255);
      body.put_u8(2);  // AS_SEQUENCE
      body.put_u8(static_cast<std::uint8_t>(chunk));
      for (std::size_t j = 0; j < chunk; ++j) {
        if (hops[i + j].value() > 0xffff) {
          throw std::invalid_argument("table_dump_v1: ASN exceeds 16 bits");
        }
        body.put_u16(static_cast<std::uint16_t>(hops[i + j].value()));
      }
      i += chunk;
    }
    w.put_u8(0x40);
    w.put_u8(2);
    if (body.size() > 0xff) {
      throw std::invalid_argument("table_dump_v1: AS_PATH too long");
    }
    w.put_u8(static_cast<std::uint8_t>(body.size()));
    w.put_bytes(body.bytes());
  }
  if (attrs.next_hop) {
    w.put_u8(0x40);
    w.put_u8(3);
    w.put_u8(4);
    w.put_u32(*attrs.next_hop);
  }
  return w.take();
}

BgpAttributes decode_attrs_as2(ByteReader& reader) {
  BgpAttributes attrs;
  bool saw_path = false;
  while (!reader.done()) {
    const std::uint8_t flags = reader.get_u8();
    const std::uint8_t type = reader.get_u8();
    const std::size_t length = (flags & 0x10) ? reader.get_u16() : reader.get_u8();
    ByteReader body = reader.sub(length);
    switch (type) {
      case 1: {
        if (length != 1) throw DecodeError("v1 ORIGIN length != 1");
        attrs.origin = static_cast<Origin>(body.get_u8());
        break;
      }
      case 2: {
        saw_path = true;
        std::vector<Asn> hops;
        while (!body.done()) {
          const std::uint8_t seg_type = body.get_u8();
          const std::uint8_t seg_len = body.get_u8();
          for (std::uint8_t i = 0; i < seg_len; ++i) hops.emplace_back(body.get_u16());
          if (seg_type == 1) attrs.has_as_set = true;
        }
        attrs.as_path = AsPath(std::move(hops));
        break;
      }
      case 3: {
        if (length != 4) throw DecodeError("v1 NEXT_HOP length != 4");
        attrs.next_hop = body.get_u32();
        break;
      }
      default: {
        OpaqueAttr opaque;
        opaque.flags = flags & static_cast<std::uint8_t>(~0x10);
        opaque.type = type;
        const auto payload = body.get_bytes(body.remaining());
        opaque.payload.assign(payload.begin(), payload.end());
        attrs.opaque.push_back(std::move(opaque));
        break;
      }
    }
  }
  if (!saw_path) throw DecodeError("v1 record missing AS_PATH");
  return attrs;
}

}  // namespace

void write_table_dump_v1(const TableDumpV1Entry& entry, std::ostream& os,
                         std::uint16_t view, std::uint16_t sequence) {
  if (entry.peer_as.value() > 0xffff) {
    throw std::invalid_argument("table_dump_v1: peer AS exceeds 16 bits");
  }
  if (entry.prefix.family() != Prefix::Family::kIpv4) {
    throw std::invalid_argument("table_dump_v1: only AFI_IPv4 is supported");
  }
  const auto attrs = encode_attrs_as2(entry.attrs);

  ByteWriter body;
  body.put_u16(view);
  body.put_u16(sequence);
  body.put_u32(static_cast<std::uint32_t>(entry.prefix.bits()));
  body.put_u8(entry.prefix.length());
  body.put_u8(1);  // status (always 1 in practice)
  body.put_u32(entry.originated_time);
  body.put_u32(entry.peer_ip);
  body.put_u16(static_cast<std::uint16_t>(entry.peer_as.value()));
  body.put_u16(static_cast<std::uint16_t>(attrs.size()));
  body.put_bytes(attrs);

  ByteWriter header;
  header.put_u32(entry.timestamp);
  header.put_u16(kTypeTableDump);
  header.put_u16(kSubAfiIpv4);
  header.put_u32(static_cast<std::uint32_t>(body.size()));
  os.write(reinterpret_cast<const char*>(header.bytes().data()),
           static_cast<std::streamsize>(header.size()));
  os.write(reinterpret_cast<const char*>(body.bytes().data()),
           static_cast<std::streamsize>(body.size()));
}

std::vector<TableDumpV1Entry> read_table_dump_v1(std::istream& is) {
  std::vector<TableDumpV1Entry> out;
  std::vector<std::uint8_t> header_buf(12);
  while (is.read(reinterpret_cast<char*>(header_buf.data()), 12)) {
    ByteReader header(header_buf);
    const std::uint32_t timestamp = header.get_u32();
    const std::uint16_t type = header.get_u16();
    const std::uint16_t subtype = header.get_u16();
    const std::uint32_t length = header.get_u32();
    if (length > kMaxRecordBytes) {
      throw DecodeError("MRT record length " + std::to_string(length) +
                        " exceeds sanity cap");
    }
    std::vector<std::uint8_t> body(length);
    if (!is.read(reinterpret_cast<char*>(body.data()), static_cast<std::streamsize>(length))) {
      throw DecodeError("truncated MRT record body");
    }
    if (type != kTypeTableDump || subtype != kSubAfiIpv4) continue;

    ByteReader r(body);
    TableDumpV1Entry entry;
    entry.timestamp = timestamp;
    r.get_u16();  // view
    r.get_u16();  // sequence
    const std::uint32_t addr = r.get_u32();
    const std::uint8_t mask = r.get_u8();
    if (mask > 32) throw DecodeError("v1 prefix length > 32");
    entry.prefix = Prefix::v4(addr, mask);
    r.get_u8();  // status
    entry.originated_time = r.get_u32();
    entry.peer_ip = r.get_u32();
    entry.peer_as = Asn(r.get_u16());
    const std::uint16_t attr_len = r.get_u16();
    ByteReader attrs = r.sub(attr_len);
    entry.attrs = decode_attrs_as2(attrs);
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace asrank::mrt
