// Text-format route table parsing: the "show ip bgp"-style dump some
// pipelines consume when MRT is unavailable, plus a minimal pipe-separated
// "prefix|as-path" exchange format for interoperability with scripted
// toolchains.
//
// The Cisco-style format parsed here is the one RouteViews historically
// published (oix-route-views):
//
//      Network          Next Hop            Metric LocPrf Weight Path
//   *> 1.0.0.0/24       203.0.113.1              0             0 701 174 13335 i
//   *  1.0.0.0/24       198.51.100.7             0             0 3356 13335 i
//
// Only best-path marker, network, and the AS path matter for inference; the
// rest is ignored but must parse positionally.
#pragma once

#include <iosfwd>
#include <vector>

#include "asn/as_path.h"
#include "asn/prefix.h"

namespace asrank::mrt {

struct TextRoute {
  Prefix prefix;
  AsPath path;
  bool best = false;

  friend bool operator==(const TextRoute&, const TextRoute&) = default;
};

/// Parse a Cisco-style table.  Header/separator lines are skipped; a route
/// line with an unparseable network or path raises std::runtime_error with
/// the line number.  Continuation lines (network omitted, as Cisco prints
/// for repeated prefixes) inherit the previous network.  Route lines are
/// expected to carry the three numeric columns (metric, local-pref, weight)
/// between next hop and path, as write_show_ip_bgp emits.
[[nodiscard]] std::vector<TextRoute> parse_show_ip_bgp(std::istream& is);

/// Render routes in the Cisco-style format parse_show_ip_bgp consumes.
void write_show_ip_bgp(const std::vector<TextRoute>& routes, std::ostream& os);

/// Write/parse the minimal "prefix|hop hop hop" exchange format.
void write_pipe_table(const std::vector<TextRoute>& routes, std::ostream& os);
[[nodiscard]] std::vector<TextRoute> parse_pipe_table(std::istream& is);

}  // namespace asrank::mrt
