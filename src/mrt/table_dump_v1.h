// Legacy MRT TABLE_DUMP codec (RFC 6396 §4.2, type 12): one record per
// (prefix, peer) with 2-byte ASNs — the format of RouteViews archives from
// the era of Gao's 2001 study.  Supporting it lets the pipeline replay
// historical corpora alongside modern TABLE_DUMP_V2 snapshots.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "asn/asn.h"
#include "asn/prefix.h"
#include "mrt/bgp_attrs.h"

namespace asrank::mrt {

/// One TABLE_DUMP record: a single route from a single peer.
struct TableDumpV1Entry {
  std::uint32_t timestamp = 0;
  Prefix prefix;
  std::uint32_t originated_time = 0;
  std::uint32_t peer_ip = 0;
  Asn peer_as;  ///< 16-bit on the wire; larger values are rejected on encode
  BgpAttributes attrs;

  friend bool operator==(const TableDumpV1Entry&, const TableDumpV1Entry&) = default;
};

/// Append one TABLE_DUMP record.  Throws std::invalid_argument if the peer
/// AS or any AS-path hop does not fit in 16 bits (the v1 format predates
/// RFC 4893 four-octet ASNs).
void write_table_dump_v1(const TableDumpV1Entry& entry, std::ostream& os,
                         std::uint16_t view = 0, std::uint16_t sequence = 0);

/// Read every TABLE_DUMP/AFI_IPv4 record from a stream; other MRT types are
/// skipped.  Throws DecodeError on malformed records.
[[nodiscard]] std::vector<TableDumpV1Entry> read_table_dump_v1(std::istream& is);

}  // namespace asrank::mrt
