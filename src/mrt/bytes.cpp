#include "mrt/bytes.h"

namespace asrank::mrt {

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  buf_.at(offset) = static_cast<std::uint8_t>(v >> 8);
  buf_.at(offset + 1) = static_cast<std::uint8_t>(v);
}

void ByteWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  patch_u16(offset, static_cast<std::uint16_t>(v >> 16));
  patch_u16(offset + 2, static_cast<std::uint16_t>(v));
}

}  // namespace asrank::mrt
