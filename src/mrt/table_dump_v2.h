// MRT TABLE_DUMP_V2 codec (RFC 6396 §4.3): the format RouteViews and RIPE RIS
// use for RIB snapshots, and the format this library's BGP simulator emits so
// the ingestion pipeline exercises the same parsing work a bgpdump-based
// toolchain performs on real collector data.
//
// Supported records: PEER_INDEX_TABLE (subtype 1) and RIB_IPV4_UNICAST
// (subtype 2).  IPv6 peers are representable in the peer table; RIB records
// are IPv4 (matching the paper's IPv4-only corpus).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "asn/asn.h"
#include "asn/prefix.h"
#include "mrt/bgp_attrs.h"
#include "util/result.h"

namespace asrank::mrt {

/// One collector peer (vantage point) from the PEER_INDEX_TABLE.
struct PeerEntry {
  std::uint32_t bgp_id = 0;
  std::uint32_t ipv4 = 0;  ///< peer address (IPv4 peers only in our dumps)
  Asn as;

  friend bool operator==(const PeerEntry&, const PeerEntry&) = default;
};

/// One (peer, attributes) route for a prefix.
struct RibRoute {
  std::uint16_t peer_index = 0;
  std::uint32_t originated_time = 0;
  BgpAttributes attrs;

  friend bool operator==(const RibRoute&, const RibRoute&) = default;
};

struct RibEntry {
  Prefix prefix;
  std::vector<RibRoute> routes;

  friend bool operator==(const RibEntry&, const RibEntry&) = default;
};

/// A full RIB snapshot: peer table plus per-prefix routes.
struct RibDump {
  std::uint32_t collector_bgp_id = 0;
  std::string view_name;
  std::uint32_t timestamp = 0;  ///< MRT header timestamp for all records
  std::vector<PeerEntry> peers;
  std::vector<RibEntry> rib;

  friend bool operator==(const RibDump&, const RibDump&) = default;
};

/// Serialize as a stream of MRT records (one PEER_INDEX_TABLE followed by
/// RIB_IPV4_UNICAST records in RIB order).
void write_table_dump_v2(const RibDump& dump, std::ostream& os);

/// Parse an MRT stream produced by write_table_dump_v2 (or any conforming
/// TABLE_DUMP_V2 stream limited to the supported subtypes).  Unknown MRT
/// record types are skipped; truncation yields ErrorCode::kTruncated and
/// any other malformation (unknown subtype, missing PEER_INDEX_TABLE,
/// oversized record) yields ErrorCode::kCorrupt, context carrying the
/// historical "mrt: ..." message.
[[nodiscard]] Result<RibDump> try_read_table_dump_v2(std::istream& is);

/// Throwing boundary wrapper over try_read_table_dump_v2: Error ->
/// DecodeError with the identical message.
[[nodiscard]] RibDump read_table_dump_v2(std::istream& is);

}  // namespace asrank::mrt
