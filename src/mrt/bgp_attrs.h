// BGP path-attribute encode/decode (RFC 4271 §4.3, RFC 6793 four-octet AS).
//
// We implement the attributes the relationship-inference pipeline consumes:
// ORIGIN, AS_PATH (AS_SEQUENCE and AS_SET segments, 4-byte ASNs), NEXT_HOP,
// and COMMUNITIES (RFC 1997).  Unknown optional attributes round-trip as
// opaque blobs so dumps from richer speakers are not rejected.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "asn/as_path.h"
#include "mrt/bytes.h"

namespace asrank::mrt {

enum class Origin : std::uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

/// RFC 1997 community value, conventionally rendered "asn:value".
struct Community {
  std::uint16_t high = 0;  ///< usually the tagging AS
  std::uint16_t low = 0;   ///< operator-defined meaning

  [[nodiscard]] std::uint32_t raw() const noexcept {
    return (static_cast<std::uint32_t>(high) << 16) | low;
  }
  [[nodiscard]] static Community from_raw(std::uint32_t raw) noexcept {
    return {static_cast<std::uint16_t>(raw >> 16), static_cast<std::uint16_t>(raw)};
  }
  friend bool operator==(Community, Community) = default;
};

/// An opaque attribute preserved on round-trip.
struct OpaqueAttr {
  std::uint8_t flags = 0;
  std::uint8_t type = 0;
  std::vector<std::uint8_t> payload;
  friend bool operator==(const OpaqueAttr&, const OpaqueAttr&) = default;
};

struct BgpAttributes {
  Origin origin = Origin::kIgp;
  AsPath as_path;                       ///< AS_SEQUENCE hops in order
  bool has_as_set = false;              ///< true if any AS_SET segment present
  std::optional<std::uint32_t> next_hop;  ///< IPv4 next hop
  std::vector<Community> communities;
  std::vector<OpaqueAttr> opaque;

  friend bool operator==(const BgpAttributes&, const BgpAttributes&) = default;
};

/// Encode to the BGP path-attributes wire form (4-byte AS encoding).
/// AS_SET contents are not re-encoded (sanitized corpora never carry them);
/// attempting to encode attributes with has_as_set set throws
/// std::invalid_argument.
[[nodiscard]] std::vector<std::uint8_t> encode_attributes(const BgpAttributes& attrs);

/// Decode path attributes.  AS_SET segments set `has_as_set` and contribute
/// their members to the path in ascending order (the sanitizer later drops
/// such paths).  Throws DecodeError on malformed input.
[[nodiscard]] BgpAttributes decode_attributes(ByteReader& reader);

}  // namespace asrank::mrt
