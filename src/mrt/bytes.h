// Big-endian byte buffer primitives for the MRT/BGP wire codecs.
//
// ByteWriter owns a growing buffer; ByteReader is a non-owning cursor over a
// span that throws DecodeError on underrun, so corrupt or truncated dumps
// surface as exceptions rather than silent misparses.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace asrank::mrt {

/// Raised for any malformed/truncated wire input.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error("mrt: " + what) {}

  /// Rethrow tag for boundary wrappers: `what` is already a complete
  /// message (e.g. an Error context captured from a prior DecodeError) and
  /// must not be prefixed again.
  struct Passthrough {};
  DecodeError(Passthrough, const std::string& what) : std::runtime_error(what) {}
};

class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void put_u32(std::uint32_t v) {
    put_u16(static_cast<std::uint16_t>(v >> 16));
    put_u16(static_cast<std::uint16_t>(v));
  }
  void put_bytes(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }
  void put_string(std::string_view s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Overwrite a previously written big-endian u16/u32 (for back-patching
  /// length fields).  Throws std::out_of_range if the slot is out of bounds.
  void patch_u16(std::size_t offset, std::uint16_t v);
  void patch_u32(std::size_t offset, std::uint32_t v);

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool done() const noexcept { return remaining() == 0; }

  std::uint8_t get_u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t get_u16() {
    const auto bytes = get_bytes(2);
    return static_cast<std::uint16_t>((bytes[0] << 8) | bytes[1]);
  }
  std::uint32_t get_u32() {
    const std::uint32_t high = get_u16();
    return (high << 16) | get_u16();
  }
  std::span<const std::uint8_t> get_bytes(std::size_t n) {
    need(n);
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  std::string get_string(std::size_t n) {
    const auto bytes = get_bytes(n);
    return std::string(bytes.begin(), bytes.end());
  }

  /// A sub-reader over the next n bytes (consumes them from this reader).
  ByteReader sub(std::size_t n) { return ByteReader(get_bytes(n)); }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) {
      throw DecodeError("truncated input: need " + std::to_string(n) + " bytes, have " +
                        std::to_string(remaining()));
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace asrank::mrt
