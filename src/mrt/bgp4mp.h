// MRT BGP4MP codec (RFC 6396 §4.4): per-message update streams, the format
// collectors use for live BGP feeds ("updates" files).  We support
// BGP4MP_MESSAGE_AS4 carrying BGP UPDATE messages with IPv4 NLRI, which is
// what a relationship-inference pipeline replays to track topology changes
// between RIB snapshots.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <vector>

#include "asn/asn.h"
#include "asn/prefix.h"
#include "mrt/bgp_attrs.h"
#include "util/result.h"

namespace asrank::mrt {

/// One BGP UPDATE observed at a collector from `peer_as`.
struct UpdateMessage {
  std::uint32_t timestamp = 0;
  Asn peer_as;
  Asn local_as;
  std::uint32_t peer_ip = 0;   ///< IPv4
  std::uint32_t local_ip = 0;  ///< IPv4
  std::vector<Prefix> withdrawn;
  std::vector<Prefix> announced;
  BgpAttributes attrs;  ///< meaningful only when `announced` is non-empty

  friend bool operator==(const UpdateMessage&, const UpdateMessage&) = default;
};

/// Append one BGP4MP_MESSAGE_AS4 record to the stream.
void write_update(const UpdateMessage& update, std::ostream& os);

/// What an UpdateReader consumed, including every record it tolerated but
/// could not turn into an UpdateMessage.  A live feed interleaves peer-state
/// records, IPv6 sessions, and KEEPALIVEs with the UPDATEs a topology
/// pipeline wants; none of those may abort the stream, and none should
/// vanish without a trace either.
struct UpdateReaderStats {
  std::uint64_t records = 0;          ///< MRT records consumed, all types
  std::uint64_t updates = 0;          ///< BGP4MP_MESSAGE_AS4 UPDATEs decoded
  std::uint64_t unknown_type = 0;     ///< MRT types other than BGP4MP
  std::uint64_t unknown_subtype = 0;  ///< BGP4MP subtypes other than MESSAGE_AS4
  std::uint64_t non_ipv4 = 0;         ///< non-IPv4 address-family sessions
  std::uint64_t non_update = 0;       ///< OPEN/KEEPALIVE/NOTIFICATION messages

  [[nodiscard]] std::uint64_t skipped() const noexcept {
    return unknown_type + unknown_subtype + non_ipv4 + non_update;
  }

  friend bool operator==(const UpdateReaderStats&, const UpdateReaderStats&) = default;
};

/// Record-at-a-time BGP4MP decoder: the incremental complement to
/// try_read_updates, built for long-running ingest where the stream never
/// ends and a whole-stream slurp would never return.  Skipped records are
/// counted per reason (stats()), never silently dropped.
///
/// next() leaves the underlying stream positioned exactly after the last
/// record it consumed, so a tailing caller may clear the stream state, seek
/// back to the pre-call offset on a kTruncated result, and retry once more
/// bytes arrive.
class UpdateReader {
 public:
  explicit UpdateReader(std::istream& is) noexcept : is_(&is) {}

  /// The next decodable UPDATE, skipping (and counting) records of other
  /// kinds.  nullopt at a clean end-of-stream (between records).  A stream
  /// ending mid-record yields ErrorCode::kTruncated; any other malformation
  /// yields kCorrupt, context carrying the historical "mrt: ..." message.
  [[nodiscard]] Result<std::optional<UpdateMessage>> next();

  [[nodiscard]] const UpdateReaderStats& stats() const noexcept { return stats_; }

 private:
  std::istream* is_;
  UpdateReaderStats stats_;
};

/// Read every BGP4MP_MESSAGE_AS4 record from the stream; other MRT types are
/// tolerated and counted into `*stats` (when given), never silently lost.
/// Truncation yields ErrorCode::kTruncated and any other malformation yields
/// ErrorCode::kCorrupt, context carrying the historical "mrt: ..." message.
[[nodiscard]] Result<std::vector<UpdateMessage>> try_read_updates(
    std::istream& is, UpdateReaderStats* stats = nullptr);

/// Throwing boundary wrapper over try_read_updates: Error -> DecodeError with
/// the identical message.
[[nodiscard]] std::vector<UpdateMessage> read_updates(std::istream& is);

}  // namespace asrank::mrt
