// MRT BGP4MP codec (RFC 6396 §4.4): per-message update streams, the format
// collectors use for live BGP feeds ("updates" files).  We support
// BGP4MP_MESSAGE_AS4 carrying BGP UPDATE messages with IPv4 NLRI, which is
// what a relationship-inference pipeline replays to track topology changes
// between RIB snapshots.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "asn/asn.h"
#include "asn/prefix.h"
#include "mrt/bgp_attrs.h"
#include "util/result.h"

namespace asrank::mrt {

/// One BGP UPDATE observed at a collector from `peer_as`.
struct UpdateMessage {
  std::uint32_t timestamp = 0;
  Asn peer_as;
  Asn local_as;
  std::uint32_t peer_ip = 0;   ///< IPv4
  std::uint32_t local_ip = 0;  ///< IPv4
  std::vector<Prefix> withdrawn;
  std::vector<Prefix> announced;
  BgpAttributes attrs;  ///< meaningful only when `announced` is non-empty

  friend bool operator==(const UpdateMessage&, const UpdateMessage&) = default;
};

/// Append one BGP4MP_MESSAGE_AS4 record to the stream.
void write_update(const UpdateMessage& update, std::ostream& os);

/// Read every BGP4MP_MESSAGE_AS4 record from the stream; other MRT types are
/// skipped.  Truncation yields ErrorCode::kTruncated and any other
/// malformation yields ErrorCode::kCorrupt, context carrying the historical
/// "mrt: ..." message.
[[nodiscard]] Result<std::vector<UpdateMessage>> try_read_updates(std::istream& is);

/// Throwing boundary wrapper over try_read_updates: Error -> DecodeError with
/// the identical message.
[[nodiscard]] std::vector<UpdateMessage> read_updates(std::istream& is);

}  // namespace asrank::mrt
