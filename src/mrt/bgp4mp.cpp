#include "mrt/bgp4mp.h"

#include <istream>
#include <ostream>

namespace asrank::mrt {

namespace {

/// No legitimate MRT record approaches this size; a larger declared length
/// indicates corruption and would otherwise drive a huge allocation.
constexpr std::uint32_t kMaxRecordBytes = 16u << 20;

constexpr std::uint16_t kTypeBgp4mp = 16;
constexpr std::uint16_t kSubMessageAs4 = 4;
constexpr std::uint16_t kAfiIpv4 = 1;
constexpr std::uint8_t kBgpMsgUpdate = 2;

void put_ipv4_prefix(ByteWriter& w, const Prefix& prefix) {
  w.put_u8(prefix.length());
  const auto addr = static_cast<std::uint32_t>(prefix.bits());
  const unsigned bytes = (prefix.length() + 7) / 8;
  for (unsigned i = 0; i < bytes; ++i) {
    w.put_u8(static_cast<std::uint8_t>(addr >> (24 - 8 * i)));
  }
}

Prefix get_ipv4_prefix(ByteReader& r) {
  const std::uint8_t length = r.get_u8();
  if (length > 32) throw DecodeError("IPv4 prefix length > 32");
  const unsigned bytes = (length + 7) / 8;
  std::uint32_t addr = 0;
  for (unsigned i = 0; i < bytes; ++i) {
    addr |= static_cast<std::uint32_t>(r.get_u8()) << (24 - 8 * i);
  }
  return Prefix::v4(addr, length);
}

std::vector<std::uint8_t> encode_bgp_update(const UpdateMessage& update) {
  ByteWriter routes;
  for (const Prefix& p : update.withdrawn) put_ipv4_prefix(routes, p);
  const std::size_t withdrawn_len = routes.size();

  std::vector<std::uint8_t> attrs;
  if (!update.announced.empty()) attrs = encode_attributes(update.attrs);

  ByteWriter msg;
  for (int i = 0; i < 16; ++i) msg.put_u8(0xff);  // BGP marker
  const std::size_t len_slot = msg.size();
  msg.put_u16(0);  // patched below
  msg.put_u8(kBgpMsgUpdate);
  msg.put_u16(static_cast<std::uint16_t>(withdrawn_len));
  msg.put_bytes(routes.bytes());
  msg.put_u16(static_cast<std::uint16_t>(attrs.size()));
  msg.put_bytes(attrs);
  for (const Prefix& p : update.announced) put_ipv4_prefix(msg, p);
  if (msg.size() > 4096) throw std::invalid_argument("BGP UPDATE exceeds 4096 bytes");
  msg.patch_u16(len_slot, static_cast<std::uint16_t>(msg.size()));
  return msg.take();
}

}  // namespace

void write_update(const UpdateMessage& update, std::ostream& os) {
  ByteWriter body;
  body.put_u32(update.peer_as.value());
  body.put_u32(update.local_as.value());
  body.put_u16(0);  // interface index
  body.put_u16(kAfiIpv4);
  body.put_u32(update.peer_ip);
  body.put_u32(update.local_ip);
  const auto msg = encode_bgp_update(update);
  body.put_bytes(msg);

  ByteWriter header;
  header.put_u32(update.timestamp);
  header.put_u16(kTypeBgp4mp);
  header.put_u16(kSubMessageAs4);
  header.put_u32(static_cast<std::uint32_t>(body.size()));
  os.write(reinterpret_cast<const char*>(header.bytes().data()),
           static_cast<std::streamsize>(header.size()));
  os.write(reinterpret_cast<const char*>(body.bytes().data()),
           static_cast<std::streamsize>(body.size()));
}

Result<std::optional<UpdateMessage>> UpdateReader::next() {
  // Record framing and attribute decoding share the DecodeError rail
  // internally; this entry point converts each failure to an Error whose
  // context is the complete historical "mrt: ..." message.
  try {
    for (;;) {
      std::uint8_t header_buf[12];
      is_->read(reinterpret_cast<char*>(header_buf), sizeof(header_buf));
      if (is_->gcount() == 0) return std::optional<UpdateMessage>{};  // clean EOF
      if (is_->gcount() < static_cast<std::streamsize>(sizeof(header_buf))) {
        throw DecodeError("truncated MRT record header");
      }
      ByteReader header(header_buf);
      const std::uint32_t timestamp = header.get_u32();
      const std::uint16_t type = header.get_u16();
      const std::uint16_t subtype = header.get_u16();
      const std::uint32_t length = header.get_u32();
      if (length > kMaxRecordBytes) {
        throw DecodeError("MRT record length " + std::to_string(length) +
                          " exceeds sanity cap");
      }
      std::vector<std::uint8_t> body(length);
      if (!is_->read(reinterpret_cast<char*>(body.data()),
                     static_cast<std::streamsize>(length))) {
        throw DecodeError("truncated MRT record body");
      }
      ++stats_.records;
      if (type != kTypeBgp4mp) {
        ++stats_.unknown_type;
        continue;
      }
      if (subtype != kSubMessageAs4) {
        ++stats_.unknown_subtype;
        continue;
      }

      ByteReader r(body);
      UpdateMessage update;
      update.timestamp = timestamp;
      update.peer_as = Asn(r.get_u32());
      update.local_as = Asn(r.get_u32());
      r.get_u16();  // interface index
      const std::uint16_t afi = r.get_u16();
      if (afi != kAfiIpv4) {  // IPv6 sessions: not in our corpora
        ++stats_.non_ipv4;
        continue;
      }
      update.peer_ip = r.get_u32();
      update.local_ip = r.get_u32();

      r.get_bytes(16);  // BGP marker
      const std::uint16_t msg_len = r.get_u16();
      if (msg_len < 19) throw DecodeError("BGP message length < 19");
      const std::uint8_t msg_type = r.get_u8();
      if (msg_type != kBgpMsgUpdate) {  // KEEPALIVE/OPEN/NOTIFICATION
        ++stats_.non_update;
        continue;
      }

      const std::uint16_t withdrawn_len = r.get_u16();
      ByteReader withdrawn = r.sub(withdrawn_len);
      while (!withdrawn.done()) update.withdrawn.push_back(get_ipv4_prefix(withdrawn));

      const std::uint16_t attrs_len = r.get_u16();
      ByteReader attrs = r.sub(attrs_len);
      if (attrs_len > 0) update.attrs = decode_attributes(attrs);

      while (!r.done()) update.announced.push_back(get_ipv4_prefix(r));
      ++stats_.updates;
      return std::optional<UpdateMessage>(std::move(update));
    }
  } catch (const DecodeError& error) {
    const std::string what = error.what();
    const auto code = what.find("truncated") != std::string::npos
                          ? ErrorCode::kTruncated
                          : ErrorCode::kCorrupt;
    return make_error(code, what);
  }
}

Result<std::vector<UpdateMessage>> try_read_updates(std::istream& is,
                                                    UpdateReaderStats* stats) {
  UpdateReader reader(is);
  std::vector<UpdateMessage> out;
  for (;;) {
    auto next = reader.next();
    if (stats != nullptr) *stats = reader.stats();
    if (!next.ok()) return next.take_error();
    if (!next.value().has_value()) return out;
    out.push_back(std::move(*next.value()));
  }
}

std::vector<UpdateMessage> read_updates(std::istream& is) {
  auto parsed = try_read_updates(is);
  if (!parsed.ok()) {
    throw DecodeError(DecodeError::Passthrough{}, parsed.error().context);
  }
  return std::move(parsed).value();
}

}  // namespace asrank::mrt
