#include "mrt/bgp_attrs.h"

#include <algorithm>
#include <stdexcept>

namespace asrank::mrt {

namespace {

// Attribute type codes (RFC 4271 / RFC 1997).
constexpr std::uint8_t kOrigin = 1;
constexpr std::uint8_t kAsPath = 2;
constexpr std::uint8_t kNextHop = 3;
constexpr std::uint8_t kCommunities = 8;

// Attribute flag bits.
constexpr std::uint8_t kFlagOptional = 0x80;
constexpr std::uint8_t kFlagTransitive = 0x40;
constexpr std::uint8_t kFlagExtendedLength = 0x10;

// AS_PATH segment types.
constexpr std::uint8_t kSegAsSet = 1;
constexpr std::uint8_t kSegAsSequence = 2;

void put_attr_header(ByteWriter& w, std::uint8_t flags, std::uint8_t type,
                     std::size_t length) {
  if (length > 0xffff) throw std::invalid_argument("attribute too long");
  if (length > 0xff) flags |= kFlagExtendedLength;
  w.put_u8(flags);
  w.put_u8(type);
  if (flags & kFlagExtendedLength) {
    w.put_u16(static_cast<std::uint16_t>(length));
  } else {
    w.put_u8(static_cast<std::uint8_t>(length));
  }
}

}  // namespace

std::vector<std::uint8_t> encode_attributes(const BgpAttributes& attrs) {
  if (attrs.has_as_set) {
    throw std::invalid_argument("encode_attributes: AS_SET re-encoding unsupported");
  }
  ByteWriter w;

  put_attr_header(w, kFlagTransitive, kOrigin, 1);
  w.put_u8(static_cast<std::uint8_t>(attrs.origin));

  {
    // AS_PATH: one AS_SEQUENCE segment per <=255 hops (4-byte ASNs).
    ByteWriter body;
    const auto hops = attrs.as_path.hops();
    std::size_t i = 0;
    while (i < hops.size()) {
      const std::size_t chunk = std::min<std::size_t>(hops.size() - i, 255);
      body.put_u8(kSegAsSequence);
      body.put_u8(static_cast<std::uint8_t>(chunk));
      for (std::size_t j = 0; j < chunk; ++j) body.put_u32(hops[i + j].value());
      i += chunk;
    }
    put_attr_header(w, kFlagTransitive, kAsPath, body.size());
    w.put_bytes(body.bytes());
  }

  if (attrs.next_hop) {
    put_attr_header(w, kFlagTransitive, kNextHop, 4);
    w.put_u32(*attrs.next_hop);
  }

  if (!attrs.communities.empty()) {
    put_attr_header(w, kFlagOptional | kFlagTransitive, kCommunities,
                    attrs.communities.size() * 4);
    for (const Community c : attrs.communities) w.put_u32(c.raw());
  }

  for (const OpaqueAttr& attr : attrs.opaque) {
    put_attr_header(w, attr.flags, attr.type, attr.payload.size());
    w.put_bytes(attr.payload);
  }

  return w.take();
}

BgpAttributes decode_attributes(ByteReader& reader) {
  BgpAttributes attrs;
  bool saw_as_path = false;
  while (!reader.done()) {
    const std::uint8_t flags = reader.get_u8();
    const std::uint8_t type = reader.get_u8();
    const std::size_t length =
        (flags & kFlagExtendedLength) ? reader.get_u16() : reader.get_u8();
    ByteReader body = reader.sub(length);
    switch (type) {
      case kOrigin: {
        if (length != 1) throw DecodeError("ORIGIN length != 1");
        const std::uint8_t v = body.get_u8();
        if (v > 2) throw DecodeError("ORIGIN value out of range");
        attrs.origin = static_cast<Origin>(v);
        break;
      }
      case kAsPath: {
        saw_as_path = true;
        std::vector<Asn> hops;
        while (!body.done()) {
          const std::uint8_t seg_type = body.get_u8();
          const std::uint8_t seg_len = body.get_u8();
          std::vector<Asn> segment;
          segment.reserve(seg_len);
          for (std::uint8_t i = 0; i < seg_len; ++i) segment.emplace_back(body.get_u32());
          if (seg_type == kSegAsSequence) {
            hops.insert(hops.end(), segment.begin(), segment.end());
          } else if (seg_type == kSegAsSet) {
            attrs.has_as_set = true;
            std::sort(segment.begin(), segment.end());
            hops.insert(hops.end(), segment.begin(), segment.end());
          } else {
            throw DecodeError("unknown AS_PATH segment type");
          }
        }
        attrs.as_path = AsPath(std::move(hops));
        break;
      }
      case kNextHop: {
        if (length != 4) throw DecodeError("NEXT_HOP length != 4");
        attrs.next_hop = body.get_u32();
        break;
      }
      case kCommunities: {
        if (length % 4 != 0) throw DecodeError("COMMUNITIES length not multiple of 4");
        while (!body.done()) attrs.communities.push_back(Community::from_raw(body.get_u32()));
        break;
      }
      default: {
        OpaqueAttr opaque;
        opaque.flags = flags & static_cast<std::uint8_t>(~kFlagExtendedLength);
        opaque.type = type;
        const auto payload = body.get_bytes(body.remaining());
        opaque.payload.assign(payload.begin(), payload.end());
        attrs.opaque.push_back(std::move(opaque));
        break;
      }
    }
  }
  if (!saw_as_path) throw DecodeError("missing mandatory AS_PATH attribute");
  return attrs;
}

}  // namespace asrank::mrt
