// Header-only non-cryptographic hashing used by the serving cluster layer:
// splitmix64 for integer keys (ASN -> shard slot), FNV-1a for byte strings
// (endpoint labels), and a two-input mixer for rendezvous (highest random
// weight) ranking of (slot, endpoint) pairs.
//
// These are stable across platforms and process restarts by construction —
// every ClusterClient must route a given ASN to the same slot and rank the
// same replica list, so std::hash (which may be salted / implementation
// defined) is not usable here.
#pragma once

#include <cstdint>
#include <string_view>

namespace asrank::util {

/// splitmix64 finalizer (Steele, Lea, Flood / Vigna).  Bijective on u64;
/// good avalanche for sequential keys like ASNs.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over bytes; stable string hash for endpoint labels.
[[nodiscard]] constexpr std::uint64_t fnv1a_64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Mix two 64-bit values into one; used for rendezvous weights
/// weight(slot, endpoint) = mix64(splitmix64(slot), fnv1a_64(endpoint)).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a,
                                            std::uint64_t b) noexcept {
  return splitmix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace asrank::util
