#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace asrank::util {

Result<MappedFile> MappedFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return make_error(ErrorCode::kNotFound, "cannot open for reading: " + path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return make_error(ErrorCode::kIo,
                      "fstat failed: " + path + ": " + std::strerror(err));
  }
  MappedFile file;
  file.size_ = static_cast<std::size_t>(st.st_size);
  if (file.size_ == 0) {
    // mmap(len=0) is EINVAL; an empty file is simply an empty span.
    ::close(fd);
    return file;
  }
  void* mapped = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  const int err = errno;
  ::close(fd);  // the mapping keeps its own reference to the file
  if (mapped == MAP_FAILED) {
    return make_error(ErrorCode::kIo,
                      "mmap failed: " + path + ": " + std::strerror(err));
  }
  file.data_ = static_cast<const std::uint8_t*>(mapped);
  return file;
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<std::uint8_t*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
}

}  // namespace asrank::util
