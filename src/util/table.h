// Plain-text table rendering for the benchmark harness.  Every experiment
// binary prints its table/figure series through TableWriter so the output is
// uniform and diff-able run to run (given fixed seeds).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace asrank::util {

/// Column-aligned text table with an optional caption, rendered to a stream.
/// Numeric formatting is the caller's responsibility (pass pre-formatted
/// cells); helpers below cover the common cases.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> headers);

  /// Append one row; must have the same arity as the header.  Throws
  /// std::invalid_argument otherwise.
  void add_row(std::vector<std::string> cells);

  void set_caption(std::string caption) { caption_ = std::move(caption); }

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with box-drawing-free ASCII alignment, suitable for logs.
  void render(std::ostream& os) const;

  /// Render as CSV (RFC-4180 quoting for commas/quotes/newlines).
  void render_csv(std::ostream& os) const;

 private:
  std::string caption_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision.
[[nodiscard]] std::string fmt(double value, int precision = 3);

/// Format a ratio as a percentage string, e.g. 0.9957 -> "99.57%".
[[nodiscard]] std::string fmt_pct(double ratio, int precision = 2);

/// Thousands-separated integer, e.g. 465944 -> "465,944".
[[nodiscard]] std::string fmt_count(std::uint64_t value);

}  // namespace asrank::util
