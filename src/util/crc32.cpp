#include "util/crc32.h"

#include <array>
#include <cstring>

namespace asrank::util {

namespace {

// Slice-by-8 tables for the reflected CRC-32 (poly 0xEDB88320).  table[0] is
// the classic byte-at-a-time table; table[k][b] advances a byte through k
// additional zero bytes, letting the hot loop fold 8 input bytes per
// iteration with eight independent lookups.  Same polynomial, same init,
// same final xor — outputs are bit-identical to the byte-wise loop, only
// the throughput changes (snapshot loads are CRC-bound; see
// snapshot::SnapshotIndex::map_file).
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() noexcept {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1U) ? (0xEDB88320U ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables[k - 1][i];
      tables[k][i] = tables[0][prev & 0xFFU] ^ (prev >> 8);
    }
  }
  return tables;
}

constexpr auto kTables = make_tables();

[[nodiscard]] std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof v);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  v = __builtin_bswap32(v);
#endif
  return v;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) noexcept {
  std::uint32_t c = seed ^ 0xFFFFFFFFU;
  const std::uint8_t* p = data.data();
  std::size_t len = data.size();
  while (len >= 8) {
    const std::uint32_t lo = c ^ load_le32(p);
    const std::uint32_t hi = load_le32(p + 4);
    c = kTables[7][lo & 0xFFU] ^ kTables[6][(lo >> 8) & 0xFFU] ^
        kTables[5][(lo >> 16) & 0xFFU] ^ kTables[4][lo >> 24] ^
        kTables[3][hi & 0xFFU] ^ kTables[2][(hi >> 8) & 0xFFU] ^
        kTables[1][(hi >> 16) & 0xFFU] ^ kTables[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  for (; len > 0; ++p, --len) {
    c = kTables[0][(c ^ *p) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

}  // namespace asrank::util
