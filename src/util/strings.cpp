#include "util/strings.h"

#include <cctype>

namespace asrank::util {

std::vector<std::string_view> split(std::string_view text, char delim, bool keep_empty) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(delim, start);
    const std::size_t end = (pos == std::string_view::npos) ? text.size() : pos;
    if (end > start || keep_empty) out.push_back(text.substr(start, end - start));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t') ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::optional<double> parse_double(std::string_view text) noexcept {
  if (text.empty()) return std::nullopt;
  double value{};
  const auto* begin = text.data();
  const auto* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace asrank::util
