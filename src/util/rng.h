// Deterministic random number generation for reproducible experiments.
//
// All randomness in the library flows through util::Rng so that a fixed seed
// yields byte-identical topologies, path corpora, and benchmark tables across
// runs and platforms.  The generator is xoshiro256** seeded via splitmix64,
// which is fast, has a 256-bit state, and is well studied.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace asrank::util {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with distribution helpers.  Not thread-safe; create one
/// per thread or per deterministic pipeline stage.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  Uses Lemire's multiply-shift rejection
  /// method to avoid modulo bias.  Throws std::invalid_argument if bound == 0.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Discrete power-law (Zipf-like) sample in [1, n] with exponent s > 0,
  /// via inverse-transform on the continuous bounded Pareto approximation.
  /// Used to produce heavy-tailed degree targets in the topology generator.
  [[nodiscard]] std::uint64_t zipf(std::uint64_t n, double s);

  /// Geometric sample: number of failures before first success, p in (0,1].
  [[nodiscard]] std::uint64_t geometric(double p);

  /// Pick one index according to non-negative weights; throws if all zero.
  [[nodiscard]] std::size_t weighted_pick(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[uniform(i)]);
    }
  }

  /// Choose k distinct indices from [0, n) (Floyd's algorithm); k <= n.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace asrank::util
