// Small statistics toolkit used by the evaluation harness: summary moments,
// quantiles, empirical CCDFs, and rank correlations for comparing AS rankings.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace asrank::util {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double median = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Compute summary statistics; returns a zeroed Summary for empty input.
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Linear-interpolated quantile, q in [0,1].  Throws on empty input or
/// out-of-range q.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// One point of an empirical complementary CDF.
struct CcdfPoint {
  double value = 0.0;     ///< x: sample value
  double fraction = 0.0;  ///< y: fraction of samples >= value
};

/// Empirical CCDF over distinct sample values, sorted ascending by value.
/// This is the form used for the customer-cone size distributions (paper §5).
[[nodiscard]] std::vector<CcdfPoint> ccdf(std::span<const double> values);

/// Pearson correlation coefficient; returns 0 for degenerate inputs.
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y);

/// Kendall's tau-b rank correlation (O(n^2), fine for ranking tables).
/// Used to compare inferred AS ranks against ground-truth cone ranks.
[[nodiscard]] double kendall_tau(std::span<const double> x, std::span<const double> y);

/// Histogram with fixed-width bins over [lo, hi); values outside are clamped
/// into the edge bins.  Throws if bins == 0 or hi <= lo.
[[nodiscard]] std::vector<std::size_t> histogram(std::span<const double> values,
                                                 double lo, double hi, std::size_t bins);

}  // namespace asrank::util
