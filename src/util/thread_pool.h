// Deterministic fixed-size thread pool for data-parallel pipeline stages.
//
// Design constraints, in priority order:
//
//   1. *Bit-identical results at any worker count.*  There is no work
//      stealing and no dynamic scheduling: a range [0, n) is split into
//      worker_count() contiguous chunks with statically computed bounds
//      (chunk_bounds), chunk c always runs the same indices, and reductions
//      fold chunk results in ascending chunk order.  Any function whose
//      per-chunk contributions combine associatively therefore produces the
//      same value at 1, 2, or 64 workers.
//   2. *Exact sequential fallback.*  With one worker nothing is spawned: the
//      single chunk executes inline on the calling thread, so `workers = 1`
//      is the legacy single-threaded code path, not an emulation of it.
//   3. *Exceptions propagate.*  A throw inside any chunk is captured and
//      rethrown on the calling thread after the barrier; when several chunks
//      throw, the lowest chunk index wins so the surfaced error is also
//      deterministic.
//
// The pool is reusable across calls (workers persist, parked on a condition
// variable between dispatches) but calls are not reentrant: do not dispatch
// from inside a chunk function.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace asrank::util {

/// Resolve a user-facing thread-count knob: 0 means "all hardware threads",
/// anything else is taken literally (minimum 1).
[[nodiscard]] inline std::size_t resolve_threads(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

class ThreadPool {
 public:
  /// `workers = 0` resolves to std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_; }

  /// Static chunk boundaries for `n` items: worker_count() + 1 offsets with
  /// chunk c covering [bounds[c], bounds[c+1]).  Sizes differ by at most one
  /// and depend only on (n, worker_count()).
  [[nodiscard]] std::vector<std::size_t> chunk_bounds(std::size_t n) const;

  /// Run fn(chunk_index, begin, end) for every non-empty chunk of [0, n) and
  /// block until all complete.  Empty ranges (n == 0) and short ranges
  /// (n < worker_count(), leaving some chunks empty) are handled; fn is only
  /// invoked for begin < end.
  void for_chunks(std::size_t n,
                  const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// Per-index convenience over for_chunks: fn(i) for i in [0, n).
  void for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Ordered map-reduce: `map(begin, end) -> T` runs per chunk in parallel,
  /// then `reduce(acc, part)` folds the parts into `init` in ascending chunk
  /// order on the calling thread.  Deterministic for any reduce function,
  /// even non-commutative ones (e.g. ordered concatenation).
  template <typename T, typename MapFn, typename ReduceFn>
  [[nodiscard]] T map_reduce(std::size_t n, T init, MapFn&& map, ReduceFn&& reduce) {
    std::vector<std::optional<T>> parts(workers_);
    for_chunks(n, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
      parts[chunk].emplace(map(begin, end));
    });
    T acc = std::move(init);
    for (std::optional<T>& part : parts) {
      if (part.has_value()) reduce(acc, std::move(*part));
    }
    return acc;
  }

 private:
  void worker_loop(std::size_t worker_index);
  void run_chunk(std::size_t chunk_index);

  std::size_t workers_;

  // Dispatch state, guarded by mutex_.  `task_` and `bounds_` are set by the
  // caller before bumping `generation_`; helpers re-check generation to find
  // new work.  `remaining_` counts unfinished helper chunks for the barrier.
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(std::size_t, std::size_t, std::size_t)>* task_ = nullptr;
  std::vector<std::size_t> bounds_;
  std::vector<std::exception_ptr> errors_;
  std::uint64_t generation_ = 0;
  std::size_t remaining_ = 0;
  bool stop_ = false;

  std::vector<std::thread> helpers_;  ///< workers 1..workers_-1; chunk 0 runs inline
};

}  // namespace asrank::util
