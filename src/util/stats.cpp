#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace asrank::util {

double quantile(std::span<const double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q out of [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  double var = 0.0;
  for (double v : sorted) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(s.count));
  s.median = quantile(sorted, 0.5);
  s.p90 = quantile(sorted, 0.9);
  s.p99 = quantile(sorted, 0.99);
  return s;
}

std::vector<CcdfPoint> ccdf(std::span<const double> values) {
  std::vector<CcdfPoint> out;
  if (values.empty()) return out;
  std::map<double, std::size_t> counts;
  for (double v : values) ++counts[v];
  const auto n = static_cast<double>(values.size());
  std::size_t at_or_above = values.size();
  out.reserve(counts.size());
  for (const auto& [value, count] : counts) {
    out.push_back({value, static_cast<double>(at_or_above) / n});
    at_or_above -= count;
  }
  return out;
}

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double num = 0, dx = 0, dy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += (x[i] - mx) * (y[i] - my);
    dx += (x[i] - mx) * (x[i] - mx);
    dy += (y[i] - my) * (y[i] - my);
  }
  if (dx <= 0.0 || dy <= 0.0) return 0.0;
  return num / std::sqrt(dx * dy);
}

double kendall_tau(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  long long concordant = 0, discordant = 0, ties_x = 0, ties_y = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t j = i + 1; j < x.size(); ++j) {
      const double dx = x[i] - x[j];
      const double dy = y[i] - y[j];
      if (dx == 0.0 && dy == 0.0) continue;
      if (dx == 0.0) {
        ++ties_x;
      } else if (dy == 0.0) {
        ++ties_y;
      } else if ((dx > 0) == (dy > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double denom = std::sqrt(static_cast<double>(concordant + discordant + ties_x)) *
                       std::sqrt(static_cast<double>(concordant + discordant + ties_y));
  if (denom == 0.0) return 0.0;
  return static_cast<double>(concordant - discordant) / denom;
}

std::vector<std::size_t> histogram(std::span<const double> values, double lo, double hi,
                                   std::size_t bins) {
  if (bins == 0) throw std::invalid_argument("histogram: bins must be > 0");
  if (hi <= lo) throw std::invalid_argument("histogram: hi must exceed lo");
  std::vector<std::size_t> out(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double v : values) {
    auto idx = static_cast<long long>((v - lo) / width);
    idx = std::clamp<long long>(idx, 0, static_cast<long long>(bins) - 1);
    ++out[static_cast<std::size_t>(idx)];
  }
  return out;
}

}  // namespace asrank::util
