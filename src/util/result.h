// One error surface for the whole library: a small tl::expected-style
// Result<T> carrying asrank::Error{code, context}.
//
// Subsystem internals (snapshot parsing/validation, wire-protocol decoding)
// return Result instead of mixing bool / std::optional / exceptions, so a
// caller can always tell *what class* of failure happened (truncated input
// vs corrupt data vs I/O) without string-matching.  Exceptions remain only
// at subsystem boundaries — the public read_snapshot()/write_snapshot()
// wrappers and the CLI/daemon top level — where they translate the Error
// into the subsystem's historical exception type.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace asrank {

enum class ErrorCode : std::uint8_t {
  kInvalidArgument = 1,  ///< caller passed something nonsensical
  kTruncated,            ///< input ended before a complete value
  kCorrupt,              ///< structurally invalid or checksum-failing data
  kUnsupported,          ///< recognized but unsupported (e.g. format version)
  kNotFound,             ///< a required element is absent
  kIo,                   ///< operating-system level read/write failure
  kProtocol,             ///< wire-protocol violation
  kInternal,             ///< invariant breakage inside the library
  kTimeout,              ///< a deadline expired before the operation finished
  kRefused,              ///< the remote end refused the connection
  kShedding,             ///< the server refused service under load
  kUnknownEpoch,         ///< a named snapshot epoch is not loaded
  kUnknownAlgorithm,     ///< a named inference algorithm is not present
  kUnavailable,          ///< no healthy endpoint could serve the request
  kEpochSkew,            ///< cluster members answered from different vintages
};

[[nodiscard]] constexpr std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid argument";
    case ErrorCode::kTruncated: return "truncated";
    case ErrorCode::kCorrupt: return "corrupt";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kNotFound: return "not found";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kProtocol: return "protocol";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kRefused: return "connection refused";
    case ErrorCode::kShedding: return "server shedding";
    case ErrorCode::kUnknownEpoch: return "unknown epoch";
    case ErrorCode::kUnknownAlgorithm: return "unknown algorithm";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kEpochSkew: return "epoch skew";
  }
  return "?";
}

/// A failure: machine-readable code plus human-readable context.  The
/// context string is the complete message historical exception types carried
/// (so boundary wrappers stay message-compatible).
struct [[nodiscard]] Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string context;

  [[nodiscard]] std::string message() const {
    if (context.empty()) return std::string(to_string(code));
    return std::string(to_string(code)) + ": " + context;
  }

  friend bool operator==(const Error&, const Error&) = default;
};

[[nodiscard]] inline Error make_error(ErrorCode code, std::string context) {
  return Error{code, std::move(context)};
}

/// Either a T or an Error.  Implicitly constructible from both, so
/// `return value;` and `return Error{...};` both work inside a
/// Result-returning function.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}  // NOLINT
  Result(Error error) : data_(std::in_place_index<1>, std::move(error)) {}  // NOLINT

  [[nodiscard]] bool ok() const noexcept { return data_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] T& value() & { return std::get<0>(data_); }
  [[nodiscard]] const T& value() const& { return std::get<0>(data_); }
  [[nodiscard]] T&& value() && { return std::get<0>(std::move(data_)); }
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<0>(data_) : std::move(fallback);
  }

  [[nodiscard]] const Error& error() const& { return std::get<1>(data_); }
  [[nodiscard]] Error take_error() { return std::get<1>(std::move(data_)); }

 private:
  std::variant<T, Error> data_;
};

/// Result<void>: success carries nothing.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::in_place_index<1>, std::move(error)) {}  // NOLINT

  [[nodiscard]] bool ok() const noexcept { return error_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const Error& error() const& { return std::get<1>(error_); }
  [[nodiscard]] Error take_error() { return std::get<1>(std::move(error_)); }

 private:
  std::variant<std::monostate, Error> error_;
};

}  // namespace asrank

/// Evaluate a Result-returning expression; on failure propagate the Error to
/// the caller (whose return type must be constructible from Error), on
/// success bind the value to `var`.
#define ASRANK_TRY(var, expr)                          \
  auto var##_try_result = (expr);                      \
  if (!var##_try_result.ok()) return var##_try_result.take_error(); \
  auto var = std::move(var##_try_result).value()

/// Like ASRANK_TRY for Result<void> expressions (nothing to bind).
#define ASRANK_TRY_VOID(expr)                                        \
  do {                                                               \
    auto asrank_try_void_result = (expr);                            \
    if (!asrank_try_void_result.ok())                                \
      return asrank_try_void_result.take_error();                    \
  } while (false)
