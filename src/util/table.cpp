#include "util/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace asrank::util {

TableWriter::TableWriter(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TableWriter: need at least one column");
}

void TableWriter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TableWriter: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TableWriter::render(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  if (!caption_.empty()) os << caption_ << '\n';
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[c])) << row[c] << ' ';
    }
    os << "|\n";
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << '|' << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

void TableWriter::render_csv(std::ostream& os) const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << quote(row[c]);
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

std::string fmt_pct(double ratio, int precision) {
  return fmt(ratio * 100.0, precision) + "%";
}

std::string fmt_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace asrank::util
