#include "util/thread_pool.h"

#include <cstdint>

namespace asrank::util {

ThreadPool::ThreadPool(std::size_t workers) : workers_(resolve_threads(workers)) {
  errors_.resize(workers_);
  helpers_.reserve(workers_ > 0 ? workers_ - 1 : 0);
  for (std::size_t w = 1; w < workers_; ++w) {
    helpers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& helper : helpers_) helper.join();
}

std::vector<std::size_t> ThreadPool::chunk_bounds(std::size_t n) const {
  std::vector<std::size_t> bounds(workers_ + 1, 0);
  const std::size_t base = n / workers_;
  const std::size_t extra = n % workers_;
  for (std::size_t c = 0; c < workers_; ++c) {
    bounds[c + 1] = bounds[c] + base + (c < extra ? 1 : 0);
  }
  return bounds;
}

void ThreadPool::run_chunk(std::size_t chunk_index) {
  const std::size_t begin = bounds_[chunk_index];
  const std::size_t end = bounds_[chunk_index + 1];
  if (begin >= end) return;
  try {
    (*task_)(chunk_index, begin, end);
  } catch (...) {
    errors_[chunk_index] = std::current_exception();
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    run_chunk(worker_index);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --remaining_;
    }
    work_done_.notify_one();
  }
}

void ThreadPool::for_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_ == 1) {
    // Exact sequential path: one chunk, caller's thread, no synchronization.
    fn(0, 0, n);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &fn;
    bounds_ = chunk_bounds(n);
    for (std::exception_ptr& error : errors_) error = nullptr;
    remaining_ = workers_ - 1;
    ++generation_;
  }
  work_ready_.notify_all();

  run_chunk(0);  // chunk 0 always runs on the calling thread

  {
    std::unique_lock<std::mutex> lock(mutex_);
    work_done_.wait(lock, [&] { return remaining_ == 0; });
    task_ = nullptr;
  }
  // Lowest chunk index wins so the surfaced error is deterministic.
  for (const std::exception_ptr& error : errors_) {
    if (error) std::rethrow_exception(error);
  }
}

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  for_chunks(n, [&fn](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace asrank::util
