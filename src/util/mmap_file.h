// Read-only memory-mapped file (RAII over open/fstat/mmap/munmap).
//
// This is the substrate of the snapshot layer's zero-copy load path: the
// whole file becomes one immutable byte span backed by the page cache, so
// N processes (or N epochs of one daemon) mapping the same snapshot share
// a single physical copy and pay no parse-time heap mirror.  The mapping
// is PROT_READ/MAP_PRIVATE; the kernel faults pages in on first touch.
//
// Failure stays on the Result rail (kNotFound for an unopenable path,
// kIo for stat/mmap failures) so hot-reload callers never unwind across
// the serving layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "util/result.h"

namespace asrank::util {

class MappedFile {
 public:
  MappedFile() = default;

  /// Map `path` read-only.  An empty file yields an empty, valid mapping.
  [[nodiscard]] static Result<MappedFile> open(const std::string& path);

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  ~MappedFile();

  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return {data_, size_};
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace asrank::util
