// String helpers shared by the text-format parsers (.as-rel files, RPSL,
// "show ip bgp" tables).  All functions are allocation-conscious: splitting
// returns string_views into the caller's buffer.
#pragma once

#include <charconv>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace asrank::util {

/// Split `text` on `delim`, optionally keeping empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view text, char delim,
                                                  bool keep_empty = false);

/// Split on any run of whitespace (space/tab); never yields empty fields.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view text);

/// Strip leading/trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// Parse an unsigned integer; rejects trailing junk, signs, and overflow.
template <typename T>
[[nodiscard]] std::optional<T> parse_unsigned(std::string_view text) noexcept {
  static_assert(std::is_unsigned_v<T>);
  if (text.empty()) return std::nullopt;
  T value{};
  const auto* begin = text.data();
  const auto* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

/// Parse a double; rejects trailing junk.
[[nodiscard]] std::optional<double> parse_double(std::string_view text) noexcept;

/// ASCII case-insensitive equality.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

/// Lowercase an ASCII string.
[[nodiscard]] std::string to_lower(std::string_view text);

/// Join items with a separator using `to_string`-able or string-like elements.
[[nodiscard]] std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace asrank::util
