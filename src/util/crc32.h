// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum used
// by the ASRK1 snapshot format's per-section integrity check.  Table-driven,
// incremental-friendly: feed chunks by passing the running value back in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace asrank::util {

/// CRC-32 of `data`, continuing from `seed` (pass the previous return value
/// to checksum a stream in pieces; the default starts a fresh checksum).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data,
                                  std::uint32_t seed = 0) noexcept;

}  // namespace asrank::util
