#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace asrank::util {

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::uniform: bound must be > 0");
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_range: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? (*this)() : uniform(span));
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  if (n == 0) throw std::invalid_argument("Rng::zipf: n must be > 0");
  if (s <= 0) throw std::invalid_argument("Rng::zipf: s must be > 0");
  // Inverse transform over a bounded Pareto on [1, n+1); floor gives the
  // discrete rank.  Exact Zipf normalization is unnecessary for workload
  // generation purposes; the tail exponent is what matters.
  const double u = uniform01();
  const double nmax = static_cast<double>(n) + 1.0;
  double value = 0.0;
  if (std::abs(s - 1.0) < 1e-12) {
    value = std::pow(nmax, u);
  } else {
    const double one_minus_s = 1.0 - s;
    value = std::pow(u * (std::pow(nmax, one_minus_s) - 1.0) + 1.0, 1.0 / one_minus_s);
  }
  auto rank = static_cast<std::uint64_t>(value);
  return std::clamp<std::uint64_t>(rank, 1, n);
}

std::uint64_t Rng::geometric(double p) {
  if (p <= 0.0 || p > 1.0) throw std::invalid_argument("Rng::geometric: p must be in (0,1]");
  if (p == 1.0) return 0;
  const double u = uniform01();
  return static_cast<std::uint64_t>(std::log1p(-u) / std::log1p(-p));
}

std::size_t Rng::weighted_pick(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::weighted_pick: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Rng::weighted_pick: all weights zero");
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // floating point residue lands on the last bucket
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_indices: k > n");
  std::unordered_set<std::size_t> chosen;
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = uniform(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace asrank::util
