// Immutable CSR view of a relationship-annotated AS graph.
//
// AsGraph is the right *construction* API — incremental, re-annotatable,
// keyed by raw ASN — but its hash-map-of-vectors layout is wrong for the
// read-dominated phases that follow construction: cone closure, valley-free
// sweeps, BFS, snapshot serialization.  TopologyView is the frozen
// counterpart: one AsnInterner defining a dense NodeId space plus flat
// compressed-sparse-row arrays computed once by AsGraph::freeze().
//
//   * Full adjacency: offsets[n+1] into neighbor/rel arrays, each row sorted
//     by neighbor id (== ascending ASN, since the interner is
//     order-preserving).  A relationship lookup is a binary search within
//     one contiguous row; a neighbor sweep is a linear scan.
//   * Directed sub-CSRs for the p2c digraph: providers(node) and
//     customers(node) as sorted spans, the substrate of cone closure
//     (descend customers) and path-to-clique BFS (ascend providers).
//   * Clique bitmap: O(1) membership tests without hashing.
//
// The row order and encoding deliberately coincide with the ASRK1 snapshot
// layout (sorted AS table, neighbor-sorted rows, RelView codes), so
// snapshot::build_snapshot can emit its sections from these arrays with a
// single id->ASN translation pass and no re-hashing or re-sorting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "topology/as_graph.h"
#include "topology/interner.h"
#include "topology/relationship.h"

namespace asrank::topology {

class TopologyView {
 public:
  TopologyView() = default;

  /// Freeze `graph` (and optionally a clique member list) into CSR form.
  /// Clique members absent from the graph are ignored.
  [[nodiscard]] static TopologyView freeze(const AsGraph& graph,
                                           std::span<const Asn> clique = {});

  [[nodiscard]] const AsnInterner& interner() const noexcept { return interner_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return interner_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept { return adj_nbr_.size() / 2; }

  // ----------------------------------------------------------- adjacency --

  /// Neighbors of `node`, ascending by id.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId node) const noexcept {
    return row(adj_off_, adj_nbr_, node);
  }

  /// RelView codes parallel to neighbors(node).
  [[nodiscard]] std::span<const std::uint8_t> rels(NodeId node) const noexcept {
    return row(adj_off_, adj_rel_, node);
  }

  [[nodiscard]] std::size_t degree(NodeId node) const noexcept {
    return adj_off_[node + 1] - adj_off_[node];
  }

  /// Relationship of `neighbor` from `node`'s perspective (O(log degree)).
  [[nodiscard]] std::optional<RelView> relationship(NodeId node, NodeId neighbor) const;

  // ------------------------------------------------------------ p2c CSRs --

  [[nodiscard]] std::span<const NodeId> providers(NodeId node) const noexcept {
    return row(prov_off_, prov_nbr_, node);
  }
  [[nodiscard]] std::span<const NodeId> customers(NodeId node) const noexcept {
    return row(cust_off_, cust_nbr_, node);
  }

  // --------------------------------------------------------------- clique --

  [[nodiscard]] bool in_clique(NodeId node) const noexcept {
    return (clique_bits_[node >> 6] >> (node & 63)) & 1ULL;
  }
  /// Clique members ascending by id.
  [[nodiscard]] std::span<const NodeId> clique() const noexcept { return clique_; }

  // ----------------------------------------------- raw arrays (snapshot) --

  [[nodiscard]] std::span<const std::uint64_t> adjacency_offsets() const noexcept {
    return adj_off_;
  }
  [[nodiscard]] std::span<const NodeId> adjacency_neighbors() const noexcept {
    return adj_nbr_;
  }
  [[nodiscard]] std::span<const std::uint8_t> adjacency_rels() const noexcept {
    return adj_rel_;
  }

 private:
  template <typename T>
  [[nodiscard]] std::span<const T> row(const std::vector<std::uint64_t>& offsets,
                                       const std::vector<T>& flat,
                                       NodeId node) const noexcept {
    return std::span<const T>(flat).subspan(offsets[node],
                                            offsets[node + 1] - offsets[node]);
  }

  AsnInterner interner_;

  std::vector<std::uint64_t> adj_off_;   ///< n+1
  std::vector<NodeId> adj_nbr_;          ///< ascending per row
  std::vector<std::uint8_t> adj_rel_;    ///< RelView codes, parallel to adj_nbr_

  std::vector<std::uint64_t> prov_off_;  ///< n+1
  std::vector<NodeId> prov_nbr_;         ///< ascending per row
  std::vector<std::uint64_t> cust_off_;  ///< n+1
  std::vector<NodeId> cust_nbr_;         ///< ascending per row

  std::vector<std::uint64_t> clique_bits_;  ///< ceil(n/64) words
  std::vector<NodeId> clique_;              ///< ascending
};

}  // namespace asrank::topology
