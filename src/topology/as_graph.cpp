#include "topology/as_graph.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "topology/topology_view.h"

namespace asrank {

topology::TopologyView AsGraph::freeze(std::span<const Asn> clique) const {
  return topology::TopologyView::freeze(*this, clique);
}

namespace {

void erase_value(std::vector<Asn>& list, Asn value) {
  list.erase(std::remove(list.begin(), list.end(), value), list.end());
}

constexpr std::span<const Asn> empty_span() noexcept { return {}; }

}  // namespace

std::uint64_t AsGraph::key(Asn a, Asn b) noexcept {
  const std::uint32_t lo = std::min(a.value(), b.value());
  const std::uint32_t hi = std::max(a.value(), b.value());
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

void AsGraph::add_as(Asn as) {
  if (!as.valid()) throw std::invalid_argument("AsGraph::add_as: invalid ASN");
  nodes_.try_emplace(as);
}

void AsGraph::detach(Asn a, Asn b, Stored stored) {
  const Asn lo = a.value() < b.value() ? a : b;
  const Asn hi = a.value() < b.value() ? b : a;
  Node& nlo = nodes_.at(lo);
  Node& nhi = nodes_.at(hi);
  switch (stored) {
    case Stored::kP2cLoHi:
      erase_value(nlo.customers, hi);
      erase_value(nhi.providers, lo);
      break;
    case Stored::kP2cHiLo:
      erase_value(nhi.customers, lo);
      erase_value(nlo.providers, hi);
      break;
    case Stored::kP2P:
      erase_value(nlo.peers, hi);
      erase_value(nhi.peers, lo);
      break;
    case Stored::kS2S:
      erase_value(nlo.siblings, hi);
      erase_value(nhi.siblings, lo);
      break;
  }
}

void AsGraph::set_relationship(Asn first, Asn second, LinkType type) {
  if (!first.valid() || !second.valid()) {
    throw std::invalid_argument("AsGraph::set_relationship: invalid ASN");
  }
  if (first == second) {
    throw std::invalid_argument("AsGraph::set_relationship: self-link");
  }
  add_as(first);
  add_as(second);
  const std::uint64_t k = key(first, second);
  if (const auto it = links_.find(k); it != links_.end()) {
    detach(first, second, it->second);
    links_.erase(it);
  }
  const bool first_is_lo = first.value() < second.value();
  Stored stored{};
  switch (type) {
    case LinkType::kP2C:
      stored = first_is_lo ? Stored::kP2cLoHi : Stored::kP2cHiLo;
      nodes_.at(first).customers.push_back(second);
      nodes_.at(second).providers.push_back(first);
      break;
    case LinkType::kP2P:
      stored = Stored::kP2P;
      nodes_.at(first).peers.push_back(second);
      nodes_.at(second).peers.push_back(first);
      break;
    case LinkType::kS2S:
      stored = Stored::kS2S;
      nodes_.at(first).siblings.push_back(second);
      nodes_.at(second).siblings.push_back(first);
      break;
  }
  links_.emplace(k, stored);
}

bool AsGraph::remove_link(Asn a, Asn b) {
  const auto it = links_.find(key(a, b));
  if (it == links_.end()) return false;
  detach(a, b, it->second);
  links_.erase(it);
  return true;
}

bool AsGraph::has_link(Asn a, Asn b) const noexcept {
  return links_.contains(key(a, b));
}

std::optional<RelView> AsGraph::view(Asn as, Asn neighbor) const noexcept {
  const auto it = links_.find(key(as, neighbor));
  if (it == links_.end()) return std::nullopt;
  const bool as_is_lo = as.value() < neighbor.value();
  switch (it->second) {
    case Stored::kP2cLoHi:
      return as_is_lo ? RelView::kCustomer : RelView::kProvider;
    case Stored::kP2cHiLo:
      return as_is_lo ? RelView::kProvider : RelView::kCustomer;
    case Stored::kP2P:
      return RelView::kPeer;
    case Stored::kS2S:
      return RelView::kSibling;
  }
  return std::nullopt;
}

std::optional<Link> AsGraph::link(Asn a, Asn b) const noexcept {
  const auto it = links_.find(key(a, b));
  if (it == links_.end()) return std::nullopt;
  const Asn lo = a.value() < b.value() ? a : b;
  const Asn hi = a.value() < b.value() ? b : a;
  switch (it->second) {
    case Stored::kP2cLoHi: return Link{lo, hi, LinkType::kP2C};
    case Stored::kP2cHiLo: return Link{hi, lo, LinkType::kP2C};
    case Stored::kP2P: return Link{lo, hi, LinkType::kP2P};
    case Stored::kS2S: return Link{lo, hi, LinkType::kS2S};
  }
  return std::nullopt;
}

std::vector<Asn> AsGraph::ases() const {
  std::vector<Asn> out;
  out.reserve(nodes_.size());
  for (const auto& [as, node] : nodes_) out.push_back(as);
  std::sort(out.begin(), out.end());
  return out;
}

std::span<const Asn> AsGraph::providers(Asn as) const noexcept {
  const auto it = nodes_.find(as);
  return it == nodes_.end() ? empty_span() : std::span<const Asn>(it->second.providers);
}

std::span<const Asn> AsGraph::customers(Asn as) const noexcept {
  const auto it = nodes_.find(as);
  return it == nodes_.end() ? empty_span() : std::span<const Asn>(it->second.customers);
}

std::span<const Asn> AsGraph::peers(Asn as) const noexcept {
  const auto it = nodes_.find(as);
  return it == nodes_.end() ? empty_span() : std::span<const Asn>(it->second.peers);
}

std::span<const Asn> AsGraph::siblings(Asn as) const noexcept {
  const auto it = nodes_.find(as);
  return it == nodes_.end() ? empty_span() : std::span<const Asn>(it->second.siblings);
}

std::vector<Asn> AsGraph::neighbors(Asn as) const {
  std::vector<Asn> out;
  const auto it = nodes_.find(as);
  if (it == nodes_.end()) return out;
  const Node& n = it->second;
  out.reserve(n.providers.size() + n.customers.size() + n.peers.size() + n.siblings.size());
  out.insert(out.end(), n.providers.begin(), n.providers.end());
  out.insert(out.end(), n.customers.begin(), n.customers.end());
  out.insert(out.end(), n.peers.begin(), n.peers.end());
  out.insert(out.end(), n.siblings.begin(), n.siblings.end());
  return out;
}

std::size_t AsGraph::degree(Asn as) const noexcept {
  const auto it = nodes_.find(as);
  if (it == nodes_.end()) return 0;
  const Node& n = it->second;
  return n.providers.size() + n.customers.size() + n.peers.size() + n.siblings.size();
}

AsGraph::LinkCounts AsGraph::link_counts() const noexcept {
  LinkCounts counts;
  for (const auto& [k, stored] : links_) {
    switch (stored) {
      case Stored::kP2cLoHi:
      case Stored::kP2cHiLo: ++counts.p2c; break;
      case Stored::kP2P: ++counts.p2p; break;
      case Stored::kS2S: ++counts.s2s; break;
    }
  }
  return counts;
}

std::vector<Link> AsGraph::links() const {
  std::vector<Link> out;
  out.reserve(links_.size());
  for (const auto& [k, stored] : links_) {
    const Asn lo(static_cast<std::uint32_t>(k >> 32));
    const Asn hi(static_cast<std::uint32_t>(k));
    switch (stored) {
      case Stored::kP2cLoHi: out.push_back({lo, hi, LinkType::kP2C}); break;
      case Stored::kP2cHiLo: out.push_back({hi, lo, LinkType::kP2C}); break;
      case Stored::kP2P: out.push_back({lo, hi, LinkType::kP2P}); break;
      case Stored::kS2S: out.push_back({lo, hi, LinkType::kS2S}); break;
    }
  }
  std::sort(out.begin(), out.end(), [](const Link& x, const Link& y) {
    const auto xa = std::min(x.a, x.b), xb = std::max(x.a, x.b);
    const auto ya = std::min(y.a, y.b), yb = std::max(y.a, y.b);
    if (xa != ya) return xa < ya;
    return xb < yb;
  });
  return out;
}

bool AsGraph::p2c_acyclic() const {
  // Kahn's algorithm over the provider->customer digraph.
  std::unordered_map<Asn, std::size_t> indegree;
  for (const auto& [as, node] : nodes_) indegree.emplace(as, node.providers.size());
  std::vector<Asn> queue;
  for (const auto& [as, deg] : indegree) {
    if (deg == 0) queue.push_back(as);
  }
  std::size_t visited = 0;
  while (!queue.empty()) {
    const Asn as = queue.back();
    queue.pop_back();
    ++visited;
    for (const Asn customer : customers(as)) {
      if (--indegree.at(customer) == 0) queue.push_back(customer);
    }
  }
  return visited == nodes_.size();
}

std::vector<Asn> AsGraph::provider_free_ases() const {
  std::vector<Asn> out;
  for (const auto& [as, node] : nodes_) {
    if (node.providers.empty() && !node.customers.empty()) out.push_back(as);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Asn> AsGraph::stub_ases() const {
  std::vector<Asn> out;
  for (const auto& [as, node] : nodes_) {
    if (node.customers.empty()) out.push_back(as);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace asrank
