#include "topology/prefix_table.h"

#include <algorithm>

namespace asrank {

bool PrefixTable::bit_at(const Prefix& prefix, unsigned index) noexcept {
  const unsigned width = prefix.max_length();
  return (prefix.bits() >> (width - 1 - index)) & 1;
}

PrefixTable::Node& PrefixTable::mutable_root(Prefix::Family family) {
  auto& root = family == Prefix::Family::kIpv4 ? v4_root_ : v6_root_;
  if (!root) root = std::make_unique<Node>();
  return *root;
}

bool PrefixTable::insert(const Prefix& prefix, Asn origin) {
  Node* node = &mutable_root(prefix.family());
  for (unsigned depth = 0; depth < prefix.length(); ++depth) {
    auto& child = node->child[bit_at(prefix, depth)];
    if (!child) child = std::make_unique<Node>();
    node = child.get();
  }
  const bool inserted = !node->origin.has_value();
  node->origin = origin;
  if (inserted) ++size_;
  return inserted;
}

bool PrefixTable::erase(const Prefix& prefix) {
  // Walk down recording the path, clear the terminal origin, then prune
  // childless non-terminal nodes on the way back up.
  auto& root = prefix.family() == Prefix::Family::kIpv4 ? v4_root_ : v6_root_;
  if (!root) return false;
  std::vector<Node*> path{root.get()};
  for (unsigned depth = 0; depth < prefix.length(); ++depth) {
    Node* next = path.back()->child[bit_at(prefix, depth)].get();
    if (!next) return false;
    path.push_back(next);
  }
  if (!path.back()->origin) return false;
  path.back()->origin.reset();
  --size_;
  for (unsigned depth = prefix.length(); depth > 0; --depth) {
    Node* node = path[depth];
    if (node->origin || node->child[0] || node->child[1]) break;
    path[depth - 1]->child[bit_at(prefix, depth - 1)].reset();
  }
  return true;
}

std::optional<Asn> PrefixTable::exact(const Prefix& prefix) const {
  const Node* node = root_for(prefix.family());
  for (unsigned depth = 0; node != nullptr && depth < prefix.length(); ++depth) {
    node = node->child[bit_at(prefix, depth)].get();
  }
  if (node == nullptr) return std::nullopt;
  return node->origin;
}

std::optional<PrefixTable::Match> PrefixTable::lookup(const Prefix& prefix) const {
  const Node* node = root_for(prefix.family());
  std::optional<Match> best;
  unsigned depth = 0;
  while (node != nullptr) {
    if (node->origin) {
      // The Prefix constructor canonicalizes (masks host bits below `depth`).
      best = Match{Prefix(prefix.family(), prefix.bits(), static_cast<std::uint8_t>(depth)),
                   *node->origin};
    }
    if (depth >= prefix.length()) break;
    node = node->child[bit_at(prefix, depth)].get();
    ++depth;
  }
  return best;
}

std::vector<PrefixTable::Match> PrefixTable::entries() const {
  std::vector<Match> out;
  struct Frame {
    const Node* node;
    unsigned __int128 bits;
    unsigned depth;
  };
  auto walk = [&out](const Node* root, Prefix::Family family, unsigned width) {
    if (root == nullptr) return;
    std::vector<Frame> stack{{root, 0, 0}};
    while (!stack.empty()) {
      const Frame frame = stack.back();
      stack.pop_back();
      if (frame.node->origin) {
        out.push_back({Prefix(family, frame.bits << (width - frame.depth),
                              static_cast<std::uint8_t>(frame.depth)),
                       *frame.node->origin});
      }
      // Push right child first so the left (0) branch pops first.
      if (frame.node->child[1]) {
        stack.push_back({frame.node->child[1].get(), (frame.bits << 1) | 1, frame.depth + 1});
      }
      if (frame.node->child[0]) {
        stack.push_back({frame.node->child[0].get(), frame.bits << 1, frame.depth + 1});
      }
    }
  };
  walk(v4_root_.get(), Prefix::Family::kIpv4, 32);
  walk(v6_root_.get(), Prefix::Family::kIpv6, 128);
  std::sort(out.begin(), out.end(), [](const Match& a, const Match& b) {
    return std::tuple(a.prefix.family(), a.prefix.bits(), a.prefix.length()) <
           std::tuple(b.prefix.family(), b.prefix.bits(), b.prefix.length());
  });
  return out;
}

}  // namespace asrank
