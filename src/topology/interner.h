// Dense ASN id space.
//
// Every hot layer of the library — staged inference, cone closure, the
// baselines, snapshot construction, and query serving — is dominated by
// per-AS lookups.  Raw 32-bit ASNs are sparse (a corpus of 50k ASes spans
// ids up to 2^32), so keying working state by Asn forces hash tables into
// every inner loop.  The AsnInterner maps the ASes that actually occur in a
// corpus or graph onto a dense, contiguous `NodeId` range [0, size()), so
// per-AS state becomes a flat array and adjacency becomes CSR
// (topology::TopologyView).
//
// The mapping is *deterministic and order-preserving*: NodeIds are assigned
// in ascending ASN order, so id comparisons equal ASN comparisons, sorted
// NodeId sequences translate to sorted ASN sequences without re-sorting, and
// the id space coincides with the node order of the ASRK1 snapshot format
// (whose AS table is also sorted ascending).  Two interners built from the
// same AS set are identical.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "asn/asn.h"

namespace asrank::topology {

/// Dense node index assigned by an AsnInterner.  32 bits: the public
/// Internet has < 2^17 ASes and every realistic corpus far fewer.
using NodeId = std::uint32_t;

/// Sentinel for "no node" (Asn not interned / BFS parent of a root).
inline constexpr NodeId kNoNode = 0xffffffffu;

class AsnInterner {
 public:
  AsnInterner() = default;

  /// Build from any list of ASNs (duplicates fine, order irrelevant).
  /// Invalid AS0 entries are ignored.
  [[nodiscard]] static AsnInterner from_asns(std::vector<Asn> asns) {
    std::sort(asns.begin(), asns.end());
    asns.erase(std::unique(asns.begin(), asns.end()), asns.end());
    if (!asns.empty() && !asns.front().valid()) asns.erase(asns.begin());
    return AsnInterner(std::move(asns));
  }

  /// Build from an already sorted, strictly ascending, AS0-free list (e.g.
  /// AsGraph::ases() or a snapshot AS table).  Cheapest constructor; the
  /// precondition is the caller's to uphold (checked in debug builds only).
  [[nodiscard]] static AsnInterner from_sorted_unique(std::vector<Asn> asns) {
    return AsnInterner(std::move(asns));
  }

  [[nodiscard]] std::size_t size() const noexcept { return asns_.size(); }
  [[nodiscard]] bool empty() const noexcept { return asns_.empty(); }

  /// All interned ASNs ascending; the vector index *is* the NodeId.
  [[nodiscard]] std::span<const Asn> asns() const noexcept { return asns_; }

  /// Dense id of `as`, or kNoNode when not interned.  O(log n) on a flat
  /// sorted array — no hashing, no pointer chasing.
  [[nodiscard]] NodeId id_of(Asn as) const noexcept {
    const auto it = std::lower_bound(asns_.begin(), asns_.end(), as);
    if (it == asns_.end() || *it != as) return kNoNode;
    return static_cast<NodeId>(it - asns_.begin());
  }

  [[nodiscard]] bool contains(Asn as) const noexcept { return id_of(as) != kNoNode; }

  /// Inverse mapping; `id` must be < size().
  [[nodiscard]] Asn asn_of(NodeId id) const noexcept { return asns_[id]; }

  /// Translate a hop sequence; unknown ASes become kNoNode.
  void translate(std::span<const Asn> hops, std::vector<NodeId>& out) const {
    out.clear();
    out.reserve(hops.size());
    for (const Asn as : hops) out.push_back(id_of(as));
  }

  friend bool operator==(const AsnInterner&, const AsnInterner&) = default;

 private:
  explicit AsnInterner(std::vector<Asn> sorted) : asns_(std::move(sorted)) {}

  std::vector<Asn> asns_;  ///< strictly ascending; index = NodeId
};

}  // namespace asrank::topology
