// Relationship-annotated AS-level graph.
//
// AsGraph is the central data structure of the library: the topology
// generator emits one as ground truth, the BGP simulator propagates routes
// over one, and every inference algorithm produces one as its output.  Links
// are undirected with a typed annotation; for p2c links the stored
// orientation identifies the provider.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "asn/asn.h"
#include "topology/relationship.h"

namespace asrank {

namespace topology {
class TopologyView;
}

/// One annotated link.  For kP2C, `a` is the provider and `b` the customer;
/// for kP2P/kS2S the order is normalized (a < b).
struct Link {
  Asn a;
  Asn b;
  LinkType type = LinkType::kP2P;

  friend bool operator==(const Link&, const Link&) = default;
};

class AsGraph {
 public:
  AsGraph() = default;

  /// Ensure an AS exists as an isolated node.
  void add_as(Asn as);

  /// Annotate (or re-annotate) the link between two distinct ASes.
  /// For kP2C, `first` is the provider.  Throws std::invalid_argument on
  /// self-links or invalid ASNs.
  void set_relationship(Asn first, Asn second, LinkType type);

  void add_p2c(Asn provider, Asn customer) { set_relationship(provider, customer, LinkType::kP2C); }
  void add_p2p(Asn a, Asn b) { set_relationship(a, b, LinkType::kP2P); }
  void add_s2s(Asn a, Asn b) { set_relationship(a, b, LinkType::kS2S); }

  /// Remove the link if present; returns true if removed.
  bool remove_link(Asn a, Asn b);

  [[nodiscard]] bool has_as(Asn as) const noexcept { return nodes_.contains(as); }
  [[nodiscard]] bool has_link(Asn a, Asn b) const noexcept;

  /// Relationship of `neighbor` from `as`'s perspective, if the link exists.
  [[nodiscard]] std::optional<RelView> view(Asn as, Asn neighbor) const noexcept;

  /// The raw link annotation (orientation normalized as stored).
  [[nodiscard]] std::optional<Link> link(Asn a, Asn b) const noexcept;

  [[nodiscard]] std::vector<Asn> ases() const;
  [[nodiscard]] std::span<const Asn> providers(Asn as) const noexcept;
  [[nodiscard]] std::span<const Asn> customers(Asn as) const noexcept;
  [[nodiscard]] std::span<const Asn> peers(Asn as) const noexcept;
  [[nodiscard]] std::span<const Asn> siblings(Asn as) const noexcept;

  /// All neighbours regardless of relationship.
  [[nodiscard]] std::vector<Asn> neighbors(Asn as) const;

  [[nodiscard]] std::size_t as_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }
  [[nodiscard]] std::size_t degree(Asn as) const noexcept;

  /// Count of links per type.
  struct LinkCounts {
    std::size_t p2c = 0;
    std::size_t p2p = 0;
    std::size_t s2s = 0;
  };
  [[nodiscard]] LinkCounts link_counts() const noexcept;

  /// Enumerate all links (stable order: sorted by normalized endpoints).
  [[nodiscard]] std::vector<Link> links() const;

  /// True iff the provider->customer digraph has no directed cycle
  /// (assumption A3 of the paper; also a generator invariant).
  [[nodiscard]] bool p2c_acyclic() const;

  /// ASes with no providers and at least one customer (transit roots).
  [[nodiscard]] std::vector<Asn> provider_free_ases() const;

  /// Stub ASes: no customers (degree counted over c2p/p2p links).
  [[nodiscard]] std::vector<Asn> stub_ases() const;

  /// Order-independent 64-bit key for an AS pair; exposed so callers can
  /// maintain side tables keyed by link (e.g. which links formed at an IXP).
  [[nodiscard]] static std::uint64_t link_key(Asn a, Asn b) noexcept { return key(a, b); }

  /// Freeze into an immutable CSR view (dense NodeId space, flat adjacency,
  /// clique bitmap) — the representation the read-dominated layers compute
  /// on.  See topology/topology_view.h.
  [[nodiscard]] topology::TopologyView freeze(std::span<const Asn> clique = {}) const;

 private:
  struct Node {
    std::vector<Asn> providers;
    std::vector<Asn> customers;
    std::vector<Asn> peers;
    std::vector<Asn> siblings;
  };

  /// Stored relationship for a normalized (lo < hi) pair.
  enum class Stored : std::uint8_t { kP2cLoHi, kP2cHiLo, kP2P, kS2S };

  static std::uint64_t key(Asn a, Asn b) noexcept;
  void detach(Asn a, Asn b, Stored stored);

  std::unordered_map<Asn, Node> nodes_;
  std::unordered_map<std::uint64_t, Stored> links_;
};

}  // namespace asrank
