#include "topology/graph_diff.h"

namespace asrank {

GraphDiff diff_graphs(const AsGraph& before, const AsGraph& after) {
  GraphDiff diff;
  for (const Link& link : before.links()) {
    const auto counterpart = after.link(link.a, link.b);
    if (!counterpart) {
      diff.removed.push_back(link);
    } else if (counterpart->type != link.type ||
               (link.type == LinkType::kP2C && counterpart->a != link.a)) {
      diff.changed.push_back({link, *counterpart});
    } else {
      ++diff.unchanged;
    }
  }
  for (const Link& link : after.links()) {
    if (!before.link(link.a, link.b)) diff.added.push_back(link);
  }
  return diff;
}

}  // namespace asrank
