// Blocked bitsets over dense node ids, plus the word-span kernels the hot
// paths are built from.  One bit per NodeId, 64 ids per machine word, so
// set algebra over id sets (cone unions in core/cones.cpp, cone
// intersection/diff in the serving layer's core::ConeBitset) runs as
// word-wise OR/AND/ANDNOT loops with popcount/countr_zero extraction —
// cache-linear, branch-light, and extraction order is ascending id, which
// is ascending ASN everywhere the snapshot id space is in play.  That
// ordering is what lets bitset kernels reproduce the sorted-array kernels
// byte for byte (locked down by tests/test_differential.cpp).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace asrank::topology {

/// Fixed-width bitset over node ids.
class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(std::size_t bits) : words_((bits + 63) / 64, 0) {}

  void set(std::size_t i) noexcept { words_[i >> 6] |= (1ULL << (i & 63)); }
  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  /// Word-wise OR of an equally-sized bitset.
  void merge(const DenseBitset& other) noexcept {
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  }

  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept { return words_; }
  [[nodiscard]] std::size_t word_count() const noexcept { return words_.size(); }

 private:
  std::vector<std::uint64_t> words_;
};

/// Number of set bits in a & b (over the shorter common prefix).
[[nodiscard]] inline std::size_t popcount_and(
    std::span<const std::uint64_t> a, std::span<const std::uint64_t> b) noexcept {
  const std::size_t n = std::min(a.size(), b.size());
  std::size_t total = 0;
  for (std::size_t w = 0; w < n; ++w) {
    total += static_cast<std::size_t>(std::popcount(a[w] & b[w]));
  }
  return total;
}

/// Invoke fn(bit_index) for every set bit of `words`, in ascending order.
template <typename Fn>
inline void for_each_bit(std::span<const std::uint64_t> words, Fn&& fn) {
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t word = words[w];
    while (word != 0) {
      fn((w << 6) + static_cast<std::size_t>(std::countr_zero(word)));
      word &= word - 1;
    }
  }
}

/// fn(bit_index) for every bit set in both a and b, ascending.
template <typename Fn>
inline void for_each_and(std::span<const std::uint64_t> a,
                         std::span<const std::uint64_t> b, Fn&& fn) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t w = 0; w < n; ++w) {
    std::uint64_t word = a[w] & b[w];
    while (word != 0) {
      fn((w << 6) + static_cast<std::size_t>(std::countr_zero(word)));
      word &= word - 1;
    }
  }
}

/// fn(bit_index) for every bit set in a but not b, ascending.  b may be
/// shorter than a; its missing tail is treated as all-zero.
template <typename Fn>
inline void for_each_andnot(std::span<const std::uint64_t> a,
                            std::span<const std::uint64_t> b, Fn&& fn) {
  for (std::size_t w = 0; w < a.size(); ++w) {
    std::uint64_t word = w < b.size() ? a[w] & ~b[w] : a[w];
    while (word != 0) {
      fn((w << 6) + static_cast<std::size_t>(std::countr_zero(word)));
      word &= word - 1;
    }
  }
}

}  // namespace asrank::topology
