#include "topology/topology_view.h"

#include <algorithm>

namespace asrank::topology {

TopologyView TopologyView::freeze(const AsGraph& graph, std::span<const Asn> clique) {
  TopologyView view;
  view.interner_ = AsnInterner::from_sorted_unique(graph.ases());
  const std::size_t n = view.interner_.size();

  view.adj_off_.assign(n + 1, 0);
  view.prov_off_.assign(n + 1, 0);
  view.cust_off_.assign(n + 1, 0);
  view.clique_bits_.assign((n + 63) / 64, 0);

  // One reusable row buffer: (neighbor id, RelView code), sorted by id.  The
  // interner is order-preserving, so sorting by id is sorting by ASN, and
  // every AsGraph neighbor is itself a graph node — id_of never misses.
  struct Entry {
    NodeId id;
    std::uint8_t rel;
  };
  std::vector<Entry> entries;
  for (NodeId node = 0; node < n; ++node) {
    const Asn as = view.interner_.asn_of(node);
    entries.clear();
    for (const Asn p : graph.providers(as)) {
      entries.push_back({view.interner_.id_of(p),
                         static_cast<std::uint8_t>(RelView::kProvider)});
    }
    for (const Asn c : graph.customers(as)) {
      entries.push_back({view.interner_.id_of(c),
                         static_cast<std::uint8_t>(RelView::kCustomer)});
    }
    for (const Asn p : graph.peers(as)) {
      entries.push_back({view.interner_.id_of(p),
                         static_cast<std::uint8_t>(RelView::kPeer)});
    }
    for (const Asn s : graph.siblings(as)) {
      entries.push_back({view.interner_.id_of(s),
                         static_cast<std::uint8_t>(RelView::kSibling)});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.id < b.id; });
    for (const Entry& entry : entries) {
      view.adj_nbr_.push_back(entry.id);
      view.adj_rel_.push_back(entry.rel);
      // Rows are id-ascending, so the per-class sub-rows inherit sortedness.
      if (entry.rel == static_cast<std::uint8_t>(RelView::kProvider)) {
        view.prov_nbr_.push_back(entry.id);
      } else if (entry.rel == static_cast<std::uint8_t>(RelView::kCustomer)) {
        view.cust_nbr_.push_back(entry.id);
      }
    }
    view.adj_off_[node + 1] = view.adj_nbr_.size();
    view.prov_off_[node + 1] = view.prov_nbr_.size();
    view.cust_off_[node + 1] = view.cust_nbr_.size();
  }

  for (const Asn member : clique) {
    const NodeId id = view.interner_.id_of(member);
    if (id == kNoNode) continue;
    if (!view.in_clique(id)) view.clique_.push_back(id);
    view.clique_bits_[id >> 6] |= 1ULL << (id & 63);
  }
  std::sort(view.clique_.begin(), view.clique_.end());

  return view;
}

std::optional<RelView> TopologyView::relationship(NodeId node, NodeId neighbor) const {
  const auto nbrs = neighbors(node);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), neighbor);
  if (it == nbrs.end() || *it != neighbor) return std::nullopt;
  return static_cast<RelView>(
      adj_rel_[adj_off_[node] + static_cast<std::size_t>(it - nbrs.begin())]);
}

}  // namespace asrank::topology
