// Longest-prefix-match table mapping prefixes to origin ASes.
//
// Every pipeline around the AS-relationship ecosystem needs IP-to-AS
// mapping: traceroute-based validation maps hop addresses to ASes, and
// collectors map NLRI to origins.  This is a binary radix (Patricia-style)
// trie over the canonical Prefix representation, supporting exact insert,
// longest-prefix lookup of more-specific prefixes, and enumeration.
// IPv4 and IPv6 coexist in one table (disjoint key spaces).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "asn/asn.h"
#include "asn/prefix.h"

namespace asrank {

class PrefixTable {
 public:
  PrefixTable() = default;

  // Deep trie; default special members would either copy node-by-node
  // (wrong implicitly) or leak semantics — keep it move-only.
  PrefixTable(const PrefixTable&) = delete;
  PrefixTable& operator=(const PrefixTable&) = delete;
  PrefixTable(PrefixTable&&) noexcept = default;
  PrefixTable& operator=(PrefixTable&&) noexcept = default;

  /// Insert or replace the origin for an exact prefix.  Returns true if the
  /// prefix was new.
  bool insert(const Prefix& prefix, Asn origin);

  /// Remove an exact prefix.  Returns true if it was present.
  bool erase(const Prefix& prefix);

  /// Origin of the exact prefix, if present.
  [[nodiscard]] std::optional<Asn> exact(const Prefix& prefix) const;

  /// Longest-prefix match: the most specific stored prefix containing
  /// `prefix` (which may be a host route, e.g. a /32).  Returns the matched
  /// prefix and its origin.
  struct Match {
    Prefix prefix;
    Asn origin;
  };
  [[nodiscard]] std::optional<Match> lookup(const Prefix& prefix) const;

  /// Convenience: longest-prefix match for an IPv4 address.
  [[nodiscard]] std::optional<Match> lookup_v4(std::uint32_t address) const {
    return lookup(Prefix::v4(address, 32));
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// All entries in canonical (family, bits, length) order.
  [[nodiscard]] std::vector<Match> entries() const;

 private:
  struct Node {
    std::unique_ptr<Node> child[2];
    std::optional<Asn> origin;  ///< set iff a prefix terminates here
  };

  /// Separate roots per family keep key spaces disjoint.
  [[nodiscard]] const Node* root_for(Prefix::Family family) const noexcept {
    return family == Prefix::Family::kIpv4 ? v4_root_.get() : v6_root_.get();
  }
  [[nodiscard]] Node& mutable_root(Prefix::Family family);

  static bool bit_at(const Prefix& prefix, unsigned index) noexcept;

  std::unique_ptr<Node> v4_root_;
  std::unique_ptr<Node> v6_root_;
  std::size_t size_ = 0;
};

}  // namespace asrank
