// Text serialization in CAIDA's published dataset formats, so this library's
// outputs are drop-in compatible with tooling built around the AS Rank data:
//
//   .as-rel:    "<provider>|<customer>|-1", "<peer>|<peer>|0" (s2s = 2),
//               '#'-prefixed comment lines.
//   .ppdc-ases: "<as> <cone-member> <cone-member> ..." one AS per line,
//               the AS itself included as the first member.
#pragma once

#include <iosfwd>
#include <map>
#include <vector>

#include "asn/asn.h"
#include "topology/as_graph.h"
#include "util/result.h"

namespace asrank {

/// Write the graph in .as-rel format (deterministic link order).
void write_as_rel(const AsGraph& graph, std::ostream& os);

/// Parse .as-rel text.  Strict: ASNs are plain decimal (no "AS" prefix or
/// asdot), relationship codes must be known, and duplicate links, self
/// links, and AS0 are rejected.  Every failure yields ErrorCode::kCorrupt
/// with context "line <n>: <what>".
[[nodiscard]] Result<AsGraph> try_read_as_rel(std::istream& is);

/// Throwing boundary wrapper over try_read_as_rel: Error ->
/// std::runtime_error carrying the identical "line <n>: ..." message.
[[nodiscard]] AsGraph read_as_rel(std::istream& is);

/// Customer cones keyed by AS, each cone sorted ascending and containing the
/// AS itself (CAIDA convention).
using ConeMap = std::map<Asn, std::vector<Asn>>;

/// Write cones in .ppdc-ases format.
void write_ppdc(const ConeMap& cones, std::ostream& os);

/// Parse .ppdc-ases text.  Strict: plain decimal ASNs, members strictly
/// ascending and containing the AS itself, one line per AS.  Every failure
/// yields ErrorCode::kCorrupt with context "line <n>: <what>".
[[nodiscard]] Result<ConeMap> try_read_ppdc(std::istream& is);

/// Throwing boundary wrapper over try_read_ppdc: Error -> std::runtime_error
/// carrying the identical "line <n>: ..." message.
[[nodiscard]] ConeMap read_ppdc(std::istream& is);

}  // namespace asrank
