// Business relationship vocabulary (paper §1).
//
// The two primary interconnection forms are transit (customer-to-provider,
// c2p; equivalently provider-to-customer, p2c viewed from the other end) and
// settlement-free peering (p2p).  Sibling (s2s) links connect ASes under
// common ownership and are exchanged freely; the generator can produce them
// and the validation corpus can report them, though the core inference
// algorithm (like the paper's) classifies visible links as c2p or p2p only.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace asrank {

/// Undirected link annotation.  For kP2C the stored orientation matters:
/// the first AS of the stored link is the provider.
enum class LinkType : std::uint8_t {
  kP2C,  ///< transit: first AS sells transit to second
  kP2P,  ///< settlement-free peering
  kS2S,  ///< siblings (common ownership)
};

/// Relationship of a neighbour as seen from one AS's perspective.
enum class RelView : std::uint8_t {
  kProvider,  ///< the neighbour provides transit to this AS
  kCustomer,  ///< the neighbour buys transit from this AS
  kPeer,
  kSibling,
};

/// CAIDA .as-rel encoding: p2c = -1 (provider|customer|-1), p2p = 0,
/// s2s = 2 (extension used by sibling-aware datasets).
[[nodiscard]] constexpr int as_rel_code(LinkType t) noexcept {
  switch (t) {
    case LinkType::kP2C: return -1;
    case LinkType::kP2P: return 0;
    case LinkType::kS2S: return 2;
  }
  return 0;
}

[[nodiscard]] constexpr std::optional<LinkType> link_type_from_code(int code) noexcept {
  switch (code) {
    case -1: return LinkType::kP2C;
    case 0: return LinkType::kP2P;
    case 2: return LinkType::kS2S;
    default: return std::nullopt;
  }
}

[[nodiscard]] constexpr std::string_view to_string(LinkType t) noexcept {
  switch (t) {
    case LinkType::kP2C: return "p2c";
    case LinkType::kP2P: return "p2p";
    case LinkType::kS2S: return "s2s";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(RelView v) noexcept {
  switch (v) {
    case RelView::kProvider: return "provider";
    case RelView::kCustomer: return "customer";
    case RelView::kPeer: return "peer";
    case RelView::kSibling: return "sibling";
  }
  return "?";
}

}  // namespace asrank
