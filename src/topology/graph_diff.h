// Relationship-graph diff: the longitudinal comparison CAIDA's consumers
// run between monthly .as-rel snapshots — which links appeared, which
// vanished, and which changed relationship (peering upgrades/downgrades,
// provider flips).
#pragma once

#include <cstddef>
#include <vector>

#include "topology/as_graph.h"

namespace asrank {

struct LinkChange {
  Link before;
  Link after;

  friend bool operator==(const LinkChange&, const LinkChange&) = default;
};

struct GraphDiff {
  std::vector<Link> added;          ///< in `after` only
  std::vector<Link> removed;        ///< in `before` only
  std::vector<LinkChange> changed;  ///< different type or p2c orientation
  std::size_t unchanged = 0;

  [[nodiscard]] bool empty() const noexcept {
    return added.empty() && removed.empty() && changed.empty();
  }

  /// Links present in both snapshots.
  [[nodiscard]] std::size_t common() const noexcept { return unchanged + changed.size(); }

  /// Fraction of common links whose annotation is stable.
  [[nodiscard]] double stability() const noexcept {
    const std::size_t base = common();
    return base == 0 ? 1.0 : static_cast<double>(unchanged) / static_cast<double>(base);
  }
};

/// Compare two graphs link-by-link.  Output vectors are in deterministic
/// (normalized endpoint) order.
[[nodiscard]] GraphDiff diff_graphs(const AsGraph& before, const AsGraph& after);

}  // namespace asrank
