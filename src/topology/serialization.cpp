#include "topology/serialization.h"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "util/strings.h"

namespace asrank {

namespace {

/// Parse failures ride the Result rail as kCorrupt; the context string is
/// exactly the message the throwing wrappers historically raised.
[[nodiscard]] Error fail(std::size_t line_no, const std::string& what) {
  return make_error(ErrorCode::kCorrupt,
                    "line " + std::to_string(line_no) + ": " + what);
}

/// Strict dataset-file ASN: plain decimal only.  The lenient Asn::parse
/// (which also takes "AS64500" and asdot "1.2") is for human input; in
/// .as-rel/.ppdc files those spellings are junk and must be rejected.
std::optional<Asn> parse_field_asn(std::string_view field) {
  const auto value = util::parse_unsigned<std::uint32_t>(field);
  if (!value || *value == 0) return std::nullopt;
  return Asn(*value);
}

}  // namespace

void write_as_rel(const AsGraph& graph, std::ostream& os) {
  os << "# " << graph.as_count() << " ASes, " << graph.link_count() << " links\n";
  os << "# format: <provider|peer>|<customer|peer>|<-1 p2c, 0 p2p, 2 s2s>\n";
  for (const Link& link : graph.links()) {
    os << link.a.value() << '|' << link.b.value() << '|' << as_rel_code(link.type) << '\n';
  }
}

Result<AsGraph> try_read_as_rel(std::istream& is) {
  AsGraph graph;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto text = util::trim(line);
    if (text.empty() || text.front() == '#') continue;
    const auto fields = util::split(text, '|', /*keep_empty=*/true);
    if (fields.size() != 3) return fail(line_no, "expected 3 '|'-separated fields");
    const auto a = parse_field_asn(fields[0]);
    const auto b = parse_field_asn(fields[1]);
    if (!a || !b) return fail(line_no, "malformed ASN field");
    const auto code = util::parse_unsigned<std::uint32_t>(
        fields[2].starts_with('-') ? fields[2].substr(1) : fields[2]);
    if (!code) return fail(line_no, "malformed relationship code");
    const int rel_code = fields[2].starts_with('-') ? -static_cast<int>(*code)
                                                    : static_cast<int>(*code);
    const auto type = link_type_from_code(rel_code);
    if (!type) return fail(line_no, "unknown relationship code " + std::to_string(rel_code));
    if (graph.has_link(*a, *b)) {
      return fail(line_no, "duplicate link " + a->str() + "|" + b->str());
    }
    try {
      graph.set_relationship(*a, *b, *type);
    } catch (const std::exception& error) {
      return fail(line_no, error.what());
    }
  }
  return graph;
}

AsGraph read_as_rel(std::istream& is) {
  auto parsed = try_read_as_rel(is);
  if (!parsed.ok()) throw std::runtime_error(parsed.error().context);
  return std::move(parsed).value();
}

void write_ppdc(const ConeMap& cones, std::ostream& os) {
  os << "# format: <as> <cone member> ...\n";
  for (const auto& [as, members] : cones) {
    os << as.value();
    for (const Asn member : members) os << ' ' << member.value();
    os << '\n';
  }
}

Result<ConeMap> try_read_ppdc(std::istream& is) {
  ConeMap cones;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto text = util::trim(line);
    if (text.empty() || text.front() == '#') continue;
    const auto tokens = util::split_ws(text);
    const auto as = parse_field_asn(tokens[0]);
    if (!as) return fail(line_no, "malformed AS");
    std::vector<Asn> members;
    members.reserve(tokens.size() - 1);
    bool has_self = false;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      const auto member = parse_field_asn(tokens[i]);
      if (!member) return fail(line_no, "malformed cone member '" + std::string(tokens[i]) + "'");
      if (!members.empty() && !(members.back() < *member)) {
        return fail(line_no, "cone members not strictly ascending");
      }
      has_self = has_self || *member == *as;
      members.push_back(*member);
    }
    if (!has_self) return fail(line_no, "cone does not contain its own AS");
    if (!cones.emplace(*as, std::move(members)).second) {
      return fail(line_no, "duplicate cone for AS" + as->str());
    }
  }
  return cones;
}

ConeMap read_ppdc(std::istream& is) {
  auto parsed = try_read_ppdc(is);
  if (!parsed.ok()) throw std::runtime_error(parsed.error().context);
  return std::move(parsed).value();
}

}  // namespace asrank
