#include "core/cones.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace asrank::core {

namespace {

/// Fixed-width bitset over AS indices for fast cone unions.
class Bits {
 public:
  explicit Bits(std::size_t n) : blocks_((n + 63) / 64, 0) {}
  void set(std::size_t i) noexcept { blocks_[i >> 6] |= (1ULL << (i & 63)); }
  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (blocks_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void merge(const Bits& other) noexcept {
    for (std::size_t b = 0; b < blocks_.size(); ++b) blocks_[b] |= other.blocks_[b];
  }

 private:
  std::vector<std::uint64_t> blocks_;
};

/// Memoized post-order closure over an arbitrary p2c sub-relation given as
/// index adjacency (provider index -> customer indices).
ConeMap closure(const std::vector<Asn>& ases,
                const std::vector<std::vector<std::size_t>>& customers) {
  const std::size_t n = ases.size();
  std::vector<Bits> cones(n, Bits(n));
  std::vector<std::uint8_t> state(n, 0);  // 0 = new, 1 = visiting, 2 = done

  for (std::size_t root = 0; root < n; ++root) {
    if (state[root] == 2) continue;
    // Iterative DFS post-order.
    std::vector<std::pair<std::size_t, std::size_t>> frames{{root, 0}};
    while (!frames.empty()) {
      const std::size_t node = frames.back().first;
      std::size_t& child = frames.back().second;
      if (child == 0) {
        if (state[node] == 2) {
          frames.pop_back();
          continue;
        }
        state[node] = 1;
        cones[node].set(node);
      }
      if (child < customers[node].size()) {
        const std::size_t next = customers[node][child];
        ++child;
        if (state[next] == 1) {
          throw std::invalid_argument("customer cones: provider graph has a cycle");
        }
        if (state[next] != 2) frames.push_back({next, 0});
        continue;
      }
      for (const std::size_t c : customers[node]) cones[node].merge(cones[c]);
      state[node] = 2;
      frames.pop_back();
    }
  }

  ConeMap out;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<Asn> members;
    for (std::size_t j = 0; j < n; ++j) {
      if (cones[i].test(j)) members.push_back(ases[j]);
    }
    out.emplace(ases[i], std::move(members));
  }
  return out;
}

std::unordered_map<Asn, std::size_t> index_of(const std::vector<Asn>& ases) {
  std::unordered_map<Asn, std::size_t> index;
  index.reserve(ases.size());
  for (std::size_t i = 0; i < ases.size(); ++i) index.emplace(ases[i], i);
  return index;
}

bool is_p2c(const AsGraph& graph, Asn left, Asn right) {
  const auto view = graph.view(left, right);
  return view && *view == RelView::kCustomer;  // right is left's customer
}

}  // namespace

ConeMap recursive_cone(const AsGraph& graph) {
  const std::vector<Asn> ases = graph.ases();
  const auto index = index_of(ases);
  std::vector<std::vector<std::size_t>> customers(ases.size());
  for (std::size_t i = 0; i < ases.size(); ++i) {
    for (const Asn customer : graph.customers(ases[i])) {
      customers[i].push_back(index.at(customer));
    }
  }
  return closure(ases, customers);
}

ConeMap bgp_observed_cone(const AsGraph& graph, const paths::PathCorpus& corpus) {
  std::unordered_map<Asn, std::unordered_set<Asn>> cones;
  for (const Asn as : graph.ases()) cones[as].insert(as);

  for (const paths::PathRecord& record : corpus.records()) {
    const auto hops = record.path.hops();
    if (hops.size() < 2) continue;
    // reach_end[i]: last index of the contiguous p2c descent starting at i.
    // Computed right-to-left in one pass.
    std::vector<std::size_t> reach_end(hops.size());
    reach_end[hops.size() - 1] = hops.size() - 1;
    for (std::size_t i = hops.size() - 1; i-- > 0;) {
      reach_end[i] = is_p2c(graph, hops[i], hops[i + 1]) ? reach_end[i + 1] : i;
    }
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      auto& cone = cones[hops[i]];
      for (std::size_t j = i + 1; j <= reach_end[i]; ++j) cone.insert(hops[j]);
    }
  }

  ConeMap out;
  for (auto& [as, members] : cones) {
    std::vector<Asn> sorted(members.begin(), members.end());
    std::sort(sorted.begin(), sorted.end());
    out.emplace(as, std::move(sorted));
  }
  return out;
}

ConeMap provider_peer_observed_cone(const AsGraph& graph, const paths::PathCorpus& corpus) {
  // Collect p2c links observed while descending from above: the provider
  // hop was itself preceded by one of its providers or peers.
  const std::vector<Asn> ases = graph.ases();
  const auto index = index_of(ases);
  std::vector<std::unordered_set<std::size_t>> filtered(ases.size());

  for (const paths::PathRecord& record : corpus.records()) {
    const auto hops = record.path.hops();
    for (std::size_t i = 1; i + 1 < hops.size(); ++i) {
      const auto preceding = graph.view(hops[i], hops[i - 1]);
      const bool from_above = preceding && (*preceding == RelView::kProvider ||
                                            *preceding == RelView::kPeer);
      if (!from_above) continue;
      // Every contiguous p2c link after i is proven to carry traffic downward.
      for (std::size_t j = i; j + 1 < hops.size(); ++j) {
        if (!is_p2c(graph, hops[j], hops[j + 1])) break;
        filtered[index.at(hops[j])].insert(index.at(hops[j + 1]));
      }
    }
  }

  std::vector<std::vector<std::size_t>> customers(ases.size());
  for (std::size_t i = 0; i < ases.size(); ++i) {
    customers[i].assign(filtered[i].begin(), filtered[i].end());
    std::sort(customers[i].begin(), customers[i].end());
  }
  return closure(ases, customers);
}

ConeMap compute_cone(ConeMethod method, const AsGraph& graph,
                     const paths::PathCorpus& corpus) {
  switch (method) {
    case ConeMethod::kRecursive: return recursive_cone(graph);
    case ConeMethod::kBgpObserved: return bgp_observed_cone(graph, corpus);
    case ConeMethod::kProviderPeerObserved: return provider_peer_observed_cone(graph, corpus);
  }
  throw std::invalid_argument("compute_cone: unknown method");
}

}  // namespace asrank::core
