#include "core/cones.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/thread_pool.h"

namespace asrank::core {

namespace {

/// Fixed-width bitset over AS indices for fast cone unions.
class Bits {
 public:
  explicit Bits(std::size_t n) : blocks_((n + 63) / 64, 0) {}
  void set(std::size_t i) noexcept { blocks_[i >> 6] |= (1ULL << (i & 63)); }
  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (blocks_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void merge(const Bits& other) noexcept {
    for (std::size_t b = 0; b < blocks_.size(); ++b) blocks_[b] |= other.blocks_[b];
  }
  [[nodiscard]] const std::vector<std::uint64_t>& blocks() const noexcept { return blocks_; }

 private:
  std::vector<std::uint64_t> blocks_;
};

/// Set-bit extraction in index order, skipping zero words.
std::vector<Asn> members_of(const Bits& bits, const std::vector<Asn>& ases) {
  std::vector<Asn> members;
  const auto& blocks = bits.blocks();
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    std::uint64_t word = blocks[b];
    while (word != 0) {
      members.push_back(ases[(b << 6) + static_cast<std::size_t>(std::countr_zero(word))]);
      word &= word - 1;
    }
  }
  return members;
}

/// Reverse-topological levels of the customer DAG: level 0 holds childless
/// nodes, and every node sits strictly above all of its customers.  Within a
/// level no node depends on another, which is what makes the level-parallel
/// closure race-free.  Throws on cycles (assumption A3), like the DFS path.
std::vector<std::vector<std::size_t>> reverse_topo_levels(
    const std::vector<std::vector<std::size_t>>& customers) {
  const std::size_t n = customers.size();
  std::vector<std::size_t> pending(n, 0);
  std::vector<std::vector<std::size_t>> parents(n);
  for (std::size_t i = 0; i < n; ++i) {
    pending[i] = customers[i].size();
    for (const std::size_t c : customers[i]) parents[c].push_back(i);
  }

  std::vector<std::vector<std::size_t>> levels;
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < n; ++i) {
    if (pending[i] == 0) frontier.push_back(i);
  }
  std::size_t finalized = 0;
  while (!frontier.empty()) {
    finalized += frontier.size();
    std::vector<std::size_t> next;
    for (const std::size_t node : frontier) {
      for (const std::size_t p : parents[node]) {
        if (--pending[p] == 0) next.push_back(p);
      }
    }
    std::sort(next.begin(), next.end());
    levels.push_back(std::move(frontier));
    frontier = std::move(next);
  }
  if (finalized != n) {
    throw std::invalid_argument("customer cones: provider graph has a cycle");
  }
  return levels;
}

/// Memoized post-order closure over an arbitrary p2c sub-relation given as
/// index adjacency (provider index -> customer indices).  threads == 1 runs
/// the legacy sequential DFS; more workers merge each reverse-topological
/// level in parallel — every node writes only its own cone and reads only
/// cones from strictly lower levels, so the bitsets (and therefore the
/// output) are identical at any worker count.
ConeMap closure(const std::vector<Asn>& ases,
                const std::vector<std::vector<std::size_t>>& customers,
                std::size_t threads) {
  const std::size_t n = ases.size();
  util::ThreadPool pool(threads);
  std::vector<Bits> cones(n, Bits(n));

  if (pool.worker_count() <= 1) {
    std::vector<std::uint8_t> state(n, 0);  // 0 = new, 1 = visiting, 2 = done
    for (std::size_t root = 0; root < n; ++root) {
      if (state[root] == 2) continue;
      // Iterative DFS post-order.
      std::vector<std::pair<std::size_t, std::size_t>> frames{{root, 0}};
      while (!frames.empty()) {
        const std::size_t node = frames.back().first;
        std::size_t& child = frames.back().second;
        if (child == 0) {
          if (state[node] == 2) {
            frames.pop_back();
            continue;
          }
          state[node] = 1;
          cones[node].set(node);
        }
        if (child < customers[node].size()) {
          const std::size_t next = customers[node][child];
          ++child;
          if (state[next] == 1) {
            throw std::invalid_argument("customer cones: provider graph has a cycle");
          }
          if (state[next] != 2) frames.push_back({next, 0});
          continue;
        }
        for (const std::size_t c : customers[node]) cones[node].merge(cones[c]);
        state[node] = 2;
        frames.pop_back();
      }
    }
  } else {
    for (const std::vector<std::size_t>& level : reverse_topo_levels(customers)) {
      pool.for_each_index(level.size(), [&](std::size_t k) {
        const std::size_t node = level[k];
        cones[node].set(node);
        for (const std::size_t c : customers[node]) cones[node].merge(cones[c]);
      });
    }
  }

  std::vector<std::vector<Asn>> members(n);
  pool.for_each_index(n, [&](std::size_t i) { members[i] = members_of(cones[i], ases); });
  ConeMap out;
  for (std::size_t i = 0; i < n; ++i) out.emplace(ases[i], std::move(members[i]));
  return out;
}

std::unordered_map<Asn, std::size_t> index_of(const std::vector<Asn>& ases) {
  std::unordered_map<Asn, std::size_t> index;
  index.reserve(ases.size());
  for (std::size_t i = 0; i < ases.size(); ++i) index.emplace(ases[i], i);
  return index;
}

bool is_p2c(const AsGraph& graph, Asn left, Asn right) {
  const auto view = graph.view(left, right);
  return view && *view == RelView::kCustomer;  // right is left's customer
}

}  // namespace

ConeMap recursive_cone(const AsGraph& graph, std::size_t threads) {
  const std::vector<Asn> ases = graph.ases();
  const auto index = index_of(ases);
  std::vector<std::vector<std::size_t>> customers(ases.size());
  for (std::size_t i = 0; i < ases.size(); ++i) {
    for (const Asn customer : graph.customers(ases[i])) {
      customers[i].push_back(index.at(customer));
    }
  }
  return closure(ases, customers, threads);
}

ConeMap bgp_observed_cone(const AsGraph& graph, const paths::PathCorpus& corpus,
                          std::size_t threads) {
  using SetMap = std::unordered_map<Asn, std::unordered_set<Asn>>;
  util::ThreadPool pool(threads);
  const auto records = corpus.records();

  // Per-chunk membership sets merged by set union: commutative, so the
  // ordered reduction yields the sequential result at any worker count.
  SetMap cones = pool.map_reduce<SetMap>(
      records.size(), SetMap{},
      [&](std::size_t begin, std::size_t end) {
        SetMap local;
        for (std::size_t r = begin; r < end; ++r) {
          const auto hops = records[r].path.hops();
          if (hops.size() < 2) continue;
          // reach_end[i]: last index of the contiguous p2c descent starting
          // at i.  Computed right-to-left in one pass.
          std::vector<std::size_t> reach_end(hops.size());
          reach_end[hops.size() - 1] = hops.size() - 1;
          for (std::size_t i = hops.size() - 1; i-- > 0;) {
            reach_end[i] = is_p2c(graph, hops[i], hops[i + 1]) ? reach_end[i + 1] : i;
          }
          for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
            auto& cone = local[hops[i]];
            for (std::size_t j = i + 1; j <= reach_end[i]; ++j) cone.insert(hops[j]);
          }
        }
        return local;
      },
      [](SetMap& acc, SetMap&& part) {
        for (auto& [as, members] : part) {
          acc[as].insert(members.begin(), members.end());
        }
      });
  for (const Asn as : graph.ases()) cones[as].insert(as);

  ConeMap out;
  for (auto& [as, members] : cones) {
    std::vector<Asn> sorted(members.begin(), members.end());
    std::sort(sorted.begin(), sorted.end());
    out.emplace(as, std::move(sorted));
  }
  return out;
}

ConeMap provider_peer_observed_cone(const AsGraph& graph, const paths::PathCorpus& corpus,
                                    std::size_t threads) {
  // Collect p2c links observed while descending from above: the provider
  // hop was itself preceded by one of its providers or peers.
  const std::vector<Asn> ases = graph.ases();
  const auto index = index_of(ases);
  using LinkSets = std::vector<std::unordered_set<std::size_t>>;
  util::ThreadPool pool(threads);
  const auto records = corpus.records();

  LinkSets filtered = pool.map_reduce<LinkSets>(
      records.size(), LinkSets(ases.size()),
      [&](std::size_t begin, std::size_t end) {
        LinkSets local(ases.size());
        for (std::size_t r = begin; r < end; ++r) {
          const auto hops = records[r].path.hops();
          for (std::size_t i = 1; i + 1 < hops.size(); ++i) {
            const auto preceding = graph.view(hops[i], hops[i - 1]);
            const bool from_above = preceding && (*preceding == RelView::kProvider ||
                                                  *preceding == RelView::kPeer);
            if (!from_above) continue;
            // Every contiguous p2c link after i is proven to carry traffic
            // downward.
            for (std::size_t j = i; j + 1 < hops.size(); ++j) {
              if (!is_p2c(graph, hops[j], hops[j + 1])) break;
              local[index.at(hops[j])].insert(index.at(hops[j + 1]));
            }
          }
        }
        return local;
      },
      [](LinkSets& acc, LinkSets&& part) {
        for (std::size_t i = 0; i < acc.size(); ++i) {
          acc[i].insert(part[i].begin(), part[i].end());
        }
      });

  std::vector<std::vector<std::size_t>> customers(ases.size());
  for (std::size_t i = 0; i < ases.size(); ++i) {
    customers[i].assign(filtered[i].begin(), filtered[i].end());
    std::sort(customers[i].begin(), customers[i].end());
  }
  return closure(ases, customers, threads);
}

ConeMap compute_cone(ConeMethod method, const AsGraph& graph,
                     const paths::PathCorpus& corpus, std::size_t threads) {
  switch (method) {
    case ConeMethod::kRecursive: return recursive_cone(graph, threads);
    case ConeMethod::kBgpObserved: return bgp_observed_cone(graph, corpus, threads);
    case ConeMethod::kProviderPeerObserved:
      return provider_peer_observed_cone(graph, corpus, threads);
  }
  throw std::invalid_argument("compute_cone: unknown method");
}

}  // namespace asrank::core
