#include "core/cones.h"

#include <algorithm>
#include <bit>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/timer.h"
#include "topology/bitset.h"
#include "topology/graph_diff.h"
#include "util/thread_pool.h"

namespace asrank::core {

namespace {

using topology::AsnInterner;
using topology::kNoNode;
using topology::NodeId;
using topology::TopologyView;

/// Fixed-width bitset over node ids for fast cone unions (the shared
/// blocked-bitset utility also backing core::ConeBitset in the serving
/// layer).
using Bits = topology::DenseBitset;

/// Set-bit extraction in id order (== ascending ASN), skipping zero words.
std::vector<Asn> members_of(const Bits& bits, const AsnInterner& interner) {
  std::vector<Asn> members;
  topology::for_each_bit(bits.words(), [&](std::size_t id) {
    members.push_back(interner.asn_of(static_cast<NodeId>(id)));
  });
  return members;
}

/// Reverse-topological levels of the customer DAG: level 0 holds childless
/// nodes, and every node sits strictly above all of its customers.  Within a
/// level no node depends on another, which is what makes the level-parallel
/// closure race-free.  Throws on cycles (assumption A3), like the DFS path.
template <typename CustomersFn>
std::vector<std::vector<NodeId>> reverse_topo_levels(std::size_t n,
                                                     const CustomersFn& customers) {
  std::vector<std::size_t> pending(n, 0);
  std::vector<std::vector<NodeId>> parents(n);
  for (NodeId i = 0; i < n; ++i) {
    const auto row = customers(i);
    pending[i] = row.size();
    for (const NodeId c : row) parents[c].push_back(i);
  }

  std::vector<std::vector<NodeId>> levels;
  std::vector<NodeId> frontier;
  for (NodeId i = 0; i < n; ++i) {
    if (pending[i] == 0) frontier.push_back(i);
  }
  std::size_t finalized = 0;
  while (!frontier.empty()) {
    finalized += frontier.size();
    std::vector<NodeId> next;
    for (const NodeId node : frontier) {
      for (const NodeId p : parents[node]) {
        if (--pending[p] == 0) next.push_back(p);
      }
    }
    std::sort(next.begin(), next.end());
    levels.push_back(std::move(frontier));
    frontier = std::move(next);
  }
  if (finalized != n) {
    throw std::invalid_argument("customer cones: provider graph has a cycle");
  }
  return levels;
}

/// Memoized post-order closure over an arbitrary p2c sub-relation given as a
/// per-node customer-row accessor (NodeId -> span<const NodeId>).  The loop
/// body is pure array traversal plus bitset unions — no hashing anywhere.
/// threads == 1 runs the legacy sequential DFS; more workers merge each
/// reverse-topological level in parallel — every node writes only its own
/// cone and reads only cones from strictly lower levels, so the bitsets (and
/// therefore the output) are identical at any worker count.
template <typename CustomersFn>
ConeMap closure(const AsnInterner& interner, const CustomersFn& customers,
                std::size_t threads) {
  obs::StageTimer stage_timer("cone_closure");
  const std::size_t n = interner.size();
  util::ThreadPool pool(threads);
  std::vector<Bits> cones(n, Bits(n));

  if (pool.worker_count() <= 1) {
    std::vector<std::uint8_t> state(n, 0);  // 0 = new, 1 = visiting, 2 = done
    for (NodeId root = 0; root < n; ++root) {
      if (state[root] == 2) continue;
      // Iterative DFS post-order.
      std::vector<std::pair<NodeId, std::size_t>> frames{{root, 0}};
      while (!frames.empty()) {
        const NodeId node = frames.back().first;
        std::size_t& child = frames.back().second;
        const auto row = customers(node);
        if (child == 0) {
          if (state[node] == 2) {
            frames.pop_back();
            continue;
          }
          state[node] = 1;
          cones[node].set(node);
        }
        if (child < row.size()) {
          const NodeId next = row[child];
          ++child;
          if (state[next] == 1) {
            throw std::invalid_argument("customer cones: provider graph has a cycle");
          }
          if (state[next] != 2) frames.push_back({next, 0});
          continue;
        }
        for (const NodeId c : row) cones[node].merge(cones[c]);
        state[node] = 2;
        frames.pop_back();
      }
    }
  } else {
    for (const std::vector<NodeId>& level : reverse_topo_levels(n, customers)) {
      pool.for_each_index(level.size(), [&](std::size_t k) {
        const NodeId node = level[k];
        cones[node].set(node);
        for (const NodeId c : customers(node)) cones[node].merge(cones[c]);
      });
    }
  }

  std::vector<std::vector<Asn>> members(n);
  pool.for_each_index(n, [&](std::size_t i) { members[i] = members_of(cones[i], interner); });
  ConeMap out;
  for (NodeId i = 0; i < n; ++i) out.emplace(interner.asn_of(i), std::move(members[i]));
  return out;
}

/// Is the link a -> b a known p2c (b is a's customer)?  kNoNode-safe.
bool is_p2c(const TopologyView& view, NodeId a, NodeId b) {
  if (a == kNoNode || b == kNoNode) return false;
  const auto rel = view.relationship(a, b);
  return rel && *rel == RelView::kCustomer;
}

}  // namespace

ConeMap recursive_cone(const TopologyView& view, std::size_t threads) {
  return closure(view.interner(), [&](NodeId node) { return view.customers(node); },
                 threads);
}

ConeMap recursive_cone(const AsGraph& graph, std::size_t threads) {
  return recursive_cone(graph.freeze(), threads);
}

ConeMap recursive_cone_incremental(const AsGraph& before, const ConeMap& before_cones,
                                   const AsGraph& after, double full_threshold,
                                   std::size_t threads, IncrementalConeStats* stats) {
  obs::StageTimer stage_timer("cone_incremental");
  IncrementalConeStats local;

  const GraphDiff diff = diff_graphs(before, after);
  local.changed_links = diff.added.size() + diff.removed.size() + diff.changed.size();

  // Seeds: endpoints of every touched link, plus ASes with no prior cone
  // (new nodes, or callers that handed us a partial base map).
  std::set<Asn> dirty;
  const auto seed_link = [&](const Link& link) {
    dirty.insert(link.a);
    dirty.insert(link.b);
  };
  for (const Link& link : diff.added) seed_link(link);
  for (const Link& link : diff.removed) seed_link(link);
  for (const LinkChange& change : diff.changed) {
    seed_link(change.before);
    seed_link(change.after);
  }
  const std::vector<Asn> after_ases = after.ases();
  for (const Asn as : after_ases) {
    if (!before_cones.contains(as)) dirty.insert(as);
  }

  // Expand upward through provider links of BOTH vintages: an AS whose cone
  // changed must be able to reach some touched link by descending p2c edges
  // in before or after, which makes it a provider-ancestor of a seed in one
  // of the two graphs.  Anything the walk never reaches keeps its old cone.
  std::vector<Asn> frontier(dirty.begin(), dirty.end());
  while (!frontier.empty()) {
    std::vector<Asn> next;
    for (const Asn as : frontier) {
      const auto ascend = [&](std::span<const Asn> providers) {
        for (const Asn p : providers) {
          if (dirty.insert(p).second) next.push_back(p);
        }
      };
      ascend(before.providers(as));
      ascend(after.providers(as));
    }
    frontier = std::move(next);
  }
  // The walk may pass through ASes removed in `after`; they own no cone.
  std::erase_if(dirty, [&](const Asn as) { return !after.has_as(as); });

  local.dirty_asns = dirty.size();
  local.dirty_fraction = after_ases.empty()
                             ? 0.0
                             : static_cast<double>(dirty.size()) /
                                   static_cast<double>(after_ases.size());

  if (local.dirty_fraction > full_threshold) {
    local.full_recompute = true;
    if (stats != nullptr) *stats = local;
    return recursive_cone(after, threads);
  }

  // Memoized post-order DFS over the dirty set only.  Clean customers
  // contribute their (unchanged) base cone; dirty customers recurse.  Every
  // node of a provider cycle introduced by the delta is necessarily dirty
  // (each is a provider-ancestor of the changed link's endpoints), so the
  // visiting-state check still catches A3 violations.
  std::map<Asn, std::vector<Asn>> fresh;
  const auto base_cone = [&](Asn as) -> const std::vector<Asn>& {
    const auto it = before_cones.find(as);
    if (it == before_cones.end()) {
      throw std::invalid_argument("incremental cone: base cone map is missing AS " +
                                  std::to_string(as.value()));
    }
    return it->second;
  };
  std::map<Asn, std::uint8_t> state;  // absent = new, 1 = visiting, 2 = done
  for (const Asn root : dirty) {
    if (state[root] == 2) continue;
    std::vector<std::pair<Asn, std::size_t>> frames{{root, 0}};
    while (!frames.empty()) {
      const Asn node = frames.back().first;
      std::size_t& child = frames.back().second;
      const auto row = after.customers(node);
      if (child == 0) {
        if (state[node] == 2) {
          frames.pop_back();
          continue;
        }
        state[node] = 1;
      }
      if (child < row.size()) {
        const Asn next = row[child];
        ++child;
        if (!dirty.contains(next)) continue;  // clean subtree: reuse below
        if (state[next] == 1) {
          throw std::invalid_argument("customer cones: provider graph has a cycle");
        }
        if (state[next] != 2) frames.push_back({next, 0});
        continue;
      }
      std::set<Asn> acc;
      acc.insert(node);
      for (const Asn c : row) {
        const std::vector<Asn>& sub = dirty.contains(c) ? fresh.at(c) : base_cone(c);
        acc.insert(sub.begin(), sub.end());
      }
      fresh.emplace(node, std::vector<Asn>(acc.begin(), acc.end()));
      state[node] = 2;
      frames.pop_back();
    }
  }

  ConeMap out;
  for (const Asn as : after_ases) {
    if (dirty.contains(as)) {
      out.emplace(as, std::move(fresh.at(as)));
    } else {
      out.emplace(as, base_cone(as));
      ++local.reused;
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

ConeMap bgp_observed_cone(const TopologyView& view, const paths::PathCorpus& corpus,
                          std::size_t threads) {
  using SetMap = std::unordered_map<Asn, std::unordered_set<Asn>>;
  util::ThreadPool pool(threads);
  const auto records = corpus.records();
  const AsnInterner& interner = view.interner();

  // Cone keys/members stay ASN-typed: observed paths may cross ASes the
  // annotated graph has never seen, which have no NodeId.  Only the p2c
  // classification runs on the dense view.  Per-chunk membership sets merge
  // by set union — commutative, so the ordered reduction yields the
  // sequential result at any worker count.
  SetMap cones = pool.map_reduce<SetMap>(
      records.size(), SetMap{},
      [&](std::size_t begin, std::size_t end) {
        SetMap local;
        std::vector<NodeId> ids;
        for (std::size_t r = begin; r < end; ++r) {
          const auto hops = records[r].path.hops();
          if (hops.size() < 2) continue;
          interner.translate(hops, ids);
          // reach_end[i]: last index of the contiguous p2c descent starting
          // at i.  Computed right-to-left in one pass.
          std::vector<std::size_t> reach_end(hops.size());
          reach_end[hops.size() - 1] = hops.size() - 1;
          for (std::size_t i = hops.size() - 1; i-- > 0;) {
            reach_end[i] = is_p2c(view, ids[i], ids[i + 1]) ? reach_end[i + 1] : i;
          }
          for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
            auto& cone = local[hops[i]];
            for (std::size_t j = i + 1; j <= reach_end[i]; ++j) cone.insert(hops[j]);
          }
        }
        return local;
      },
      [](SetMap& acc, SetMap&& part) {
        for (auto& [as, members] : part) {
          acc[as].insert(members.begin(), members.end());
        }
      });
  for (const Asn as : interner.asns()) cones[as].insert(as);

  ConeMap out;
  for (auto& [as, members] : cones) {
    std::vector<Asn> sorted(members.begin(), members.end());
    std::sort(sorted.begin(), sorted.end());
    out.emplace(as, std::move(sorted));
  }
  return out;
}

ConeMap bgp_observed_cone(const AsGraph& graph, const paths::PathCorpus& corpus,
                          std::size_t threads) {
  return bgp_observed_cone(graph.freeze(), corpus, threads);
}

ConeMap provider_peer_observed_cone(const TopologyView& view,
                                    const paths::PathCorpus& corpus, std::size_t threads) {
  // Collect p2c links observed while descending from above: the provider
  // hop was itself preceded by one of its providers or peers.  Each chunk
  // emits packed (provider, customer) id pairs; the final sort+unique makes
  // the result independent of chunk order, so concatenation merging is safe.
  const AsnInterner& interner = view.interner();
  util::ThreadPool pool(threads);
  const auto records = corpus.records();

  using PairList = std::vector<std::uint64_t>;
  PairList pairs = pool.map_reduce<PairList>(
      records.size(), PairList{},
      [&](std::size_t begin, std::size_t end) {
        PairList local;
        std::vector<NodeId> ids;
        for (std::size_t r = begin; r < end; ++r) {
          const auto hops = records[r].path.hops();
          interner.translate(hops, ids);
          for (std::size_t i = 1; i + 1 < hops.size(); ++i) {
            if (ids[i] == kNoNode || ids[i - 1] == kNoNode) continue;
            const auto preceding = view.relationship(ids[i], ids[i - 1]);
            const bool from_above = preceding && (*preceding == RelView::kProvider ||
                                                  *preceding == RelView::kPeer);
            if (!from_above) continue;
            // Every contiguous p2c link after i is proven to carry traffic
            // downward.
            for (std::size_t j = i; j + 1 < hops.size(); ++j) {
              if (!is_p2c(view, ids[j], ids[j + 1])) break;
              local.push_back(static_cast<std::uint64_t>(ids[j]) << 32 | ids[j + 1]);
            }
          }
        }
        return local;
      },
      [](PairList& acc, PairList&& part) {
        acc.insert(acc.end(), part.begin(), part.end());
      });
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  // CSR over the filtered sub-relation: pairs are sorted by (provider,
  // customer), so each row comes out sorted.
  const std::size_t n = interner.size();
  std::vector<std::uint64_t> offsets(n + 1, 0);
  std::vector<NodeId> customers(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    ++offsets[(pairs[i] >> 32) + 1];
    customers[i] = static_cast<NodeId>(pairs[i]);
  }
  for (std::size_t i = 0; i < n; ++i) offsets[i + 1] += offsets[i];

  return closure(
      interner,
      [&](NodeId node) {
        return std::span<const NodeId>(customers).subspan(
            offsets[node], offsets[node + 1] - offsets[node]);
      },
      threads);
}

ConeMap provider_peer_observed_cone(const AsGraph& graph, const paths::PathCorpus& corpus,
                                    std::size_t threads) {
  return provider_peer_observed_cone(graph.freeze(), corpus, threads);
}

ConeMap compute_cone(ConeMethod method, const TopologyView& view,
                     const paths::PathCorpus& corpus, std::size_t threads) {
  switch (method) {
    case ConeMethod::kRecursive: return recursive_cone(view, threads);
    case ConeMethod::kBgpObserved: return bgp_observed_cone(view, corpus, threads);
    case ConeMethod::kProviderPeerObserved:
      return provider_peer_observed_cone(view, corpus, threads);
  }
  throw std::invalid_argument("compute_cone: unknown method");
}

ConeMap compute_cone(ConeMethod method, const AsGraph& graph,
                     const paths::PathCorpus& corpus, std::size_t threads) {
  return compute_cone(method, graph.freeze(), corpus, threads);
}

std::size_t break_provider_cycles(AsGraph& graph, const Degrees& degrees) {
  if (graph.p2c_acyclic()) return 0;
  // Tarjan SCC over the provider->customer digraph of a frozen CSR view;
  // inside each non-trivial SCC, re-orient c2p edges so the higher-ranked
  // endpoint provides, which imposes a strict total order and breaks all
  // cycles without discarding transit evidence.
  const TopologyView view = graph.freeze();
  const std::size_t n = view.node_count();

  std::vector<std::size_t> low(n, 0), disc(n, 0), scc_id(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::size_t timer = 1, scc_count = 0;

  // Iterative Tarjan to avoid deep recursion on large graphs.
  struct Frame {
    std::size_t node;
    std::size_t child_index;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (disc[root] != 0) continue;
    std::vector<Frame> frames{{root, 0}};
    while (!frames.empty()) {
      const std::size_t node = frames.back().node;
      if (frames.back().child_index == 0) {
        disc[node] = low[node] = timer++;
        stack.push_back(node);
        on_stack[node] = true;
      }
      const auto customers = view.customers(static_cast<NodeId>(node));
      if (frames.back().child_index < customers.size()) {
        const std::size_t next = customers[frames.back().child_index];
        ++frames.back().child_index;
        if (disc[next] == 0) {
          frames.push_back({next, 0});  // frames.back() invalidated; loop re-reads
        } else if (on_stack[next]) {
          low[node] = std::min(low[node], disc[next]);
        }
        continue;
      }
      if (low[node] == disc[node]) {
        ++scc_count;
        while (true) {
          const std::size_t top = stack.back();
          stack.pop_back();
          on_stack[top] = false;
          scc_id[top] = scc_count;
          if (top == node) break;
        }
      }
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().node] = std::min(low[frames.back().node], low[node]);
      }
    }
  }

  const AsnInterner& graph_ids = view.interner();
  std::size_t reoriented = 0;
  for (const Link& link : graph.links()) {
    if (link.type != LinkType::kP2C) continue;
    const NodeId ia = graph_ids.id_of(link.a), ib = graph_ids.id_of(link.b);
    if (scc_id[ia] != scc_id[ib]) continue;
    // Intra-SCC edge: orient toward the ranking.
    const bool a_higher = degrees.rank_of(link.a) < degrees.rank_of(link.b) ||
                          (degrees.rank_of(link.a) == degrees.rank_of(link.b) &&
                           link.a < link.b);
    if (!a_higher) {
      graph.add_p2c(link.b, link.a);
      ++reoriented;
    }
  }
  return reoriented;
}

}  // namespace asrank::core
