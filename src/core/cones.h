// Customer cones (paper §5): the set of ASes reachable from an AS by
// descending only customer links.  Cone size is the paper's measure of an
// AS's influence, and the basis of the AS Rank.  Three computations, from
// most to least inclusive:
//
//   * Recursive: full transitive closure over every inferred p2c link.
//     Overestimates when providers don't actually route to all indirect
//     customers (multihomed customers filter announcements).
//   * Provider/peer observed (the canonical "ppdc" CAIDA publishes): closure
//     restricted to p2c links that were observed in a path while descending —
//     i.e. links whose provider was itself reached through one of its
//     providers or peers.  This keeps only customer links proven to carry
//     traffic downward from above.
//   * BGP observed: only ASes seen in an actual contiguous customer-link
//     chain after the AS in some path; no closure.  The most conservative.
//
// Invariant (tested): recursive ⊇ provider/peer observed and
// recursive ⊇ BGP observed, for every AS.  Every cone contains its own AS.
//
// All computations run on the dense-id CSR substrate (topology::TopologyView):
// the closure walks flat customer rows indexed by NodeId and unions fixed-
// width bitsets, so the hot loop is cache-linear with no hashing.  The
// AsGraph overloads freeze the graph first; callers that already hold a view
// (the CLI, the snapshot builder) should pass it directly and pay the freeze
// cost once.
#pragma once

#include <cstddef>
#include <string_view>

#include "paths/corpus.h"
#include "topology/as_graph.h"
#include "topology/serialization.h"
#include "topology/topology_view.h"

namespace asrank::core {

enum class ConeMethod { kRecursive, kBgpObserved, kProviderPeerObserved };

[[nodiscard]] constexpr std::string_view to_string(ConeMethod method) noexcept {
  switch (method) {
    case ConeMethod::kRecursive: return "recursive";
    case ConeMethod::kBgpObserved: return "bgp-observed";
    case ConeMethod::kProviderPeerObserved: return "provider-peer-observed";
  }
  return "?";
}

// Every computation below takes a worker-thread count: 1 (the default) is
// the exact sequential legacy path, 0 means all hardware threads, and the
// result is bit-identical at any count (see util/thread_pool.h — the closure
// parallelizes over reverse-topological levels of the p2c DAG, the observed
// cones over path-corpus chunks with commutative merges).

/// Full transitive closure over p2c links.  Requires an acyclic provider
/// graph (throws std::invalid_argument otherwise — assumption A3).
[[nodiscard]] ConeMap recursive_cone(const topology::TopologyView& view,
                                     std::size_t threads = 1);
[[nodiscard]] ConeMap recursive_cone(const AsGraph& graph, std::size_t threads = 1);

/// Direct observation: contiguous descending chains after each AS in paths,
/// using the view to classify links as p2c.
[[nodiscard]] ConeMap bgp_observed_cone(const topology::TopologyView& view,
                                        const paths::PathCorpus& corpus,
                                        std::size_t threads = 1);
[[nodiscard]] ConeMap bgp_observed_cone(const AsGraph& graph, const paths::PathCorpus& corpus,
                                        std::size_t threads = 1);

/// Closure over p2c links observed in descending path positions where the
/// provider was reached via one of its providers or peers.
[[nodiscard]] ConeMap provider_peer_observed_cone(const topology::TopologyView& view,
                                                  const paths::PathCorpus& corpus,
                                                  std::size_t threads = 1);
[[nodiscard]] ConeMap provider_peer_observed_cone(const AsGraph& graph,
                                                  const paths::PathCorpus& corpus,
                                                  std::size_t threads = 1);

/// Dispatch by method.  kRecursive ignores `corpus`.
[[nodiscard]] ConeMap compute_cone(ConeMethod method, const AsGraph& graph,
                                   const paths::PathCorpus& corpus,
                                   std::size_t threads = 1);
[[nodiscard]] ConeMap compute_cone(ConeMethod method, const topology::TopologyView& view,
                                   const paths::PathCorpus& corpus,
                                   std::size_t threads = 1);

}  // namespace asrank::core
