// Customer cones (paper §5): the set of ASes reachable from an AS by
// descending only customer links.  Cone size is the paper's measure of an
// AS's influence, and the basis of the AS Rank.  Three computations, from
// most to least inclusive:
//
//   * Recursive: full transitive closure over every inferred p2c link.
//     Overestimates when providers don't actually route to all indirect
//     customers (multihomed customers filter announcements).
//   * Provider/peer observed (the canonical "ppdc" CAIDA publishes): closure
//     restricted to p2c links that were observed in a path while descending —
//     i.e. links whose provider was itself reached through one of its
//     providers or peers.  This keeps only customer links proven to carry
//     traffic downward from above.
//   * BGP observed: only ASes seen in an actual contiguous customer-link
//     chain after the AS in some path; no closure.  The most conservative.
//
// Invariant (tested): recursive ⊇ provider/peer observed and
// recursive ⊇ BGP observed, for every AS.  Every cone contains its own AS.
//
// All computations run on the dense-id CSR substrate (topology::TopologyView):
// the closure walks flat customer rows indexed by NodeId and unions fixed-
// width bitsets, so the hot loop is cache-linear with no hashing.  The
// AsGraph overloads freeze the graph first; callers that already hold a view
// (the CLI, the snapshot builder) should pass it directly and pay the freeze
// cost once.
#pragma once

#include <cstddef>
#include <string_view>

#include "core/degrees.h"
#include "paths/corpus.h"
#include "topology/as_graph.h"
#include "topology/serialization.h"
#include "topology/topology_view.h"

namespace asrank::core {

enum class ConeMethod { kRecursive, kBgpObserved, kProviderPeerObserved };

[[nodiscard]] constexpr std::string_view to_string(ConeMethod method) noexcept {
  switch (method) {
    case ConeMethod::kRecursive: return "recursive";
    case ConeMethod::kBgpObserved: return "bgp-observed";
    case ConeMethod::kProviderPeerObserved: return "provider-peer-observed";
  }
  return "?";
}

// Every computation below takes a worker-thread count: 1 (the default) is
// the exact sequential legacy path, 0 means all hardware threads, and the
// result is bit-identical at any count (see util/thread_pool.h — the closure
// parallelizes over reverse-topological levels of the p2c DAG, the observed
// cones over path-corpus chunks with commutative merges).

/// Establish assumption A3 in place: inside every strongly connected
/// component of the provider->customer digraph, re-orient c2p edges so the
/// higher-ranked endpoint (by transit degree, ASN tie-break) provides.  The
/// strict total order breaks all cycles without discarding transit evidence.
/// This is the asrank pipeline's step-11 repair, exposed for callers that
/// freeze cones over graphs other inference algorithms produced — the
/// baselines (gao2001, tor-local-search, degree-ratio) promise nothing about
/// acyclicity.  Returns the number of re-oriented p2c edges (0 when the
/// graph was already acyclic — the common case — in which case nothing is
/// touched).
std::size_t break_provider_cycles(AsGraph& graph, const Degrees& degrees);

/// Full transitive closure over p2c links.  Requires an acyclic provider
/// graph (throws std::invalid_argument otherwise — assumption A3).
[[nodiscard]] ConeMap recursive_cone(const topology::TopologyView& view,
                                     std::size_t threads = 1);
[[nodiscard]] ConeMap recursive_cone(const AsGraph& graph, std::size_t threads = 1);

/// Instrumentation from one recursive_cone_incremental call.
struct IncrementalConeStats {
  std::size_t changed_links = 0;  ///< links added + removed + re-annotated
  std::size_t dirty_asns = 0;     ///< ASes whose cone was recomputed
  double dirty_fraction = 0.0;    ///< dirty_asns / |after|
  bool full_recompute = false;    ///< dirty fraction crossed the threshold
  std::size_t reused = 0;         ///< cones copied verbatim from `before_cones`

  friend bool operator==(const IncrementalConeStats&, const IncrementalConeStats&) = default;
};

/// Recursive cone of `after`, reusing `before_cones` (the recursive cones of
/// `before`) for every AS whose cone provably did not change.
///
/// Dirty-set construction is safe over-invalidation: the endpoints of every
/// added/removed/re-annotated link seed the set, which then expands upward
/// through provider links of BOTH graphs — any AS that could reach a touched
/// link by descending p2c edges in either vintage gets recomputed.  An AS
/// outside that set has an identical customer subtree in both graphs, so its
/// old cone is copied verbatim.  When the dirty fraction exceeds
/// `full_threshold` the walk is abandoned for a plain full closure (the
/// incremental machinery only pays off on small deltas).
///
/// Output is byte-identical to `recursive_cone(after, threads)` — the
/// differential suite in tests/test_differential.cpp holds this contract.
/// Throws std::invalid_argument on provider cycles, like the full closure.
[[nodiscard]] ConeMap recursive_cone_incremental(const AsGraph& before,
                                                 const ConeMap& before_cones,
                                                 const AsGraph& after,
                                                 double full_threshold = 0.5,
                                                 std::size_t threads = 1,
                                                 IncrementalConeStats* stats = nullptr);

/// Direct observation: contiguous descending chains after each AS in paths,
/// using the view to classify links as p2c.
[[nodiscard]] ConeMap bgp_observed_cone(const topology::TopologyView& view,
                                        const paths::PathCorpus& corpus,
                                        std::size_t threads = 1);
[[nodiscard]] ConeMap bgp_observed_cone(const AsGraph& graph, const paths::PathCorpus& corpus,
                                        std::size_t threads = 1);

/// Closure over p2c links observed in descending path positions where the
/// provider was reached via one of its providers or peers.
[[nodiscard]] ConeMap provider_peer_observed_cone(const topology::TopologyView& view,
                                                  const paths::PathCorpus& corpus,
                                                  std::size_t threads = 1);
[[nodiscard]] ConeMap provider_peer_observed_cone(const AsGraph& graph,
                                                  const paths::PathCorpus& corpus,
                                                  std::size_t threads = 1);

/// Dispatch by method.  kRecursive ignores `corpus`.
[[nodiscard]] ConeMap compute_cone(ConeMethod method, const AsGraph& graph,
                                   const paths::PathCorpus& corpus,
                                   std::size_t threads = 1);
[[nodiscard]] ConeMap compute_cone(ConeMethod method, const topology::TopologyView& view,
                                   const paths::PathCorpus& corpus,
                                   std::size_t threads = 1);

}  // namespace asrank::core
