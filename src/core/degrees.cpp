#include "core/degrees.h"

#include <algorithm>
#include <unordered_set>

namespace asrank::core {

Degrees Degrees::compute(const paths::PathCorpus& corpus) {
  Degrees degrees;
  std::unordered_map<Asn, std::unordered_set<Asn>> transit_neighbors;
  std::unordered_map<Asn, std::unordered_set<Asn>> all_neighbors;

  for (const paths::PathRecord& record : corpus.records()) {
    // Degrees are defined over prepending-free paths; compress defensively
    // in case the corpus was not sanitized.
    const AsPath compressed =
        record.path.has_prepending() ? record.path.compress_prepending() : record.path;
    const auto hops = compressed.hops();
    for (std::size_t i = 0; i < hops.size(); ++i) {
      if (i > 0) {
        all_neighbors[hops[i]].insert(hops[i - 1]);
        all_neighbors[hops[i - 1]].insert(hops[i]);
      }
      if (i > 0 && i + 1 < hops.size()) {
        transit_neighbors[hops[i]].insert(hops[i - 1]);
        transit_neighbors[hops[i]].insert(hops[i + 1]);
      }
    }
  }

  for (const auto& [as, neighbors] : all_neighbors) {
    degrees.node_.emplace(as, neighbors.size());
  }
  for (const auto& [as, neighbors] : transit_neighbors) {
    degrees.transit_.emplace(as, neighbors.size());
  }

  degrees.ranked_.reserve(all_neighbors.size());
  for (const auto& [as, neighbors] : all_neighbors) degrees.ranked_.push_back(as);
  std::sort(degrees.ranked_.begin(), degrees.ranked_.end(), [&](Asn a, Asn b) {
    const std::size_t ta = degrees.transit_degree(a), tb = degrees.transit_degree(b);
    if (ta != tb) return ta > tb;
    const std::size_t na = degrees.node_degree(a), nb = degrees.node_degree(b);
    if (na != nb) return na > nb;
    return a < b;
  });
  degrees.rank_.reserve(degrees.ranked_.size());
  for (std::size_t i = 0; i < degrees.ranked_.size(); ++i) {
    degrees.rank_.emplace(degrees.ranked_[i], i);
  }
  return degrees;
}

std::size_t Degrees::transit_degree(Asn as) const noexcept {
  const auto it = transit_.find(as);
  return it == transit_.end() ? 0 : it->second;
}

std::size_t Degrees::node_degree(Asn as) const noexcept {
  const auto it = node_.find(as);
  return it == node_.end() ? 0 : it->second;
}

std::size_t Degrees::rank_of(Asn as) const noexcept {
  const auto it = rank_.find(as);
  return it == rank_.end() ? ranked_.size() : it->second;
}

}  // namespace asrank::core
