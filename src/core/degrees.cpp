#include "core/degrees.h"

#include <algorithm>
#include <utility>

#include "util/thread_pool.h"

namespace asrank::core {

namespace {

using topology::AsnInterner;
using topology::kNoNode;
using topology::NodeId;

constexpr std::uint64_t pack(NodeId node, NodeId neighbor) noexcept {
  return static_cast<std::uint64_t>(node) << 32 | neighbor;
}

/// Per-chunk packed (node, neighbour) id pairs.  Chunks merge by
/// concatenation; the final global sort+unique erases chunk order, so the
/// distinct-neighbour counts are thread-count invariant.
struct PairLists {
  std::vector<std::uint64_t> all;
  std::vector<std::uint64_t> transit;
};

void count_rows(std::vector<std::uint64_t>& pairs, std::vector<std::uint32_t>& deg) {
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  for (const std::uint64_t p : pairs) ++deg[p >> 32];
}

}  // namespace

Degrees Degrees::compute(const paths::PathCorpus& corpus, std::size_t threads) {
  std::vector<Asn> asns;
  for (const paths::PathRecord& record : corpus.records()) {
    const auto hops = record.path.hops();
    asns.insert(asns.end(), hops.begin(), hops.end());
  }
  return compute(AsnInterner::from_asns(std::move(asns)), corpus, threads);
}

Degrees Degrees::compute(topology::AsnInterner interner, const paths::PathCorpus& corpus,
                         std::size_t threads) {
  Degrees degrees;
  util::ThreadPool pool(threads);
  const auto records = corpus.records();
  const std::size_t n = interner.size();

  PairLists pairs = pool.map_reduce<PairLists>(
      records.size(), PairLists{},
      [&](std::size_t begin, std::size_t end) {
        PairLists local;
        std::vector<NodeId> ids;
        for (std::size_t r = begin; r < end; ++r) {
          // Degrees are defined over prepending-free paths; compress
          // defensively in case the corpus was not sanitized.
          const paths::PathRecord& record = records[r];
          const AsPath compressed = record.path.has_prepending()
                                        ? record.path.compress_prepending()
                                        : record.path;
          interner.translate(compressed.hops(), ids);
          for (std::size_t i = 0; i < ids.size(); ++i) {
            if (ids[i] == kNoNode) continue;
            if (i > 0 && ids[i - 1] != kNoNode) {
              local.all.push_back(pack(ids[i], ids[i - 1]));
              local.all.push_back(pack(ids[i - 1], ids[i]));
            }
            if (i > 0 && i + 1 < ids.size()) {
              if (ids[i - 1] != kNoNode) local.transit.push_back(pack(ids[i], ids[i - 1]));
              if (ids[i + 1] != kNoNode) local.transit.push_back(pack(ids[i], ids[i + 1]));
            }
          }
        }
        return local;
      },
      [](PairLists& acc, PairLists&& part) {
        acc.all.insert(acc.all.end(), part.all.begin(), part.all.end());
        acc.transit.insert(acc.transit.end(), part.transit.begin(), part.transit.end());
      });

  degrees.node_deg_.assign(n, 0);
  degrees.transit_deg_.assign(n, 0);
  count_rows(pairs.all, degrees.node_deg_);
  count_rows(pairs.transit, degrees.transit_deg_);

  // Rank every AS observed next to another (node degree > 0); ids ascend in
  // ASN order, so the id tie-break below *is* the lower-ASN tie-break.
  std::vector<NodeId> order;
  for (NodeId id = 0; id < n; ++id) {
    if (degrees.node_deg_[id] > 0) order.push_back(id);
  }
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (degrees.transit_deg_[a] != degrees.transit_deg_[b]) {
      return degrees.transit_deg_[a] > degrees.transit_deg_[b];
    }
    if (degrees.node_deg_[a] != degrees.node_deg_[b]) {
      return degrees.node_deg_[a] > degrees.node_deg_[b];
    }
    return a < b;
  });

  degrees.rank_.assign(n, order.size());
  degrees.ranked_.reserve(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    degrees.rank_[order[i]] = i;
    degrees.ranked_.push_back(interner.asn_of(order[i]));
  }
  degrees.interner_ = std::move(interner);
  return degrees;
}

std::size_t Degrees::transit_degree(Asn as) const noexcept {
  const NodeId id = interner_.id_of(as);
  return id == kNoNode ? 0 : transit_deg_[id];
}

std::size_t Degrees::node_degree(Asn as) const noexcept {
  const NodeId id = interner_.id_of(as);
  return id == kNoNode ? 0 : node_deg_[id];
}

std::size_t Degrees::rank_of(Asn as) const noexcept {
  const NodeId id = interner_.id_of(as);
  return id == kNoNode ? ranked_.size() : rank_[id];
}

}  // namespace asrank::core
