#include "core/degrees.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "util/thread_pool.h"

namespace asrank::core {

namespace {

/// Per-chunk tally for the parallel pass.  Merged by set union, which is
/// commutative, so the ordered reduction is thread-count invariant.
struct NeighborSets {
  std::unordered_map<Asn, std::unordered_set<Asn>> transit;
  std::unordered_map<Asn, std::unordered_set<Asn>> all;
};

}  // namespace

Degrees Degrees::compute(const paths::PathCorpus& corpus, std::size_t threads) {
  Degrees degrees;
  util::ThreadPool pool(threads);
  const auto records = corpus.records();

  NeighborSets sets = pool.map_reduce<NeighborSets>(
      records.size(), NeighborSets{},
      [&](std::size_t begin, std::size_t end) {
        NeighborSets local;
        for (std::size_t r = begin; r < end; ++r) {
          // Degrees are defined over prepending-free paths; compress
          // defensively in case the corpus was not sanitized.
          const paths::PathRecord& record = records[r];
          const AsPath compressed = record.path.has_prepending()
                                        ? record.path.compress_prepending()
                                        : record.path;
          const auto hops = compressed.hops();
          for (std::size_t i = 0; i < hops.size(); ++i) {
            if (i > 0) {
              local.all[hops[i]].insert(hops[i - 1]);
              local.all[hops[i - 1]].insert(hops[i]);
            }
            if (i > 0 && i + 1 < hops.size()) {
              local.transit[hops[i]].insert(hops[i - 1]);
              local.transit[hops[i]].insert(hops[i + 1]);
            }
          }
        }
        return local;
      },
      [](NeighborSets& acc, NeighborSets&& part) {
        for (auto& [as, neighbors] : part.all) {
          acc.all[as].insert(neighbors.begin(), neighbors.end());
        }
        for (auto& [as, neighbors] : part.transit) {
          acc.transit[as].insert(neighbors.begin(), neighbors.end());
        }
      });

  for (const auto& [as, neighbors] : sets.all) {
    degrees.node_.emplace(as, neighbors.size());
  }
  for (const auto& [as, neighbors] : sets.transit) {
    degrees.transit_.emplace(as, neighbors.size());
  }

  degrees.ranked_.reserve(sets.all.size());
  for (const auto& [as, neighbors] : sets.all) degrees.ranked_.push_back(as);
  std::sort(degrees.ranked_.begin(), degrees.ranked_.end(), [&](Asn a, Asn b) {
    const std::size_t ta = degrees.transit_degree(a), tb = degrees.transit_degree(b);
    if (ta != tb) return ta > tb;
    const std::size_t na = degrees.node_degree(a), nb = degrees.node_degree(b);
    if (na != nb) return na > nb;
    return a < b;
  });
  degrees.rank_.reserve(degrees.ranked_.size());
  for (std::size_t i = 0; i < degrees.ranked_.size(); ++i) {
    degrees.rank_.emplace(degrees.ranked_[i], i);
  }
  return degrees;
}

std::size_t Degrees::transit_degree(Asn as) const noexcept {
  const auto it = transit_.find(as);
  return it == transit_.end() ? 0 : it->second;
}

std::size_t Degrees::node_degree(Asn as) const noexcept {
  const auto it = node_.find(as);
  return it == node_.end() ? 0 : it->second;
}

std::size_t Degrees::rank_of(Asn as) const noexcept {
  const auto it = rank_.find(as);
  return it == rank_.end() ? ranked_.size() : it->second;
}

}  // namespace asrank::core
