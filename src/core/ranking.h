// AS Rank (paper §5.4): order ASes by customer cone size.  This is the
// ranking CAIDA publishes at as-rank.caida.org; transit degree and ASN break
// ties so the order is total and deterministic.
#pragma once

#include <cstddef>
#include <vector>

#include "asn/asn.h"
#include "core/degrees.h"
#include "topology/serialization.h"

namespace asrank::core {

struct RankEntry {
  std::size_t rank = 0;       ///< 1-based; unique (the ordering is total)
  Asn as;
  std::size_t cone_size = 0;  ///< including the AS itself
  std::size_t transit_degree = 0;
};

/// Rank every AS in `cones` by cone size desc, transit degree desc, ASN asc.
[[nodiscard]] std::vector<RankEntry> rank_by_cone(const ConeMap& cones,
                                                  const Degrees& degrees);

/// Convenience: the top `n` entries.
[[nodiscard]] std::vector<RankEntry> top_n(const ConeMap& cones, const Degrees& degrees,
                                           std::size_t n);

}  // namespace asrank::core
