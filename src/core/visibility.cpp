#include "core/visibility.h"

#include <unordered_set>
#include <utility>

#include "util/thread_pool.h"

namespace asrank::core {

namespace {

/// Per-chunk tally.  Counters add and VP sets union — both commutative — so
/// the ordered chunk reduction is thread-count invariant.
struct VisibilityTally {
  std::unordered_map<std::uint64_t, LinkVisibility> links;
  std::unordered_map<std::uint64_t, std::unordered_set<Asn>> vps;
};

}  // namespace

std::unordered_map<std::uint64_t, LinkVisibility> link_visibility(
    const paths::PathCorpus& corpus, std::size_t threads) {
  util::ThreadPool pool(threads);
  const auto records = corpus.records();

  VisibilityTally tally = pool.map_reduce<VisibilityTally>(
      records.size(), VisibilityTally{},
      [&](std::size_t begin, std::size_t end) {
        VisibilityTally local;
        for (std::size_t r = begin; r < end; ++r) {
          const paths::PathRecord& record = records[r];
          const auto hops = record.path.hops();
          for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
            if (hops[i] == hops[i + 1]) continue;
            const std::uint64_t key = paths::PathCorpus::key(hops[i], hops[i + 1]);
            LinkVisibility& link = local.links[key];
            ++link.observations;
            if (i > 0 && i + 2 < hops.size()) {
              ++link.transit_positions;
            } else {
              ++link.edge_positions;
            }
            local.vps[key].insert(record.vp);
          }
        }
        return local;
      },
      [](VisibilityTally& acc, VisibilityTally&& part) {
        for (auto& [key, link] : part.links) {
          LinkVisibility& merged = acc.links[key];
          merged.observations += link.observations;
          merged.transit_positions += link.transit_positions;
          merged.edge_positions += link.edge_positions;
        }
        for (auto& [key, vps] : part.vps) {
          acc.vps[key].insert(vps.begin(), vps.end());
        }
      });

  for (auto& [key, link] : tally.links) link.vp_count = tally.vps.at(key).size();
  return tally.links;
}

VisibilityCcdf visibility_ccdf(
    const std::unordered_map<std::uint64_t, LinkVisibility>& visibility,
    std::vector<std::size_t> thresholds) {
  VisibilityCcdf out;
  out.thresholds = std::move(thresholds);
  out.links_at_least.assign(out.thresholds.size(), 0);
  for (const auto& [key, link] : visibility) {
    for (std::size_t i = 0; i < out.thresholds.size(); ++i) {
      if (link.vp_count >= out.thresholds[i]) ++out.links_at_least[i];
    }
  }
  return out;
}

}  // namespace asrank::core
