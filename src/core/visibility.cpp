#include "core/visibility.h"

#include <unordered_set>

namespace asrank::core {

std::unordered_map<std::uint64_t, LinkVisibility> link_visibility(
    const paths::PathCorpus& corpus) {
  std::unordered_map<std::uint64_t, LinkVisibility> out;
  std::unordered_map<std::uint64_t, std::unordered_set<Asn>> vps;
  for (const paths::PathRecord& record : corpus.records()) {
    const auto hops = record.path.hops();
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      if (hops[i] == hops[i + 1]) continue;
      const std::uint64_t key = paths::PathCorpus::key(hops[i], hops[i + 1]);
      LinkVisibility& link = out[key];
      ++link.observations;
      if (i > 0 && i + 2 < hops.size()) {
        ++link.transit_positions;
      } else {
        ++link.edge_positions;
      }
      vps[key].insert(record.vp);
    }
  }
  for (auto& [key, link] : out) link.vp_count = vps.at(key).size();
  return out;
}

VisibilityCcdf visibility_ccdf(
    const std::unordered_map<std::uint64_t, LinkVisibility>& visibility,
    std::vector<std::size_t> thresholds) {
  VisibilityCcdf out;
  out.thresholds = std::move(thresholds);
  out.links_at_least.assign(out.thresholds.size(), 0);
  for (const auto& [key, link] : visibility) {
    for (std::size_t i = 0; i < out.thresholds.size(); ++i) {
      if (link.vp_count >= out.thresholds[i]) ++out.links_at_least[i];
    }
  }
  return out;
}

}  // namespace asrank::core
