#include "core/ranking.h"

#include <algorithm>

namespace asrank::core {

std::vector<RankEntry> rank_by_cone(const ConeMap& cones, const Degrees& degrees) {
  std::vector<RankEntry> entries;
  entries.reserve(cones.size());
  for (const auto& [as, members] : cones) {
    RankEntry entry;
    entry.as = as;
    entry.cone_size = members.size();
    entry.transit_degree = degrees.transit_degree(as);
    entries.push_back(entry);
  }
  std::sort(entries.begin(), entries.end(), [](const RankEntry& a, const RankEntry& b) {
    if (a.cone_size != b.cone_size) return a.cone_size > b.cone_size;
    if (a.transit_degree != b.transit_degree) return a.transit_degree > b.transit_degree;
    return a.as < b.as;
  });
  for (std::size_t i = 0; i < entries.size(); ++i) entries[i].rank = i + 1;
  return entries;
}

std::vector<RankEntry> top_n(const ConeMap& cones, const Degrees& degrees, std::size_t n) {
  auto entries = rank_by_cone(cones, degrees);
  if (entries.size() > n) entries.resize(n);
  return entries;
}

}  // namespace asrank::core
