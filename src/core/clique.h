// Clique inference (paper §4.3 step 3, assumption A1).
//
// The top of the transit hierarchy is a set of networks that peer with each
// other and buy transit from no one.  The paper seeds a Bron–Kerbosch maximal
// clique search with the ASes of highest transit degree, takes the largest
// clique containing the top-ranked AS, then considers further ASes in rank
// order, admitting each that is observed adjacent to every current member.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "asn/asn.h"
#include "core/degrees.h"
#include "paths/corpus.h"

namespace asrank::core {

struct CliqueConfig {
  /// Number of top-transit-degree ASes seeding the Bron–Kerbosch search
  /// (paper value: 10).
  std::size_t seed_size = 10;

  /// How many further ranked ASes to test for admission after the seed
  /// clique is chosen.
  std::size_t expansion_candidates = 30;

  /// During expansion, admit a candidate missing observed adjacency to at
  /// most this many current members.  Peering links between two tier-1s are
  /// visible only from below either one, so with a finite VP set a true
  /// member can easily lack one observed link.  The customer-evidence test
  /// below keeps this tolerance safe.
  std::size_t max_missing_links = 1;

  /// Reject any candidate observed *below* two consecutive members: in a
  /// valley-free path "A B X" with A,B both in the clique, the A-B link is
  /// p2p, so B-X must be p2c — X buys transit and cannot be tier-1.  An AS
  /// sandwiched between two members is rejected on the same reasoning.
  bool reject_customer_evidence = true;

  /// Customer evidence must be witnessed by at least this many distinct
  /// origin ASes.  A single origin poisoning its announcements with tier-1
  /// ASNs fabricates such patterns on every path toward itself; requiring
  /// independent origins defuses that.
  std::size_t customer_evidence_min_origins = 2;
};

/// Undirected adjacency restricted to links observed in paths.
using AdjacencySet = std::unordered_map<Asn, std::unordered_set<Asn>>;

/// Build observed adjacency from a sanitized corpus.
[[nodiscard]] AdjacencySet build_adjacency(const paths::PathCorpus& corpus);

/// All maximal cliques of the sub-graph induced by `vertices`
/// (Bron–Kerbosch with pivoting).  Intended for small vertex sets.
[[nodiscard]] std::vector<std::vector<Asn>> maximal_cliques(const AdjacencySet& adjacency,
                                                            const std::vector<Asn>& vertices);

/// Infer the top clique.  Returns members sorted ascending.
[[nodiscard]] std::vector<Asn> infer_clique(const paths::PathCorpus& corpus,
                                            const Degrees& degrees,
                                            const CliqueConfig& config);

}  // namespace asrank::core
