// Clique inference (paper §4.3 step 3, assumption A1).
//
// The top of the transit hierarchy is a set of networks that peer with each
// other and buy transit from no one.  The paper seeds a Bron–Kerbosch maximal
// clique search with the ASes of highest transit degree, takes the largest
// clique containing the top-ranked AS, then considers further ASes in rank
// order, admitting each that is observed adjacent to every current member.
//
// The inference runs on the dense NodeId space carried by the Degrees
// ranking: observed adjacency is a CSR over node ids (ObservedAdjacency),
// membership and ban sets are bitmaps, and customer-evidence witnesses are
// counted via sorted pair lists — no hashing in the per-path loops.
#pragma once

#include <cstddef>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "asn/asn.h"
#include "core/degrees.h"
#include "paths/corpus.h"
#include "topology/interner.h"

namespace asrank::core {

struct CliqueConfig {
  /// Number of top-transit-degree ASes seeding the Bron–Kerbosch search
  /// (paper value: 10).
  std::size_t seed_size = 10;

  /// How many further ranked ASes to test for admission after the seed
  /// clique is chosen.
  std::size_t expansion_candidates = 30;

  /// During expansion, admit a candidate missing observed adjacency to at
  /// most this many current members.  Peering links between two tier-1s are
  /// visible only from below either one, so with a finite VP set a true
  /// member can easily lack one observed link.  The customer-evidence test
  /// below keeps this tolerance safe.
  std::size_t max_missing_links = 1;

  /// Reject any candidate observed *below* two consecutive members: in a
  /// valley-free path "A B X" with A,B both in the clique, the A-B link is
  /// p2p, so B-X must be p2c — X buys transit and cannot be tier-1.  An AS
  /// sandwiched between two members is rejected on the same reasoning.
  bool reject_customer_evidence = true;

  /// Customer evidence must be witnessed by at least this many distinct
  /// origin ASes.  A single origin poisoning its announcements with tier-1
  /// ASNs fabricates such patterns on every path toward itself; requiring
  /// independent origins defuses that.
  std::size_t customer_evidence_min_origins = 2;
};

/// Undirected adjacency restricted to links observed in paths, keyed by
/// dense node id (CSR, rows sorted).  The hot representation behind
/// infer_clique; also reusable by benchmarks and diagnostics.
class ObservedAdjacency {
 public:
  /// Build from a sanitized corpus; hops missing from `interner` are
  /// ignored.  Deterministic: rows come out of a global sort over packed
  /// (node, neighbour) pairs.
  [[nodiscard]] static ObservedAdjacency build(const topology::AsnInterner& interner,
                                               const paths::PathCorpus& corpus);

  [[nodiscard]] std::size_t node_count() const noexcept { return offsets_.size() - 1; }

  [[nodiscard]] std::span<const topology::NodeId> neighbors(topology::NodeId node) const noexcept {
    return std::span<const topology::NodeId>(neighbors_)
        .subspan(offsets_[node], offsets_[node + 1] - offsets_[node]);
  }

  /// O(log deg) membership test on the sorted row.
  [[nodiscard]] bool adjacent(topology::NodeId a, topology::NodeId b) const noexcept;

 private:
  std::vector<std::uint64_t> offsets_;        // node_count + 1
  std::vector<topology::NodeId> neighbors_;   // rows sorted ascending
};

/// Undirected adjacency as nested hash sets.  Legacy representation kept for
/// hand-built test fixtures and small ad-hoc queries; the inference itself
/// uses ObservedAdjacency.
using AdjacencySet = std::unordered_map<Asn, std::unordered_set<Asn>>;

/// Build observed adjacency from a sanitized corpus.
[[nodiscard]] AdjacencySet build_adjacency(const paths::PathCorpus& corpus);

/// All maximal cliques of the sub-graph induced by `vertices`
/// (Bron–Kerbosch with pivoting).  Intended for small vertex sets.
[[nodiscard]] std::vector<std::vector<Asn>> maximal_cliques(const AdjacencySet& adjacency,
                                                            const std::vector<Asn>& vertices);

/// Infer the top clique.  Returns members sorted ascending.  Runs on the id
/// space of `degrees.interner()`, which covers every corpus AS when the
/// degrees were computed from the same corpus (the pipeline's invariant).
[[nodiscard]] std::vector<Asn> infer_clique(const paths::PathCorpus& corpus,
                                            const Degrees& degrees,
                                            const CliqueConfig& config);

}  // namespace asrank::core
