#include "core/cone_bitset.h"

#include <algorithm>

#include "topology/bitset.h"

namespace asrank::core {

namespace {

/// Dense id of `as` in the sorted AS table, or nullopt.
std::uint32_t id_or_norow(std::span<const Asn> asns, Asn as) noexcept {
  const auto it = std::lower_bound(asns.begin(), asns.end(), as);
  if (it == asns.end() || *it != as) return 0xffffffffu;
  return static_cast<std::uint32_t>(it - asns.begin());
}

}  // namespace

ConeBitset::ConeBitset(std::span<const Asn> asns,
                       std::span<const std::uint64_t> cone_off,
                       std::span<const Asn> cone_mem, ConeBitsetConfig config) {
  const std::size_t n = asns.size();
  row_of_.assign(n, kNoRow);
  words_per_row_ = (n + 63) / 64;
  if (n == 0 || cone_off.size() != n + 1) return;

  for (std::size_t id = 0; id < n; ++id) {
    const std::uint64_t size = cone_off[id + 1] - cone_off[id];
    if (size >= config.min_cone_size) {
      row_of_[id] = static_cast<std::uint32_t>(rows_++);
    }
  }
  words_.assign(rows_ * words_per_row_, 0);

  for (std::size_t id = 0; id < n; ++id) {
    if (row_of_[id] == kNoRow) continue;
    std::uint64_t* words = words_.data() + row_of_[id] * words_per_row_;
    for (std::uint64_t i = cone_off[id]; i < cone_off[id + 1]; ++i) {
      const std::uint32_t member = id_or_norow(asns, cone_mem[i]);
      if (member < n) words[member >> 6] |= 1ULL << (member & 63);
    }
  }
}

std::span<const std::uint64_t> ConeBitset::row(std::uint32_t id) const noexcept {
  if (row_of_[id] == kNoRow) return {};
  return std::span<const std::uint64_t>(words_).subspan(
      static_cast<std::size_t>(row_of_[id]) * words_per_row_, words_per_row_);
}

bool ConeBitset::contains(std::uint32_t id, std::uint32_t member) const noexcept {
  const std::uint64_t* words = words_.data() +
                               static_cast<std::size_t>(row_of_[id]) * words_per_row_;
  return (words[member >> 6] >> (member & 63)) & 1ULL;
}

std::vector<std::uint32_t> ConeBitset::intersect_ids(std::uint32_t a,
                                                     std::uint32_t b) const {
  const auto row_a = row(a);
  const auto row_b = row(b);
  std::vector<std::uint32_t> out;
  out.reserve(topology::popcount_and(row_a, row_b));
  topology::for_each_and(row_a, row_b, [&out](std::size_t id) {
    out.push_back(static_cast<std::uint32_t>(id));
  });
  return out;
}

std::vector<std::uint32_t> ConeBitset::andnot_ids(
    std::uint32_t id, std::span<const std::uint64_t> mask) const {
  std::vector<std::uint32_t> out;
  topology::for_each_andnot(row(id), mask, [&out](std::size_t bit) {
    out.push_back(static_cast<std::uint32_t>(bit));
  });
  return out;
}

std::vector<std::uint64_t> ConeBitset::make_mask(
    std::span<const std::uint32_t> ids) const {
  std::vector<std::uint64_t> mask(words_per_row_, 0);
  const std::size_t n = row_of_.size();
  for (const std::uint32_t id : ids) {
    if (id < n) mask[id >> 6] |= 1ULL << (id & 63);
  }
  return mask;
}

}  // namespace asrank::core
