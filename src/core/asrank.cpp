#include "core/asrank.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/cones.h"

#include "obs/log.h"
#include "obs/timer.h"
#include "topology/interner.h"
#include "topology/topology_view.h"
#include "util/thread_pool.h"

namespace asrank::core {

namespace {

using paths::PathCorpus;
using paths::PathRecord;
using topology::AsnInterner;
using topology::kNoNode;
using topology::NodeId;

constexpr std::uint32_t kNoLink = 0xffffffffu;

constexpr std::uint64_t pack(NodeId a, NodeId b) noexcept {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  return static_cast<std::uint64_t>(lo) << 32 | hi;
}

constexpr NodeId lo_of(std::uint64_t key) noexcept {
  return static_cast<NodeId>(key >> 32);
}
constexpr NodeId hi_of(std::uint64_t key) noexcept { return static_cast<NodeId>(key); }

/// Working state for one observed link during inference.
struct LinkState {
  enum class Kind : std::uint8_t { kUnknown, kC2pLoProv, kC2pHiProv, kP2pFixed, kS2S };
  Kind kind = Kind::kUnknown;
  std::uint32_t votes_lo_prov = 0;  ///< votes that the lower-id side provides
  std::uint32_t votes_hi_prov = 0;
  std::uint32_t observations = 0;   ///< times the link appeared in paths
};

/// The pipeline's working state is entirely dense: one AsnInterner built over
/// the sanitized corpus maps every observed AS onto [0, n); the link table is
/// a sorted vector of packed (lo, hi) id pairs with a parallel LinkState
/// array; paths are translated once into a flat id array with per-hop link
/// indices precomputed, so the vote and fixpoint inner loops never hash and
/// never binary-search.  Interner ids ascend with ASN, so id comparisons and
/// tie-breaks reproduce the legacy ASN-based ones exactly.
class Pipeline {
 public:
  Pipeline(const InferenceConfig& config, const PathCorpus& raw)
      : config_(config), pool_(config.threads) {
    run(raw);
  }

  InferenceResult take() { return std::move(result_); }

 private:
  void run(const PathCorpus& raw);
  void discard_poisoned(const PathCorpus& corpus);
  void index_paths_and_links();
  void detect_partial_vps();
  void vote_on_paths();
  void commit_votes();
  void triplet_fixpoint();
  void repair_provider_less();
  void stub_clique_pass();
  void enforce_transit_free_clique();
  void finalize_graph();
  void repair_cycles();

  [[nodiscard]] bool in_clique(NodeId id) const noexcept {
    return id != kNoNode && clique_bits_[id];
  }
  [[nodiscard]] std::uint32_t link_index(NodeId a, NodeId b) const noexcept {
    const std::uint64_t key = pack(a, b);
    const auto it = std::lower_bound(link_keys_.begin(), link_keys_.end(), key);
    if (it == link_keys_.end() || *it != key) return kNoLink;
    return static_cast<std::uint32_t>(it - link_keys_.begin());
  }
  void set_c2p(std::uint32_t link, NodeId provider, NodeId customer) noexcept {
    link_state_[link].kind = provider < customer ? LinkState::Kind::kC2pLoProv
                                                 : LinkState::Kind::kC2pHiProv;
  }

  /// Flat hop-id window of record r.
  [[nodiscard]] std::span<const NodeId> hops_of(std::size_t r) const noexcept {
    return std::span<const NodeId>(hops_flat_)
        .subspan(rec_off_[r], rec_off_[r + 1] - rec_off_[r]);
  }
  /// Link indices aligned with hops_of(r): entry j (j >= 1) is the link
  /// between hops j-1 and j; entry 0 is kNoLink.
  [[nodiscard]] std::span<const std::uint32_t> links_of(std::size_t r) const noexcept {
    return std::span<const std::uint32_t>(link_of_hop_)
        .subspan(rec_off_[r], rec_off_[r + 1] - rec_off_[r]);
  }

  const InferenceConfig& config_;
  util::ThreadPool pool_;
  InferenceResult result_;

  AsnInterner interner_;               ///< id space: every sanitized-corpus AS
  std::vector<bool> clique_bits_;      ///< by NodeId
  std::vector<bool> transit_bits_;     ///< seen between two other ASes
  std::vector<std::uint8_t> rec_partial_;  ///< record from a partial-view VP

  std::vector<std::uint64_t> link_keys_;   ///< sorted packed (lo, hi) id pairs
  std::vector<LinkState> link_state_;      ///< parallel to link_keys_

  std::vector<NodeId> hops_flat_;          ///< all surviving paths, translated
  std::vector<std::uint32_t> link_of_hop_; ///< parallel to hops_flat_
  std::vector<std::size_t> rec_off_;       ///< record r = flat [off[r], off[r+1])
};

void Pipeline::run(const PathCorpus& raw) {
  // Step 1: sanitize.
  obs::log_debug("inference start", {{"records", raw.records().size()},
                                     {"threads", config_.threads}});
  auto sanitized = [&] {
    obs::StageTimer timer("sanitize");
    return paths::sanitize(raw, config_.sanitizer);
  }();
  result_.audit.sanitize = sanitized.stats;

  // The id space for every later stage: all ASes of the sanitized corpus
  // (poisoned-path discard only removes whole paths, never introduces ASes,
  // so this interner covers the surviving corpus too).
  {
    std::vector<Asn> asns;
    for (const PathRecord& record : sanitized.corpus.records()) {
      const auto hops = record.path.hops();
      asns.insert(asns.end(), hops.begin(), hops.end());
    }
    interner_ = AsnInterner::from_asns(std::move(asns));
  }

  // Step 2: rank.
  {
    obs::StageTimer timer("degree_tally");
    result_.degrees = Degrees::compute(interner_, sanitized.corpus, config_.threads);
  }
  result_.audit.ranked_ases = result_.degrees.ranked().size();

  // Step 3: clique.
  {
    obs::StageTimer timer("clique");
    result_.clique = infer_clique(sanitized.corpus, result_.degrees, config_.clique);
  }
  clique_bits_.assign(interner_.size(), false);
  for (const Asn member : result_.clique) clique_bits_[interner_.id_of(member)] = true;
  result_.audit.clique_size = result_.clique.size();

  // Step 4: discard poisoned paths.
  {
    obs::StageTimer timer("poisoned_scan");
    discard_poisoned(sanitized.corpus);
  }

  // Translate the surviving corpus and register every observed link and
  // transit AS.
  index_paths_and_links();

  // Clique-internal links are p2p by assumption A1.
  for (std::size_t i = 0; i < result_.clique.size(); ++i) {
    for (std::size_t j = i + 1; j < result_.clique.size(); ++j) {
      const std::uint32_t link = link_index(interner_.id_of(result_.clique[i]),
                                            interner_.id_of(result_.clique[j]));
      if (link != kNoLink) link_state_[link].kind = LinkState::Kind::kP2pFixed;
    }
  }

  // Steps 5-11.
  detect_partial_vps();
  {
    obs::StageTimer timer("voting");
    vote_on_paths();
    commit_votes();
  }
  if (config_.triplet_fixpoint) {
    obs::StageTimer timer("valley_fixpoint");
    triplet_fixpoint();
  }
  if (config_.provider_less_repair) repair_provider_less();
  if (config_.stub_clique_pass) stub_clique_pass();
  enforce_transit_free_clique();
  {
    obs::StageTimer timer("finalize");
    finalize_graph();
    repair_cycles();
  }
  result_.audit.p2c_acyclic = result_.graph.p2c_acyclic();
  obs::log_debug("inference complete",
                 {{"clique_size", result_.audit.clique_size},
                  {"ranked_ases", result_.audit.ranked_ases},
                  {"p2c_acyclic", result_.audit.p2c_acyclic}});
}

void Pipeline::discard_poisoned(const PathCorpus& corpus) {
  const auto records = corpus.records();
  // Per-path classification is independent, so it parallelizes; the ordered
  // append below keeps the surviving corpus in the original record order.
  std::vector<std::uint8_t> poisoned(records.size(), 0);
  if (config_.discard_poisoned && !result_.clique.empty()) {
    pool_.for_each_index(records.size(), [&](std::size_t r) {
      const auto hops = records[r].path.hops();
      std::size_t first = hops.size(), last = 0, count = 0;
      for (std::size_t i = 0; i < hops.size(); ++i) {
        if (in_clique(interner_.id_of(hops[i]))) {
          first = std::min(first, i);
          last = std::max(last, i);
          ++count;
        }
      }
      // Clique hops must form one contiguous segment; a gap means a
      // non-clique AS sits between two tier-1s, the poisoning signature.
      poisoned[r] = count > 0 && (last - first + 1) != count;
    });
  }
  for (std::size_t r = 0; r < records.size(); ++r) {
    if (poisoned[r]) {
      ++result_.audit.poisoned_discarded;
    } else {
      result_.sanitized.add(records[r]);
    }
  }
}

void Pipeline::index_paths_and_links() {
  const auto records = result_.sanitized.records();

  rec_off_.reserve(records.size() + 1);
  rec_off_.push_back(0);
  std::vector<NodeId> ids;
  for (const PathRecord& record : records) {
    interner_.translate(record.path.hops(), ids);
    hops_flat_.insert(hops_flat_.end(), ids.begin(), ids.end());
    rec_off_.push_back(hops_flat_.size());
  }

  // Link table: sorted unique packed pairs over all adjacent hops.
  transit_bits_.assign(interner_.size(), false);
  for (std::size_t r = 0; r < records.size(); ++r) {
    const auto hops = hops_of(r);
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      link_keys_.push_back(pack(hops[i], hops[i + 1]));
      if (i > 0) transit_bits_[hops[i]] = true;
    }
  }
  std::sort(link_keys_.begin(), link_keys_.end());
  link_keys_.erase(std::unique(link_keys_.begin(), link_keys_.end()), link_keys_.end());
  link_state_.assign(link_keys_.size(), LinkState{});

  // Per-hop link indices: the vote and fixpoint loops walk these flat
  // arrays with zero lookups.
  link_of_hop_.assign(hops_flat_.size(), kNoLink);
  pool_.for_each_index(records.size(), [&](std::size_t r) {
    const auto hops = hops_of(r);
    for (std::size_t i = 1; i < hops.size(); ++i) {
      link_of_hop_[rec_off_[r] + i] = link_index(hops[i - 1], hops[i]);
    }
  });
  for (const std::uint32_t link : link_of_hop_) {
    if (link != kNoLink) ++link_state_[link].observations;
  }
}

void Pipeline::detect_partial_vps() {
  const auto records = result_.sanitized.records();
  rec_partial_.assign(records.size(), 0);
  if (config_.partial_vp_threshold <= 0.0) return;
  std::unordered_map<Asn, std::size_t> table_sizes;
  for (const PathRecord& record : records) ++table_sizes[record.vp];
  std::size_t max_size = 0;
  for (const auto& [vp, size] : table_sizes) max_size = std::max(max_size, size);
  std::unordered_set<Asn> partial;
  for (const auto& [vp, size] : table_sizes) {
    if (static_cast<double>(size) <
        config_.partial_vp_threshold * static_cast<double>(max_size)) {
      partial.insert(vp);
    }
  }
  for (std::size_t r = 0; r < records.size(); ++r) {
    rec_partial_[r] = partial.contains(records[r].vp);
  }
  result_.audit.partial_vps = partial.size();
}

void Pipeline::vote_on_paths() {
  const Degrees& degrees = result_.degrees;

  // Votes are per-link sums and the audit counters are totals, so per-path
  // work is independent: each chunk accumulates a dense local tally against
  // the (read-only) link table and tallies merge by element-wise addition —
  // commutative, so the result is identical at any thread count.
  struct VoteTally {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> votes;  // (lo, hi) provides
    std::size_t cast = 0;
    std::size_t deferred = 0;
  };

  auto tally_record = [&](std::size_t r, VoteTally& tally) {
    const auto hops = hops_of(r);
    const auto links = links_of(r);
    if (hops.size() < 2) return;

    auto vote = [&](std::size_t j, NodeId provider, NodeId customer) {
      const std::uint32_t link = links[j];
      if (link_state_[link].kind == LinkState::Kind::kP2pFixed) return;
      auto& [lo_prov, hi_prov] = tally.votes[link];
      if (provider < customer) {
        ++lo_prov;
      } else {
        ++hi_prov;
      }
      ++tally.cast;
    };

    // A path is valley-free around a single peak.  We vote c2p only for
    // positions that are certainly on the up or down slope; the (at most
    // two) links adjacent to the peak are the only p2p candidates and are
    // deferred to the fixpoint / fallback stages.  Three cases locate the
    // peak:
    //   (a) partial-view VPs export customer routes only: the whole path
    //       descends from the VP (no deferral at all);
    //   (b) paths crossing the clique peak at the (contiguous) clique
    //       segment: ascent strictly before it, descent strictly after,
    //       with the two boundary links deferred (an AS may peer with a
    //       clique member);
    //   (c) otherwise the apex is approximated by the highest-ranked AS and
    //       both apex-adjacent links are deferred.
    std::size_t defer_lo = hops.size(), defer_hi = hops.size();  // j-indices to skip
    std::size_t peak_first = 0, peak_last = 0;                   // hop index range of peak

    if (rec_partial_[r]) {
      // (a): peak is the VP itself; nothing deferred, everything descends.
    } else {
      std::size_t first_clique = hops.size(), last_clique = hops.size();
      for (std::size_t i = 0; i < hops.size(); ++i) {
        if (in_clique(hops[i])) {
          if (first_clique == hops.size()) first_clique = i;
          last_clique = i;
        }
      }
      if (first_clique != hops.size()) {
        // (b): poisoned paths were discarded, so the segment is contiguous.
        peak_first = first_clique;
        peak_last = last_clique;
        defer_lo = first_clique;     // link (first-1 -> first)
        defer_hi = last_clique + 1;  // link (last -> last+1)
      } else {
        // (c): rank apex.
        std::size_t apex = 0;
        for (std::size_t i = 1; i < hops.size(); ++i) {
          if (degrees.rank_of(hops[i]) < degrees.rank_of(hops[apex])) apex = i;
        }
        peak_first = peak_last = apex;
        defer_lo = apex;
        defer_hi = apex + 1;
      }
    }

    for (std::size_t j = 1; j < hops.size(); ++j) {
      const NodeId left = hops[j - 1];
      const NodeId right = hops[j];
      if (j == defer_lo || j == defer_hi) {
        // Optional ablation knob: vote c2p at a deferred peak link anyway
        // when the transit-degree gap makes peering look implausible.  Off
        // by default — bench_ablation shows it trades c2p PPV for coverage.
        if (config_.apex_degree_gap > 0.0) {
          const NodeId peak_side = (j == defer_lo) ? right : left;
          const NodeId other = (j == defer_lo) ? left : right;
          const auto td_peak = static_cast<double>(degrees.transit_degree(peak_side));
          const auto td_other = static_cast<double>(degrees.transit_degree(other));
          if (td_peak >= config_.apex_degree_gap * std::max(td_other, 1.0)) {
            vote(j, peak_side, other);
            continue;
          }
        }
        ++tally.deferred;
        continue;
      }
      if (j > peak_first && j <= peak_last) continue;  // clique-internal: fixed p2p
      if (j <= peak_first) {
        vote(j, right, left);  // ascending toward the peak
      } else {
        vote(j, left, right);  // descending from the peak
      }
    }
  };

  const std::size_t record_count = rec_off_.size() - 1;
  const VoteTally total = pool_.map_reduce<VoteTally>(
      record_count,
      VoteTally{std::vector<std::pair<std::uint32_t, std::uint32_t>>(link_keys_.size()),
                0, 0},
      [&](std::size_t begin, std::size_t end) {
        VoteTally local{
            std::vector<std::pair<std::uint32_t, std::uint32_t>>(link_keys_.size()), 0, 0};
        for (std::size_t r = begin; r < end; ++r) tally_record(r, local);
        return local;
      },
      [](VoteTally& acc, VoteTally&& part) {
        for (std::size_t i = 0; i < acc.votes.size(); ++i) {
          acc.votes[i].first += part.votes[i].first;
          acc.votes[i].second += part.votes[i].second;
        }
        acc.cast += part.cast;
        acc.deferred += part.deferred;
      });

  for (std::size_t i = 0; i < link_keys_.size(); ++i) {
    link_state_[i].votes_lo_prov += total.votes[i].first;
    link_state_[i].votes_hi_prov += total.votes[i].second;
  }
  result_.audit.c2p_votes += total.cast;
  result_.audit.apex_links_deferred += total.deferred;
}

void Pipeline::commit_votes() {
  const Degrees& degrees = result_.degrees;
  for (std::size_t i = 0; i < link_keys_.size(); ++i) {
    LinkState& state = link_state_[i];
    if (state.kind != LinkState::Kind::kUnknown) continue;
    if (state.votes_lo_prov == 0 && state.votes_hi_prov == 0) continue;
    if (state.votes_lo_prov > 0 && state.votes_hi_prov > 0) {
      ++result_.audit.vote_conflicts;
      // Balanced, persistent two-way transit evidence is the sibling
      // signature: siblings re-export everything, so the link ascends in
      // some paths and descends in others.
      const std::uint32_t low = std::min(state.votes_lo_prov, state.votes_hi_prov);
      const std::uint32_t high = std::max(state.votes_lo_prov, state.votes_hi_prov);
      if (config_.sibling_conflict_ratio > 0.0 && low >= config_.sibling_min_votes &&
          static_cast<double>(low) >=
              config_.sibling_conflict_ratio * static_cast<double>(high)) {
        state.kind = LinkState::Kind::kS2S;
        ++result_.audit.siblings_inferred;
        continue;
      }
    }
    if (state.votes_lo_prov > state.votes_hi_prov) {
      state.kind = LinkState::Kind::kC2pLoProv;
    } else if (state.votes_hi_prov > state.votes_lo_prov) {
      state.kind = LinkState::Kind::kC2pHiProv;
    } else {
      // Tie: the higher-ranked side is the provider.
      state.kind = degrees.rank_of(lo_of(link_keys_[i])) < degrees.rank_of(hi_of(link_keys_[i]))
                       ? LinkState::Kind::kC2pLoProv
                       : LinkState::Kind::kC2pHiProv;
    }
    ++result_.audit.links_committed_c2p;
  }
}

void Pipeline::triplet_fixpoint() {
  // Order-sensitive: a commit made while sweeping one path feeds the
  // propagation along the next within the same iteration, so this stage runs
  // sequentially at every thread count by design (parallelizing it would
  // change which of several admissible fixpoint schedules is taken).
  //
  // Valley-free propagation in both directions:
  //   forward:  after a path crosses a known p2p link or a known descent,
  //             every later link must descend (left side provides);
  //   backward: before a known p2p link or a known ascent, every earlier
  //             link must ascend (right side provides).
  const std::size_t record_count = rec_off_.size() - 1;
  bool changed = true;
  std::size_t iterations = 0;
  while (changed && iterations < 16) {
    changed = false;
    ++iterations;
    for (std::size_t r = 0; r < record_count; ++r) {
      const auto hops = hops_of(r);
      const auto links = links_of(r);
      if (hops.size() < 2) continue;

      auto classify = [&](std::size_t j) {
        // Link between hops[j-1] and hops[j].
        const LinkState::Kind kind = link_state_[links[j]].kind;
        struct Info {
          LinkState::Kind kind;
          bool descending;  // known p2c, left provides
          bool ascending;   // known c2p, right provides
        };
        const bool left_is_lo = hops[j - 1] < hops[j];
        const bool desc = (kind == LinkState::Kind::kC2pLoProv && left_is_lo) ||
                          (kind == LinkState::Kind::kC2pHiProv && !left_is_lo);
        const bool asc = kind != LinkState::Kind::kUnknown &&
                         kind != LinkState::Kind::kP2pFixed &&
                         kind != LinkState::Kind::kS2S && !desc;
        return Info{kind, desc, asc};
      };

      bool descending = rec_partial_[r] != 0;
      for (std::size_t j = 1; j < hops.size(); ++j) {
        const auto info = classify(j);
        if (descending) {
          if (info.kind == LinkState::Kind::kUnknown) {
            set_c2p(links[j], hops[j - 1], hops[j]);
            ++result_.audit.triplet_inferred;
            changed = true;
          } else if (info.ascending || info.kind == LinkState::Kind::kP2pFixed) {
            // Contradiction with commits made from stronger evidence; the
            // path is not valley-free under the current labelling.
            ++result_.audit.valley_violations;
            break;
          }
        } else if (info.kind == LinkState::Kind::kP2pFixed || info.descending) {
          descending = true;
        }
      }

      bool ascending = false;
      for (std::size_t j = hops.size() - 1; j >= 1; --j) {
        const auto info = classify(j);
        if (ascending) {
          if (info.kind == LinkState::Kind::kUnknown) {
            set_c2p(links[j], hops[j], hops[j - 1]);  // right side provides
            ++result_.audit.triplet_inferred;
            changed = true;
          } else if (info.descending || info.kind == LinkState::Kind::kP2pFixed) {
            ++result_.audit.valley_violations;
            break;
          }
        } else if (info.kind == LinkState::Kind::kP2pFixed || info.ascending) {
          ascending = true;
        }
      }
    }
  }
}

void Pipeline::repair_provider_less() {
  const Degrees& degrees = result_.degrees;
  const std::size_t n = interner_.size();
  // Collect current provider existence and per-AS unknown-link neighbours.
  std::vector<bool> has_provider(n, false);
  std::vector<std::vector<std::pair<NodeId, std::uint32_t>>> unknown_neighbors(n);
  for (std::size_t i = 0; i < link_keys_.size(); ++i) {
    const NodeId lo = lo_of(link_keys_[i]), hi = hi_of(link_keys_[i]);
    switch (link_state_[i].kind) {
      case LinkState::Kind::kC2pLoProv: has_provider[hi] = true; break;
      case LinkState::Kind::kC2pHiProv: has_provider[lo] = true; break;
      case LinkState::Kind::kUnknown:
        unknown_neighbors[lo].emplace_back(hi, link_state_[i].observations);
        unknown_neighbors[hi].emplace_back(lo, link_state_[i].observations);
        break;
      case LinkState::Kind::kP2pFixed:
      case LinkState::Kind::kS2S:
        break;
    }
  }
  // Order-independent (a rank comparison gates every adoption, and ranks
  // form a strict total order), so the ascending-id sweep reproduces the
  // legacy hash-order sweep exactly.
  for (NodeId as = 0; as < n; ++as) {
    if (!transit_bits_[as] || in_clique(as) || has_provider[as]) continue;
    if (unknown_neighbors[as].empty()) continue;
    // Most-observed higher-ranked neighbour becomes the provider.
    NodeId best = kNoNode;
    std::uint32_t best_obs = 0;
    for (const auto& [neighbor, observations] : unknown_neighbors[as]) {
      if (degrees.rank_of(neighbor) >= degrees.rank_of(as)) continue;
      if (observations > best_obs || (observations == best_obs && neighbor < best)) {
        best = neighbor;
        best_obs = observations;
      }
    }
    if (best == kNoNode) continue;
    const std::uint32_t link = link_index(best, as);
    if (link_state_[link].kind == LinkState::Kind::kUnknown) {
      set_c2p(link, best, as);
      ++result_.audit.providerless_repaired;
    }
  }
}

void Pipeline::stub_clique_pass() {
  for (std::size_t i = 0; i < link_keys_.size(); ++i) {
    if (link_state_[i].kind != LinkState::Kind::kUnknown) continue;
    const NodeId lo = lo_of(link_keys_[i]), hi = hi_of(link_keys_[i]);
    const bool lo_clique = in_clique(lo), hi_clique = in_clique(hi);
    if (lo_clique == hi_clique) continue;
    const NodeId member = lo_clique ? lo : hi;
    const NodeId other = lo_clique ? hi : lo;
    if (!transit_bits_[other]) {  // a stub never transits
      set_c2p(static_cast<std::uint32_t>(i), member, other);
      ++result_.audit.stub_clique_links;
    }
  }
}

void Pipeline::enforce_transit_free_clique() {
  // Assumption A1: clique members buy transit from no one.  A c2p commit
  // with a clique member on the customer side is necessarily a direction
  // error (a handful of misleading path positions can out-vote the truth
  // for links seen from few VPs), and it is catastrophic if left standing:
  // the false "provider" captures the member's entire customer cone and
  // rockets up the ranking.  Re-orient such links toward the member.
  for (std::size_t i = 0; i < link_keys_.size(); ++i) {
    const NodeId lo = lo_of(link_keys_[i]), hi = hi_of(link_keys_[i]);
    NodeId provider = kNoNode, customer = kNoNode;
    if (link_state_[i].kind == LinkState::Kind::kC2pLoProv) {
      provider = lo;
      customer = hi;
    } else if (link_state_[i].kind == LinkState::Kind::kC2pHiProv) {
      provider = hi;
      customer = lo;
    } else {
      continue;
    }
    if (in_clique(customer) && !in_clique(provider)) {
      set_c2p(static_cast<std::uint32_t>(i), customer, provider);
      ++result_.audit.clique_direction_fixes;
    }
  }
}

void Pipeline::finalize_graph() {
  for (std::size_t i = 0; i < link_keys_.size(); ++i) {
    const Asn lo = interner_.asn_of(lo_of(link_keys_[i]));
    const Asn hi = interner_.asn_of(hi_of(link_keys_[i]));
    switch (link_state_[i].kind) {
      case LinkState::Kind::kC2pLoProv:
        result_.graph.add_p2c(lo, hi);
        break;
      case LinkState::Kind::kC2pHiProv:
        result_.graph.add_p2c(hi, lo);
        break;
      case LinkState::Kind::kP2pFixed:
        result_.graph.add_p2p(lo, hi);
        break;
      case LinkState::Kind::kS2S:
        result_.graph.add_s2s(lo, hi);
        break;
      case LinkState::Kind::kUnknown:
        result_.graph.add_p2p(lo, hi);
        ++result_.audit.p2p_fallback;
        break;
    }
  }
}

void Pipeline::repair_cycles() {
  // The SCC re-orientation lives in core/cones.cpp (break_provider_cycles)
  // so baseline-algorithm snapshot builds can impose the same repair.
  result_.audit.cycle_edges_reoriented +=
      break_provider_cycles(result_.graph, result_.degrees);
}

}  // namespace

InferenceResult AsRankInference::run(const paths::PathCorpus& raw) const {
  Pipeline pipeline(config_, raw);
  return pipeline.take();
}

}  // namespace asrank::core
