#include "core/asrank.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/thread_pool.h"

namespace asrank::core {

namespace {

using paths::PathCorpus;
using paths::PathRecord;

constexpr Asn lo_of(std::uint64_t key) noexcept {
  return Asn(static_cast<std::uint32_t>(key >> 32));
}
constexpr Asn hi_of(std::uint64_t key) noexcept {
  return Asn(static_cast<std::uint32_t>(key));
}

/// Working state for one observed link during inference.
struct LinkState {
  enum class Kind : std::uint8_t { kUnknown, kC2pLoProv, kC2pHiProv, kP2pFixed, kS2S };
  Kind kind = Kind::kUnknown;
  std::uint32_t votes_lo_prov = 0;  ///< votes that the lower-ASN side provides
  std::uint32_t votes_hi_prov = 0;
  std::uint32_t observations = 0;   ///< times the link appeared in paths
};

class Pipeline {
 public:
  Pipeline(const InferenceConfig& config, const PathCorpus& raw)
      : config_(config), pool_(config.threads) {
    run(raw);
  }

  InferenceResult take() { return std::move(result_); }

 private:
  void run(const PathCorpus& raw);
  void discard_poisoned(const PathCorpus& corpus);
  void detect_partial_vps();
  void vote_on_paths();
  void commit_votes();
  void triplet_fixpoint();
  void repair_provider_less();
  void stub_clique_pass();
  void enforce_transit_free_clique();
  void finalize_graph();
  void repair_cycles();

  [[nodiscard]] bool in_clique(Asn as) const { return clique_set_.contains(as); }
  void set_c2p(Asn provider, Asn customer);
  [[nodiscard]] LinkState::Kind kind_of(Asn a, Asn b) const;

  const InferenceConfig& config_;
  util::ThreadPool pool_;
  InferenceResult result_;
  std::unordered_set<Asn> clique_set_;
  std::unordered_set<Asn> partial_vps_;
  std::unordered_map<std::uint64_t, LinkState> links_;
  std::unordered_set<Asn> transit_ases_;  ///< seen between two other ASes
};

LinkState::Kind Pipeline::kind_of(Asn a, Asn b) const {
  const auto it = links_.find(PathCorpus::key(a, b));
  return it == links_.end() ? LinkState::Kind::kUnknown : it->second.kind;
}

void Pipeline::set_c2p(Asn provider, Asn customer) {
  auto& state = links_[PathCorpus::key(provider, customer)];
  state.kind = provider.value() < customer.value() ? LinkState::Kind::kC2pLoProv
                                                   : LinkState::Kind::kC2pHiProv;
}

void Pipeline::run(const PathCorpus& raw) {
  // Step 1: sanitize.
  auto sanitized = paths::sanitize(raw, config_.sanitizer);
  result_.audit.sanitize = sanitized.stats;

  // Step 2: rank.
  result_.degrees = Degrees::compute(sanitized.corpus);
  result_.audit.ranked_ases = result_.degrees.ranked().size();

  // Step 3: clique.
  result_.clique = infer_clique(sanitized.corpus, result_.degrees, config_.clique);
  clique_set_.insert(result_.clique.begin(), result_.clique.end());
  result_.audit.clique_size = result_.clique.size();

  // Step 4: discard poisoned paths.
  discard_poisoned(sanitized.corpus);

  // Register every observed link and transit AS.
  for (const PathRecord& record : result_.sanitized.records()) {
    const auto hops = record.path.hops();
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      ++links_[PathCorpus::key(hops[i], hops[i + 1])].observations;
      if (i > 0) transit_ases_.insert(hops[i]);
    }
  }
  // Clique-internal links are p2p by assumption A1.
  for (std::size_t i = 0; i < result_.clique.size(); ++i) {
    for (std::size_t j = i + 1; j < result_.clique.size(); ++j) {
      const auto it = links_.find(PathCorpus::key(result_.clique[i], result_.clique[j]));
      if (it != links_.end()) it->second.kind = LinkState::Kind::kP2pFixed;
    }
  }

  // Steps 5-11.
  detect_partial_vps();
  vote_on_paths();
  commit_votes();
  if (config_.triplet_fixpoint) triplet_fixpoint();
  if (config_.provider_less_repair) repair_provider_less();
  if (config_.stub_clique_pass) stub_clique_pass();
  enforce_transit_free_clique();
  finalize_graph();
  repair_cycles();
  result_.audit.p2c_acyclic = result_.graph.p2c_acyclic();
}

void Pipeline::discard_poisoned(const PathCorpus& corpus) {
  const auto records = corpus.records();
  // Per-path classification is independent, so it parallelizes; the ordered
  // append below keeps the surviving corpus in the original record order.
  std::vector<std::uint8_t> poisoned(records.size(), 0);
  if (config_.discard_poisoned && !clique_set_.empty()) {
    pool_.for_each_index(records.size(), [&](std::size_t r) {
      const auto hops = records[r].path.hops();
      std::size_t first = hops.size(), last = 0, count = 0;
      for (std::size_t i = 0; i < hops.size(); ++i) {
        if (in_clique(hops[i])) {
          first = std::min(first, i);
          last = std::max(last, i);
          ++count;
        }
      }
      // Clique hops must form one contiguous segment; a gap means a
      // non-clique AS sits between two tier-1s, the poisoning signature.
      poisoned[r] = count > 0 && (last - first + 1) != count;
    });
  }
  for (std::size_t r = 0; r < records.size(); ++r) {
    if (poisoned[r]) {
      ++result_.audit.poisoned_discarded;
    } else {
      result_.sanitized.add(records[r]);
    }
  }
}

void Pipeline::detect_partial_vps() {
  if (config_.partial_vp_threshold <= 0.0) return;
  std::unordered_map<Asn, std::size_t> table_sizes;
  for (const PathRecord& record : result_.sanitized.records()) ++table_sizes[record.vp];
  std::size_t max_size = 0;
  for (const auto& [vp, size] : table_sizes) max_size = std::max(max_size, size);
  for (const auto& [vp, size] : table_sizes) {
    if (static_cast<double>(size) <
        config_.partial_vp_threshold * static_cast<double>(max_size)) {
      partial_vps_.insert(vp);
    }
  }
  result_.audit.partial_vps = partial_vps_.size();
}

void Pipeline::vote_on_paths() {
  const Degrees& degrees = result_.degrees;

  // Votes are per-link sums and the audit counters are totals, so per-path
  // work is independent: each chunk accumulates a local tally against the
  // (read-only) link table and tallies merge by addition — commutative, so
  // the result is identical at any thread count.
  struct VoteTally {
    std::unordered_map<std::uint64_t, std::pair<std::uint32_t, std::uint32_t>>
        votes;  ///< key -> (lo-provides, hi-provides)
    std::size_t cast = 0;
    std::size_t deferred = 0;
  };

  auto tally_record = [&](const PathRecord& record, VoteTally& tally) {
    auto vote = [&](Asn provider, Asn customer) {
      const std::uint64_t key = PathCorpus::key(provider, customer);
      const auto it = links_.find(key);
      if (it != links_.end() && it->second.kind == LinkState::Kind::kP2pFixed) return;
      auto& [lo_prov, hi_prov] = tally.votes[key];
      if (provider.value() < customer.value()) {
        ++lo_prov;
      } else {
        ++hi_prov;
      }
      ++tally.cast;
    };

    const auto hops = record.path.hops();
    if (hops.size() < 2) return;

    // A path is valley-free around a single peak.  We vote c2p only for
    // positions that are certainly on the up or down slope; the (at most
    // two) links adjacent to the peak are the only p2p candidates and are
    // deferred to the fixpoint / fallback stages.  Three cases locate the
    // peak:
    //   (a) partial-view VPs export customer routes only: the whole path
    //       descends from the VP (no deferral at all);
    //   (b) paths crossing the clique peak at the (contiguous) clique
    //       segment: ascent strictly before it, descent strictly after,
    //       with the two boundary links deferred (an AS may peer with a
    //       clique member);
    //   (c) otherwise the apex is approximated by the highest-ranked AS and
    //       both apex-adjacent links are deferred.
    std::size_t defer_lo = hops.size(), defer_hi = hops.size();  // j-indices to skip
    std::size_t peak_first = 0, peak_last = 0;                   // hop index range of peak

    if (partial_vps_.contains(record.vp)) {
      // (a): peak is the VP itself; nothing deferred, everything descends.
    } else {
      std::size_t first_clique = hops.size(), last_clique = hops.size();
      for (std::size_t i = 0; i < hops.size(); ++i) {
        if (in_clique(hops[i])) {
          if (first_clique == hops.size()) first_clique = i;
          last_clique = i;
        }
      }
      if (first_clique != hops.size()) {
        // (b): poisoned paths were discarded, so the segment is contiguous.
        peak_first = first_clique;
        peak_last = last_clique;
        defer_lo = first_clique;     // link (first-1 -> first)
        defer_hi = last_clique + 1;  // link (last -> last+1)
      } else {
        // (c): rank apex.
        std::size_t apex = 0;
        for (std::size_t i = 1; i < hops.size(); ++i) {
          if (degrees.rank_of(hops[i]) < degrees.rank_of(hops[apex])) apex = i;
        }
        peak_first = peak_last = apex;
        defer_lo = apex;
        defer_hi = apex + 1;
      }
    }

    for (std::size_t j = 1; j < hops.size(); ++j) {
      const Asn left = hops[j - 1];
      const Asn right = hops[j];
      if (j == defer_lo || j == defer_hi) {
        // Optional ablation knob: vote c2p at a deferred peak link anyway
        // when the transit-degree gap makes peering look implausible.  Off
        // by default — bench_ablation shows it trades c2p PPV for coverage.
        if (config_.apex_degree_gap > 0.0) {
          const Asn peak_side = (j == defer_lo) ? right : left;
          const Asn other = (j == defer_lo) ? left : right;
          const auto td_peak = static_cast<double>(degrees.transit_degree(peak_side));
          const auto td_other = static_cast<double>(degrees.transit_degree(other));
          if (td_peak >= config_.apex_degree_gap * std::max(td_other, 1.0)) {
            vote(peak_side, other);
            continue;
          }
        }
        ++tally.deferred;
        continue;
      }
      if (j > peak_first && j <= peak_last) continue;  // clique-internal: fixed p2p
      if (j <= peak_first) {
        vote(right, left);  // ascending toward the peak
      } else {
        vote(left, right);  // descending from the peak
      }
    }
  };

  const auto records = result_.sanitized.records();
  const VoteTally total = pool_.map_reduce<VoteTally>(
      records.size(), VoteTally{},
      [&](std::size_t begin, std::size_t end) {
        VoteTally local;
        for (std::size_t r = begin; r < end; ++r) tally_record(records[r], local);
        return local;
      },
      [](VoteTally& acc, VoteTally&& part) {
        for (const auto& [key, votes] : part.votes) {
          auto& [lo_prov, hi_prov] = acc.votes[key];
          lo_prov += votes.first;
          hi_prov += votes.second;
        }
        acc.cast += part.cast;
        acc.deferred += part.deferred;
      });

  for (const auto& [key, votes] : total.votes) {
    auto& state = links_[key];
    state.votes_lo_prov += votes.first;
    state.votes_hi_prov += votes.second;
  }
  result_.audit.c2p_votes += total.cast;
  result_.audit.apex_links_deferred += total.deferred;
}

void Pipeline::commit_votes() {
  const Degrees& degrees = result_.degrees;
  for (auto& [key, state] : links_) {
    if (state.kind != LinkState::Kind::kUnknown) continue;
    if (state.votes_lo_prov == 0 && state.votes_hi_prov == 0) continue;
    if (state.votes_lo_prov > 0 && state.votes_hi_prov > 0) {
      ++result_.audit.vote_conflicts;
      // Balanced, persistent two-way transit evidence is the sibling
      // signature: siblings re-export everything, so the link ascends in
      // some paths and descends in others.
      const std::uint32_t low = std::min(state.votes_lo_prov, state.votes_hi_prov);
      const std::uint32_t high = std::max(state.votes_lo_prov, state.votes_hi_prov);
      if (config_.sibling_conflict_ratio > 0.0 && low >= config_.sibling_min_votes &&
          static_cast<double>(low) >=
              config_.sibling_conflict_ratio * static_cast<double>(high)) {
        state.kind = LinkState::Kind::kS2S;
        ++result_.audit.siblings_inferred;
        continue;
      }
    }
    if (state.votes_lo_prov > state.votes_hi_prov) {
      state.kind = LinkState::Kind::kC2pLoProv;
    } else if (state.votes_hi_prov > state.votes_lo_prov) {
      state.kind = LinkState::Kind::kC2pHiProv;
    } else {
      // Tie: the higher-ranked side is the provider.
      state.kind = degrees.rank_of(lo_of(key)) < degrees.rank_of(hi_of(key))
                       ? LinkState::Kind::kC2pLoProv
                       : LinkState::Kind::kC2pHiProv;
    }
    ++result_.audit.links_committed_c2p;
  }
}

void Pipeline::triplet_fixpoint() {
  // Order-sensitive: a commit made while sweeping one path feeds the
  // propagation along the next within the same iteration, so this stage runs
  // sequentially at every thread count by design (parallelizing it would
  // change which of several admissible fixpoint schedules is taken).
  //
  // Valley-free propagation in both directions:
  //   forward:  after a path crosses a known p2p link or a known descent,
  //             every later link must descend (left side provides);
  //   backward: before a known p2p link or a known ascent, every earlier
  //             link must ascend (right side provides).
  bool changed = true;
  std::size_t iterations = 0;
  while (changed && iterations < 16) {
    changed = false;
    ++iterations;
    for (const PathRecord& record : result_.sanitized.records()) {
      const auto hops = record.path.hops();
      if (hops.size() < 2) continue;

      auto classify = [&](std::size_t j) {
        // Link between hops[j-1] and hops[j].
        const Asn left = hops[j - 1];
        const Asn right = hops[j];
        const LinkState::Kind kind = kind_of(left, right);
        struct Info {
          LinkState::Kind kind;
          bool descending;  // known p2c, left provides
          bool ascending;   // known c2p, right provides
        };
        const bool left_is_lo = left.value() < right.value();
        const bool desc = (kind == LinkState::Kind::kC2pLoProv && left_is_lo) ||
                          (kind == LinkState::Kind::kC2pHiProv && !left_is_lo);
        const bool asc = kind != LinkState::Kind::kUnknown &&
                         kind != LinkState::Kind::kP2pFixed &&
                         kind != LinkState::Kind::kS2S && !desc;
        return Info{kind, desc, asc};
      };

      bool descending = partial_vps_.contains(record.vp);
      for (std::size_t j = 1; j < hops.size(); ++j) {
        const auto info = classify(j);
        if (descending) {
          if (info.kind == LinkState::Kind::kUnknown) {
            set_c2p(hops[j - 1], hops[j]);
            ++result_.audit.triplet_inferred;
            changed = true;
          } else if (info.ascending || info.kind == LinkState::Kind::kP2pFixed) {
            // Contradiction with commits made from stronger evidence; the
            // path is not valley-free under the current labelling.
            ++result_.audit.valley_violations;
            break;
          }
        } else if (info.kind == LinkState::Kind::kP2pFixed || info.descending) {
          descending = true;
        }
      }

      bool ascending = false;
      for (std::size_t j = hops.size() - 1; j >= 1; --j) {
        const auto info = classify(j);
        if (ascending) {
          if (info.kind == LinkState::Kind::kUnknown) {
            set_c2p(hops[j], hops[j - 1]);  // right side provides
            ++result_.audit.triplet_inferred;
            changed = true;
          } else if (info.descending || info.kind == LinkState::Kind::kP2pFixed) {
            ++result_.audit.valley_violations;
            break;
          }
        } else if (info.kind == LinkState::Kind::kP2pFixed || info.ascending) {
          ascending = true;
        }
      }
    }
  }
}

void Pipeline::repair_provider_less() {
  const Degrees& degrees = result_.degrees;
  // Collect current provider existence and per-AS unknown-link neighbours.
  std::unordered_set<Asn> has_provider;
  std::unordered_map<Asn, std::vector<std::pair<Asn, std::uint32_t>>> unknown_neighbors;
  for (const auto& [key, state] : links_) {
    const Asn lo = lo_of(key), hi = hi_of(key);
    switch (state.kind) {
      case LinkState::Kind::kC2pLoProv: has_provider.insert(hi); break;
      case LinkState::Kind::kC2pHiProv: has_provider.insert(lo); break;
      case LinkState::Kind::kUnknown:
        unknown_neighbors[lo].emplace_back(hi, state.observations);
        unknown_neighbors[hi].emplace_back(lo, state.observations);
        break;
      case LinkState::Kind::kP2pFixed:
      case LinkState::Kind::kS2S:
        break;
    }
  }
  for (const Asn as : transit_ases_) {
    if (in_clique(as) || has_provider.contains(as)) continue;
    const auto it = unknown_neighbors.find(as);
    if (it == unknown_neighbors.end()) continue;
    // Most-observed higher-ranked neighbour becomes the provider.
    Asn best;
    std::uint32_t best_obs = 0;
    for (const auto& [neighbor, observations] : it->second) {
      if (degrees.rank_of(neighbor) >= degrees.rank_of(as)) continue;
      if (observations > best_obs || (observations == best_obs && neighbor < best)) {
        best = neighbor;
        best_obs = observations;
      }
    }
    if (best.valid() && kind_of(best, as) == LinkState::Kind::kUnknown) {
      set_c2p(best, as);
      ++result_.audit.providerless_repaired;
    }
  }
}

void Pipeline::stub_clique_pass() {
  for (auto& [key, state] : links_) {
    if (state.kind != LinkState::Kind::kUnknown) continue;
    const Asn lo = lo_of(key), hi = hi_of(key);
    const bool lo_clique = in_clique(lo), hi_clique = in_clique(hi);
    if (lo_clique == hi_clique) continue;
    const Asn member = lo_clique ? lo : hi;
    const Asn other = lo_clique ? hi : lo;
    if (!transit_ases_.contains(other)) {  // a stub never transits
      set_c2p(member, other);
      ++result_.audit.stub_clique_links;
    }
  }
}

void Pipeline::enforce_transit_free_clique() {
  // Assumption A1: clique members buy transit from no one.  A c2p commit
  // with a clique member on the customer side is necessarily a direction
  // error (a handful of misleading path positions can out-vote the truth
  // for links seen from few VPs), and it is catastrophic if left standing:
  // the false "provider" captures the member's entire customer cone and
  // rockets up the ranking.  Re-orient such links toward the member.
  for (auto& [key, state] : links_) {
    const Asn lo = lo_of(key), hi = hi_of(key);
    Asn provider, customer;
    if (state.kind == LinkState::Kind::kC2pLoProv) {
      provider = lo;
      customer = hi;
    } else if (state.kind == LinkState::Kind::kC2pHiProv) {
      provider = hi;
      customer = lo;
    } else {
      continue;
    }
    if (in_clique(customer) && !in_clique(provider)) {
      set_c2p(customer, provider);
      ++result_.audit.clique_direction_fixes;
    }
  }
}

void Pipeline::finalize_graph() {
  for (const auto& [key, state] : links_) {
    const Asn lo = lo_of(key), hi = hi_of(key);
    switch (state.kind) {
      case LinkState::Kind::kC2pLoProv:
        result_.graph.add_p2c(lo, hi);
        break;
      case LinkState::Kind::kC2pHiProv:
        result_.graph.add_p2c(hi, lo);
        break;
      case LinkState::Kind::kP2pFixed:
        result_.graph.add_p2p(lo, hi);
        break;
      case LinkState::Kind::kS2S:
        result_.graph.add_s2s(lo, hi);
        break;
      case LinkState::Kind::kUnknown:
        result_.graph.add_p2p(lo, hi);
        ++result_.audit.p2p_fallback;
        break;
    }
  }
}

void Pipeline::repair_cycles() {
  if (result_.graph.p2c_acyclic()) return;
  // Tarjan SCC over the provider->customer digraph; inside each non-trivial
  // SCC, re-orient c2p edges so the higher-ranked endpoint provides, which
  // imposes a strict total order and breaks all cycles without discarding
  // transit evidence.
  const std::vector<Asn> ases = result_.graph.ases();
  std::unordered_map<Asn, std::size_t> index;
  for (std::size_t i = 0; i < ases.size(); ++i) index.emplace(ases[i], i);
  const std::size_t n = ases.size();

  std::vector<std::size_t> low(n, 0), disc(n, 0), scc_id(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::size_t timer = 1, scc_count = 0;

  // Iterative Tarjan to avoid deep recursion on large graphs.
  struct Frame {
    std::size_t node;
    std::size_t child_index;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (disc[root] != 0) continue;
    std::vector<Frame> frames{{root, 0}};
    while (!frames.empty()) {
      const std::size_t node = frames.back().node;
      if (frames.back().child_index == 0) {
        disc[node] = low[node] = timer++;
        stack.push_back(node);
        on_stack[node] = true;
      }
      const auto customers = result_.graph.customers(ases[node]);
      if (frames.back().child_index < customers.size()) {
        const std::size_t next = index.at(customers[frames.back().child_index]);
        ++frames.back().child_index;
        if (disc[next] == 0) {
          frames.push_back({next, 0});  // frames.back() invalidated; loop re-reads
        } else if (on_stack[next]) {
          low[node] = std::min(low[node], disc[next]);
        }
        continue;
      }
      if (low[node] == disc[node]) {
        ++scc_count;
        while (true) {
          const std::size_t top = stack.back();
          stack.pop_back();
          on_stack[top] = false;
          scc_id[top] = scc_count;
          if (top == node) break;
        }
      }
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().node] = std::min(low[frames.back().node], low[node]);
      }
    }
  }

  const Degrees& degrees = result_.degrees;
  for (const Link& link : result_.graph.links()) {
    if (link.type != LinkType::kP2C) continue;
    const std::size_t ia = index.at(link.a), ib = index.at(link.b);
    if (scc_id[ia] != scc_id[ib]) continue;
    // Intra-SCC edge: orient toward the ranking.
    const bool a_higher = degrees.rank_of(link.a) < degrees.rank_of(link.b) ||
                          (degrees.rank_of(link.a) == degrees.rank_of(link.b) &&
                           link.a < link.b);
    if (!a_higher) {
      result_.graph.add_p2c(link.b, link.a);
      ++result_.audit.cycle_edges_reoriented;
    }
  }
}

}  // namespace

InferenceResult AsRankInference::run(const paths::PathCorpus& raw) const {
  Pipeline pipeline(config_, raw);
  return pipeline.take();
}

}  // namespace asrank::core
