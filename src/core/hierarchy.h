// Hierarchy analysis over an inferred relationship graph: tier
// classification, transit path-length statistics, and "flattening" metrics.
// These support the paper's discussion sections (the shrinking transit
// hierarchy, the growing role of peering) and give downstream users the
// derived views CAIDA publishes alongside the as-rel files.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "asn/asn.h"
#include "topology/as_graph.h"
#include "topology/serialization.h"

namespace asrank::core {

/// Position of an AS in the inferred hierarchy.
enum class HierarchyTier : std::uint8_t {
  kClique,        ///< member of the inferred tier-1 clique
  kTransit,       ///< has customers and providers (resells transit)
  kLeafProvider,  ///< has customers but no providers (regional root outside clique)
  kStub,          ///< no customers
};

[[nodiscard]] constexpr std::string_view to_string(HierarchyTier tier) noexcept {
  switch (tier) {
    case HierarchyTier::kClique: return "clique";
    case HierarchyTier::kTransit: return "transit";
    case HierarchyTier::kLeafProvider: return "leaf-provider";
    case HierarchyTier::kStub: return "stub";
  }
  return "?";
}

struct HierarchySummary {
  std::unordered_map<Asn, HierarchyTier> tiers;
  std::size_t clique = 0;
  std::size_t transit = 0;
  std::size_t leaf_providers = 0;
  std::size_t stubs = 0;

  /// Average provider count over ASes that have any provider (multihoming).
  double mean_providers = 0.0;
  /// Fraction of all links that are p2p ("flatness" of the visible graph).
  double p2p_share = 0.0;
};

/// Classify every AS of `graph` given the inferred clique.
[[nodiscard]] HierarchySummary analyze_hierarchy(const AsGraph& graph,
                                                 const std::vector<Asn>& clique);

/// Depth of each AS: shortest provider-chain distance to a provider-free AS
/// (clique members and leaf providers are depth 0).  The maximum depth is
/// the height of the transit hierarchy.
[[nodiscard]] std::unordered_map<Asn, std::size_t> hierarchy_depths(const AsGraph& graph);

/// Jaccard similarity between two customer cones (used by rank-stability
/// analyses).  Inputs must be sorted ascending, as ConeMap stores them.
[[nodiscard]] double cone_jaccard(const std::vector<Asn>& a, const std::vector<Asn>& b);

/// Rank stability between two ranked AS lists (e.g. consecutive snapshots):
/// for each AS in both lists, the absolute rank change; summarized as the
/// mean over the top `top_n` ASes of `before`.
[[nodiscard]] double mean_rank_change(const std::vector<Asn>& before,
                                      const std::vector<Asn>& after, std::size_t top_n);

}  // namespace asrank::core
