#include "core/clique.h"

#include <algorithm>

namespace asrank::core {

AdjacencySet build_adjacency(const paths::PathCorpus& corpus) {
  AdjacencySet adjacency;
  for (const paths::PathRecord& record : corpus.records()) {
    const auto hops = record.path.hops();
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      if (hops[i] == hops[i + 1]) continue;
      adjacency[hops[i]].insert(hops[i + 1]);
      adjacency[hops[i + 1]].insert(hops[i]);
    }
  }
  return adjacency;
}

namespace {

bool adjacent(const AdjacencySet& adjacency, Asn a, Asn b) {
  const auto it = adjacency.find(a);
  return it != adjacency.end() && it->second.contains(b);
}

/// Bron–Kerbosch with pivoting over index sets.
void bron_kerbosch(const std::vector<Asn>& vertices,
                   const std::vector<std::vector<bool>>& adj, std::vector<std::size_t>& r,
                   std::vector<std::size_t> p, std::vector<std::size_t> x,
                   std::vector<std::vector<Asn>>& out) {
  if (p.empty() && x.empty()) {
    std::vector<Asn> clique;
    clique.reserve(r.size());
    for (const std::size_t i : r) clique.push_back(vertices[i]);
    std::sort(clique.begin(), clique.end());
    out.push_back(std::move(clique));
    return;
  }
  // Pivot: vertex of P ∪ X with most neighbours in P.
  std::size_t pivot = 0;
  std::size_t best = 0;
  bool have_pivot = false;
  for (const auto& set : {p, x}) {
    for (const std::size_t u : set) {
      std::size_t count = 0;
      for (const std::size_t v : p) {
        if (adj[u][v]) ++count;
      }
      if (!have_pivot || count > best) {
        pivot = u;
        best = count;
        have_pivot = true;
      }
    }
  }
  std::vector<std::size_t> candidates;
  for (const std::size_t v : p) {
    if (!adj[pivot][v]) candidates.push_back(v);
  }
  for (const std::size_t v : candidates) {
    r.push_back(v);
    std::vector<std::size_t> p_next, x_next;
    for (const std::size_t u : p) {
      if (adj[v][u]) p_next.push_back(u);
    }
    for (const std::size_t u : x) {
      if (adj[v][u]) x_next.push_back(u);
    }
    bron_kerbosch(vertices, adj, r, std::move(p_next), std::move(x_next), out);
    r.pop_back();
    p.erase(std::remove(p.begin(), p.end(), v), p.end());
    x.push_back(v);
  }
}

}  // namespace

std::vector<std::vector<Asn>> maximal_cliques(const AdjacencySet& adjacency,
                                              const std::vector<Asn>& vertices) {
  const std::size_t n = vertices.size();
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (adjacent(adjacency, vertices[i], vertices[j])) {
        adj[i][j] = adj[j][i] = true;
      }
    }
  }
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  std::vector<std::size_t> r;
  std::vector<std::vector<Asn>> out;
  bron_kerbosch(vertices, adj, r, std::move(p), {}, out);
  return out;
}

namespace {

/// Customer evidence relative to a candidate member set: an AS observed
/// directly after two consecutive members (either path direction) must buy
/// transit from a member — the member-member link is p2p, so the next link
/// can only be p2c.  An AS *sandwiched between* two members must buy from at
/// least one (two consecutive p2p links would violate valley-freeness);
/// this also neutralizes path poisoning that inserts a victim between two
/// tier-1s.  The sandwich rule applies to members themselves: a "member"
/// seen between two genuine members is a customer that slipped in.
/// Flagged AS -> distinct origin ASes that witnessed the evidence.
using EvidenceMap = std::unordered_map<Asn, std::unordered_set<Asn>>;

EvidenceMap customer_evidence(const paths::PathCorpus& corpus,
                              const std::unordered_set<Asn>& members) {
  // Evidence is recorded per distinct origin AS: a single origin poisoning
  // its announcements (inserting a real tier-1 ASN) taints every path toward
  // itself but no path toward anyone else, so the caller can demand
  // independent witnesses where robustness matters.
  EvidenceMap witnesses;
  for (const paths::PathRecord& record : corpus.records()) {
    const auto hops = record.path.hops();
    if (hops.size() < 3) continue;
    const Asn origin = hops.back();
    for (std::size_t i = 0; i + 2 < hops.size(); ++i) {
      const bool first_in = members.contains(hops[i]);
      const bool mid_in = members.contains(hops[i + 1]);
      const bool last_in = members.contains(hops[i + 2]);
      if (first_in && mid_in && !last_in) witnesses[hops[i + 2]].insert(origin);
      if (mid_in && last_in && !first_in) witnesses[hops[i]].insert(origin);
      if (first_in && last_in) witnesses[hops[i + 1]].insert(origin);  // sandwich
    }
  }
  return witnesses;
}

bool flagged_by(const EvidenceMap& evidence, Asn as, std::size_t min_origins) {
  const auto it = evidence.find(as);
  return it != evidence.end() && it->second.size() >= min_origins;
}

}  // namespace

std::vector<Asn> infer_clique(const paths::PathCorpus& corpus, const Degrees& degrees,
                              const CliqueConfig& config) {
  const auto& ranked = degrees.ranked();
  if (ranked.empty()) return {};
  const AdjacencySet adjacency = build_adjacency(corpus);

  const std::size_t seed_size = std::min(config.seed_size, ranked.size());

  // Iterated Bron–Kerbosch: observed adjacency alone cannot distinguish a
  // tier-1 peer from a large customer of two tier-1s, so after each clique
  // candidate we test every member against the valley-free customer
  // evidence and eject the ones proven to buy transit from the rest,
  // removing them from the seed and retrying.
  std::unordered_set<Asn> banned;
  std::vector<Asn> best;
  for (int iteration = 0; iteration < 8; ++iteration) {
    std::vector<Asn> seed;
    for (std::size_t i = 0; i < ranked.size() && seed.size() < seed_size; ++i) {
      if (!banned.contains(ranked[i])) seed.push_back(ranked[i]);
    }
    if (seed.empty()) break;

    // Largest maximal clique within the seed; ties broken toward the
    // lexicographically smallest member set for determinism.  Anchoring on
    // the single top-ranked AS (as a literal reading of the paper suggests)
    // is fragile when a non-tier-1 AS tops the transit-degree ranking under
    // sparse vantage-point coverage; the customer-evidence iteration below
    // ejects intruders either way.
    best.clear();
    for (auto& clique : maximal_cliques(adjacency, seed)) {
      if (clique.size() > best.size() || (clique.size() == best.size() && clique < best)) {
        best = std::move(clique);
      }
    }
    if (best.empty()) best = {seed.front()};
    if (!config.reject_customer_evidence) break;

    // Ejecting an established member requires independent witnesses (a lone
    // poisoning origin must not be able to evict true tier-1s).
    const auto evidence =
        customer_evidence(corpus, std::unordered_set<Asn>(best.begin(), best.end()));
    std::size_t ejected = 0;
    for (const Asn member : best) {
      if (flagged_by(evidence, member, config.customer_evidence_min_origins)) {
        banned.insert(member);
        ++ejected;
      }
    }
    if (ejected == 0) break;
  }

  // Admission of *new* candidates is cheap to deny, so any single witness
  // suffices to reject — which also keeps a poisoning origin's inserted ASN
  // out of the clique.
  std::unordered_set<Asn> below = banned;
  if (config.reject_customer_evidence) {
    const auto evidence =
        customer_evidence(corpus, std::unordered_set<Asn>(best.begin(), best.end()));
    for (const auto& [as, origins] : evidence) {
      if (!origins.empty()) below.insert(as);
    }
  }

  // Expansion: candidates are ASes adjacent to (almost) all current members
  // — found through the members' own adjacency, NOT a transit-degree window,
  // because a true tier-1 with a small customer base ranks arbitrarily low.
  // Candidates are evaluated in rank order so earlier admissions constrain
  // later ones; customer evidence disqualifies outright.
  std::unordered_map<Asn, std::size_t> member_adjacency;
  for (const Asn member : best) {
    const auto it = adjacency.find(member);
    if (it == adjacency.end()) continue;
    for (const Asn neighbor : it->second) ++member_adjacency[neighbor];
  }
  std::vector<Asn> candidates;
  for (const auto& [as, count] : member_adjacency) {
    if (count + config.max_missing_links < best.size()) continue;
    if (std::binary_search(best.begin(), best.end(), as)) continue;
    if (below.contains(as)) continue;
    candidates.push_back(as);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](Asn a, Asn b) { return degrees.rank_of(a) < degrees.rank_of(b); });
  if (candidates.size() > config.expansion_candidates) {
    candidates.resize(config.expansion_candidates);
  }
  for (const Asn candidate : candidates) {
    std::size_t missing = 0;
    for (const Asn member : best) {
      if (!adjacent(adjacency, candidate, member)) ++missing;
    }
    // The tolerance is capped at a third of the current clique: tolerating a
    // missing link in a 2-3 member clique would admit anything adjacent to a
    // single member.
    const std::size_t tolerance = std::min(config.max_missing_links, best.size() / 3);
    if (missing <= tolerance) {
      best.insert(std::upper_bound(best.begin(), best.end(), candidate), candidate);
    }
  }
  return best;
}

}  // namespace asrank::core
