#include "core/clique.h"

#include <algorithm>

namespace asrank::core {

namespace {

using topology::AsnInterner;
using topology::kNoNode;
using topology::NodeId;

constexpr std::uint64_t pack(NodeId a, NodeId b) noexcept {
  return static_cast<std::uint64_t>(a) << 32 | b;
}

}  // namespace

ObservedAdjacency ObservedAdjacency::build(const AsnInterner& interner,
                                           const paths::PathCorpus& corpus) {
  std::vector<std::uint64_t> pairs;
  std::vector<NodeId> ids;
  for (const paths::PathRecord& record : corpus.records()) {
    interner.translate(record.path.hops(), ids);
    for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
      if (ids[i] == ids[i + 1]) continue;  // prepending repeat
      if (ids[i] == kNoNode || ids[i + 1] == kNoNode) continue;
      pairs.push_back(pack(ids[i], ids[i + 1]));
      pairs.push_back(pack(ids[i + 1], ids[i]));
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  ObservedAdjacency adjacency;
  const std::size_t n = interner.size();
  adjacency.offsets_.assign(n + 1, 0);
  adjacency.neighbors_.resize(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    ++adjacency.offsets_[(pairs[i] >> 32) + 1];
    adjacency.neighbors_[i] = static_cast<NodeId>(pairs[i]);
  }
  for (std::size_t i = 0; i < n; ++i) adjacency.offsets_[i + 1] += adjacency.offsets_[i];
  return adjacency;
}

bool ObservedAdjacency::adjacent(NodeId a, NodeId b) const noexcept {
  const auto row = neighbors(a);
  return std::binary_search(row.begin(), row.end(), b);
}

AdjacencySet build_adjacency(const paths::PathCorpus& corpus) {
  AdjacencySet adjacency;
  for (const paths::PathRecord& record : corpus.records()) {
    const auto hops = record.path.hops();
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      if (hops[i] == hops[i + 1]) continue;
      adjacency[hops[i]].insert(hops[i + 1]);
      adjacency[hops[i + 1]].insert(hops[i]);
    }
  }
  return adjacency;
}

namespace {

/// Bron–Kerbosch with pivoting over a dense index adjacency matrix.  Emits
/// each maximal clique as a sorted list of vertex indices.
void bron_kerbosch(const std::vector<std::vector<bool>>& adj, std::vector<std::size_t>& r,
                   std::vector<std::size_t> p, std::vector<std::size_t> x,
                   std::vector<std::vector<std::size_t>>& out) {
  if (p.empty() && x.empty()) {
    std::vector<std::size_t> clique = r;
    std::sort(clique.begin(), clique.end());
    out.push_back(std::move(clique));
    return;
  }
  // Pivot: vertex of P ∪ X with most neighbours in P.
  std::size_t pivot = 0;
  std::size_t best = 0;
  bool have_pivot = false;
  for (const auto& set : {p, x}) {
    for (const std::size_t u : set) {
      std::size_t count = 0;
      for (const std::size_t v : p) {
        if (adj[u][v]) ++count;
      }
      if (!have_pivot || count > best) {
        pivot = u;
        best = count;
        have_pivot = true;
      }
    }
  }
  std::vector<std::size_t> candidates;
  for (const std::size_t v : p) {
    if (!adj[pivot][v]) candidates.push_back(v);
  }
  for (const std::size_t v : candidates) {
    r.push_back(v);
    std::vector<std::size_t> p_next, x_next;
    for (const std::size_t u : p) {
      if (adj[v][u]) p_next.push_back(u);
    }
    for (const std::size_t u : x) {
      if (adj[v][u]) x_next.push_back(u);
    }
    bron_kerbosch(adj, r, std::move(p_next), std::move(x_next), out);
    r.pop_back();
    p.erase(std::remove(p.begin(), p.end(), v), p.end());
    x.push_back(v);
  }
}

std::vector<std::vector<std::size_t>> index_cliques(const std::vector<std::vector<bool>>& adj) {
  std::vector<std::size_t> p(adj.size());
  for (std::size_t i = 0; i < adj.size(); ++i) p[i] = i;
  std::vector<std::size_t> r;
  std::vector<std::vector<std::size_t>> out;
  bron_kerbosch(adj, r, std::move(p), {}, out);
  return out;
}

/// Maximal cliques of the sub-graph induced by `seed`, as sorted NodeId
/// lists.  Sorted ids translate to sorted ASNs (interner order-preservation),
/// so clique comparison below matches the legacy ASN-lexicographic order.
std::vector<std::vector<NodeId>> seed_cliques(const ObservedAdjacency& adjacency,
                                              const std::vector<NodeId>& seed) {
  const std::size_t n = seed.size();
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (adjacency.adjacent(seed[i], seed[j])) adj[i][j] = adj[j][i] = true;
    }
  }
  std::vector<std::vector<NodeId>> out;
  for (const auto& indices : index_cliques(adj)) {
    std::vector<NodeId> clique;
    clique.reserve(indices.size());
    for (const std::size_t i : indices) clique.push_back(seed[i]);
    std::sort(clique.begin(), clique.end());
    out.push_back(std::move(clique));
  }
  return out;
}

/// Customer evidence relative to a candidate member set: an AS observed
/// directly after two consecutive members (either path direction) must buy
/// transit from a member — the member-member link is p2p, so the next link
/// can only be p2c.  An AS *sandwiched between* two members must buy from at
/// least one (two consecutive p2p links would violate valley-freeness);
/// this also neutralizes path poisoning that inserts a victim between two
/// tier-1s.  The sandwich rule applies to members themselves: a "member"
/// seen between two genuine members is a customer that slipped in.
///
/// Returns per-node distinct-witness counts: evidence is recorded per
/// distinct origin AS — a single origin poisoning its announcements
/// (inserting a real tier-1 ASN) taints every path toward itself but no path
/// toward anyone else, so callers can demand independent witnesses where
/// robustness matters.  Counting runs over sorted (flagged, origin) id pairs;
/// origins outside the interner share the kNoNode id (still one distinct
/// witness, as in the legacy hash-set tally).
std::vector<std::uint32_t> customer_evidence(const paths::PathCorpus& corpus,
                                             const AsnInterner& interner,
                                             const std::vector<NodeId>& members) {
  std::vector<bool> member(interner.size(), false);
  for (const NodeId m : members) member[m] = true;
  const auto in = [&](NodeId id) { return id != kNoNode && member[id]; };

  std::vector<std::uint64_t> pairs;
  std::vector<NodeId> ids;
  for (const paths::PathRecord& record : corpus.records()) {
    const auto hops = record.path.hops();
    if (hops.size() < 3) continue;
    interner.translate(hops, ids);
    const NodeId origin = ids.back();
    for (std::size_t i = 0; i + 2 < ids.size(); ++i) {
      const bool first_in = in(ids[i]);
      const bool mid_in = in(ids[i + 1]);
      const bool last_in = in(ids[i + 2]);
      if (first_in && mid_in && !last_in && ids[i + 2] != kNoNode) {
        pairs.push_back(pack(ids[i + 2], origin));
      }
      if (mid_in && last_in && !first_in && ids[i] != kNoNode) {
        pairs.push_back(pack(ids[i], origin));
      }
      if (first_in && last_in && ids[i + 1] != kNoNode) {
        pairs.push_back(pack(ids[i + 1], origin));  // sandwich
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  std::vector<std::uint32_t> witnesses(interner.size(), 0);
  for (const std::uint64_t p : pairs) ++witnesses[p >> 32];
  return witnesses;
}

}  // namespace

std::vector<std::vector<Asn>> maximal_cliques(const AdjacencySet& adjacency,
                                              const std::vector<Asn>& vertices) {
  const std::size_t n = vertices.size();
  const auto adjacent = [&](Asn a, Asn b) {
    const auto it = adjacency.find(a);
    return it != adjacency.end() && it->second.contains(b);
  };
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (adjacent(vertices[i], vertices[j])) adj[i][j] = adj[j][i] = true;
    }
  }
  std::vector<std::vector<Asn>> out;
  for (const auto& indices : index_cliques(adj)) {
    std::vector<Asn> clique;
    clique.reserve(indices.size());
    for (const std::size_t i : indices) clique.push_back(vertices[i]);
    std::sort(clique.begin(), clique.end());
    out.push_back(std::move(clique));
  }
  return out;
}

std::vector<Asn> infer_clique(const paths::PathCorpus& corpus, const Degrees& degrees,
                              const CliqueConfig& config) {
  const auto& ranked = degrees.ranked();
  if (ranked.empty()) return {};
  const AsnInterner& interner = degrees.interner();
  const std::size_t n = interner.size();
  const ObservedAdjacency adjacency = ObservedAdjacency::build(interner, corpus);

  // Ranked ASes all carry node degree > 0, so they are always interned.
  std::vector<NodeId> ranked_ids;
  ranked_ids.reserve(ranked.size());
  for (const Asn as : ranked) ranked_ids.push_back(interner.id_of(as));

  const std::size_t seed_size = std::min(config.seed_size, ranked_ids.size());

  // Iterated Bron–Kerbosch: observed adjacency alone cannot distinguish a
  // tier-1 peer from a large customer of two tier-1s, so after each clique
  // candidate we test every member against the valley-free customer
  // evidence and eject the ones proven to buy transit from the rest,
  // removing them from the seed and retrying.
  std::vector<bool> banned(n, false);
  std::vector<NodeId> best;
  for (int iteration = 0; iteration < 8; ++iteration) {
    std::vector<NodeId> seed;
    for (std::size_t i = 0; i < ranked_ids.size() && seed.size() < seed_size; ++i) {
      if (!banned[ranked_ids[i]]) seed.push_back(ranked_ids[i]);
    }
    if (seed.empty()) break;

    // Largest maximal clique within the seed; ties broken toward the
    // lexicographically smallest member set for determinism.  Anchoring on
    // the single top-ranked AS (as a literal reading of the paper suggests)
    // is fragile when a non-tier-1 AS tops the transit-degree ranking under
    // sparse vantage-point coverage; the customer-evidence iteration below
    // ejects intruders either way.
    best.clear();
    for (auto& clique : seed_cliques(adjacency, seed)) {
      if (clique.size() > best.size() || (clique.size() == best.size() && clique < best)) {
        best = std::move(clique);
      }
    }
    if (best.empty()) best = {seed.front()};
    if (!config.reject_customer_evidence) break;

    // Ejecting an established member requires independent witnesses (a lone
    // poisoning origin must not be able to evict true tier-1s).
    const auto evidence = customer_evidence(corpus, interner, best);
    std::size_t ejected = 0;
    for (const NodeId member : best) {
      if (evidence[member] >= config.customer_evidence_min_origins) {
        banned[member] = true;
        ++ejected;
      }
    }
    if (ejected == 0) break;
  }

  // Admission of *new* candidates is cheap to deny, so any single witness
  // suffices to reject — which also keeps a poisoning origin's inserted ASN
  // out of the clique.
  std::vector<bool> below = banned;
  if (config.reject_customer_evidence) {
    const auto evidence = customer_evidence(corpus, interner, best);
    for (NodeId id = 0; id < n; ++id) {
      if (evidence[id] > 0) below[id] = true;
    }
  }

  // Expansion: candidates are ASes adjacent to (almost) all current members
  // — found through the members' own adjacency, NOT a transit-degree window,
  // because a true tier-1 with a small customer base ranks arbitrarily low.
  // Candidates are evaluated in rank order so earlier admissions constrain
  // later ones; customer evidence disqualifies outright.
  std::vector<std::uint32_t> member_adjacency(n, 0);
  for (const NodeId member : best) {
    for (const NodeId neighbor : adjacency.neighbors(member)) ++member_adjacency[neighbor];
  }
  std::vector<NodeId> candidates;
  for (NodeId id = 0; id < n; ++id) {
    if (member_adjacency[id] == 0) continue;
    if (member_adjacency[id] + config.max_missing_links < best.size()) continue;
    if (std::binary_search(best.begin(), best.end(), id)) continue;
    if (below[id]) continue;
    candidates.push_back(id);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](NodeId a, NodeId b) { return degrees.rank_of(a) < degrees.rank_of(b); });
  if (candidates.size() > config.expansion_candidates) {
    candidates.resize(config.expansion_candidates);
  }
  for (const NodeId candidate : candidates) {
    std::size_t missing = 0;
    for (const NodeId member : best) {
      if (!adjacency.adjacent(candidate, member)) ++missing;
    }
    // The tolerance is capped at a third of the current clique: tolerating a
    // missing link in a 2-3 member clique would admit anything adjacent to a
    // single member.
    const std::size_t tolerance = std::min(config.max_missing_links, best.size() / 3);
    if (missing <= tolerance) {
      best.insert(std::upper_bound(best.begin(), best.end(), candidate), candidate);
    }
  }

  std::vector<Asn> out;
  out.reserve(best.size());
  for (const NodeId id : best) out.push_back(interner.asn_of(id));
  return out;
}

}  // namespace asrank::core
