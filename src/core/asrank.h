// ASRank relationship inference — the paper's primary contribution (§4).
//
// Input: a raw path corpus (collector RIB rows).  Output: every observed AS
// link annotated c2p or p2p, plus the inferred clique and a per-stage audit.
//
// The pipeline follows the paper's staged algorithm.  Where the exact
// constants or tie-break rules of the published text are not recoverable
// (see the mismatch note in DESIGN.md), the reconstruction is flagged in
// comments and exposed as configuration so experiments can ablate it:
//
//   1.  Sanitize paths (paths::sanitize).
//   2.  Rank ASes by transit degree (core::Degrees).
//   3.  Infer the top clique (core::infer_clique, Bron–Kerbosch).
//   4.  Discard poisoned paths: a path whose clique members do not form one
//       contiguous segment indicates poisoning or leak artifacts.
//   5.  Detect partial-view VPs (table far smaller than the largest feed);
//       their paths are customer-routes-only and thus descend everywhere.
//   6.  Vote c2p along every path from its peak location: for paths crossing
//       the clique, the contiguous clique segment is the peak (ascent
//       strictly before it, descent strictly after); otherwise the peak is
//       approximated by the highest-ranked AS.  The (at most two) links
//       adjacent to the peak are the only candidates for the path's single
//       possible p2p link and are deferred, never guessed.
//   7.  Commit votes to links (majority; ties toward the higher-ranked
//       provider), skipping clique-internal links which are fixed p2p.
//   8.  Valley-free triplet fixpoint, both directions: after a known p2p
//       link or a known descent every later unknown link must be p2c, and
//       before a known p2p link or a known ascent every earlier unknown
//       link must be c2p; iterate to a fixed point.
//   9.  Repair provider-less ASes: a non-clique AS observed providing
//       transit but lacking a provider adopts its most-observed
//       higher-ranked neighbour over a still-unknown link.
//   10. Stub-to-clique heuristic: a never-transiting AS adjacent to a clique
//       member over an unknown link is that member's customer.
//   10.5 A1 enforcement: clique members are transit-free, so any c2p commit
//       with a member on the customer side is a direction error and is
//       re-oriented.  Left standing, such a flip hands the false provider
//       the member's entire customer cone (see bench_rank_stability).
//   11. Remaining observed links become p2p; provider cycles (violations of
//       assumption A3) are repaired by re-orienting intra-SCC c2p edges
//       toward the ranking, and the final graph is checked acyclic.
#pragma once

#include <cstddef>
#include <vector>

#include "algo/algorithm.h"
#include "core/clique.h"
#include "core/degrees.h"
#include "paths/corpus.h"
#include "paths/sanitizer.h"
#include "topology/as_graph.h"

namespace asrank::core {

struct InferenceConfig {
  paths::SanitizerConfig sanitizer;
  CliqueConfig clique;

  /// Worker threads for the data-parallel stages (poisoned-path scan,
  /// positional voting).  0 = std::thread::hardware_concurrency(); 1 runs
  /// the exact sequential legacy path.  Results are bit-identical at any
  /// count: parallel stages use static chunking with ordered reductions
  /// (util::ThreadPool), and order-sensitive stages (the valley-free
  /// fixpoint, repairs) always run sequentially.
  std::size_t threads = 0;

  /// Step 4: drop paths whose clique hops are non-contiguous.
  bool discard_poisoned = true;

  /// Step 5: a VP with fewer than this fraction of the largest VP's rows is
  /// treated as a partial (customer-routes-only) feed.  <= 0 disables.
  double partial_vp_threshold = 0.5;

  /// Step 6 ablation knob (default off): when > 0, a peak-adjacent link is
  /// voted c2p anyway if the peak side's transit degree is at least this
  /// multiple of the neighbour's.  The paper's algorithm does not guess at
  /// peaks; bench_ablation quantifies why (it trades c2p PPV for coverage).
  double apex_degree_gap = 0.0;

  /// Step 8/9/10 switches (for ablation benches).
  bool triplet_fixpoint = true;
  bool provider_less_repair = true;
  bool stub_clique_pass = true;

  /// Sibling detection: ASes under common ownership exchange all routes, so
  /// their link appears ascending in some paths and descending in others —
  /// persistent, balanced vote conflict is the sibling signature.  A link is
  /// labelled s2s when both directions hold at least
  /// sibling_min_votes votes and the minority side holds at least
  /// sibling_conflict_ratio of the majority.  Set ratio <= 0 to disable.
  double sibling_conflict_ratio = 0.25;
  std::uint32_t sibling_min_votes = 3;
};

/// Counters recorded by each pipeline stage.
struct StageAudit {
  paths::SanitizeStats sanitize;           // step 1
  std::size_t ranked_ases = 0;             // step 2
  std::size_t clique_size = 0;             // step 3
  std::size_t poisoned_discarded = 0;      // step 4
  std::size_t partial_vps = 0;             // step 5
  std::size_t c2p_votes = 0;               // step 6: individual votes cast
  std::size_t apex_links_deferred = 0;     // step 6: peak candidates left open
  std::size_t links_committed_c2p = 0;     // step 7
  std::size_t vote_conflicts = 0;          // step 7: links with opposing votes
  std::size_t siblings_inferred = 0;       // step 7: balanced conflicts -> s2s
  std::size_t triplet_inferred = 0;        // step 8
  std::size_t valley_violations = 0;       // step 8: paths contradicting commits
  std::size_t providerless_repaired = 0;   // step 9
  std::size_t stub_clique_links = 0;       // step 10
  std::size_t clique_direction_fixes = 0;  // step 10.5: A1 enforcement
  std::size_t p2p_fallback = 0;            // step 11
  std::size_t cycle_edges_reoriented = 0;  // step 11
  bool p2c_acyclic = false;                // final invariant
};

struct InferenceResult {
  AsGraph graph;               ///< every observed link, annotated c2p/p2p
  std::vector<Asn> clique;     ///< inferred tier-1 clique, sorted
  Degrees degrees;             ///< ranking used by the pipeline
  paths::PathCorpus sanitized; ///< post-step-4 corpus (input to cones)
  StageAudit audit;
};

/// The paper's algorithm, registered natively in the algo:: registry (no
/// adapter): infer() runs the full pipeline and keeps the graph.  Callers
/// needing the clique/audit/sanitized corpus use run() directly.
class AsRankInference final : public algo::InferenceAlgorithm {
 public:
  explicit AsRankInference(InferenceConfig config = {}) : config_(std::move(config)) {}

  [[nodiscard]] const InferenceConfig& config() const noexcept { return config_; }

  /// Run the full pipeline.  Pure: the input corpus is untouched.
  [[nodiscard]] InferenceResult run(const paths::PathCorpus& raw) const;

  [[nodiscard]] std::string name() const override { return "asrank"; }
  [[nodiscard]] AsGraph infer(const paths::PathCorpus& corpus) const override {
    return run(corpus).graph;
  }

 private:
  InferenceConfig config_;
};

}  // namespace asrank::core
