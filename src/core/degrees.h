// Degree metrics over a path corpus (paper §4.3 step 2).
//
// The ranking that drives top-down inference uses *transit degree*: the
// number of distinct neighbours an AS has in paths where it appears between
// two other ASes (i.e. where it actually transits traffic).  Node degree
// (distinct neighbours anywhere) breaks ties, and lower ASN breaks the rest,
// making the ranking a deterministic total order.
//
// Internally the tally runs on the dense NodeId space of a
// topology::AsnInterner built over the corpus: distinct-neighbour counting is
// a sort+unique over packed (node, neighbour) id pairs and per-AS lookups are
// array reads, with no hashing on the hot path.
#pragma once

#include <cstddef>
#include <vector>

#include "asn/asn.h"
#include "paths/corpus.h"
#include "topology/interner.h"

namespace asrank::core {

class Degrees {
 public:
  /// Compute degrees from sanitized paths.  `threads`: 1 = sequential legacy
  /// path (default), 0 = all hardware threads; the per-chunk pair lists are
  /// merged and globally sorted, so results are identical at any worker
  /// count.  Builds its own interner over the corpus hops.
  [[nodiscard]] static Degrees compute(const paths::PathCorpus& corpus,
                                       std::size_t threads = 1);

  /// Same, on a caller-supplied interner that must cover every corpus hop
  /// (the pipeline shares one interner across all stages).
  [[nodiscard]] static Degrees compute(topology::AsnInterner interner,
                                       const paths::PathCorpus& corpus,
                                       std::size_t threads = 1);

  [[nodiscard]] std::size_t transit_degree(Asn as) const noexcept;
  [[nodiscard]] std::size_t node_degree(Asn as) const noexcept;

  /// Dense-id accessors (id must be < interner().size()).
  [[nodiscard]] std::size_t transit_degree(topology::NodeId id) const noexcept {
    return transit_deg_[id];
  }
  [[nodiscard]] std::size_t node_degree(topology::NodeId id) const noexcept {
    return node_deg_[id];
  }
  [[nodiscard]] std::size_t rank_of(topology::NodeId id) const noexcept {
    return rank_[id];
  }

  /// The id space the tallies are indexed by (every corpus AS).
  [[nodiscard]] const topology::AsnInterner& interner() const noexcept { return interner_; }

  /// All ASes in rank order: transit degree desc, node degree desc, ASN asc.
  [[nodiscard]] const std::vector<Asn>& ranked() const noexcept { return ranked_; }

  /// Position in the ranking (0 = highest).  ASes absent from the corpus
  /// rank below every present AS.
  [[nodiscard]] std::size_t rank_of(Asn as) const noexcept;

 private:
  topology::AsnInterner interner_;
  std::vector<std::uint32_t> transit_deg_;  // by NodeId
  std::vector<std::uint32_t> node_deg_;     // by NodeId
  std::vector<std::size_t> rank_;           // by NodeId; ranked_.size() if unranked
  std::vector<Asn> ranked_;
};

}  // namespace asrank::core
