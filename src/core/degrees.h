// Degree metrics over a path corpus (paper §4.3 step 2).
//
// The ranking that drives top-down inference uses *transit degree*: the
// number of distinct neighbours an AS has in paths where it appears between
// two other ASes (i.e. where it actually transits traffic).  Node degree
// (distinct neighbours anywhere) breaks ties, and lower ASN breaks the rest,
// making the ranking a deterministic total order.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "asn/asn.h"
#include "paths/corpus.h"

namespace asrank::core {

class Degrees {
 public:
  /// Compute degrees from sanitized paths.  `threads`: 1 = sequential legacy
  /// path (default), 0 = all hardware threads; the tally is a set union over
  /// corpus chunks, so results are identical at any worker count.
  [[nodiscard]] static Degrees compute(const paths::PathCorpus& corpus,
                                       std::size_t threads = 1);

  [[nodiscard]] std::size_t transit_degree(Asn as) const noexcept;
  [[nodiscard]] std::size_t node_degree(Asn as) const noexcept;

  /// All ASes in rank order: transit degree desc, node degree desc, ASN asc.
  [[nodiscard]] const std::vector<Asn>& ranked() const noexcept { return ranked_; }

  /// Position in the ranking (0 = highest).  ASes absent from the corpus
  /// rank below every present AS.
  [[nodiscard]] std::size_t rank_of(Asn as) const noexcept;

 private:
  std::unordered_map<Asn, std::size_t> transit_;
  std::unordered_map<Asn, std::size_t> node_;
  std::unordered_map<Asn, std::size_t> rank_;
  std::vector<Asn> ranked_;
};

}  // namespace asrank::core
