// Link visibility analysis (paper §6.2's central theme): how many vantage
// points observe each link, and in what path position.  Peering links are
// structurally visible only from within either peer's customer cone, so
// their VP counts concentrate near 1 while transit links are seen from
// almost everywhere — the distribution this module computes is the
// quantitative form of that argument, and the input to deciding how many
// VPs an inference needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "asn/asn.h"
#include "paths/corpus.h"

namespace asrank::core {

struct LinkVisibility {
  std::size_t vp_count = 0;       ///< distinct VPs whose tables cross the link
  std::size_t observations = 0;   ///< path rows crossing the link
  std::size_t transit_positions = 0;  ///< crossings with hops on both sides
  std::size_t edge_positions = 0;     ///< crossings at the first/last hop

  /// Links never seen in the interior of a path touch only table edges —
  /// the signature of stub links and peak-only peering.
  [[nodiscard]] bool interior() const noexcept { return transit_positions > 0; }
};

/// Per-link visibility, keyed by PathCorpus::key.  `threads`: 1 = sequential
/// legacy path (default), 0 = all hardware threads; per-chunk tallies merge
/// by addition and VP-set union, so results are thread-count invariant.
[[nodiscard]] std::unordered_map<std::uint64_t, LinkVisibility> link_visibility(
    const paths::PathCorpus& corpus, std::size_t threads = 1);

/// Distribution summary: how many links are seen by >= k VPs.
struct VisibilityCcdf {
  std::vector<std::size_t> thresholds;  ///< k values
  std::vector<std::size_t> links_at_least;
};

[[nodiscard]] VisibilityCcdf visibility_ccdf(
    const std::unordered_map<std::uint64_t, LinkVisibility>& visibility,
    std::vector<std::size_t> thresholds);

}  // namespace asrank::core
