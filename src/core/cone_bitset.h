// Blocked-bitset customer cones for the serving hot path (paper §5).
//
// The snapshot keeps cones as sorted flattened arrays — compact, mmap-able,
// and O(|a|+|b|) to intersect.  At query rates that linear merge is the
// bottleneck, so ConeBitset re-expresses selected cones as dense bit rows
// over the snapshot's node-id space: one bit per AS, one row per covered
// cone.  Intersection becomes a word-wise AND, diff an ANDNOT, membership
// one shift-and-mask — and because id order equals ASN order, extracting
// set bits in ascending id order reproduces the sorted-array results
// exactly (verified pairwise by tests/test_differential.cpp).
//
// Rows are materialized only for cones of at least `min_cone_size` members:
// big cones are where the linear merge hurts and where bit rows amortize;
// tiny cones stay on the sorted kernels via the caller's fallback.  Memory
// is rows * ceil(n/64) * 8 bytes, so the threshold bounds the footprint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "asn/asn.h"

namespace asrank::core {

struct ConeBitsetConfig {
  /// Cones with at least this many members get a dense bit row; smaller
  /// cones are left to the caller's sorted-array fallback.  0 gives every
  /// AS a row (exhaustive, O(n²/8) worst-case bytes — tests and small
  /// snapshots); max() disables the bitset entirely.
  std::size_t min_cone_size = 256;

  [[nodiscard]] static constexpr ConeBitsetConfig disabled() noexcept {
    return {std::numeric_limits<std::size_t>::max()};
  }
};

class ConeBitset {
 public:
  /// Build rows from a snapshot's flat cone sections.  `asns` is the sorted
  /// AS table (index = dense id), `cone_off` the n+1 offset table and
  /// `cone_mem` the flattened sorted member array, exactly as served by
  /// SnapshotIndex.  Members that do not resolve to an id are skipped (they
  /// cannot appear in any sorted-kernel answer either).
  ConeBitset(std::span<const Asn> asns, std::span<const std::uint64_t> cone_off,
             std::span<const Asn> cone_mem, ConeBitsetConfig config = {});

  [[nodiscard]] std::size_t node_count() const noexcept { return row_of_.size(); }
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_; }
  [[nodiscard]] std::size_t words_per_row() const noexcept { return words_per_row_; }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return words_.size() * sizeof(std::uint64_t) +
           row_of_.size() * sizeof(std::uint32_t);
  }

  /// Whether `id` (< node_count()) has a materialized row.
  [[nodiscard]] bool has_row(std::uint32_t id) const noexcept {
    return row_of_[id] != kNoRow;
  }

  /// The bit row of `id`; empty span when has_row(id) is false.
  [[nodiscard]] std::span<const std::uint64_t> row(std::uint32_t id) const noexcept;

  /// O(1) membership: is `member` in the cone of `id`?  Requires has_row(id).
  [[nodiscard]] bool contains(std::uint32_t id, std::uint32_t member) const noexcept;

  /// Ascending ids (≡ ascending ASNs) present in both cones.  Requires rows
  /// for both ids.
  [[nodiscard]] std::vector<std::uint32_t> intersect_ids(std::uint32_t a,
                                                         std::uint32_t b) const;

  /// Ascending ids in the cone of `id` whose bit is clear in `mask` (an
  /// ANDNOT loop).  `mask` shorter than a row is zero-extended.  Requires
  /// has_row(id).
  [[nodiscard]] std::vector<std::uint32_t> andnot_ids(
      std::uint32_t id, std::span<const std::uint64_t> mask) const;

  /// A row-width word mask with the given ids' bits set (ids ≥ node_count()
  /// are ignored) — the translation step of a cross-epoch CONE_DIFF.
  [[nodiscard]] std::vector<std::uint64_t> make_mask(
      std::span<const std::uint32_t> ids) const;

 private:
  static constexpr std::uint32_t kNoRow = 0xffffffffu;

  std::vector<std::uint32_t> row_of_;   ///< id -> row index, kNoRow if none
  std::vector<std::uint64_t> words_;    ///< rows_ * words_per_row_
  std::size_t words_per_row_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace asrank::core
