#include "core/hierarchy.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace asrank::core {

HierarchySummary analyze_hierarchy(const AsGraph& graph, const std::vector<Asn>& clique) {
  HierarchySummary summary;
  std::size_t provider_sum = 0;
  std::size_t multihomed_bases = 0;
  for (const Asn as : graph.ases()) {
    HierarchyTier tier;
    const bool has_customers = !graph.customers(as).empty();
    const bool has_providers = !graph.providers(as).empty();
    if (std::binary_search(clique.begin(), clique.end(), as)) {
      tier = HierarchyTier::kClique;
      ++summary.clique;
    } else if (!has_customers) {
      tier = HierarchyTier::kStub;
      ++summary.stubs;
    } else if (has_providers) {
      tier = HierarchyTier::kTransit;
      ++summary.transit;
    } else {
      tier = HierarchyTier::kLeafProvider;
      ++summary.leaf_providers;
    }
    summary.tiers.emplace(as, tier);
    if (has_providers) {
      provider_sum += graph.providers(as).size();
      ++multihomed_bases;
    }
  }
  if (multihomed_bases > 0) {
    summary.mean_providers =
        static_cast<double>(provider_sum) / static_cast<double>(multihomed_bases);
  }
  const auto counts = graph.link_counts();
  const std::size_t classified = counts.p2c + counts.p2p;
  if (classified > 0) {
    summary.p2p_share = static_cast<double>(counts.p2p) / static_cast<double>(classified);
  }
  return summary;
}

std::unordered_map<Asn, std::size_t> hierarchy_depths(const AsGraph& graph) {
  // Multi-source BFS down customer links from every provider-free AS.
  std::unordered_map<Asn, std::size_t> depth;
  std::queue<Asn> queue;
  for (const Asn as : graph.ases()) {
    if (graph.providers(as).empty()) {
      depth.emplace(as, 0);
      queue.push(as);
    }
  }
  while (!queue.empty()) {
    const Asn as = queue.front();
    queue.pop();
    for (const Asn customer : graph.customers(as)) {
      if (depth.emplace(customer, depth.at(as) + 1).second) queue.push(customer);
    }
  }
  return depth;
}

double cone_jaccard(const std::vector<Asn>& a, const std::vector<Asn>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::size_t intersection = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++intersection;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const std::size_t union_size = a.size() + b.size() - intersection;
  return union_size == 0 ? 1.0
                         : static_cast<double>(intersection) / static_cast<double>(union_size);
}

double mean_rank_change(const std::vector<Asn>& before, const std::vector<Asn>& after,
                        std::size_t top_n) {
  std::unordered_map<Asn, std::size_t> after_rank;
  for (std::size_t i = 0; i < after.size(); ++i) after_rank.emplace(after[i], i);
  double total = 0.0;
  std::size_t counted = 0;
  const std::size_t limit = std::min(top_n, before.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const auto it = after_rank.find(before[i]);
    if (it == after_rank.end()) continue;
    total += std::abs(static_cast<double>(it->second) - static_cast<double>(i));
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

}  // namespace asrank::core
