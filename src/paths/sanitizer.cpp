#include "paths/sanitizer.h"

#include <algorithm>
#include <unordered_set>

namespace asrank::paths {

namespace {

/// Hash of a full record for deduplication.
struct RecordHash {
  std::size_t operator()(const PathRecord& record) const noexcept {
    std::size_t h = std::hash<Asn>{}(record.vp);
    h ^= std::hash<Prefix>{}(record.prefix) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    for (const Asn hop : record.path.hops()) {
      h ^= std::hash<Asn>{}(hop) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

}  // namespace

SanitizeResult sanitize(const PathCorpus& input, const SanitizerConfig& config) {
  SanitizeResult result;
  result.stats.input_records = input.size();
  std::unordered_set<PathRecord, RecordHash> seen;

  for (const PathRecord& record : input.records()) {
    std::vector<Asn> hops(record.path.hops().begin(), record.path.hops().end());

    if (config.strip_ixp_asns && !config.ixp_asns.empty()) {
      const auto before = hops.size();
      hops.erase(std::remove_if(hops.begin(), hops.end(),
                                [&](Asn a) { return config.ixp_asns.contains(a); }),
                 hops.end());
      result.stats.ixp_hops_stripped += before - hops.size();
    }

    if (config.strip_reserved_asns) {
      const auto before = hops.size();
      hops.erase(std::remove_if(hops.begin(), hops.end(), [](Asn a) { return a.reserved(); }),
                 hops.end());
      result.stats.reserved_hops_stripped += before - hops.size();
    }

    AsPath path(std::move(hops));

    if (config.compress_prepending && path.has_prepending()) {
      path = path.compress_prepending();
      ++result.stats.prepended_compressed;
    }

    if (config.discard_loops && path.has_loop()) {
      ++result.stats.loops_discarded;
      continue;
    }

    if (config.discard_reserved && path.has_reserved_asn()) {
      ++result.stats.reserved_discarded;
      continue;
    }

    if (path.empty()) continue;

    PathRecord cleaned{record.vp, record.prefix, std::move(path)};
    if (config.dedup) {
      if (!seen.insert(cleaned).second) {
        ++result.stats.duplicates_removed;
        continue;
      }
    }
    result.corpus.add(std::move(cleaned));
  }

  result.stats.output_records = result.corpus.size();
  return result;
}

}  // namespace asrank::paths
