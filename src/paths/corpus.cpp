#include "paths/corpus.h"

#include <algorithm>

namespace asrank::paths {

std::uint64_t PathCorpus::key(Asn a, Asn b) noexcept {
  const std::uint32_t lo = std::min(a.value(), b.value());
  const std::uint32_t hi = std::max(a.value(), b.value());
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

std::vector<Asn> PathCorpus::vantage_points() const {
  std::unordered_set<Asn> seen;
  for (const PathRecord& record : records_) seen.insert(record.vp);
  std::vector<Asn> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Asn> PathCorpus::ases() const {
  std::unordered_set<Asn> seen;
  for (const PathRecord& record : records_) {
    for (const Asn hop : record.path.hops()) seen.insert(hop);
  }
  std::vector<Asn> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t PathCorpus::prefix_count() const {
  std::unordered_set<Prefix> seen;
  for (const PathRecord& record : records_) seen.insert(record.prefix);
  return seen.size();
}

std::unordered_map<std::uint64_t, std::size_t> PathCorpus::link_observations() const {
  std::unordered_map<std::uint64_t, std::size_t> out;
  for (const PathRecord& record : records_) {
    const auto hops = record.path.hops();
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      if (hops[i] == hops[i + 1]) continue;  // prepending is not a link
      ++out[key(hops[i], hops[i + 1])];
    }
  }
  return out;
}

}  // namespace asrank::paths
