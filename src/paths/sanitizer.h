// Path sanitization (paper §4.2 step 1).
//
// Raw collector paths carry measurement artifacts that would corrupt
// relationship inference: prepending repeats, loops from path poisoning,
// IANA-reserved ASNs leaked from private peerings, and IXP route-server ASNs
// that are not topological participants.  The sanitizer applies an ordered,
// individually-switchable set of stages and reports exactly what each stage
// did, so experiments can ablate any stage (bench_ablation) and tests can
// assert per-stage behaviour against the simulator's injection audit.
//
// Stage order: strip IXP ASNs -> optionally strip reserved ASNs ->
// compress prepending -> discard looped paths -> discard paths still
// containing reserved ASNs -> deduplicate identical records.
#pragma once

#include <cstddef>
#include <unordered_set>

#include "asn/asn.h"
#include "paths/corpus.h"

namespace asrank::paths {

struct SanitizerConfig {
  bool strip_ixp_asns = true;
  bool strip_reserved_asns = false;  ///< remove hop instead of dropping path
  bool compress_prepending = true;
  bool discard_loops = true;
  bool discard_reserved = true;
  bool dedup = true;

  /// ASNs of known IXP route servers (from PeeringDB-style side data; in our
  /// pipeline, from the generator's ground truth).
  std::unordered_set<Asn> ixp_asns;
};

struct SanitizeStats {
  std::size_t input_records = 0;
  std::size_t ixp_hops_stripped = 0;
  std::size_t reserved_hops_stripped = 0;
  std::size_t prepended_compressed = 0;  ///< records whose path shrank
  std::size_t loops_discarded = 0;
  std::size_t reserved_discarded = 0;
  std::size_t duplicates_removed = 0;
  std::size_t output_records = 0;
};

struct SanitizeResult {
  PathCorpus corpus;
  SanitizeStats stats;
};

/// Run the pipeline over `input`.  Pure function: the input corpus is not
/// modified.
[[nodiscard]] SanitizeResult sanitize(const PathCorpus& input, const SanitizerConfig& config);

}  // namespace asrank::paths
