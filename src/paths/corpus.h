// Path corpus: the normalized input to every inference algorithm.
//
// A record is one (vantage point, prefix, AS path) row, exactly what a
// collector RIB provides after per-peer best-path extraction.  The corpus is
// format-agnostic: rows can come from the BGP simulator, an MRT dump, or a
// text table — anything with vp/prefix/path fields.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "asn/asn.h"
#include "asn/as_path.h"
#include "asn/prefix.h"

namespace asrank::paths {

struct PathRecord {
  Asn vp;
  Prefix prefix;
  AsPath path;

  friend bool operator==(const PathRecord&, const PathRecord&) = default;
};

class PathCorpus {
 public:
  PathCorpus() = default;

  void add(Asn vp, const Prefix& prefix, AsPath path) {
    records_.push_back({vp, prefix, std::move(path)});
  }
  void add(PathRecord record) { records_.push_back(std::move(record)); }

  /// Build from any range of records exposing .vp/.prefix/.path (e.g.
  /// bgpsim::ObservedRoute) without coupling this module to their types.
  template <typename Range>
  [[nodiscard]] static PathCorpus from_records(const Range& range) {
    PathCorpus corpus;
    for (const auto& record : range) corpus.add(record.vp, record.prefix, record.path);
    return corpus;
  }

  [[nodiscard]] std::span<const PathRecord> records() const noexcept { return records_; }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

  /// Distinct vantage points present.
  [[nodiscard]] std::vector<Asn> vantage_points() const;

  /// Distinct ASes appearing anywhere in paths.
  [[nodiscard]] std::vector<Asn> ases() const;

  /// Distinct prefixes.
  [[nodiscard]] std::size_t prefix_count() const;

  /// Count of observations per adjacent AS pair, keyed by the
  /// order-independent link key (see key()).
  [[nodiscard]] std::unordered_map<std::uint64_t, std::size_t> link_observations() const;

  /// Normalized key for an unordered AS pair, matching AsGraph::link_key.
  [[nodiscard]] static std::uint64_t key(Asn a, Asn b) noexcept;

 private:
  std::vector<PathRecord> records_;
};

}  // namespace asrank::paths
