#include "bgpsim/observation.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <optional>
#include <thread>

namespace asrank::bgpsim {

namespace {

using topogen::GroundTruth;
using topogen::Tier;

/// Deterministically choose VPs: full feeds come from clique/tier-2 ASes
/// (collector peers are predominantly large ISPs), partial feeds from
/// tier-2/tier-3.  Selection is rendezvous-hashed per AS rather than
/// index-sampled so the VP set is *stable under topology growth*: real
/// collector peers persist across snapshots, and re-rolling the whole VP
/// set every snapshot would masquerade as topology churn in the
/// longitudinal experiments.
std::vector<VantagePoint> choose_vps(const GroundTruth& truth,
                                     const ObservationParams& params) {
  std::vector<Asn> upper, middle;
  for (const auto& [as, tier] : truth.tiers) {
    if (tier == Tier::kClique || tier == Tier::kTransit) upper.push_back(as);
    if (tier == Tier::kTransit || tier == Tier::kRegional) middle.push_back(as);
  }
  auto score = [&](Asn as) {
    std::uint64_t mix = params.seed ^ (0xa5a5a5a5a5a5a5a5ULL + as.value());
    return util::splitmix64(mix);
  };
  auto pick_top = [&](std::vector<Asn>& pool, std::size_t want) {
    std::sort(pool.begin(), pool.end(),
              [&](Asn a, Asn b) { return score(a) < score(b); });
    if (pool.size() > want) pool.resize(want);
    return pool;
  };

  std::vector<VantagePoint> vps;
  for (const Asn as : pick_top(upper, params.full_vps)) vps.push_back({as, true});
  for (const Asn as : pick_top(middle, params.partial_vps)) {
    const bool already = std::any_of(vps.begin(), vps.end(),
                                     [as](const VantagePoint& vp) { return vp.as == as; });
    if (!already) vps.push_back({as, false});
  }
  return vps;
}

/// A poisoning origin's fixed behaviour: real path poisoning is a per-origin
/// traffic-engineering decision applied to every announcement, not random
/// per-path noise.
struct PoisonPlan {
  bool clique_insert = false;  ///< insert a tier-1 ASN (no loop) vs "O X O" loop
  Asn tier1;                   ///< for clique_insert
};

std::unordered_map<Asn, PoisonPlan> choose_poisoners(const GroundTruth& truth,
                                                     const ObservationParams& params,
                                                     util::Rng& rng) {
  std::unordered_map<Asn, PoisonPlan> plans;
  if (params.poison_prob <= 0.0 || truth.clique.empty()) return plans;
  for (const auto& [as, tier] : truth.tiers) {
    if (!rng.bernoulli(params.poison_prob)) continue;
    PoisonPlan plan;
    plan.clique_insert = rng.bernoulli(0.5);
    plan.tier1 = truth.clique[rng.uniform(truth.clique.size())];
    plans.emplace(as, plan);
  }
  return plans;
}

/// Apply pathologies to one observed path.  Returns the (possibly modified)
/// path and updates the audit.
AsPath inject_pathologies(const GroundTruth& truth, const ObservationParams& params,
                          const std::unordered_map<Asn, PoisonPlan>& poisoners,
                          AsPath path, util::Rng& rng, PathologyAudit& audit) {
  std::vector<Asn> hops(path.hops().begin(), path.hops().end());

  // IXP route-server leak: insert the route server between the two peers of
  // an IXP-born p2p link the path crosses.
  if (!truth.ixp_links.empty() && hops.size() >= 2) {
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      const auto it = truth.ixp_links.find(AsGraph::link_key(hops[i], hops[i + 1]));
      if (it != truth.ixp_links.end() && rng.bernoulli(params.ixp_leak_prob)) {
        hops.insert(hops.begin() + static_cast<long>(i) + 1, it->second);
        ++audit.ixp_leaked;
        break;  // at most one leak per path
      }
    }
  }

  // Origin prepending: the origin repeats itself 1-3 extra times.
  if (!hops.empty() && rng.bernoulli(params.prepend_prob)) {
    const std::size_t copies = 1 + rng.uniform(3);
    hops.insert(hops.end(), copies, hops.back());
    ++audit.prepended;
  }

  // Path poisoning, two flavours the sanitization pipeline must catch
  // through different mechanisms:
  //   * loop-style: the origin inserts a victim AS then itself again — the
  //     classic "O X O" suffix producing a non-adjacent repeat (caught by
  //     the sanitizer's loop discard);
  //   * clique-insert: the origin inserts a tier-1 ASN it is not attached
  //     to, leaving no loop — caught only by the poisoned-path discard
  //     (paper step 4: clique members must form one contiguous segment),
  //     and only on paths that also cross a genuine clique segment.
  if (hops.size() >= 2) {
    const auto plan_it = poisoners.find(hops.back());
    if (plan_it != poisoners.end()) {
      const Asn origin = hops.back();
      const PoisonPlan& plan = plan_it->second;
      if (plan.clique_insert) {
        if (!AsPath(hops).contains(plan.tier1)) {
          hops.insert(hops.end() - 1, plan.tier1);
          ++audit.poisoned_insert;
        }
      } else {
        const Asn victim = hops.front() != origin ? hops.front() : hops[hops.size() / 2];
        if (victim != origin) {
          hops.push_back(victim);
          hops.push_back(origin);
          ++audit.poisoned_loop;
        }
      }
    }
  }

  // Leaked private ASN next to the origin (unstripped confederation/private
  // peering artifact).
  if (!hops.empty() && rng.bernoulli(params.private_leak_prob)) {
    hops.insert(hops.end() - 1, Asn(64512 + static_cast<std::uint32_t>(rng.uniform(1023))));
    ++audit.private_leaked;
  }

  return AsPath(std::move(hops));
}

}  // namespace

namespace {

/// Per-destination work product, merged in destination order so the result
/// is independent of scheduling.
struct DestinationRows {
  std::vector<ObservedRoute> routes;
  PathologyAudit audit;
};

DestinationRows observe_destination(const GroundTruth& truth, const ObservationParams& params,
                                    const std::unordered_map<Asn, PoisonPlan>& poisoners,
                                    const RouteSimulator& simulator,
                                    const std::vector<VantagePoint>& vps, Asn destination) {
  DestinationRows out;
  // A per-destination RNG stream keeps results identical across thread
  // counts and schedules.
  std::uint64_t mix = params.seed ^ (0x9e3779b97f4a7c15ULL * destination.value());
  util::Rng rng(util::splitmix64(mix));

  if (params.destination_sample < 1.0 && !rng.bernoulli(params.destination_sample)) {
    return out;
  }
  const RouteTable table = simulator.routes_to(destination);
  const auto origin_it = truth.originated.find(destination);

  for (const VantagePoint& vp : vps) {
    if (vp.as == destination) continue;
    const SelectedRoute selected = table.route(vp.as);
    if (selected.route_class == RouteClass::kNone) continue;
    // Partial VPs export to the collector as to a peer: customer routes only.
    if (!vp.full_feed && selected.route_class != RouteClass::kCustomer) continue;

    AsPath path = table.path_from(vp.as);
    if (path.empty()) continue;
    path = inject_pathologies(truth, params, poisoners, std::move(path), rng, out.audit);

    if (params.expand_prefixes && origin_it != truth.originated.end()) {
      for (const Prefix& prefix : origin_it->second) {
        out.routes.push_back({vp.as, prefix, path});
      }
    } else {
      // One synthetic /24 keyed by the origin ASN.
      const Prefix prefix = origin_it != truth.originated.end() && !origin_it->second.empty()
                                ? origin_it->second.front()
                                : Prefix::v4(destination.value() << 8, 24);
      out.routes.push_back({vp.as, prefix, path});
    }
  }
  return out;
}

}  // namespace

Observation observe(const GroundTruth& truth, const ObservationParams& params) {
  util::Rng rng(params.seed);
  Observation observation;
  observation.vps = choose_vps(truth, params);
  const auto poisoners = choose_poisoners(truth, params, rng);

  const RouteSimulator simulator(truth.graph, truth.route_leakers);
  // Hybrid (partial-transit) links: a second simulator over a graph where
  // each hybrid link is p2c.  Per destination one of the two is used, so the
  // link carries transit for a deterministic half of the address space and
  // plain peering for the rest — no single relationship label fits it.
  std::optional<AsGraph> hybrid_graph;
  std::optional<RouteSimulator> hybrid_simulator;
  if (!truth.hybrid_links.empty()) {
    hybrid_graph = truth.graph;
    for (const auto& link : truth.hybrid_links) {
      hybrid_graph->set_relationship(link.provider, link.customer, LinkType::kP2C);
    }
    hybrid_simulator.emplace(*hybrid_graph, truth.route_leakers);
  }
  const auto simulator_for = [&](Asn destination) -> const RouteSimulator& {
    return hybrid_simulator && destination.value() % 2 == 0 ? *hybrid_simulator
                                                            : simulator;
  };
  const auto destinations = simulator.ases();
  std::vector<DestinationRows> per_destination(destinations.size());

  const std::size_t threads =
      params.threads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : params.threads;
  if (threads <= 1) {
    for (std::size_t i = 0; i < destinations.size(); ++i) {
      per_destination[i] =
          observe_destination(truth, params, poisoners, simulator_for(destinations[i]),
                              observation.vps, destinations[i]);
    }
  } else {
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= destinations.size()) return;
        per_destination[i] =
            observe_destination(truth, params, poisoners, simulator_for(destinations[i]),
                                observation.vps, destinations[i]);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& thread : pool) thread.join();
  }

  for (DestinationRows& rows : per_destination) {
    observation.audit.prepended += rows.audit.prepended;
    observation.audit.poisoned_loop += rows.audit.poisoned_loop;
    observation.audit.poisoned_insert += rows.audit.poisoned_insert;
    observation.audit.ixp_leaked += rows.audit.ixp_leaked;
    observation.audit.private_leaked += rows.audit.private_leaked;
    observation.routes.insert(observation.routes.end(),
                              std::make_move_iterator(rows.routes.begin()),
                              std::make_move_iterator(rows.routes.end()));
  }
  return observation;
}

mrt::RibDump to_rib_dump(const Observation& observation, std::uint32_t timestamp) {
  mrt::RibDump dump;
  dump.collector_bgp_id = 0xc0000201;  // 192.0.2.1, TEST-NET collector id
  dump.view_name = "asrank-sim";
  dump.timestamp = timestamp;

  std::unordered_map<Asn, std::uint16_t> peer_index;
  for (const VantagePoint& vp : observation.vps) {
    mrt::PeerEntry peer;
    peer.as = vp.as;
    peer.bgp_id = 0x0a000000 + static_cast<std::uint32_t>(dump.peers.size() + 1);
    peer.ipv4 = peer.bgp_id;
    peer_index.emplace(vp.as, static_cast<std::uint16_t>(dump.peers.size()));
    dump.peers.push_back(peer);
  }

  std::map<Prefix, std::vector<mrt::RibRoute>> by_prefix;
  for (const ObservedRoute& route : observation.routes) {
    mrt::RibRoute rib_route;
    rib_route.peer_index = peer_index.at(route.vp);
    rib_route.originated_time = timestamp;
    rib_route.attrs.origin = mrt::Origin::kIgp;
    rib_route.attrs.as_path = route.path;
    rib_route.attrs.next_hop = dump.peers[rib_route.peer_index].ipv4;
    by_prefix[route.prefix].push_back(std::move(rib_route));
  }
  dump.rib.reserve(by_prefix.size());
  for (auto& [prefix, routes] : by_prefix) {
    dump.rib.push_back({prefix, std::move(routes)});
  }
  return dump;
}

std::vector<ObservedRoute> from_rib_dump(const mrt::RibDump& dump) {
  std::vector<ObservedRoute> out;
  for (const mrt::RibEntry& entry : dump.rib) {
    for (const mrt::RibRoute& route : entry.routes) {
      if (route.peer_index >= dump.peers.size()) {
        throw mrt::DecodeError("RIB route references unknown peer index");
      }
      out.push_back({dump.peers[route.peer_index].as, entry.prefix, route.attrs.as_path});
    }
  }
  return out;
}

}  // namespace asrank::bgpsim
