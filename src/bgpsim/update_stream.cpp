#include "bgpsim/update_stream.h"

#include <algorithm>
#include <map>
#include <unordered_set>

namespace asrank::bgpsim {

namespace {

/// (vp, prefix) -> path, with deterministic iteration.
using RouteKey = std::pair<Asn, Prefix>;
using RouteMap = std::map<RouteKey, AsPath>;

RouteMap index_routes(const Observation& observation) {
  RouteMap map;
  for (const ObservedRoute& route : observation.routes) {
    map[{route.vp, route.prefix}] = route.path;
  }
  return map;
}

mrt::UpdateMessage base_message(Asn vp, std::uint32_t timestamp) {
  mrt::UpdateMessage message;
  message.timestamp = timestamp;
  message.peer_as = vp;
  message.local_as = Asn(65534);  // collector side; never appears in paths
  message.peer_ip = 0x0a000000 + vp.value();
  message.local_ip = 0x0a0000fe;
  return message;
}

}  // namespace

std::vector<mrt::UpdateMessage> diff_observations(const Observation& before,
                                                  const Observation& after,
                                                  std::uint32_t timestamp) {
  const RouteMap old_routes = index_routes(before);
  const RouteMap new_routes = index_routes(after);

  std::vector<mrt::UpdateMessage> out;
  // Withdrawals: in before, not in after.  Batched per VP.
  std::map<Asn, std::vector<Prefix>> withdrawals;
  for (const auto& [key, path] : old_routes) {
    if (!new_routes.contains(key)) withdrawals[key.first].push_back(key.second);
  }
  for (const auto& [vp, prefixes] : withdrawals) {
    auto message = base_message(vp, timestamp);
    message.withdrawn = prefixes;
    out.push_back(std::move(message));
  }

  // Announcements: new or changed paths.  One message per (vp, path) batch
  // in prefix order, as a real speaker batches NLRI sharing attributes.
  std::map<std::pair<Asn, std::string>, mrt::UpdateMessage> announce_batches;
  for (const auto& [key, path] : new_routes) {
    const auto old_it = old_routes.find(key);
    if (old_it != old_routes.end() && old_it->second == path) continue;
    auto& message = announce_batches[{key.first, path.str()}];
    if (message.announced.empty()) {
      message = base_message(key.first, timestamp);
      message.attrs.as_path = path;
      message.attrs.next_hop = 0x0a000000 + key.first.value();
    }
    message.announced.push_back(key.second);
  }
  for (auto& [batch_key, message] : announce_batches) out.push_back(std::move(message));
  return out;
}

std::vector<UpdateStreamStep> generate_update_stream(topogen::GroundTruth& truth,
                                                     const ObservationParams& obs_params,
                                                     const UpdateStreamParams& params) {
  std::vector<UpdateStreamStep> out;
  Observation current = observe(truth, obs_params);
  if (params.bootstrap) {
    // Session bring-up: every initial route announced against an empty table.
    Observation empty;
    empty.vps = current.vps;
    UpdateStreamStep step;
    step.timestamp = params.base_timestamp;
    step.updates = diff_observations(empty, current, step.timestamp);
    step.observation = current;
    out.push_back(std::move(step));
  }

  util::Rng rng(params.seed);
  for (std::size_t k = 1; k <= params.steps; ++k) {
    topogen::evolve(truth, rng, params.evolve);
    Observation next = observe(truth, obs_params);
    UpdateStreamStep step;
    step.timestamp =
        params.base_timestamp + static_cast<std::uint32_t>(k) * params.step_seconds;
    step.updates = diff_observations(current, next, step.timestamp);
    step.observation = next;
    current = std::move(next);
    out.push_back(std::move(step));
  }
  return out;
}

std::vector<ObservedRoute> apply_updates(const Observation& base,
                                         const std::vector<mrt::UpdateMessage>& updates) {
  std::unordered_set<Asn> known_vps;
  for (const VantagePoint& vp : base.vps) known_vps.insert(vp.as);

  RouteMap table = index_routes(base);
  for (const mrt::UpdateMessage& update : updates) {
    if (!known_vps.contains(update.peer_as)) continue;
    for (const Prefix& prefix : update.withdrawn) {
      table.erase({update.peer_as, prefix});
    }
    for (const Prefix& prefix : update.announced) {
      table[{update.peer_as, prefix}] = update.attrs.as_path;
    }
  }

  std::vector<ObservedRoute> out;
  out.reserve(table.size());
  for (const auto& [key, path] : table) {
    out.push_back({key.first, key.second, path});
  }
  return out;
}

}  // namespace asrank::bgpsim
