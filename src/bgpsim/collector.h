// Collector state machine: the component that turns a base RIB plus a live
// BGP4MP update stream into the table a route collector holds at any point
// in time — the stateful half of the RIB-plus-updates ingestion model
// RouteViews/RIS archives imply.
//
// Semantics follow collector behaviour:
//   * per-(peer, prefix) best route, replaced by announcements, removed by
//     withdrawals;
//   * a peer session reset flushes every route from that peer;
//   * updates are applied in arrival order; the collector tracks the last
//     timestamp seen, and snapshots carry it.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "bgpsim/observation.h"
#include "mrt/bgp4mp.h"
#include "mrt/table_dump_v2.h"

namespace asrank::bgpsim {

class Collector {
 public:
  /// Start empty with a configured peer set.
  explicit Collector(std::vector<VantagePoint> peers);

  /// Initialize from a RIB snapshot (peer set taken from the dump).
  [[nodiscard]] static Collector from_rib_dump(const mrt::RibDump& dump);

  /// Apply one update.  Updates from unconfigured peers are counted and
  /// ignored, as a collector ignores sessions it does not have.
  void apply(const mrt::UpdateMessage& update);

  /// Flush all routes learned from `peer` (session reset).
  void reset_peer(Asn peer);

  /// Current table as observation rows (deterministic order).
  [[nodiscard]] std::vector<ObservedRoute> routes() const;

  /// Current table as an MRT RIB snapshot.
  [[nodiscard]] mrt::RibDump snapshot() const;

  [[nodiscard]] std::size_t route_count() const noexcept { return table_.size(); }
  [[nodiscard]] std::uint32_t last_timestamp() const noexcept { return last_timestamp_; }
  [[nodiscard]] std::size_t ignored_updates() const noexcept { return ignored_updates_; }
  [[nodiscard]] const std::vector<VantagePoint>& peers() const noexcept { return peers_; }

 private:
  std::vector<VantagePoint> peers_;
  std::unordered_set<Asn> peer_set_;
  std::map<std::pair<Asn, Prefix>, AsPath> table_;
  std::uint32_t last_timestamp_ = 0;
  std::size_t ignored_updates_ = 0;
};

}  // namespace asrank::bgpsim
