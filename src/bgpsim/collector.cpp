#include "bgpsim/collector.h"

#include <algorithm>

namespace asrank::bgpsim {

Collector::Collector(std::vector<VantagePoint> peers) : peers_(std::move(peers)) {
  for (const VantagePoint& peer : peers_) peer_set_.insert(peer.as);
}

Collector Collector::from_rib_dump(const mrt::RibDump& dump) {
  std::vector<VantagePoint> peers;
  peers.reserve(dump.peers.size());
  for (const mrt::PeerEntry& peer : dump.peers) peers.push_back({peer.as, true});
  Collector collector(std::move(peers));
  collector.last_timestamp_ = dump.timestamp;
  // Qualified call: the static member of the same name would otherwise hide
  // the namespace-level decoder.
  for (const ObservedRoute& route : asrank::bgpsim::from_rib_dump(dump)) {
    collector.table_[{route.vp, route.prefix}] = route.path;
  }
  return collector;
}

void Collector::apply(const mrt::UpdateMessage& update) {
  if (!peer_set_.contains(update.peer_as)) {
    ++ignored_updates_;
    return;
  }
  last_timestamp_ = std::max(last_timestamp_, update.timestamp);
  for (const Prefix& prefix : update.withdrawn) {
    table_.erase({update.peer_as, prefix});
  }
  for (const Prefix& prefix : update.announced) {
    table_[{update.peer_as, prefix}] = update.attrs.as_path;
  }
}

void Collector::reset_peer(Asn peer) {
  auto it = table_.lower_bound({peer, Prefix{}});
  while (it != table_.end() && it->first.first == peer) {
    it = table_.erase(it);
  }
}

std::vector<ObservedRoute> Collector::routes() const {
  std::vector<ObservedRoute> out;
  out.reserve(table_.size());
  for (const auto& [key, path] : table_) {
    out.push_back({key.first, key.second, path});
  }
  return out;
}

mrt::RibDump Collector::snapshot() const {
  Observation observation;
  observation.vps = peers_;
  observation.routes = routes();
  return to_rib_dump(observation, last_timestamp_);
}

}  // namespace asrank::bgpsim
