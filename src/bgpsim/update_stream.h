// Incremental update streams: the BGP4MP "updates" complement to RIB
// snapshots.  Collectors publish both; a topology pipeline that only ever
// reloads full RIBs misses short-lived links, so this module diffs two
// observations into the per-peer announce/withdraw messages a collector
// would have recorded between them, and can replay a stream on top of a
// base observation to reconstruct the later table.
#pragma once

#include <vector>

#include "bgpsim/observation.h"
#include "mrt/bgp4mp.h"

namespace asrank::bgpsim {

/// Diff two observations of the same VP set into update messages:
///   * a route present only in `after` becomes an announcement;
///   * a route present only in `before` becomes a withdrawal;
///   * a route whose path changed becomes an (implicit-withdraw) announce.
/// Messages are ordered deterministically (by VP, then prefix) and stamped
/// with `timestamp`.
[[nodiscard]] std::vector<mrt::UpdateMessage> diff_observations(const Observation& before,
                                                                const Observation& after,
                                                                std::uint32_t timestamp);

/// Apply a stream of updates to a base observation, producing the table the
/// collector would hold afterwards.  Unknown-VP updates are ignored (a
/// collector only tracks configured peers).
[[nodiscard]] std::vector<ObservedRoute> apply_updates(
    const Observation& base, const std::vector<mrt::UpdateMessage>& updates);

/// One step of a generated update stream: the messages stamped with this
/// step's timestamp, plus the full observation they leave behind (the
/// reference table for differential tests).
struct UpdateStreamStep {
  std::uint32_t timestamp = 0;
  std::vector<mrt::UpdateMessage> updates;
  Observation observation;
};

struct UpdateStreamParams {
  /// Evolution steps after the bootstrap.  Total steps emitted is
  /// `steps + (bootstrap ? 1 : 0)`.
  std::size_t steps = 3;

  /// Seed for the topology-evolution RNG (independent of the observation
  /// seed in ObservationParams).
  std::uint64_t seed = 7;

  std::uint32_t base_timestamp = 1367193600;
  std::uint32_t step_seconds = 60;

  /// Emit a step 0 that announces the entire initial table (the stream a
  /// collector records when a peer session first comes up).  Without it the
  /// stream only carries deltas and the consumer needs a base RIB.
  bool bootstrap = true;

  topogen::EvolveParams evolve;
};

/// Simulate a live feed: observe `truth`, then repeatedly evolve the
/// topology and diff consecutive observations into timestamped update
/// batches.  `truth` is mutated in place (it ends at the final vintage).
/// Deterministic given both seeds.
[[nodiscard]] std::vector<UpdateStreamStep> generate_update_stream(
    topogen::GroundTruth& truth, const ObservationParams& obs_params,
    const UpdateStreamParams& params);

}  // namespace asrank::bgpsim
