// Incremental update streams: the BGP4MP "updates" complement to RIB
// snapshots.  Collectors publish both; a topology pipeline that only ever
// reloads full RIBs misses short-lived links, so this module diffs two
// observations into the per-peer announce/withdraw messages a collector
// would have recorded between them, and can replay a stream on top of a
// base observation to reconstruct the later table.
#pragma once

#include <vector>

#include "bgpsim/observation.h"
#include "mrt/bgp4mp.h"

namespace asrank::bgpsim {

/// Diff two observations of the same VP set into update messages:
///   * a route present only in `after` becomes an announcement;
///   * a route present only in `before` becomes a withdrawal;
///   * a route whose path changed becomes an (implicit-withdraw) announce.
/// Messages are ordered deterministically (by VP, then prefix) and stamped
/// with `timestamp`.
[[nodiscard]] std::vector<mrt::UpdateMessage> diff_observations(const Observation& before,
                                                                const Observation& after,
                                                                std::uint32_t timestamp);

/// Apply a stream of updates to a base observation, producing the table the
/// collector would hold afterwards.  Unknown-VP updates are ignored (a
/// collector only tracks configured peers).
[[nodiscard]] std::vector<ObservedRoute> apply_updates(
    const Observation& base, const std::vector<mrt::UpdateMessage>& updates);

}  // namespace asrank::bgpsim
