// Gao–Rexford BGP route propagation over a relationship-annotated topology.
//
// This substrate replaces the RouteViews/RIPE RIS data the paper ingests.
// For each destination AS we compute the route every other AS selects under
// the standard policy model:
//
//   Export: an AS exports routes learned from customers (and its own
//   originations) to everyone; routes learned from peers or providers are
//   exported to customers only.  Siblings exchange all routes.
//
//   Selection: prefer customer-learned routes over peer-learned over
//   provider-learned (local preference); within a class prefer the shortest
//   AS path; break remaining ties toward the lowest neighbour ASN, which
//   makes the whole simulation deterministic.
//
// The resulting paths are valley-free by construction, mirror the real
// visibility bias (p2p links are visible almost only from below), and carry
// ground-truth labels — the property the validation experiments need.
//
// Implementation: per destination, a three-phase relaxation
// (customer-class BFS up, one peer hop, provider-class Dijkstra down),
// O((V + E) log V) per destination.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "asn/asn.h"
#include "asn/as_path.h"
#include "topology/as_graph.h"

namespace asrank::bgpsim {

/// Class of the route an AS selected, in decreasing preference order.
enum class RouteClass : std::uint8_t { kCustomer = 0, kPeer = 1, kProvider = 2, kNone = 3 };

/// The route one AS selected toward the current destination.
struct SelectedRoute {
  RouteClass route_class = RouteClass::kNone;
  std::uint32_t length = 0;  ///< AS hops to the destination (0 at the origin)
  Asn next_hop;              ///< neighbour the route was learned from (invalid at origin)
};

/// Routing outcome for a single destination AS.
class RouteTable {
 public:
  RouteTable(Asn destination, std::unordered_map<Asn, SelectedRoute> routes)
      : destination_(destination), routes_(std::move(routes)) {}

  [[nodiscard]] Asn destination() const noexcept { return destination_; }

  /// The selected route at `as`; kNone class if the AS cannot reach the
  /// destination (never happens when assumption A2 holds).
  [[nodiscard]] SelectedRoute route(Asn as) const noexcept;

  /// Reconstruct the full AS path `as` uses, starting with `as` itself and
  /// ending at the destination.  Empty path if unreachable.
  [[nodiscard]] AsPath path_from(Asn as) const;

  [[nodiscard]] std::size_t reachable_count() const noexcept { return routes_.size(); }

 private:
  Asn destination_;
  std::unordered_map<Asn, SelectedRoute> routes_;
};

/// Policy-routing engine bound to one topology.  The graph must outlive the
/// simulator.
///
/// `leakers` names ASes that violate the export rule: after normal
/// propagation converges, each leaker re-exports its selected peer- or
/// provider-learned route to its providers, which accept it as a
/// customer-class route (the textbook route leak).  The leaked route then
/// climbs normally, filling in customer-class reachability where none
/// legitimately existed (existing customer routes are never displaced),
/// and the peer/provider classes are rebuilt on top.  An empty set
/// reproduces the strict Gao–Rexford tables bit for bit.
class RouteSimulator {
 public:
  explicit RouteSimulator(const AsGraph& graph,
                          const std::unordered_set<Asn>& leakers = {});

  /// Compute every AS's selected route toward `destination`.
  [[nodiscard]] RouteTable routes_to(Asn destination) const;

  /// The ASes known to the simulator (topology snapshot at construction).
  [[nodiscard]] std::span<const Asn> ases() const noexcept { return sorted_ases_; }

 private:
  const AsGraph& graph_;
  std::vector<Asn> sorted_ases_;  ///< deterministic iteration order
  std::unordered_map<Asn, std::size_t> index_;
  std::vector<std::vector<std::size_t>> providers_, customers_, peers_, siblings_;
  std::vector<std::size_t> leaker_idx_;  ///< sorted; usually empty
};

}  // namespace asrank::bgpsim
