// Vantage-point observation: what a route collector would record.
//
// The paper's input is the set of AS paths seen by RouteViews/RIS collector
// peers.  Two kinds of peers matter (paper §4): "full feed" VPs export their
// entire table to the collector, while partial VPs treat the collector like a
// settlement-free peer and export only customer-learned (and self-originated)
// routes.  Partial VPs are what make inference step 6 necessary.
//
// Observation also injects the measurement pathologies the sanitization
// pipeline must survive, each with ground-truth bookkeeping so tests can
// assert exactly what the sanitizer removed:
//
//   * prepending  — origin ASes repeat themselves for traffic engineering;
//   * poisoning   — an origin inserts a victim AS into its announcement,
//                   creating the "AS appears twice, non-adjacent" signature;
//   * IXP leak    — a route-server ASN appears inside paths crossing a p2p
//                   link established at that IXP;
//   * private leak— an unstripped private-use ASN appears next to the origin.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "asn/asn.h"
#include "asn/as_path.h"
#include "asn/prefix.h"
#include "bgpsim/route_sim.h"
#include "mrt/table_dump_v2.h"
#include "topogen/topogen.h"
#include "util/rng.h"

namespace asrank::bgpsim {

struct VantagePoint {
  Asn as;
  bool full_feed = true;
};

struct ObservationParams {
  std::uint64_t seed = 7;
  std::size_t full_vps = 30;
  std::size_t partial_vps = 10;

  /// Fraction of destination ASes each VP's table covers (1.0 = all).
  double destination_sample = 1.0;

  /// Pathology rates.  Prepending and leaks are per observed path; poisoning
  /// is per *origin AS* (a poisoning origin transforms every announcement it
  /// makes, as real traffic-engineering poisoning does).
  double prepend_prob = 0.03;
  double poison_prob = 0.004;
  double ixp_leak_prob = 0.05;     ///< per path crossing an IXP-born p2p link
  double private_leak_prob = 0.003;

  /// When true, VP tables are keyed by originated prefixes (multiple rows
  /// per origin AS); when false, one synthetic /24 per origin AS.
  bool expand_prefixes = true;

  /// Worker threads for the per-destination routing computations.
  /// 1 = serial; 0 = hardware concurrency.  Results are identical for every
  /// thread count: each destination draws from its own seeded RNG stream.
  std::size_t threads = 1;
};

struct ObservedRoute {
  Asn vp;
  Prefix prefix;
  AsPath path;  ///< VP first, origin last; may contain injected pathologies
};

/// Tally of injected pathologies, for asserting sanitizer behaviour.
struct PathologyAudit {
  std::size_t prepended = 0;
  std::size_t poisoned_loop = 0;    ///< "O X O" loop-style poison (sanitizer-visible)
  std::size_t poisoned_insert = 0;  ///< loop-free tier-1 insertion (step-4 territory)
  std::size_t ixp_leaked = 0;
  std::size_t private_leaked = 0;

  [[nodiscard]] std::size_t poisoned() const noexcept {
    return poisoned_loop + poisoned_insert;
  }
};

struct Observation {
  std::vector<VantagePoint> vps;
  std::vector<ObservedRoute> routes;
  PathologyAudit audit;
};

/// Simulate collector ingestion over the ground-truth topology.
/// Deterministic given params.seed.
[[nodiscard]] Observation observe(const topogen::GroundTruth& truth,
                                  const ObservationParams& params);

/// Package an observation as an MRT TABLE_DUMP_V2 RIB snapshot, so the
/// ingestion pipeline can exercise the binary path end to end.
[[nodiscard]] mrt::RibDump to_rib_dump(const Observation& observation,
                                       std::uint32_t timestamp = 1367193600);

/// Recover observed routes from an MRT RIB snapshot (inverse of to_rib_dump
/// up to pathology bookkeeping, which is not representable in MRT).
[[nodiscard]] std::vector<ObservedRoute> from_rib_dump(const mrt::RibDump& dump);

}  // namespace asrank::bgpsim
