#include "bgpsim/route_sim.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "util/rng.h"

namespace asrank::bgpsim {

namespace {

constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
constexpr std::size_t kNoParent = std::numeric_limits<std::size_t>::max();

}  // namespace

SelectedRoute RouteTable::route(Asn as) const noexcept {
  const auto it = routes_.find(as);
  return it == routes_.end() ? SelectedRoute{} : it->second;
}

AsPath RouteTable::path_from(Asn as) const {
  std::vector<Asn> hops;
  Asn current = as;
  // A strict Gao–Rexford table cannot loop (lengths strictly decrease), but
  // a route-leak table can chain a leaked customer-class route into a peer
  // route that descends back through the leaker.  Real BGP's loop
  // prevention discards exactly those paths, so a non-terminating chain
  // reports unreachable rather than throwing.
  const std::size_t limit = routes_.size() + 2;
  while (hops.size() < limit) {
    const auto it = routes_.find(current);
    if (it == routes_.end()) return AsPath{};  // unreachable
    hops.push_back(current);
    if (current == destination_) return AsPath(std::move(hops));
    current = it->second.next_hop;
    if (!current.valid()) return AsPath{};
  }
  return AsPath{};  // leak-induced next-hop cycle: BGP would drop the path
}

RouteSimulator::RouteSimulator(const AsGraph& graph,
                               const std::unordered_set<Asn>& leakers)
    : graph_(graph) {
  // Snapshot the topology into index-based adjacency lists: routes_to runs
  // once per destination, so per-call rebuilding would dominate runtime.
  sorted_ases_ = graph.ases();
  const std::size_t n = sorted_ases_.size();
  index_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) index_.emplace(sorted_ases_[i], i);

  auto to_indices = [&](std::span<const Asn> list) {
    std::vector<std::size_t> out;
    out.reserve(list.size());
    for (const Asn other : list) out.push_back(index_.at(other));
    std::sort(out.begin(), out.end());
    return out;
  };
  providers_.resize(n);
  customers_.resize(n);
  peers_.resize(n);
  siblings_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Asn as = sorted_ases_[i];
    providers_[i] = to_indices(graph.providers(as));
    customers_[i] = to_indices(graph.customers(as));
    peers_[i] = to_indices(graph.peers(as));
    siblings_[i] = to_indices(graph.siblings(as));
    if (leakers.contains(as)) leaker_idx_.push_back(i);
  }
}

namespace {

/// Deterministic tie-break among equal-preference routes: real routers break
/// ties with IGP distance, MED, and router-id — effectively uncorrelated
/// with ASN order across destinations.  Selecting the lowest-ASN neighbour
/// everywhere would instead send *every* tied destination through the same
/// provider, collapsing path diversity and hiding many links from every
/// vantage point.  A per-(node, destination, neighbour) hash spreads ties
/// the way real tie-breaking does while staying fully reproducible.
std::uint64_t tie_hash(Asn dest, Asn node, Asn neighbor) noexcept {
  std::uint64_t state = (static_cast<std::uint64_t>(dest.value()) << 32) ^
                        (static_cast<std::uint64_t>(node.value()) << 16) ^
                        neighbor.value();
  return asrank::util::splitmix64(state);
}

}  // namespace

RouteTable RouteSimulator::routes_to(Asn destination) const {
  const auto dest_it = index_.find(destination);
  if (dest_it == index_.end()) {
    throw std::invalid_argument("RouteSimulator: unknown destination AS");
  }
  const std::size_t dest_idx = dest_it->second;
  const std::size_t n = sorted_ases_.size();

  std::vector<std::uint32_t> cust_dist(n, kInf), peer_dist(n, kInf), prov_dist(n, kInf);
  std::vector<std::size_t> cust_parent(n, kNoParent), peer_parent(n, kNoParent),
      prov_parent(n, kNoParent);

  // ---- Phase 1: customer-class routes climb provider and sibling edges ----
  auto climb_customers = [&](std::queue<std::size_t>& queue) {
    while (!queue.empty()) {
      const std::size_t x = queue.front();
      queue.pop();
      auto relax = [&](std::size_t y) {
        const std::uint32_t cand = cust_dist[x] + 1;
        if (cand < cust_dist[y]) {
          cust_dist[y] = cand;
          cust_parent[y] = x;
          queue.push(y);
        } else if (cand == cust_dist[y] && cust_parent[y] != kNoParent &&
                   tie_hash(destination, sorted_ases_[y], sorted_ases_[x]) <
                       tie_hash(destination, sorted_ases_[y], sorted_ases_[cust_parent[y]])) {
          cust_parent[y] = x;  // same length, preferred tie-break; no re-queue
        }
      };
      for (const std::size_t y : providers_[x]) relax(y);
      for (const std::size_t y : siblings_[x]) relax(y);
    }
  };
  {
    std::queue<std::size_t> queue;
    cust_dist[dest_idx] = 0;
    queue.push(dest_idx);
    climb_customers(queue);
  }

  // ---- Phase 2: one peer hop from every AS holding a customer-class route --
  auto spread_peers = [&] {
    for (std::size_t x = 0; x < n; ++x) {
      if (cust_dist[x] == kInf) continue;
      for (const std::size_t y : peers_[x]) {
        const std::uint32_t cand = cust_dist[x] + 1;
        if (cand < peer_dist[y]) {
          peer_dist[y] = cand;
          peer_parent[y] = x;
        } else if (cand == peer_dist[y] && peer_parent[y] != kNoParent &&
                   tie_hash(destination, sorted_ases_[y], sorted_ases_[x]) <
                       tie_hash(destination, sorted_ases_[y], sorted_ases_[peer_parent[y]])) {
          peer_parent[y] = x;
        }
      }
    }
  };
  spread_peers();

  // ---- Phase 3: provider-class routes descend customer and sibling edges --
  auto descend_providers = [&] {
    // Multi-source Dijkstra; a node expands with the length of its SELECTED
    // route (class preference first, length second — local-pref beats path
    // length in BGP), because what an AS exports to customers is its
    // selected best route, even when an unselected route would be shorter.
    using Item = std::pair<std::uint32_t, std::size_t>;  // (distance, node)
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    auto selected_len = [&](std::size_t x) {
      if (cust_dist[x] != kInf) return cust_dist[x];
      if (peer_dist[x] != kInf) return peer_dist[x];
      return prov_dist[x];
    };
    for (std::size_t x = 0; x < n; ++x) {
      if (selected_len(x) != kInf) heap.emplace(selected_len(x), x);
    }
    while (!heap.empty()) {
      const auto [dist, x] = heap.top();
      heap.pop();
      if (dist != selected_len(x)) continue;  // stale entry
      auto relax = [&](std::size_t y) {
        // A provider-class route matters only where no customer/peer route
        // exists: any such route wins selection regardless of length.
        if (cust_dist[y] != kInf || peer_dist[y] != kInf) return;
        const std::uint32_t cand = dist + 1;
        if (cand < prov_dist[y]) {
          prov_dist[y] = cand;
          prov_parent[y] = x;
          heap.emplace(cand, y);
        } else if (cand == prov_dist[y] && prov_parent[y] != kNoParent &&
                   tie_hash(destination, sorted_ases_[y], sorted_ases_[x]) <
                       tie_hash(destination, sorted_ases_[y], sorted_ases_[prov_parent[y]])) {
          prov_parent[y] = x;
        }
      };
      for (const std::size_t y : customers_[x]) relax(y);
      for (const std::size_t y : siblings_[x]) relax(y);
    }
  };
  descend_providers();

  // ---- Route leaks --------------------------------------------------------
  // One leak round: each leaker whose SELECTED route is peer- or
  // provider-learned re-exports it to its providers, who accept it as a
  // customer-class route (local pref beats the shorter legitimate path —
  // exactly why real leaks spread).  The leaked routes then climb normally
  // and the peer/provider classes are rebuilt on top of them.
  if (!leaker_idx_.empty()) {
    std::queue<std::size_t> queue;
    for (const std::size_t x : leaker_idx_) {
      if (cust_dist[x] != kInf) continue;  // customer routes export normally
      const std::uint32_t len = peer_dist[x] != kInf ? peer_dist[x] : prov_dist[x];
      if (len == kInf) continue;  // leaker cannot reach the destination
      for (const std::size_t y : providers_[x]) {
        if (cust_dist[y] == kInf) {
          cust_dist[y] = len + 1;
          cust_parent[y] = x;
          queue.push(y);
        }
      }
    }
    if (!queue.empty()) {
      // The leaked route climbs like a customer route but only fills gaps:
      // an AS holding a legitimate customer route keeps it (that route is
      // loop-free by construction; letting the leak displace it could form
      // next-hop cycles, which real BGP's loop prevention would reject).
      while (!queue.empty()) {
        const std::size_t x = queue.front();
        queue.pop();
        auto relax = [&](std::size_t y) {
          if (cust_dist[y] != kInf) return;
          cust_dist[y] = cust_dist[x] + 1;
          cust_parent[y] = x;
          queue.push(y);
        };
        for (const std::size_t y : providers_[x]) relax(y);
        for (const std::size_t y : siblings_[x]) relax(y);
      }
      std::fill(peer_dist.begin(), peer_dist.end(), kInf);
      std::fill(peer_parent.begin(), peer_parent.end(), kNoParent);
      std::fill(prov_dist.begin(), prov_dist.end(), kInf);
      std::fill(prov_parent.begin(), prov_parent.end(), kNoParent);
      spread_peers();
      descend_providers();
    }
  }

  // ---- Selection ----------------------------------------------------------
  std::unordered_map<Asn, SelectedRoute> routes;
  routes.reserve(n);
  for (std::size_t x = 0; x < n; ++x) {
    SelectedRoute selected;
    if (cust_dist[x] != kInf) {
      selected.route_class = RouteClass::kCustomer;
      selected.length = cust_dist[x];
      if (cust_parent[x] != kNoParent) selected.next_hop = sorted_ases_[cust_parent[x]];
    } else if (peer_dist[x] != kInf) {
      selected.route_class = RouteClass::kPeer;
      selected.length = peer_dist[x];
      selected.next_hop = sorted_ases_[peer_parent[x]];
    } else if (prov_dist[x] != kInf) {
      selected.route_class = RouteClass::kProvider;
      selected.length = prov_dist[x];
      selected.next_hop = sorted_ases_[prov_parent[x]];
    } else {
      continue;  // unreachable
    }
    routes.emplace(sorted_ases_[x], selected);
  }
  return RouteTable(destination, std::move(routes));
}

}  // namespace asrank::bgpsim
