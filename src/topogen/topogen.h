// Synthetic Internet topology generator with ground truth.
//
// The real paper ingests RouteViews/RIS data for the ~43k-AS Internet of
// 2012.  Offline, we substitute a hierarchical generator whose output has the
// structural properties the inference algorithm's assumptions rest on:
//
//   * a fully-meshed clique of tier-1 transit providers (assumption A1);
//   * every non-clique AS buys transit from at least one provider in a
//     strictly higher tier or earlier creation order, so the p2c digraph is
//     acyclic by construction (assumptions A2/A3);
//   * heavy-tailed customer counts via preferential attachment;
//   * peering concentrated near the top of the hierarchy plus dense IXP-based
//     peering lower down (the "flattening" Internet), including IXP
//     route-server ASNs that can leak into observed paths;
//   * sibling groups and multi-homed stubs;
//   * per-AS originated prefixes with a heavy-tailed count distribution.
//
// Because the generator returns the ground-truth annotated graph, every
// inference experiment can compute exact accuracy — something the paper could
// approximate only through its validation corpus.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "asn/asn.h"
#include "asn/prefix.h"
#include "topology/as_graph.h"
#include "util/rng.h"

namespace asrank::topogen {

/// Tier of an AS in the generated hierarchy.
enum class Tier : std::uint8_t {
  kClique = 0,   ///< tier-1: provider-free, fully meshed p2p
  kTransit = 1,  ///< tier-2: large transit providers
  kRegional = 2, ///< tier-3: regional ISPs
  kStub = 3,     ///< edge networks (enterprises, content, access)
};

struct GenParams {
  std::uint64_t seed = 42;
  std::size_t total_ases = 1000;
  std::size_t clique_size = 10;
  double transit_fraction = 0.10;   ///< tier-2 share of non-clique ASes
  double regional_fraction = 0.25;  ///< tier-3 share of non-clique ASes

  /// Multihoming: probability weights for 1, 2, 3 providers.
  double one_provider = 0.55;
  double two_providers = 0.35;
  double three_providers = 0.10;

  /// Peering: target mean number of p2p links per tier-2 AS with other
  /// tier-2 ASes (kept as a degree target, not a per-pair probability, so
  /// link counts scale linearly with topology size as on the real Internet).
  double tier2_peer_degree = 5.0;

  /// IXPs: count, membership, and per-member peering degree at each IXP.
  std::size_t ixp_count = 3;
  double ixp_join_prob = 0.30;      ///< per (tier>=2 AS, IXP) membership
  double ixp_peer_degree = 4.0;     ///< mean peers per member at each IXP

  /// Fraction of stub ASes that are "content" networks which peer broadly.
  double content_stub_fraction = 0.05;
  double content_peer_degree = 6.0;  ///< mean p2p links per content stub

  /// Sibling groups.
  double sibling_fraction = 0.04;    ///< fraction of ASes placed in groups of 2-3

  /// Prefix origination: each AS announces 1 + zipf(max_extra, s) prefixes.
  std::size_t max_extra_prefixes = 8;
  double prefix_zipf_exponent = 1.5;

  /// Adversarial scenarios (both default off, so presets keep generating
  /// byte-identical topologies; the EXPERIMENTS.md comparison tables turn
  /// them on):
  ///
  /// Fraction of non-clique p2p links that carry *partial transit*: ground
  /// truth keeps the p2p label, but observation routes half the
  /// destinations across the link as if it were p2c (hybrid relationships,
  /// paper §2: links that are peering for some prefixes, transit for
  /// others).  No inference algorithm that assigns one label per link can
  /// be fully right on these.
  double hybrid_link_fraction = 0.0;
  /// Fraction of multi-homed stub/regional ASes that leak peer- or
  /// provider-learned routes to their providers (a classic route leak).
  /// Leaked paths are not valley-free, violating the propagation model
  /// every algorithm here assumes.
  double route_leaker_fraction = 0.0;

  /// Named presets: "tiny" (60), "small" (300), "medium" (2000),
  /// "large" (10000).  Throws std::invalid_argument for unknown names.
  [[nodiscard]] static GenParams preset(const std::string& name);
};

/// One Internet exchange point: a route-server ASN plus member ASes.
struct Ixp {
  Asn route_server;
  std::vector<Asn> members;
};

/// One hybrid (partial-transit) link.  The graph label stays kP2P — that is
/// the ground truth an inference algorithm is scored against — but the
/// observation layer routes a deterministic half of all destinations across
/// it as provider->customer.
struct HybridLink {
  Asn provider;  ///< the side that sells partial transit
  Asn customer;

  friend bool operator==(const HybridLink&, const HybridLink&) = default;
};

/// A generated topology with full ground truth.
struct GroundTruth {
  AsGraph graph;
  std::vector<Asn> clique;                       ///< sorted tier-1 members
  std::unordered_map<Asn, Tier> tiers;
  std::vector<Ixp> ixps;
  std::unordered_set<Asn> ixp_asns;              ///< route-server ASNs (not in graph)
  /// p2p links established at an IXP: AsGraph::link_key -> route-server ASN.
  std::unordered_map<std::uint64_t, Asn> ixp_links;
  std::vector<std::vector<Asn>> sibling_groups;
  std::unordered_map<Asn, std::vector<Prefix>> originated;  ///< AS -> prefixes
  std::unordered_set<Asn> content_stubs;
  /// Partial-transit links (see HybridLink); empty unless
  /// GenParams::hybrid_link_fraction > 0.
  std::vector<HybridLink> hybrid_links;
  /// ASes that leak peer/provider-learned routes to their providers; empty
  /// unless GenParams::route_leaker_fraction > 0.
  std::unordered_set<Asn> route_leakers;

  [[nodiscard]] Tier tier_of(Asn as) const { return tiers.at(as); }
  [[nodiscard]] std::size_t prefix_count() const;
};

/// Generate a topology.  Deterministic given params.seed.
[[nodiscard]] GroundTruth generate(const GenParams& params);

/// Parameters for one evolution step (used by the time-series experiments).
struct EvolveParams {
  std::size_t new_stubs = 20;         ///< stub ASes attached per step
  std::size_t new_peerings = 15;      ///< extra p2p links per step (flattening)
  double rehome_fraction = 0.02;      ///< fraction of stubs that switch provider
};

/// Mutate `truth` in place by one evolution step; preserves all invariants
/// (clique membership is stable; p2c stays acyclic).
void evolve(GroundTruth& truth, util::Rng& rng, const EvolveParams& params);

}  // namespace asrank::topogen
