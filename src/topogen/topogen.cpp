#include "topogen/topogen.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace asrank::topogen {

namespace {

/// Allocate the next usable ASN, skipping IANA-reserved values.
Asn next_asn(std::uint32_t& cursor) {
  do {
    ++cursor;
  } while (Asn(cursor).reserved());
  return Asn(cursor);
}

/// Sample a provider from `pool`.  Non-clique pools use preferential
/// attachment (probability proportional to 1 + current customer count),
/// which yields the heavy-tailed customer-cone distribution the paper
/// observes.  The clique pool is sampled uniformly: every real tier-1 has a
/// large customer base, and concentrating the clique's customers on one or
/// two members would let tier-2 ASes out-rank tier-1s in transit degree —
/// a structure the Internet does not exhibit.
Asn pick_provider(const AsGraph& graph, const std::vector<Asn>& pool, util::Rng& rng,
                  bool uniform = false) {
  if (uniform) return pool[rng.uniform(pool.size())];
  std::vector<double> weights;
  weights.reserve(pool.size());
  for (const Asn candidate : pool) {
    weights.push_back(1.0 + static_cast<double>(graph.customers(candidate).size()));
  }
  return pool[rng.weighted_pick(weights)];
}

std::size_t provider_count(const GenParams& p, util::Rng& rng) {
  const double weights[] = {p.one_provider, p.two_providers, p.three_providers};
  return rng.weighted_pick(weights) + 1;
}

/// Add `target_mean` p2p links per member on average, partners drawn
/// uniformly from `candidates`; skips pairs that already share a link.
/// Newly created links are reported through `on_link` when provided.
void sprinkle_peering(AsGraph& graph, const std::vector<Asn>& members,
                      const std::vector<Asn>& candidates, double target_mean,
                      util::Rng& rng,
                      const std::function<void(Asn, Asn)>& on_link = {}) {
  if (candidates.size() < 2 || target_mean <= 0.0) return;
  for (const Asn member : members) {
    const auto attempts = static_cast<std::size_t>(
        rng.geometric(1.0 / (1.0 + target_mean)));
    for (std::size_t i = 0; i < attempts; ++i) {
      const Asn partner = candidates[rng.uniform(candidates.size())];
      if (partner == member || graph.has_link(member, partner)) continue;
      graph.add_p2p(member, partner);
      if (on_link) on_link(member, partner);
    }
  }
}

Prefix allocate_prefix(std::uint32_t& prefix_cursor) {
  // Sequential /24s across the synthetic address space; index 0 is skipped
  // so no prefix is 0.0.0.0/24.
  ++prefix_cursor;
  return Prefix::v4(prefix_cursor << 8, 24);
}

}  // namespace

std::size_t GroundTruth::prefix_count() const {
  std::size_t total = 0;
  for (const auto& [as, prefixes] : originated) total += prefixes.size();
  return total;
}

GenParams GenParams::preset(const std::string& name) {
  GenParams p;
  if (name == "tiny") {
    p.total_ases = 60;
    p.clique_size = 4;
    p.ixp_count = 1;
  } else if (name == "small") {
    p.total_ases = 300;
    p.clique_size = 6;
    p.ixp_count = 2;
  } else if (name == "medium") {
    p.total_ases = 2000;
    p.clique_size = 10;
    p.ixp_count = 3;
  } else if (name == "large") {
    p.total_ases = 10000;
    p.clique_size = 14;
    p.ixp_count = 5;
  } else {
    throw std::invalid_argument("GenParams::preset: unknown preset '" + name + "'");
  }
  return p;
}

GroundTruth generate(const GenParams& params) {
  if (params.clique_size < 2) {
    throw std::invalid_argument("topogen: clique_size must be >= 2");
  }
  if (params.total_ases < params.clique_size + 2) {
    throw std::invalid_argument("topogen: total_ases too small for the clique");
  }
  util::Rng rng(params.seed);
  GroundTruth truth;

  // --- Tier assignment in creation order ---------------------------------
  std::uint32_t asn_cursor = 0;
  std::vector<Asn> order;
  order.reserve(params.total_ases);
  for (std::size_t i = 0; i < params.total_ases; ++i) order.push_back(next_asn(asn_cursor));

  const std::size_t non_clique = params.total_ases - params.clique_size;
  const auto transit_count =
      static_cast<std::size_t>(std::ceil(params.transit_fraction * static_cast<double>(non_clique)));
  const auto regional_count =
      static_cast<std::size_t>(std::ceil(params.regional_fraction * static_cast<double>(non_clique)));

  std::vector<Asn> tier2, tier3, stubs;
  for (std::size_t i = 0; i < params.total_ases; ++i) {
    const Asn as = order[i];
    truth.graph.add_as(as);
    Tier tier;
    if (i < params.clique_size) {
      tier = Tier::kClique;
      truth.clique.push_back(as);
    } else if (i < params.clique_size + transit_count) {
      tier = Tier::kTransit;
      tier2.push_back(as);
    } else if (i < params.clique_size + transit_count + regional_count) {
      tier = Tier::kRegional;
      tier3.push_back(as);
    } else {
      tier = Tier::kStub;
      stubs.push_back(as);
    }
    truth.tiers.emplace(as, tier);
  }
  std::sort(truth.clique.begin(), truth.clique.end());

  // --- Clique: full p2p mesh (assumption A1) ------------------------------
  for (std::size_t i = 0; i < truth.clique.size(); ++i) {
    for (std::size_t j = i + 1; j < truth.clique.size(); ++j) {
      truth.graph.add_p2p(truth.clique[i], truth.clique[j]);
    }
  }

  // --- Transit attachment (assumption A2; acyclic by tier ordering, A3) ---
  std::vector<Asn> clique_pool = truth.clique;
  auto attach = [&](Asn as, const std::vector<std::vector<Asn>*>& pools,
                    const std::vector<double>& pool_weights) {
    const std::size_t want = provider_count(params, rng);
    for (std::size_t i = 0; i < want; ++i) {
      const auto& pool = *pools[rng.weighted_pick(pool_weights)];
      if (pool.empty()) continue;
      const Asn provider =
          pick_provider(truth.graph, pool, rng, /*uniform=*/&pool == &clique_pool);
      if (provider == as || truth.graph.has_link(provider, as)) continue;
      truth.graph.add_p2c(provider, as);
    }
    // Guarantee global reachability: every non-clique AS has >= 1 provider.
    if (truth.graph.providers(as).empty()) {
      const auto& fallback = *pools.front();
      Asn provider = pick_provider(truth.graph, fallback, rng);
      if (provider == as) provider = fallback.front() == as ? fallback.back() : fallback.front();
      truth.graph.add_p2c(provider, as);
    }
  };

  for (const Asn as : tier2) attach(as, {&clique_pool}, {1.0});
  for (const Asn as : tier3) attach(as, {&tier2, &clique_pool}, {0.8, 0.2});
  for (const Asn as : stubs) attach(as, {&tier3, &tier2, &clique_pool}, {0.55, 0.3, 0.15});

  // --- Peering -------------------------------------------------------------
  sprinkle_peering(truth.graph, tier2, tier2, params.tier2_peer_degree, rng);

  std::vector<Asn> ixp_eligible = tier2;
  ixp_eligible.insert(ixp_eligible.end(), tier3.begin(), tier3.end());
  for (std::size_t i = 0; i < params.ixp_count; ++i) {
    Ixp ixp;
    ixp.route_server = next_asn(asn_cursor);
    truth.ixp_asns.insert(ixp.route_server);
    for (const Asn as : ixp_eligible) {
      if (rng.bernoulli(params.ixp_join_prob)) ixp.members.push_back(as);
    }
    sprinkle_peering(truth.graph, ixp.members, ixp.members, params.ixp_peer_degree, rng,
                     [&truth, &ixp](Asn a, Asn b) {
                       truth.ixp_links.emplace(AsGraph::link_key(a, b), ixp.route_server);
                     });
    truth.ixps.push_back(std::move(ixp));
  }

  for (const Asn as : stubs) {
    if (!rng.bernoulli(params.content_stub_fraction)) continue;
    truth.content_stubs.insert(as);
    sprinkle_peering(truth.graph, {as}, tier2, params.content_peer_degree, rng);
  }

  // --- Sibling groups ------------------------------------------------------
  {
    std::vector<Asn> candidates;
    candidates.insert(candidates.end(), tier3.begin(), tier3.end());
    candidates.insert(candidates.end(), stubs.begin(), stubs.end());
    rng.shuffle(candidates);
    const auto group_member_target =
        static_cast<std::size_t>(params.sibling_fraction * static_cast<double>(candidates.size()));
    std::size_t used = 0;
    while (used + 2 <= group_member_target) {
      const std::size_t size = std::min<std::size_t>(2 + rng.uniform(2), group_member_target - used);
      if (size < 2) break;
      std::vector<Asn> group(candidates.begin() + static_cast<long>(used),
                             candidates.begin() + static_cast<long>(used + size));
      for (std::size_t i = 0; i < group.size(); ++i) {
        for (std::size_t j = i + 1; j < group.size(); ++j) {
          if (!truth.graph.has_link(group[i], group[j])) {
            truth.graph.add_s2s(group[i], group[j]);
          }
        }
      }
      truth.sibling_groups.push_back(std::move(group));
      used += size;
    }
  }

  // --- Adversarial scenarios ----------------------------------------------
  // Both guarded so the RNG stream is untouched (and the output therefore
  // byte-identical) when the fractions are zero.
  if (params.hybrid_link_fraction > 0.0) {
    // Candidate hybrid links: non-clique p2p links, visited in the
    // deterministic sorted-AS order.  The provider side is the structurally
    // bigger AS (higher tier, then higher degree, then lower ASN).
    for (const Asn as : truth.graph.ases()) {
      for (const Asn peer : truth.graph.peers(as)) {
        if (!(as < peer)) continue;
        if (truth.tier_of(as) == Tier::kClique && truth.tier_of(peer) == Tier::kClique) {
          continue;  // the tier-1 mesh is settlement-free, not partial transit
        }
        if (!rng.bernoulli(params.hybrid_link_fraction)) continue;
        const auto tier_a = static_cast<int>(truth.tier_of(as));
        const auto tier_b = static_cast<int>(truth.tier_of(peer));
        Asn provider = as, customer = peer;
        if (tier_b < tier_a ||
            (tier_b == tier_a &&
             truth.graph.degree(peer) > truth.graph.degree(as))) {
          provider = peer;
          customer = as;
        }
        truth.hybrid_links.push_back({provider, customer});
      }
    }
  }
  if (params.route_leaker_fraction > 0.0) {
    // Leakers are multi-homed edge networks (>= 2 providers, or a provider
    // plus a peer): the textbook leak is a customer re-announcing one
    // provider's routes to another.
    for (const Asn as : truth.graph.ases()) {
      const Tier tier = truth.tier_of(as);
      if (tier != Tier::kStub && tier != Tier::kRegional) continue;
      const std::size_t providers = truth.graph.providers(as).size();
      if (providers + truth.graph.peers(as).size() < 2 || providers == 0) continue;
      if (rng.bernoulli(params.route_leaker_fraction)) truth.route_leakers.insert(as);
    }
  }

  // --- Prefix origination --------------------------------------------------
  std::uint32_t prefix_cursor = 0;
  for (const Asn as : order) {
    std::size_t count = 1;
    if (params.max_extra_prefixes > 0) {
      count += rng.zipf(params.max_extra_prefixes, params.prefix_zipf_exponent) - 1;
    }
    auto& prefixes = truth.originated[as];
    prefixes.reserve(count);
    for (std::size_t i = 0; i < count; ++i) prefixes.push_back(allocate_prefix(prefix_cursor));
  }

  return truth;
}

void evolve(GroundTruth& truth, util::Rng& rng, const EvolveParams& params) {
  // Recover tier pools and the highest allocated ASN.
  std::vector<Asn> tier2, tier3, stubs;
  std::uint32_t asn_cursor = 0;
  std::uint32_t prefix_cursor = 0;
  for (const auto& [as, prefixes] : truth.originated) {
    for (const Prefix& p : prefixes) {
      prefix_cursor = std::max(prefix_cursor, static_cast<std::uint32_t>(p.bits() >> 8));
    }
  }
  for (const auto& [as, tier] : truth.tiers) {
    asn_cursor = std::max(asn_cursor, as.value());
    switch (tier) {
      case Tier::kTransit: tier2.push_back(as); break;
      case Tier::kRegional: tier3.push_back(as); break;
      case Tier::kStub: stubs.push_back(as); break;
      case Tier::kClique: break;
    }
  }
  for (const Asn rs : truth.ixp_asns) asn_cursor = std::max(asn_cursor, rs.value());
  std::sort(tier2.begin(), tier2.end());
  std::sort(tier3.begin(), tier3.end());
  std::sort(stubs.begin(), stubs.end());

  // New stub ASes attach to existing transit providers.
  for (std::size_t i = 0; i < params.new_stubs; ++i) {
    const Asn as = next_asn(asn_cursor);
    truth.graph.add_as(as);
    truth.tiers.emplace(as, Tier::kStub);
    const auto& pool = (rng.bernoulli(0.6) && !tier3.empty()) ? tier3 : tier2;
    truth.graph.add_p2c(pick_provider(truth.graph, pool, rng), as);
    if (rng.bernoulli(0.3)) {  // multihome
      const Asn second = pick_provider(truth.graph, tier2.empty() ? pool : tier2, rng);
      if (second != as && !truth.graph.has_link(second, as)) truth.graph.add_p2c(second, as);
    }
    truth.originated[as].push_back(Prefix::v4(++prefix_cursor << 8, 24));
    stubs.push_back(as);
  }

  // Flattening: extra p2p links among transit/regional ASes.
  std::vector<Asn> peer_pool = tier2;
  peer_pool.insert(peer_pool.end(), tier3.begin(), tier3.end());
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < params.new_peerings && attempts < params.new_peerings * 20 &&
         peer_pool.size() >= 2) {
    ++attempts;
    const Asn a = peer_pool[rng.uniform(peer_pool.size())];
    const Asn b = peer_pool[rng.uniform(peer_pool.size())];
    if (a == b || truth.graph.has_link(a, b)) continue;
    truth.graph.add_p2p(a, b);
    ++added;
  }

  // Re-homing: some stubs change one provider.
  const auto rehome_count =
      static_cast<std::size_t>(params.rehome_fraction * static_cast<double>(stubs.size()));
  for (std::size_t i = 0; i < rehome_count && !stubs.empty(); ++i) {
    const Asn as = stubs[rng.uniform(stubs.size())];
    const auto providers = truth.graph.providers(as);
    if (providers.empty()) continue;
    const Asn old_provider = providers[rng.uniform(providers.size())];
    const auto& pool = tier3.empty() ? tier2 : tier3;
    if (pool.empty()) continue;
    const Asn new_provider = pick_provider(truth.graph, pool, rng);
    if (new_provider == as || truth.graph.has_link(new_provider, as)) continue;
    truth.graph.remove_link(old_provider, as);
    truth.graph.add_p2c(new_provider, as);
  }
}

}  // namespace asrank::topogen
