#include "baselines/gao.h"

#include <algorithm>
#include <vector>

#include "core/clique.h"
#include "topology/interner.h"

namespace asrank::baselines {

namespace {

using paths::PathCorpus;
using paths::PathRecord;
using topology::AsnInterner;
using topology::NodeId;

constexpr std::uint32_t kNoLink = 0xffffffffu;

constexpr std::uint64_t pack(NodeId a, NodeId b) noexcept {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  return static_cast<std::uint64_t>(lo) << 32 | hi;
}

}  // namespace

AsGraph GaoInference::infer(const PathCorpus& corpus) const {
  // Phase 1: node degrees, as CSR row lengths over a dense id space.
  std::vector<Asn> asns;
  for (const PathRecord& record : corpus.records()) {
    const auto hops = record.path.hops();
    asns.insert(asns.end(), hops.begin(), hops.end());
  }
  const AsnInterner interner = AsnInterner::from_asns(std::move(asns));
  const core::ObservedAdjacency adjacency = core::ObservedAdjacency::build(interner, corpus);
  const auto degree = [&](NodeId id) { return adjacency.neighbors(id).size(); };

  // The directed-transit table: sorted packed (lo, hi) id pairs with
  // per-direction counts alongside.  Pair set == adjacency pair set, so it
  // can be gathered in one corpus pass.
  std::vector<std::uint64_t> link_keys;
  std::vector<NodeId> ids;
  for (const PathRecord& record : corpus.records()) {
    interner.translate(record.path.hops(), ids);
    for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
      if (ids[i] == ids[i + 1]) continue;
      link_keys.push_back(pack(ids[i], ids[i + 1]));
    }
  }
  std::sort(link_keys.begin(), link_keys.end());
  link_keys.erase(std::unique(link_keys.begin(), link_keys.end()), link_keys.end());
  const auto link_index = [&](NodeId a, NodeId b) -> std::uint32_t {
    const std::uint64_t key = pack(a, b);
    const auto it = std::lower_bound(link_keys.begin(), link_keys.end(), key);
    if (it == link_keys.end() || *it != key) return kNoLink;
    return static_cast<std::uint32_t>(it - link_keys.begin());
  };
  std::vector<std::uint32_t> lo_provides(link_keys.size(), 0);
  std::vector<std::uint32_t> hi_provides(link_keys.size(), 0);

  // Phase 2: uphill/downhill transit counts around each path's top provider.
  const auto count_transit = [&](NodeId provider, NodeId customer) {
    const std::uint32_t link = link_index(provider, customer);
    if (provider < customer) {
      ++lo_provides[link];
    } else {
      ++hi_provides[link];
    }
  };
  for (const PathRecord& record : corpus.records()) {
    interner.translate(record.path.hops(), ids);
    if (ids.size() < 2) continue;
    std::size_t top = 0;
    for (std::size_t i = 1; i < ids.size(); ++i) {
      if (degree(ids[i]) > degree(ids[top])) top = i;
    }
    for (std::size_t j = 1; j < ids.size(); ++j) {
      if (ids[j - 1] == ids[j]) continue;
      if (j <= top) {
        count_transit(ids[j], ids[j - 1]);  // uphill: right provides
      } else {
        count_transit(ids[j - 1], ids[j]);  // downhill: left provides
      }
    }
  }

  // Phase 3: transit / sibling assignment.
  AsGraph graph;
  for (std::size_t i = 0; i < link_keys.size(); ++i) {
    const NodeId lo_id = static_cast<NodeId>(link_keys[i] >> 32);
    const NodeId hi_id = static_cast<NodeId>(link_keys[i]);
    const Asn lo = interner.asn_of(lo_id);
    const Asn hi = interner.asn_of(hi_id);
    const bool lo_transits = lo_provides[i] > config_.sibling_threshold;
    const bool hi_transits = hi_provides[i] > config_.sibling_threshold;
    if (lo_transits && hi_transits) {
      graph.add_s2s(lo, hi);
    } else if (lo_provides[i] > hi_provides[i]) {
      graph.add_p2c(lo, hi);
    } else if (hi_provides[i] > lo_provides[i]) {
      graph.add_p2c(hi, lo);
    } else {
      // Equal small evidence both ways: higher degree provides.
      graph.add_p2c(degree(lo_id) >= degree(hi_id) ? lo : hi,
                    degree(lo_id) >= degree(hi_id) ? hi : lo);
    }
  }

  // Phase 4: peering around path tops.
  for (const PathRecord& record : corpus.records()) {
    interner.translate(record.path.hops(), ids);
    if (ids.size() < 2) continue;
    std::size_t top = 0;
    for (std::size_t i = 1; i < ids.size(); ++i) {
      if (degree(ids[i]) > degree(ids[top])) top = i;
    }
    const auto consider = [&](NodeId a, NodeId b) {
      if (a == b) return;
      const std::uint32_t link = link_index(a, b);
      if (link == kNoLink) return;
      // Not peering if either direction shows repeated transit evidence.
      if (lo_provides[link] > config_.sibling_threshold ||
          hi_provides[link] > config_.sibling_threshold) {
        return;
      }
      const double da = static_cast<double>(std::max<std::size_t>(degree(a), 1));
      const double db = static_cast<double>(std::max<std::size_t>(degree(b), 1));
      const double ratio = da > db ? da / db : db / da;
      if (ratio <= config_.peering_degree_ratio) {
        graph.add_p2p(interner.asn_of(a), interner.asn_of(b));
      }
    };
    if (top > 0) consider(ids[top - 1], ids[top]);
    if (top + 1 < ids.size()) consider(ids[top], ids[top + 1]);
  }

  return graph;
}

}  // namespace asrank::baselines
