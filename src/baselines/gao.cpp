#include "baselines/gao.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace asrank::baselines {

namespace {

using paths::PathCorpus;
using paths::PathRecord;

/// Directed transit evidence: key = normalized pair, counts per direction.
struct TransitCounts {
  std::uint32_t lo_provides = 0;  ///< lower-ASN side observed providing
  std::uint32_t hi_provides = 0;
};

}  // namespace

AsGraph GaoInference::infer(const PathCorpus& corpus) const {
  // Phase 1: node degrees.
  std::unordered_map<Asn, std::unordered_set<Asn>> neighbors;
  for (const PathRecord& record : corpus.records()) {
    const auto hops = record.path.hops();
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      if (hops[i] == hops[i + 1]) continue;
      neighbors[hops[i]].insert(hops[i + 1]);
      neighbors[hops[i + 1]].insert(hops[i]);
    }
  }
  auto degree = [&](Asn as) -> std::size_t {
    const auto it = neighbors.find(as);
    return it == neighbors.end() ? 0 : it->second.size();
  };

  // Phase 2: uphill/downhill transit counts around each path's top provider.
  std::unordered_map<std::uint64_t, TransitCounts> transit;
  auto count_transit = [&](Asn provider, Asn customer) {
    auto& counts = transit[PathCorpus::key(provider, customer)];
    if (provider.value() < customer.value()) {
      ++counts.lo_provides;
    } else {
      ++counts.hi_provides;
    }
  };
  for (const PathRecord& record : corpus.records()) {
    const auto hops = record.path.hops();
    if (hops.size() < 2) continue;
    std::size_t top = 0;
    for (std::size_t i = 1; i < hops.size(); ++i) {
      if (degree(hops[i]) > degree(hops[top])) top = i;
    }
    for (std::size_t j = 1; j < hops.size(); ++j) {
      if (hops[j - 1] == hops[j]) continue;
      if (j <= top) {
        count_transit(hops[j], hops[j - 1]);  // uphill: right provides
      } else {
        count_transit(hops[j - 1], hops[j]);  // downhill: left provides
      }
    }
  }

  // Phase 3: transit / sibling assignment.
  AsGraph graph;
  for (const auto& [key, counts] : transit) {
    const Asn lo(static_cast<std::uint32_t>(key >> 32));
    const Asn hi(static_cast<std::uint32_t>(key));
    const bool lo_transits = counts.lo_provides > config_.sibling_threshold;
    const bool hi_transits = counts.hi_provides > config_.sibling_threshold;
    if (lo_transits && hi_transits) {
      graph.add_s2s(lo, hi);
    } else if (counts.lo_provides > counts.hi_provides) {
      graph.add_p2c(lo, hi);
    } else if (counts.hi_provides > counts.lo_provides) {
      graph.add_p2c(hi, lo);
    } else {
      // Equal small evidence both ways: higher degree provides.
      graph.add_p2c(degree(lo) >= degree(hi) ? lo : hi,
                    degree(lo) >= degree(hi) ? hi : lo);
    }
  }

  // Phase 4: peering around path tops.
  for (const PathRecord& record : corpus.records()) {
    const auto hops = record.path.hops();
    if (hops.size() < 2) continue;
    std::size_t top = 0;
    for (std::size_t i = 1; i < hops.size(); ++i) {
      if (degree(hops[i]) > degree(hops[top])) top = i;
    }
    auto consider = [&](Asn a, Asn b) {
      if (a == b) return;
      const auto it = transit.find(PathCorpus::key(a, b));
      if (it == transit.end()) return;
      // Not peering if either direction shows repeated transit evidence.
      if (it->second.lo_provides > config_.sibling_threshold ||
          it->second.hi_provides > config_.sibling_threshold) {
        return;
      }
      const double da = static_cast<double>(std::max<std::size_t>(degree(a), 1));
      const double db = static_cast<double>(std::max<std::size_t>(degree(b), 1));
      const double ratio = da > db ? da / db : db / da;
      if (ratio <= config_.peering_degree_ratio) graph.add_p2p(a, b);
    };
    if (top > 0) consider(hops[top - 1], hops[top]);
    if (top + 1 < hops.size()) consider(hops[top], hops[top + 1]);
  }

  return graph;
}

}  // namespace asrank::baselines
