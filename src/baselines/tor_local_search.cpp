#include "baselines/tor_local_search.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "baselines/degree_heuristic.h"
#include "topology/interner.h"

namespace asrank::baselines {

namespace {

using paths::PathCorpus;
using paths::PathRecord;
using topology::AsnInterner;
using topology::NodeId;

constexpr std::uint32_t kNoLink = 0xffffffffu;

constexpr std::uint64_t pack(NodeId a, NodeId b) noexcept {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  return static_cast<std::uint64_t>(lo) << 32 | hi;
}

/// Link labelling during the search.  kLoProv/kHiProv name the providing
/// side of the normalized (lo, hi) pair.
enum class Label : std::uint8_t { kLoProv, kHiProv, kPeer };

/// Is the hop sequence valley-free under the labelling in `graph`?
/// Grammar: c2p* p2p? p2c* (sibling links are transparent).
bool valley_free(const AsGraph& graph, std::span<const Asn> hops) {
  // States: 0 = ascending, 1 = peaked/descending.
  int state = 0;
  for (std::size_t i = 1; i < hops.size(); ++i) {
    const auto view = graph.view(hops[i - 1], hops[i]);
    if (!view) return false;  // unlabelled link cannot satisfy the path
    switch (*view) {
      case RelView::kProvider:  // moving up
        if (state != 0) return false;
        break;
      case RelView::kPeer:
        if (state != 0) return false;
        state = 1;
        break;
      case RelView::kCustomer:
        state = 1;
        break;
      case RelView::kSibling:
        break;
    }
  }
  return true;
}

}  // namespace

std::size_t TorLocalSearch::violations(const AsGraph& graph, const PathCorpus& corpus) {
  std::size_t count = 0;
  for (const PathRecord& record : corpus.records()) {
    if (!valley_free(graph, record.path.hops())) ++count;
  }
  return count;
}

AsGraph TorLocalSearch::infer(const PathCorpus& corpus) const {
  // Initial labelling: plain degree comparison.
  DegreeHeuristicConfig initial_config;
  initial_config.provider_ratio = config_.initial_provider_ratio;
  const AsGraph initial = DegreeHeuristic(initial_config).infer(corpus);

  // The search state is dense: hop sequences are translated to NodeIds once,
  // each path stores the link-table index of every hop pair, and the
  // objective evaluation walks flat arrays against a per-link Label byte —
  // re-labelling a link during the climb is a single store.
  std::vector<Asn> asns;
  for (const PathRecord& record : corpus.records()) {
    const auto hops = record.path.hops();
    asns.insert(asns.end(), hops.begin(), hops.end());
  }
  const AsnInterner interner = AsnInterner::from_asns(std::move(asns));

  // Deduplicate paths (identical rows add identical objective terms).
  std::vector<NodeId> path_flat;
  std::vector<std::size_t> path_off{0};
  {
    std::unordered_set<std::string> seen;
    std::vector<NodeId> ids;
    for (const PathRecord& record : corpus.records()) {
      if (!seen.insert(record.path.str()).second) continue;
      interner.translate(record.path.hops(), ids);
      path_flat.insert(path_flat.end(), ids.begin(), ids.end());
      path_off.push_back(path_flat.size());
    }
  }
  const std::size_t path_count = path_off.size() - 1;
  const auto hops_of = [&](std::size_t p) {
    return std::span<const NodeId>(path_flat).subspan(path_off[p],
                                                      path_off[p + 1] - path_off[p]);
  };

  // Link table over all distinct adjacent pairs (== the initial graph's
  // links), sorted packed ids.
  std::vector<std::uint64_t> link_keys;
  for (std::size_t p = 0; p < path_count; ++p) {
    const auto hops = hops_of(p);
    for (std::size_t i = 1; i < hops.size(); ++i) {
      if (hops[i - 1] == hops[i]) continue;
      link_keys.push_back(pack(hops[i - 1], hops[i]));
    }
  }
  std::sort(link_keys.begin(), link_keys.end());
  link_keys.erase(std::unique(link_keys.begin(), link_keys.end()), link_keys.end());
  const auto link_index = [&](NodeId a, NodeId b) -> std::uint32_t {
    const std::uint64_t key = pack(a, b);
    const auto it = std::lower_bound(link_keys.begin(), link_keys.end(), key);
    return static_cast<std::uint32_t>(it - link_keys.begin());
  };

  std::vector<Label> labels(link_keys.size());
  for (std::size_t i = 0; i < link_keys.size(); ++i) {
    const Asn lo = interner.asn_of(static_cast<NodeId>(link_keys[i] >> 32));
    const Asn hi = interner.asn_of(static_cast<NodeId>(link_keys[i]));
    const auto link = initial.link(lo, hi);
    if (link->type == LinkType::kP2P) {
      labels[i] = Label::kPeer;
    } else {
      labels[i] = link->a == lo ? Label::kLoProv : Label::kHiProv;
    }
  }

  // Per-hop link indices (kNoLink for a prepending repeat, which no
  // labelling can satisfy) and the link -> covering-paths index.
  std::vector<std::uint32_t> link_of_hop(path_flat.size(), kNoLink);
  std::vector<std::uint64_t> cover_pairs;  // (link, path) packed
  for (std::size_t p = 0; p < path_count; ++p) {
    const auto hops = hops_of(p);
    for (std::size_t i = 1; i < hops.size(); ++i) {
      if (hops[i - 1] == hops[i]) continue;
      const std::uint32_t link = link_index(hops[i - 1], hops[i]);
      link_of_hop[path_off[p] + i] = link;
      cover_pairs.push_back(static_cast<std::uint64_t>(link) << 32 | p);
    }
  }
  std::sort(cover_pairs.begin(), cover_pairs.end());
  cover_pairs.erase(std::unique(cover_pairs.begin(), cover_pairs.end()),
                    cover_pairs.end());
  std::vector<std::uint64_t> cover_off(link_keys.size() + 1, 0);
  for (const std::uint64_t pair : cover_pairs) ++cover_off[(pair >> 32) + 1];
  for (std::size_t i = 0; i < link_keys.size(); ++i) cover_off[i + 1] += cover_off[i];

  const auto path_valley_free = [&](std::size_t p) {
    const auto hops = hops_of(p);
    int state = 0;  // 0 = ascending, 1 = peaked/descending
    for (std::size_t i = 1; i < hops.size(); ++i) {
      const std::uint32_t link = link_of_hop[path_off[p] + i];
      if (link == kNoLink) return false;
      const Label label = labels[link];
      if (label == Label::kPeer) {
        if (state != 0) return false;
        state = 1;
        continue;
      }
      const bool left_is_lo = hops[i - 1] < hops[i];
      const bool descending = (label == Label::kLoProv) == left_is_lo;
      if (descending) {
        state = 1;
      } else if (state != 0) {  // ascending after the peak
        return false;
      }
    }
    return true;
  };
  const auto local_violations = [&](std::size_t link) {
    std::size_t count = 0;
    for (std::uint64_t k = cover_off[link]; k < cover_off[link + 1]; ++k) {
      if (!path_valley_free(static_cast<std::size_t>(
              static_cast<std::uint32_t>(cover_pairs[k])))) {
        ++count;
      }
    }
    return count;
  };

  // Hill-climb: for each link, try the three labellings, keep the best
  // (ties keep the current labelling so passes terminate).  Links ascend in
  // packed-key order — the same order the legacy sweep derived from the
  // sorted AsGraph::links() snapshot.
  for (std::size_t pass = 0; pass < config_.max_passes; ++pass) {
    bool improved = false;
    for (std::size_t link = 0; link < link_keys.size(); ++link) {
      if (cover_off[link] == cover_off[link + 1]) continue;
      const Label current = labels[link];

      std::size_t best_violations = local_violations(link);
      Label best = current;
      // Candidate order mirrors the legacy sweep: both c2p orientations
      // first (relative to the current orientation), then p2p.
      Label candidates[2];
      if (current == Label::kLoProv) {
        candidates[0] = Label::kHiProv;
        candidates[1] = Label::kPeer;
      } else if (current == Label::kHiProv) {
        candidates[0] = Label::kLoProv;
        candidates[1] = Label::kPeer;
      } else {
        candidates[0] = Label::kLoProv;
        candidates[1] = Label::kHiProv;
      }
      for (const Label candidate : candidates) {
        labels[link] = candidate;
        const std::size_t with_candidate = local_violations(link);
        if (with_candidate < best_violations) {
          best_violations = with_candidate;
          best = candidate;
          improved = true;
        }
      }
      labels[link] = best;
    }
    if (!improved) break;
  }

  AsGraph graph;
  for (std::size_t i = 0; i < link_keys.size(); ++i) {
    const Asn lo = interner.asn_of(static_cast<NodeId>(link_keys[i] >> 32));
    const Asn hi = interner.asn_of(static_cast<NodeId>(link_keys[i]));
    switch (labels[i]) {
      case Label::kLoProv: graph.add_p2c(lo, hi); break;
      case Label::kHiProv: graph.add_p2c(hi, lo); break;
      case Label::kPeer: graph.add_p2p(lo, hi); break;
    }
  }
  return graph;
}

}  // namespace asrank::baselines
