#include "baselines/tor_local_search.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "baselines/degree_heuristic.h"

namespace asrank::baselines {

namespace {

using paths::PathCorpus;
using paths::PathRecord;

/// Is the hop sequence valley-free under the labelling in `graph`?
/// Grammar: c2p* p2p? p2c* (sibling links are transparent).
bool valley_free(const AsGraph& graph, std::span<const Asn> hops) {
  // States: 0 = ascending, 1 = peaked/descending.
  int state = 0;
  for (std::size_t i = 1; i < hops.size(); ++i) {
    const auto view = graph.view(hops[i - 1], hops[i]);
    if (!view) return false;  // unlabelled link cannot satisfy the path
    switch (*view) {
      case RelView::kProvider:  // moving up
        if (state != 0) return false;
        break;
      case RelView::kPeer:
        if (state != 0) return false;
        state = 1;
        break;
      case RelView::kCustomer:
        state = 1;
        break;
      case RelView::kSibling:
        break;
    }
  }
  return true;
}

}  // namespace

std::size_t TorLocalSearch::violations(const AsGraph& graph, const PathCorpus& corpus) {
  std::size_t count = 0;
  for (const PathRecord& record : corpus.records()) {
    if (!valley_free(graph, record.path.hops())) ++count;
  }
  return count;
}

AsGraph TorLocalSearch::infer(const PathCorpus& corpus) const {
  // Initial labelling: plain degree comparison.
  DegreeHeuristicConfig initial_config;
  initial_config.provider_ratio = config_.initial_provider_ratio;
  AsGraph graph = DegreeHeuristic(initial_config).infer(corpus);

  // Deduplicate paths (identical rows add identical objective terms) and
  // index them by the links they cross.
  std::vector<std::vector<Asn>> unique_paths;
  {
    std::unordered_set<std::string> seen;
    for (const PathRecord& record : corpus.records()) {
      const auto key = record.path.str();
      if (seen.insert(key).second) {
        const auto hops = record.path.hops();
        unique_paths.emplace_back(hops.begin(), hops.end());
      }
    }
  }
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> paths_by_link;
  for (std::size_t p = 0; p < unique_paths.size(); ++p) {
    std::unordered_set<std::uint64_t> links;
    for (std::size_t i = 1; i < unique_paths[p].size(); ++i) {
      if (unique_paths[p][i - 1] == unique_paths[p][i]) continue;
      links.insert(PathCorpus::key(unique_paths[p][i - 1], unique_paths[p][i]));
    }
    for (const std::uint64_t link : links) paths_by_link[link].push_back(p);
  }

  auto local_violations = [&](const std::vector<std::size_t>& path_ids) {
    std::size_t count = 0;
    for (const std::size_t p : path_ids) {
      if (!valley_free(graph, unique_paths[p])) ++count;
    }
    return count;
  };

  // Hill-climb: for each link, try the three labellings, keep the best
  // (ties keep the current labelling so passes terminate).
  const auto links = graph.links();
  for (std::size_t pass = 0; pass < config_.max_passes; ++pass) {
    bool improved = false;
    for (const Link& original : links) {
      const auto it = paths_by_link.find(PathCorpus::key(original.a, original.b));
      if (it == paths_by_link.end()) continue;
      const auto current = graph.link(original.a, original.b);
      if (!current) continue;

      std::size_t best_violations = local_violations(it->second);
      Link best = *current;
      const Link candidates[] = {
          {current->a, current->b, LinkType::kP2C},
          {current->b, current->a, LinkType::kP2C},
          {current->a, current->b, LinkType::kP2P},
      };
      for (const Link& candidate : candidates) {
        if (candidate.type == current->type && candidate.a == current->a) continue;
        graph.set_relationship(candidate.a, candidate.b, candidate.type);
        const std::size_t with_candidate = local_violations(it->second);
        if (with_candidate < best_violations) {
          best_violations = with_candidate;
          best = candidate;
          improved = true;
        }
      }
      graph.set_relationship(best.a, best.b, best.type);
    }
    if (!improved) break;
  }
  return graph;
}

}  // namespace asrank::baselines
