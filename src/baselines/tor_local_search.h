// Type-of-Relationship (ToR) local search baseline.
//
// A second family of classic algorithms (Di Battista/Erlebach/Subramanian
// et al., 2003-2007) casts relationship inference as combinatorial
// optimization: label every link c2p (one of two orientations) or p2p so as
// to maximize the number of valley-free paths.  The exact problem is
// NP-hard; this baseline is the standard hill-climbing heuristic —
// initialize from a degree comparison, then repeatedly re-label single
// links whenever that strictly reduces the number of valley violations
// among the paths crossing them.
//
// Its failure mode is instructive next to ASRank: maximizing valley-freeness
// alone is degenerate (labelling everything c2p in path order satisfies most
// paths), so it recovers transit well but over-infers c2p, and has no
// notion of a clique to anchor the top of the hierarchy.
#pragma once

#include <cstdint>

#include "algo/algorithm.h"

namespace asrank::baselines {

struct TorConfig {
  /// Initial labelling degree ratio (same meaning as DegreeHeuristic).
  double initial_provider_ratio = 2.0;
  /// Hill-climbing sweeps over all links.
  std::size_t max_passes = 4;
};

class TorLocalSearch final : public algo::InferenceAlgorithm {
 public:
  explicit TorLocalSearch(TorConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "tor-local-search"; }
  [[nodiscard]] AsGraph infer(const paths::PathCorpus& corpus) const override;

  /// Count valley violations of `paths` under the labelling in `graph`
  /// (exposed for tests and for measuring convergence).
  [[nodiscard]] static std::size_t violations(const AsGraph& graph,
                                              const paths::PathCorpus& corpus);

 private:
  TorConfig config_;
};

}  // namespace asrank::baselines
