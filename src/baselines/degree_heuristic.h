// Naive degree-ratio heuristic: the strawman baseline.  For every observed
// link, the side with the much larger node degree is the provider; links
// between comparable-degree ASes are peers.  No valley-free reasoning at all
// — its error rate shows why structural algorithms are needed.
#pragma once

#include "algo/algorithm.h"

namespace asrank::baselines {

struct DegreeHeuristicConfig {
  /// A link is p2c when max(deg)/min(deg) exceeds this ratio, else p2p.
  double provider_ratio = 2.0;
};

class DegreeHeuristic final : public algo::InferenceAlgorithm {
 public:
  explicit DegreeHeuristic(DegreeHeuristicConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "degree-ratio"; }
  [[nodiscard]] AsGraph infer(const paths::PathCorpus& corpus) const override;

 private:
  DegreeHeuristicConfig config_;
};

}  // namespace asrank::baselines
