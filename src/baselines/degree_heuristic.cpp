#include "baselines/degree_heuristic.h"

#include <unordered_map>
#include <unordered_set>

namespace asrank::baselines {

AsGraph DegreeHeuristic::infer(const paths::PathCorpus& corpus) const {
  std::unordered_map<Asn, std::unordered_set<Asn>> neighbors;
  for (const paths::PathRecord& record : corpus.records()) {
    const auto hops = record.path.hops();
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      if (hops[i] == hops[i + 1]) continue;
      neighbors[hops[i]].insert(hops[i + 1]);
      neighbors[hops[i + 1]].insert(hops[i]);
    }
  }
  AsGraph graph;
  for (const auto& [as, adj] : neighbors) {
    for (const Asn other : adj) {
      if (other.value() <= as.value()) continue;  // visit each pair once
      const auto da = static_cast<double>(adj.size());
      const auto db = static_cast<double>(neighbors.at(other).size());
      const double big = da > db ? da : db;
      const double small = da > db ? db : da;
      if (small <= 0.0 || big / small > config_.provider_ratio) {
        graph.add_p2c(da >= db ? as : other, da >= db ? other : as);
      } else {
        graph.add_p2p(as, other);
      }
    }
  }
  return graph;
}

}  // namespace asrank::baselines
