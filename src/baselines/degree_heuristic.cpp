#include "baselines/degree_heuristic.h"

#include <vector>

#include "core/clique.h"
#include "topology/interner.h"

namespace asrank::baselines {

AsGraph DegreeHeuristic::infer(const paths::PathCorpus& corpus) const {
  using topology::NodeId;

  // Dense id space over the corpus; observed adjacency as CSR rows, so node
  // degree is a row length and the pair sweep is an ascending-id walk.
  std::vector<Asn> asns;
  for (const paths::PathRecord& record : corpus.records()) {
    const auto hops = record.path.hops();
    asns.insert(asns.end(), hops.begin(), hops.end());
  }
  const topology::AsnInterner interner = topology::AsnInterner::from_asns(std::move(asns));
  const core::ObservedAdjacency adjacency = core::ObservedAdjacency::build(interner, corpus);

  AsGraph graph;
  for (NodeId node = 0; node < interner.size(); ++node) {
    const auto row = adjacency.neighbors(node);
    for (const NodeId other : row) {
      if (other <= node) continue;  // visit each pair once
      const auto da = static_cast<double>(row.size());
      const auto db = static_cast<double>(adjacency.neighbors(other).size());
      const double big = da > db ? da : db;
      const double small = da > db ? db : da;
      const Asn a = interner.asn_of(node);
      const Asn b = interner.asn_of(other);
      if (small <= 0.0 || big / small > config_.provider_ratio) {
        graph.add_p2c(da >= db ? a : b, da >= db ? b : a);
      } else {
        graph.add_p2p(a, b);
      }
    }
  }
  return graph;
}

}  // namespace asrank::baselines
