// Adapter exposing the core ASRank pipeline through the common
// InferenceAlgorithm interface used by the comparison experiments.
#pragma once

#include "baselines/algorithm.h"
#include "core/asrank.h"

namespace asrank::baselines {

class AsRankAlgorithm final : public InferenceAlgorithm {
 public:
  explicit AsRankAlgorithm(core::InferenceConfig config = {})
      : inference_(std::move(config)) {}

  [[nodiscard]] std::string name() const override { return "asrank"; }
  [[nodiscard]] AsGraph infer(const paths::PathCorpus& corpus) const override {
    return inference_.run(corpus).graph;
  }

 private:
  core::AsRankInference inference_;
};

}  // namespace asrank::baselines
