// Gao's classic relationship-inference algorithm (L. Gao, "On inferring
// autonomous system relationships in the Internet", IEEE/ACM ToN 2001) — the
// baseline the paper compares against.
//
// The algorithm assumes every path is valley-free around its highest-degree
// AS ("top provider"):
//   Phase 1: compute node degrees from the paths.
//   Phase 2: for each path, the AS pairs before the top provider are uphill
//            (right side provides), pairs after are downhill (left side
//            provides); accumulate transit counts per directed pair.
//   Phase 3: assign relationships from the counts: both directions above the
//            sibling threshold L -> sibling; one-sided or dominant -> p2c.
//   Phase 4: peering: links adjacent to a path's top provider whose endpoint
//            degrees are within ratio R and which were not already classified
//            as transit in either direction -> p2p.
#pragma once

#include <cstdint>

#include "algo/algorithm.h"

namespace asrank::baselines {

struct GaoConfig {
  /// Phase 3 sibling threshold: both directions observed more than L times.
  std::uint32_t sibling_threshold = 1;
  /// Phase 4 degree ratio bound for plausible peering.
  double peering_degree_ratio = 60.0;
};

class GaoInference final : public algo::InferenceAlgorithm {
 public:
  explicit GaoInference(GaoConfig config = {}) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "gao2001"; }
  [[nodiscard]] AsGraph infer(const paths::PathCorpus& corpus) const override;

 private:
  GaoConfig config_;
};

}  // namespace asrank::baselines
