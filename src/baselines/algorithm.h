// Common interface for relationship-inference algorithms so the comparison
// experiments (paper Table "ASRank vs prior work") can run every algorithm
// over identical corpora.
#pragma once

#include <memory>
#include <string>

#include "paths/corpus.h"
#include "topology/as_graph.h"

namespace asrank::baselines {

class InferenceAlgorithm {
 public:
  virtual ~InferenceAlgorithm() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Infer relationships for every link observed in `corpus`.  The corpus is
  /// expected to be sanitized (prepending compressed, loops removed);
  /// algorithms must tolerate unsanitized input without crashing.
  [[nodiscard]] virtual AsGraph infer(const paths::PathCorpus& corpus) const = 0;
};

}  // namespace asrank::baselines
