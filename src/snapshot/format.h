// ASRK1 on-disk layout constants (see docs/FORMATS.md for the normative
// description).  A snapshot file is:
//
//   [ magic (8) | version u16 | section_count u16 | flags u32 | file_size u64 ]
//   [ section table: section_count * 32-byte entries ]
//   [ header_crc u32 ]
//   [ sections, each 8-byte aligned, zero padding between ]
//
// All integers are little-endian and fixed-width.  Every section carries its
// own CRC-32 in the table entry, and the header (magic through section
// table) is covered by header_crc, so truncation or bit damage anywhere in
// the file is detected before any value is trusted.  The trailing "\r\n" in
// the magic catches text-mode transfer mangling (the PNG trick).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace asrank::snapshot {

/// Raised for any malformed, truncated, or checksum-failing snapshot.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error("snapshot: " + what) {}
};

inline constexpr std::array<std::uint8_t, 8> kMagic = {'A', 'S', 'R', 'K',
                                                       '1', 0, '\r', '\n'};
inline constexpr std::uint16_t kFormatVersion = 1;

/// Fixed header prefix: magic + version + section_count + flags + file_size.
inline constexpr std::size_t kHeaderPrefixSize = 8 + 2 + 2 + 4 + 8;
/// One section-table entry: id u32, reserved u32, offset u64, length u64,
/// crc u32, pad u32.
inline constexpr std::size_t kSectionEntrySize = 32;
/// Sections start on 8-byte boundaries.
inline constexpr std::size_t kSectionAlign = 8;

/// Section identifiers.  Readers reject files missing a required section
/// and ignore unknown ids (forward compatibility for additive sections).
enum class SectionId : std::uint32_t {
  kAsns = 1,            ///< n * u32 ASN, sorted ascending, unique
  kAdjOffsets = 2,      ///< (n+1) * u64 offsets into the adjacency arrays
  kAdjNeighbors = 3,    ///< per-AS neighbour ASNs, sorted ascending in-row
  kAdjRels = 4,         ///< per-neighbour RelView code (u8, values 0..3)
  kConeOffsets = 5,     ///< (n+1) * u64 offsets into cone members
  kConeMembers = 6,     ///< cone member ASNs, sorted ascending in-row
  kRanks = 7,           ///< n * u32 1-based rank (0 = unranked)
  kTransitDegrees = 8,  ///< n * u32
  kClique = 9,          ///< clique member ASNs, sorted ascending
  kAlgoDirectory = 10,  ///< multi-algorithm directory (see below); absent in
                        ///< single-algorithm "asrank" files
};

/// Number of sections a version-1 writer emits per algorithm (readers
/// accept more).
inline constexpr std::size_t kSectionCount = 9;

// Multi-algorithm snapshots (additive, still format version 1).  One file
// carries the full nine-section set once per inference algorithm:
//
//   * Algorithm slot 0 ("the primary") keeps the historical ids 1..9, so a
//     multi-algorithm file is *also* a valid single-algorithm file to any
//     pre-directory reader, and a single-algorithm file written today is
//     byte-identical to one written before slots existed.
//   * Algorithm slot s >= 1 stores section j at id s * kAlgoSlotStride + j.
//   * Section kAlgoDirectory maps slots to algorithm names:
//       u32 count, then count * { u32 slot, u16 name_len, name bytes }
//     with slots ascending 0..count-1 and names unique, 1..64 chars of
//     [A-Za-z0-9._:-] (the epoch-label charset).  The writer only emits the
//     directory when there are extra slots or the primary is not "asrank";
//     readers treat its absence as {"asrank"}.
inline constexpr std::uint32_t kAlgoSlotStride = 16;
/// Directory cap — keeps slot ids well clear of future low-id sections and
/// bounds per-file memory for crafted inputs.
inline constexpr std::size_t kMaxAlgorithms = 8;
/// Longest algorithm name the directory accepts.
inline constexpr std::size_t kMaxAlgoNameLen = 64;

/// The on-disk section id of section `id` for algorithm slot `slot`.
[[nodiscard]] constexpr std::uint32_t slot_section_id(std::size_t slot,
                                                      SectionId id) noexcept {
  return static_cast<std::uint32_t>(slot) * kAlgoSlotStride +
         static_cast<std::uint32_t>(id);
}

}  // namespace asrank::snapshot
