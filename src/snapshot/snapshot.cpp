#include "snapshot/snapshot.h"

#include <algorithm>
#include <bit>
#include <fstream>
#include <istream>
#include <iterator>
#include <ostream>
#include <type_traits>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "util/crc32.h"

namespace asrank::snapshot {

namespace {

obs::Histogram& io_histogram(const char* op) {
  return obs::Registry::global().histogram(
      "asrank_snapshot_io_duration_micros",
      "Wall-clock duration of one snapshot serialization or parse",
      obs::kLatencyBucketsMicros, {{"op", op}});
}

obs::Counter& crc_failure_counter() {
  return obs::Registry::global().counter(
      "asrank_snapshot_crc_failures_total",
      "Snapshot loads rejected by a header or section CRC mismatch");
}

obs::Counter& mmap_loads_counter() {
  return obs::Registry::global().counter(
      "asrank_snapshot_mmap_loads_total",
      "Snapshot indexes served zero-copy from an mmap'd file");
}

// ----------------------------------------------------------- LE encoding --
// The format is explicitly little-endian regardless of host byte order, so
// all widths go through these helpers rather than memcpy of host integers.

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v));
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

/// Bounds-checked little-endian cursor; underruns yield ErrorCode::kTruncated.
class Cursor {
 public:
  Cursor(std::span<const std::uint8_t> data, std::string context)
      : data_(data), context_(std::move(context)) {}

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

  Result<std::uint16_t> u16() {
    ASRANK_TRY_VOID(need(2));
    const std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                            static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
  }
  Result<std::uint32_t> u32() {
    ASRANK_TRY(lo, u16());
    ASRANK_TRY(hi, u16());
    return static_cast<std::uint32_t>(lo) | static_cast<std::uint32_t>(hi) << 16;
  }
  Result<std::uint64_t> u64() {
    ASRANK_TRY(lo, u32());
    ASRANK_TRY(hi, u32());
    return static_cast<std::uint64_t>(lo) | static_cast<std::uint64_t>(hi) << 32;
  }
  Result<std::span<const std::uint8_t>> bytes(std::size_t n) {
    ASRANK_TRY_VOID(need(n));
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

 private:
  [[nodiscard]] Result<void> need(std::size_t n) const {
    if (remaining() < n) {
      return make_error(ErrorCode::kTruncated,
                        "truncated " + context_ + ": need " + std::to_string(n) +
                            " bytes, have " + std::to_string(remaining()));
    }
    return {};
  }

  std::span<const std::uint8_t> data_;
  std::string context_;
  std::size_t pos_ = 0;
};

std::vector<std::uint8_t> encode_u32s(std::span<const std::uint32_t> values) {
  std::vector<std::uint8_t> out;
  out.reserve(values.size() * 4);
  for (const std::uint32_t v : values) put_u32(out, v);
  return out;
}

std::vector<std::uint8_t> encode_asns(std::span<const Asn> values) {
  std::vector<std::uint8_t> out;
  out.reserve(values.size() * 4);
  for (const Asn v : values) put_u32(out, v.value());
  return out;
}

std::vector<std::uint8_t> encode_u64s(std::span<const std::uint64_t> values) {
  std::vector<std::uint8_t> out;
  out.reserve(values.size() * 8);
  for (const std::uint64_t v : values) put_u64(out, v);
  return out;
}

Result<std::vector<std::uint32_t>> decode_u32s(std::span<const std::uint8_t> bytes,
                                               const char* what) {
  if (bytes.size() % 4 != 0) {
    return make_error(ErrorCode::kCorrupt,
                      std::string(what) + ": length not a multiple of 4");
  }
  Cursor cursor(bytes, what);
  std::vector<std::uint32_t> out(bytes.size() / 4);
  for (auto& v : out) {
    ASRANK_TRY(decoded, cursor.u32());
    v = decoded;
  }
  return out;
}

Result<std::vector<Asn>> decode_asns(std::span<const std::uint8_t> bytes,
                                     const char* what) {
  ASRANK_TRY(raw, decode_u32s(bytes, what));
  std::vector<Asn> out;
  out.reserve(raw.size());
  for (const std::uint32_t v : raw) out.emplace_back(v);
  return out;
}

Result<std::vector<std::uint64_t>> decode_u64s(std::span<const std::uint8_t> bytes,
                                               const char* what) {
  if (bytes.size() % 8 != 0) {
    return make_error(ErrorCode::kCorrupt,
                      std::string(what) + ": length not a multiple of 8");
  }
  Cursor cursor(bytes, what);
  std::vector<std::uint64_t> out(bytes.size() / 8);
  for (auto& v : out) {
    ASRANK_TRY(decoded, cursor.u64());
    v = decoded;
  }
  return out;
}

constexpr RelView inverse(RelView view) noexcept {
  switch (view) {
    case RelView::kProvider: return RelView::kCustomer;
    case RelView::kCustomer: return RelView::kProvider;
    case RelView::kPeer: return RelView::kPeer;
    case RelView::kSibling: return RelView::kSibling;
  }
  return RelView::kPeer;
}

/// Valid algorithm-directory name: the epoch-label charset, 1..64 chars.
bool valid_algo_name(std::string_view name) {
  if (name.empty() || name.size() > kMaxAlgoNameLen) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == ':' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

// ------------------------------------------------------ container parsing --
// Shared between the heap decoder and the zero-copy mapper: check magic,
// version, declared size, header CRC, then bounds-, CRC- and
// duplicate-check every section-table entry.  Namespace scope (not
// anonymous) so snapshot.h can name it for the per-slot loaders.

struct ContainerView {
  std::unordered_map<std::uint32_t, std::span<const std::uint8_t>> sections;

  [[nodiscard]] const std::span<const std::uint8_t>* find(std::uint32_t raw_id) const {
    const auto it = sections.find(raw_id);
    return it == sections.end() ? nullptr : &it->second;
  }

  /// Section `id` of algorithm slot `slot` (see format.h id scheme).
  [[nodiscard]] Result<std::span<const std::uint8_t>> require(std::size_t slot,
                                                              SectionId id) const {
    const std::uint32_t raw = slot_section_id(slot, id);
    if (const auto* payload = find(raw)) return *payload;
    return make_error(ErrorCode::kNotFound,
                      "missing section " + std::to_string(raw) +
                          (slot == 0 ? std::string{}
                                     : " (algorithm slot " + std::to_string(slot) + ")"));
  }
};

namespace {

Result<ContainerView> parse_container(std::span<const std::uint8_t> data) {
  if (data.size() < kHeaderPrefixSize) {
    return make_error(ErrorCode::kTruncated, "file shorter than header");
  }
  if (!std::equal(kMagic.begin(), kMagic.end(), data.begin())) {
    return make_error(ErrorCode::kCorrupt,
                      "bad magic (not an ASRK snapshot, or text-mode mangled)");
  }
  Cursor prefix{data.subspan(8, kHeaderPrefixSize - 8), "header"};
  ASRANK_TRY(version, prefix.u16());
  if (version != kFormatVersion) {
    return make_error(ErrorCode::kUnsupported,
                      "unsupported format version " + std::to_string(version));
  }
  ASRANK_TRY(section_count, prefix.u16());
  ASRANK_TRY_VOID(prefix.u32());  // flags
  ASRANK_TRY(file_size, prefix.u64());
  if (file_size != data.size()) {
    return make_error(ErrorCode::kTruncated,
                      "file size mismatch: header says " + std::to_string(file_size) +
                          ", have " + std::to_string(data.size()) +
                          " bytes (truncated?)");
  }
  const std::size_t header_size =
      kHeaderPrefixSize + static_cast<std::size_t>(section_count) * kSectionEntrySize + 4;
  if (data.size() < header_size) {
    return make_error(ErrorCode::kTruncated, "truncated section table");
  }

  const auto header_span = data.first(header_size - 4);
  Cursor crc_cursor{data.subspan(header_size - 4, 4), "header crc"};
  ASRANK_TRY(header_crc, crc_cursor.u32());
  if (header_crc != util::crc32(header_span)) {
    crc_failure_counter().inc();
    return make_error(ErrorCode::kCorrupt, "header CRC mismatch");
  }

  ContainerView parsed;
  Cursor table{data.subspan(kHeaderPrefixSize,
                            static_cast<std::size_t>(section_count) *
                                kSectionEntrySize),
               "section table"};
  for (std::uint16_t i = 0; i < section_count; ++i) {
    ASRANK_TRY(id, table.u32());
    ASRANK_TRY_VOID(table.u32());  // reserved
    ASRANK_TRY(offset, table.u64());
    ASRANK_TRY(length, table.u64());
    ASRANK_TRY(crc, table.u32());
    ASRANK_TRY_VOID(table.u32());  // pad
    if (offset < header_size || offset > data.size() || length > data.size() - offset) {
      return make_error(ErrorCode::kCorrupt,
                        "section " + std::to_string(id) + " out of bounds");
    }
    const auto payload = data.subspan(offset, length);
    if (util::crc32(payload) != crc) {
      crc_failure_counter().inc();
      return make_error(ErrorCode::kCorrupt,
                        "section " + std::to_string(id) + " CRC mismatch");
    }
    if (!parsed.sections.emplace(id, payload).second) {
      return make_error(ErrorCode::kCorrupt,
                        "duplicate section " + std::to_string(id));
    }
  }
  return parsed;
}

/// Reinterpret a section payload as a span of fixed-width little-endian
/// elements, in place.  Only valid on little-endian hosts; the writer's
/// 8-byte section alignment makes the cast well-defined for every element
/// type used by the format, but a foreign file could carry any offset, so
/// alignment is checked rather than assumed.
template <typename T>
Result<std::span<const T>> typed_view(std::span<const std::uint8_t> payload,
                                      const char* what) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (payload.size() % sizeof(T) != 0) {
    return make_error(ErrorCode::kCorrupt,
                      std::string(what) + ": length not a multiple of " +
                          std::to_string(sizeof(T)));
  }
  if (payload.empty()) return std::span<const T>{};
  if (reinterpret_cast<std::uintptr_t>(payload.data()) % alignof(T) != 0) {
    return make_error(ErrorCode::kCorrupt,
                      std::string(what) + ": misaligned section offset");
  }
  return std::span<const T>(reinterpret_cast<const T*>(payload.data()),
                            payload.size() / sizeof(T));
}

// Asn must stay layout-compatible with the serialized u32 for the in-place
// reinterpretation above to be valid.
static_assert(sizeof(Asn) == 4 && alignof(Asn) == 4 &&
              std::is_trivially_copyable_v<Asn>);

}  // namespace

// ------------------------------------------------------------- accessors --

std::optional<std::uint32_t> SnapshotIndex::id_of(Asn as) const noexcept {
  const auto it = std::lower_bound(asns_.begin(), asns_.end(), as);
  if (it == asns_.end() || *it != as) return std::nullopt;
  return static_cast<std::uint32_t>(it - asns_.begin());
}

std::optional<RelView> SnapshotIndex::relationship(Asn as, Asn neighbor) const noexcept {
  const auto id = id_of(as);
  if (!id) return std::nullopt;
  const auto begin = adj_nbr_.begin() + static_cast<std::ptrdiff_t>(adj_off_[*id]);
  const auto end = adj_nbr_.begin() + static_cast<std::ptrdiff_t>(adj_off_[*id + 1]);
  const auto it = std::lower_bound(begin, end, neighbor);
  if (it == end || *it != neighbor) return std::nullopt;
  return static_cast<RelView>(adj_rel_[static_cast<std::size_t>(it - adj_nbr_.begin())]);
}

std::span<const Asn> SnapshotIndex::neighbors(Asn as) const noexcept {
  const auto id = id_of(as);
  if (!id) return {};
  return adj_nbr_.subspan(adj_off_[*id], adj_off_[*id + 1] - adj_off_[*id]);
}

std::vector<Asn> SnapshotIndex::filter(Asn as, RelView want) const {
  std::vector<Asn> out;
  const auto id = id_of(as);
  if (!id) return out;
  for (std::uint64_t i = adj_off_[*id]; i < adj_off_[*id + 1]; ++i) {
    if (static_cast<RelView>(adj_rel_[i]) == want) out.push_back(adj_nbr_[i]);
  }
  return out;
}

std::optional<std::uint32_t> SnapshotIndex::rank(Asn as) const noexcept {
  const auto id = id_of(as);
  if (!id || rank_[*id] == 0) return std::nullopt;
  return rank_[*id];
}

std::optional<Asn> SnapshotIndex::as_at_rank(std::uint32_t rank) const noexcept {
  if (rank == 0 || rank > by_rank_.size()) return std::nullopt;
  return asns_[by_rank_[rank - 1]];
}

std::vector<TopEntry> SnapshotIndex::top(std::size_t n) const {
  std::vector<TopEntry> out;
  out.reserve(std::min(n, by_rank_.size()));
  for (std::size_t r = 0; r < by_rank_.size() && r < n; ++r) {
    const std::uint32_t id = by_rank_[r];
    out.push_back({static_cast<std::uint32_t>(r + 1), asns_[id],
                   static_cast<std::size_t>(cone_off_[id + 1] - cone_off_[id]),
                   tdeg_[id]});
  }
  return out;
}

std::span<const Asn> SnapshotIndex::cone(Asn as) const noexcept {
  const auto id = id_of(as);
  if (!id) return {};
  return cone_mem_.subspan(cone_off_[*id], cone_off_[*id + 1] - cone_off_[*id]);
}

bool SnapshotIndex::in_cone(Asn as, Asn member) const noexcept {
  const auto members = cone(as);
  return std::binary_search(members.begin(), members.end(), member);
}

std::uint32_t SnapshotIndex::transit_degree(Asn as) const noexcept {
  const auto id = id_of(as);
  return id ? tdeg_[*id] : 0;
}

std::optional<std::size_t> SnapshotIndex::algorithm_slot(
    std::string_view name) const noexcept {
  for (std::size_t slot = 0; slot < algo_names_.size(); ++slot) {
    if (algo_names_[slot] == name) return slot;
  }
  return std::nullopt;
}

const std::vector<std::uint32_t>& SnapshotIndex::dense_neighbor_ids() const {
  std::call_once(nbr_ids_->once, [this] {
    auto& ids = nbr_ids_->ids;
    ids.resize(adj_nbr_.size());
    for (std::size_t i = 0; i < adj_nbr_.size(); ++i) {
      const auto id = id_of(adj_nbr_[i]);
      // kNoNeighborId only on crafted CRC-valid files (see snapshot.h); the
      // full-validation path rejects such files before this runs.
      ids[i] = id ? *id : kNoNeighborId;
    }
  });
  return nbr_ids_->ids;
}

std::span<const std::uint32_t> SnapshotIndex::neighbor_ids(std::uint32_t id) const {
  return std::span<const std::uint32_t>(dense_neighbor_ids())
      .subspan(adj_off_[id], adj_off_[id + 1] - adj_off_[id]);
}

std::span<const std::uint8_t> SnapshotIndex::relationship_codes(
    std::uint32_t id) const noexcept {
  return adj_rel_.subspan(adj_off_[id], adj_off_[id + 1] - adj_off_[id]);
}

// ------------------------------------------------------------ validation --

void SnapshotIndex::bind_heap() noexcept {
  asns_ = heap_.asns;
  adj_off_ = heap_.adj_off;
  adj_nbr_ = heap_.adj_nbr;
  adj_rel_ = heap_.adj_rel;
  cone_off_ = heap_.cone_off;
  cone_mem_ = heap_.cone_mem;
  rank_ = heap_.rank;
  tdeg_ = heap_.tdeg;
  clique_ = heap_.clique;
}

Result<void> SnapshotIndex::finalize_and_validate(Validation depth) {
  const std::size_t n = asns_.size();
  const auto fail = [](std::string what) {
    return make_error(ErrorCode::kCorrupt, std::move(what));
  };

  for (std::size_t i = 0; i < n; ++i) {
    if (!asns_[i].valid()) return fail("invalid AS0 in AS table");
    if (i > 0 && !(asns_[i - 1] < asns_[i])) {
      return fail("AS table not strictly ascending");
    }
  }
  if (adj_off_.size() != n + 1 || cone_off_.size() != n + 1) {
    return fail("offset table size does not match AS count");
  }
  if (rank_.size() != n || tdeg_.size() != n) {
    return fail("rank/degree table size does not match AS count");
  }
  if (adj_nbr_.size() != adj_rel_.size()) {
    return fail("adjacency arrays disagree in length");
  }
  if (!adj_off_.empty() && adj_off_.front() != 0) {
    return fail("adjacency offsets must start at 0");
  }
  if (!cone_off_.empty() && cone_off_.front() != 0) {
    return fail("cone offsets must start at 0");
  }
  if (n == 0) {
    if (!adj_nbr_.empty() || !cone_mem_.empty() || !clique_.empty()) {
      return fail("payload without AS table");
    }
  } else {
    if (adj_off_.back() != adj_nbr_.size()) {
      return fail("adjacency offsets do not cover array");
    }
    if (cone_off_.back() != cone_mem_.size()) {
      return fail("cone offsets do not cover array");
    }
  }
  if (adj_nbr_.size() % 2 != 0) {
    return fail("odd adjacency entry count (links are symmetric)");
  }
  link_count_ = adj_nbr_.size() / 2;

  // Offsets must be fully in-bounds before any row is dereferenced: the
  // symmetry check below binary-searches *other* rows.
  for (std::size_t id = 0; id < n; ++id) {
    if (adj_off_[id] > adj_off_[id + 1]) return fail("adjacency offsets not monotone");
    if (cone_off_[id] > cone_off_[id + 1]) return fail("cone offsets not monotone");
  }

  // The per-link and per-cone-member invariants are O(links · log n): the
  // heap path re-checks them all, the mmap path trusts the section CRCs to
  // attest the writer's output (FORMATS.md "Zero-copy mapping") — all table
  // checks above and below still run, so accessors stay memory-safe either
  // way.
  if (depth == Validation::kFull) {
    for (std::size_t id = 0; id < n; ++id) {
      for (std::uint64_t i = adj_off_[id]; i < adj_off_[id + 1]; ++i) {
        if (adj_rel_[i] > static_cast<std::uint8_t>(RelView::kSibling)) {
          return fail("unknown relationship code in adjacency");
        }
        if (adj_nbr_[i] == asns_[id]) return fail("self-link in adjacency");
        if (i > adj_off_[id] && !(adj_nbr_[i - 1] < adj_nbr_[i])) {
          return fail("adjacency row not strictly ascending");
        }
        // Symmetry: the neighbour must list us back with the inverse view.
        const auto back = relationship(adj_nbr_[i], asns_[id]);
        if (!back || *back != inverse(static_cast<RelView>(adj_rel_[i]))) {
          return fail("asymmetric adjacency entry");
        }
      }
      const std::uint64_t cone_begin = cone_off_[id];
      const std::uint64_t cone_end = cone_off_[id + 1];
      bool has_self = cone_end == cone_begin;  // empty cone = AS not covered
      for (std::uint64_t i = cone_begin; i < cone_end; ++i) {
        if (!id_of(cone_mem_[i])) return fail("cone member is not a known AS");
        if (i > cone_begin && !(cone_mem_[i - 1] < cone_mem_[i])) {
          return fail("cone row not strictly ascending");
        }
        has_self = has_self || cone_mem_[i] == asns_[id];
      }
      if (!has_self) return fail("cone does not contain its own AS");
    }
  }

  // Ranks must be unique and contiguous from 1 (0 marks unranked ASes).
  by_rank_.clear();
  std::size_t ranked = 0;
  for (std::size_t id = 0; id < n; ++id) {
    if (rank_[id] != 0) ++ranked;
  }
  by_rank_.assign(ranked, 0);
  std::vector<bool> seen(ranked, false);
  for (std::size_t id = 0; id < n; ++id) {
    const std::uint32_t r = rank_[id];
    if (r == 0) continue;
    if (r > ranked || seen[r - 1]) {
      return fail("rank values not unique and contiguous");
    }
    seen[r - 1] = true;
    by_rank_[r - 1] = static_cast<std::uint32_t>(id);
  }

  for (std::size_t i = 0; i < clique_.size(); ++i) {
    if (!id_of(clique_[i])) return fail("clique member is not a known AS");
    if (i > 0 && !(clique_[i - 1] < clique_[i])) {
      return fail("clique not strictly ascending");
    }
  }

  // Derive the dense-id mirrors: validation above guarantees every clique
  // member resolves to an id.  The neighbour-id translation is eager on the
  // heap path (behavior-identical to the historical loader) and deferred to
  // first use on the mmap path so mapping stays CRC-bound.
  clique_bits_.assign((n + 63) / 64, 0);
  for (const Asn member : clique_) {
    const std::uint32_t id = *id_of(member);
    clique_bits_[id >> 6] |= 1ULL << (id & 63);
  }
  if (depth == Validation::kFull) (void)dense_neighbor_ids();
  return {};
}

// --------------------------------------------------------------- builder --

SnapshotIndex build_snapshot(const topology::TopologyView& view,
                             const std::unordered_map<Asn, std::size_t>& transit_degrees,
                             const ConeMap& cones, std::span<const Asn> clique) {
  const topology::AsnInterner& interner = view.interner();
  SnapshotIndex index;
  SnapshotIndex::HeapStore& store = index.heap_;
  store.asns.assign(interner.asns().begin(), interner.asns().end());
  const std::size_t n = store.asns.size();

  // The view's CSR rows are id-ascending, and the interner is
  // order-preserving, so the adjacency sections are bulk copies plus one
  // id→ASN translation of the neighbour array — no re-sorting, no hashing.
  const auto adj_off = view.adjacency_offsets();
  store.adj_off.assign(adj_off.begin(), adj_off.end());
  const auto adj_nbr = view.adjacency_neighbors();
  store.adj_nbr.reserve(adj_nbr.size());
  for (const topology::NodeId id : adj_nbr) {
    store.adj_nbr.push_back(interner.asn_of(id));
  }
  const auto adj_rel = view.adjacency_rels();
  store.adj_rel.assign(adj_rel.begin(), adj_rel.end());

  store.cone_off.assign(n + 1, 0);
  store.rank.assign(n, 0);
  store.tdeg.assign(n, 0);

  for (std::size_t id = 0; id < n; ++id) {
    const Asn as = store.asns[id];
    const auto cone_it = cones.find(as);
    if (cone_it != cones.end()) {
      std::vector<Asn> members = cone_it->second;
      std::sort(members.begin(), members.end());
      members.erase(std::unique(members.begin(), members.end()), members.end());
      store.cone_mem.insert(store.cone_mem.end(), members.begin(), members.end());
    }
    store.cone_off[id + 1] = store.cone_mem.size();

    const auto deg_it = transit_degrees.find(as);
    if (deg_it != transit_degrees.end()) {
      store.tdeg[id] = static_cast<std::uint32_t>(deg_it->second);
    }
  }

  for (const auto& [as, members] : cones) {
    if (!interner.contains(as)) {
      throw SnapshotError("cone key AS" + as.str() + " is not in the graph");
    }
    (void)members;
  }

  // Freeze the ranking with the pipeline's exact order: cone size desc,
  // transit degree desc, ASN asc (core::rank_by_cone).  Only cone-covered
  // ASes are ranked; the rest keep rank 0.
  std::vector<std::uint32_t> ranked_ids;
  for (std::uint32_t id = 0; id < n; ++id) {
    if (cones.contains(store.asns[id])) ranked_ids.push_back(id);
  }
  std::sort(ranked_ids.begin(), ranked_ids.end(),
            [&store](std::uint32_t a, std::uint32_t b) {
              const auto cone_a = store.cone_off[a + 1] - store.cone_off[a];
              const auto cone_b = store.cone_off[b + 1] - store.cone_off[b];
              if (cone_a != cone_b) return cone_a > cone_b;
              if (store.tdeg[a] != store.tdeg[b]) return store.tdeg[a] > store.tdeg[b];
              return store.asns[a] < store.asns[b];
            });
  for (std::size_t r = 0; r < ranked_ids.size(); ++r) {
    store.rank[ranked_ids[r]] = static_cast<std::uint32_t>(r + 1);
  }

  store.clique.assign(clique.begin(), clique.end());
  std::sort(store.clique.begin(), store.clique.end());
  store.clique.erase(std::unique(store.clique.begin(), store.clique.end()),
                     store.clique.end());

  index.bind_heap();

  // The builder is a throwing boundary (callers hand it in-memory pipeline
  // output, not untrusted bytes), so a validation Error becomes the
  // subsystem's historical exception here.
  if (auto validated = index.finalize_and_validate(SnapshotIndex::Validation::kFull);
      !validated.ok()) {
    throw SnapshotError(validated.error().context);
  }
  return index;
}

SnapshotIndex build_snapshot(const AsGraph& graph,
                             const std::unordered_map<Asn, std::size_t>& transit_degrees,
                             const ConeMap& cones, const std::vector<Asn>& clique) {
  return build_snapshot(graph.freeze(), transit_degrees, cones, clique);
}

SnapshotIndex build_snapshot(const AsGraph& graph, const core::Degrees& degrees,
                             const ConeMap& cones, const std::vector<Asn>& clique) {
  std::unordered_map<Asn, std::size_t> transit;
  for (const Asn as : graph.ases()) transit[as] = degrees.transit_degree(as);
  return build_snapshot(graph, transit, cones, clique);
}

Result<SnapshotIndex> combine_snapshots(
    std::vector<std::pair<std::string, SnapshotIndex>> parts) {
  const auto fail = [](std::string what) {
    return make_error(ErrorCode::kInvalidArgument,
                      "combine_snapshots: " + std::move(what));
  };
  if (parts.empty()) return fail("no parts");
  if (parts.size() > kMaxAlgorithms) {
    return fail("more than " + std::to_string(kMaxAlgorithms) + " algorithms");
  }
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (!valid_algo_name(parts[i].first)) {
      return fail("invalid algorithm name '" + parts[i].first + "' (want 1-" +
                  std::to_string(kMaxAlgoNameLen) + " chars of [A-Za-z0-9._:-])");
    }
    if (parts[i].second.algorithm_count() != 1) {
      return fail("part '" + parts[i].first + "' is already multi-algorithm");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (parts[j].first == parts[i].first) {
        return fail("duplicate algorithm name '" + parts[i].first + "'");
      }
    }
  }

  // Moving an index is safe here: its spans alias heap vectors or a file
  // mapping, both of which keep their addresses across the move.
  SnapshotIndex merged = std::move(parts.front().second);
  merged.algo_names_ = {std::move(parts.front().first)};
  for (std::size_t slot = 1; slot < parts.size(); ++slot) {
    auto extra = std::make_unique<SnapshotIndex>(std::move(parts[slot].second));
    extra->algo_names_ = {parts[slot].first};
    merged.extras_.push_back(std::move(extra));
    merged.algo_names_.push_back(std::move(parts[slot].first));
  }
  return merged;
}

// -------------------------------------------------------------------- IO --

Result<void> try_write_snapshot(const SnapshotIndex& index, std::ostream& os) {
  obs::ScopedTimer timer(&io_histogram("write"));
  struct Section {
    std::uint32_t id;
    std::vector<std::uint8_t> payload;
  };
  std::vector<Section> sections;
  const auto push_slot = [&sections](const SnapshotIndex& part, std::size_t slot) {
    const auto at = [slot](SectionId id) { return slot_section_id(slot, id); };
    sections.push_back({at(SectionId::kAsns), encode_asns(part.asns_)});
    sections.push_back({at(SectionId::kAdjOffsets), encode_u64s(part.adj_off_)});
    sections.push_back({at(SectionId::kAdjNeighbors), encode_asns(part.adj_nbr_)});
    sections.push_back({at(SectionId::kAdjRels),
                        {part.adj_rel_.begin(), part.adj_rel_.end()}});
    sections.push_back({at(SectionId::kConeOffsets), encode_u64s(part.cone_off_)});
    sections.push_back({at(SectionId::kConeMembers), encode_asns(part.cone_mem_)});
    sections.push_back({at(SectionId::kRanks), encode_u32s(part.rank_)});
    sections.push_back({at(SectionId::kTransitDegrees), encode_u32s(part.tdeg_)});
    sections.push_back({at(SectionId::kClique), encode_asns(part.clique_)});
  };
  push_slot(index, 0);

  // The directory (and with it the extra slots) is only emitted when the
  // file actually deviates from the historical single-algorithm layout —
  // this keeps a plain "asrank" snapshot byte-identical to the
  // pre-multi-algorithm writer.
  if (!index.extras_.empty() || index.algo_names_.front() != "asrank") {
    std::vector<std::uint8_t> directory;
    put_u32(directory, static_cast<std::uint32_t>(index.algo_names_.size()));
    for (std::size_t slot = 0; slot < index.algo_names_.size(); ++slot) {
      const std::string& name = index.algo_names_[slot];
      put_u32(directory, static_cast<std::uint32_t>(slot));
      put_u16(directory, static_cast<std::uint16_t>(name.size()));
      directory.insert(directory.end(), name.begin(), name.end());
    }
    sections.push_back({static_cast<std::uint32_t>(SectionId::kAlgoDirectory),
                        std::move(directory)});
    for (std::size_t slot = 1; slot <= index.extras_.size(); ++slot) {
      push_slot(*index.extras_[slot - 1], slot);
    }
  }

  const std::size_t header_size =
      kHeaderPrefixSize + sections.size() * kSectionEntrySize + 4;

  // Lay out sections after the header, 8-byte aligned.
  std::vector<std::uint64_t> offsets(sections.size());
  std::uint64_t cursor = header_size;
  for (std::size_t i = 0; i < sections.size(); ++i) {
    cursor = (cursor + (kSectionAlign - 1)) & ~static_cast<std::uint64_t>(kSectionAlign - 1);
    offsets[i] = cursor;
    cursor += sections[i].payload.size();
  }
  const std::uint64_t file_size = cursor;

  std::vector<std::uint8_t> header;
  header.reserve(header_size);
  header.insert(header.end(), kMagic.begin(), kMagic.end());
  put_u16(header, kFormatVersion);
  put_u16(header, static_cast<std::uint16_t>(sections.size()));
  put_u32(header, 0);  // flags
  put_u64(header, file_size);
  for (std::size_t i = 0; i < sections.size(); ++i) {
    put_u32(header, static_cast<std::uint32_t>(sections[i].id));
    put_u32(header, 0);  // reserved
    put_u64(header, offsets[i]);
    put_u64(header, sections[i].payload.size());
    put_u32(header, util::crc32(sections[i].payload));
    put_u32(header, 0);  // pad
  }
  put_u32(header, util::crc32(header));

  std::vector<std::uint8_t> file(file_size, 0);
  std::copy(header.begin(), header.end(), file.begin());
  for (std::size_t i = 0; i < sections.size(); ++i) {
    std::copy(sections[i].payload.begin(), sections[i].payload.end(),
              file.begin() + static_cast<std::ptrdiff_t>(offsets[i]));
  }
  os.write(reinterpret_cast<const char*>(file.data()),
           static_cast<std::streamsize>(file.size()));
  if (!os) return make_error(ErrorCode::kIo, "write failed");
  obs::log_debug("snapshot written",
                 {{"bytes", file.size()}, {"sections", sections.size()}});
  return {};
}

Result<SnapshotIndex> SnapshotIndex::decode_sections(const ContainerView& container,
                                                     std::size_t slot) {
  SnapshotIndex index;
  SnapshotIndex::HeapStore& store = index.heap_;
  {
    ASRANK_TRY(bytes, container.require(slot, SectionId::kAsns));
    ASRANK_TRY(decoded, decode_asns(bytes, "AS table"));
    store.asns = std::move(decoded);
  }
  {
    ASRANK_TRY(bytes, container.require(slot, SectionId::kAdjOffsets));
    ASRANK_TRY(decoded, decode_u64s(bytes, "adjacency offsets"));
    store.adj_off = std::move(decoded);
  }
  {
    ASRANK_TRY(bytes, container.require(slot, SectionId::kAdjNeighbors));
    ASRANK_TRY(decoded, decode_asns(bytes, "adjacency neighbours"));
    store.adj_nbr = std::move(decoded);
  }
  {
    ASRANK_TRY(rels, container.require(slot, SectionId::kAdjRels));
    store.adj_rel.assign(rels.begin(), rels.end());
  }
  {
    ASRANK_TRY(bytes, container.require(slot, SectionId::kConeOffsets));
    ASRANK_TRY(decoded, decode_u64s(bytes, "cone offsets"));
    store.cone_off = std::move(decoded);
  }
  {
    ASRANK_TRY(bytes, container.require(slot, SectionId::kConeMembers));
    ASRANK_TRY(decoded, decode_asns(bytes, "cone members"));
    store.cone_mem = std::move(decoded);
  }
  {
    ASRANK_TRY(bytes, container.require(slot, SectionId::kRanks));
    ASRANK_TRY(decoded, decode_u32s(bytes, "ranks"));
    store.rank = std::move(decoded);
  }
  {
    ASRANK_TRY(bytes, container.require(slot, SectionId::kTransitDegrees));
    ASRANK_TRY(decoded, decode_u32s(bytes, "transit degrees"));
    store.tdeg = std::move(decoded);
  }
  {
    ASRANK_TRY(bytes, container.require(slot, SectionId::kClique));
    ASRANK_TRY(decoded, decode_asns(bytes, "clique"));
    store.clique = std::move(decoded);
  }

  index.bind_heap();
  ASRANK_TRY_VOID(index.finalize_and_validate(Validation::kFull));
  return index;
}

Result<void> SnapshotIndex::attach_algorithms(
    const ContainerView& container, SnapshotIndex& primary,
    const std::shared_ptr<const util::MappedFile>& mapping) {
  const auto* directory = container.find(
      static_cast<std::uint32_t>(SectionId::kAlgoDirectory));
  if (directory == nullptr) return {};  // legacy layout: {"asrank"}

  const auto fail = [](std::string what) {
    return make_error(ErrorCode::kCorrupt, "algorithm directory: " + std::move(what));
  };
  Cursor cursor(*directory, "algorithm directory");
  ASRANK_TRY(count, cursor.u32());
  if (count == 0) return fail("empty");
  if (count > kMaxAlgorithms) {
    return fail("declares " + std::to_string(count) + " algorithms (max " +
                std::to_string(kMaxAlgorithms) + ")");
  }
  std::vector<std::string> names;
  names.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ASRANK_TRY(slot, cursor.u32());
    if (slot != i) return fail("slots not ascending from 0");
    ASRANK_TRY(name_len, cursor.u16());
    ASRANK_TRY(raw, cursor.bytes(name_len));
    std::string name(raw.begin(), raw.end());
    if (!valid_algo_name(name)) {
      return fail("invalid algorithm name in slot " + std::to_string(slot));
    }
    if (std::find(names.begin(), names.end(), name) != names.end()) {
      return fail("duplicate algorithm name '" + name + "'");
    }
    names.push_back(std::move(name));
  }
  if (cursor.remaining() != 0) return fail("trailing bytes");

  for (std::size_t slot = 1; slot < names.size(); ++slot) {
    SnapshotIndex extra;
    if (mapping != nullptr) {
      ASRANK_TRY(mapped, map_sections(container, slot, mapping));
      extra = std::move(mapped);
    } else {
      ASRANK_TRY(decoded, decode_sections(container, slot));
      extra = std::move(decoded);
    }
    extra.algo_names_ = {names[slot]};
    primary.extras_.push_back(std::make_unique<SnapshotIndex>(std::move(extra)));
  }
  primary.algo_names_ = std::move(names);
  return {};
}

Result<SnapshotIndex> SnapshotIndex::decode_image(std::span<const std::uint8_t> data) {
  ASRANK_TRY(parsed, parse_container(data));
  ASRANK_TRY(index, decode_sections(parsed, 0));
  ASRANK_TRY_VOID(attach_algorithms(parsed, index, nullptr));
  return index;
}

Result<SnapshotIndex> try_read_snapshot(std::istream& is) {
  obs::ScopedTimer timer(&io_histogram("read"));
  std::vector<std::uint8_t> data{std::istreambuf_iterator<char>(is),
                                 std::istreambuf_iterator<char>()};
  ASRANK_TRY(index, SnapshotIndex::decode_image(data));
  obs::log_debug("snapshot read", {{"ases", index.as_count()},
                                   {"links", index.link_count()}});
  return index;
}

Result<SnapshotIndex> SnapshotIndex::map_sections(
    const ContainerView& container, std::size_t slot,
    std::shared_ptr<const util::MappedFile> mapping) {
  SnapshotIndex index;
  {
    ASRANK_TRY(bytes, container.require(slot, SectionId::kAsns));
    ASRANK_TRY(view, typed_view<Asn>(bytes, "AS table"));
    index.asns_ = view;
  }
  {
    ASRANK_TRY(bytes, container.require(slot, SectionId::kAdjOffsets));
    ASRANK_TRY(view, typed_view<std::uint64_t>(bytes, "adjacency offsets"));
    index.adj_off_ = view;
  }
  {
    ASRANK_TRY(bytes, container.require(slot, SectionId::kAdjNeighbors));
    ASRANK_TRY(view, typed_view<Asn>(bytes, "adjacency neighbours"));
    index.adj_nbr_ = view;
  }
  {
    ASRANK_TRY(bytes, container.require(slot, SectionId::kAdjRels));
    index.adj_rel_ = bytes;
  }
  {
    ASRANK_TRY(bytes, container.require(slot, SectionId::kConeOffsets));
    ASRANK_TRY(view, typed_view<std::uint64_t>(bytes, "cone offsets"));
    index.cone_off_ = view;
  }
  {
    ASRANK_TRY(bytes, container.require(slot, SectionId::kConeMembers));
    ASRANK_TRY(view, typed_view<Asn>(bytes, "cone members"));
    index.cone_mem_ = view;
  }
  {
    ASRANK_TRY(bytes, container.require(slot, SectionId::kRanks));
    ASRANK_TRY(view, typed_view<std::uint32_t>(bytes, "ranks"));
    index.rank_ = view;
  }
  {
    ASRANK_TRY(bytes, container.require(slot, SectionId::kTransitDegrees));
    ASRANK_TRY(view, typed_view<std::uint32_t>(bytes, "transit degrees"));
    index.tdeg_ = view;
  }
  {
    ASRANK_TRY(bytes, container.require(slot, SectionId::kClique));
    ASRANK_TRY(view, typed_view<Asn>(bytes, "clique"));
    index.clique_ = view;
  }
  index.mapping_ = std::move(mapping);
  ASRANK_TRY_VOID(index.finalize_and_validate(Validation::kMapped));
  return index;
}

Result<SnapshotIndex> SnapshotIndex::map_file(const std::string& path) {
  obs::ScopedTimer timer(&io_histogram("map"));
  ASRANK_TRY(file, util::MappedFile::open(path));

  if constexpr (std::endian::native != std::endian::little) {
    // The sections can't be reinterpreted in place on this host; decode the
    // mapped bytes into heap mirrors instead (one read of the mapping,
    // behavior-identical to the stream loader).
    return decode_image(file.bytes());
  } else {
    auto mapping = std::make_shared<const util::MappedFile>(std::move(file));
    const auto data = mapping->bytes();
    ASRANK_TRY(parsed, parse_container(data));
    ASRANK_TRY(index, map_sections(parsed, 0, mapping));
    ASRANK_TRY_VOID(attach_algorithms(parsed, index, mapping));
    mmap_loads_counter().inc();
    obs::log_debug("snapshot mapped", {{"path", path},
                                       {"bytes", data.size()},
                                       {"ases", index.as_count()},
                                       {"algorithms", index.algorithm_count()},
                                       {"links", index.link_count()}});
    return index;
  }
}

void write_snapshot(const SnapshotIndex& index, std::ostream& os) {
  if (auto written = try_write_snapshot(index, os); !written.ok()) {
    throw SnapshotError(written.error().context);
  }
}

SnapshotIndex read_snapshot(std::istream& is) {
  auto parsed = try_read_snapshot(is);
  if (!parsed.ok()) throw SnapshotError(parsed.error().context);
  return std::move(parsed).value();
}

void write_snapshot_file(const SnapshotIndex& index, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw SnapshotError("cannot open for writing: " + path);
  write_snapshot(index, out);
}

Result<SnapshotIndex> try_read_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_error(ErrorCode::kNotFound, "cannot open for reading: " + path);
  }
  return try_read_snapshot(in);
}

Result<SnapshotIndex> try_map_snapshot_file(const std::string& path) {
  return SnapshotIndex::map_file(path);
}

SnapshotIndex read_snapshot_file(const std::string& path) {
  auto parsed = try_read_snapshot_file(path);
  if (!parsed.ok()) throw SnapshotError(parsed.error().context);
  return std::move(parsed).value();
}

}  // namespace asrank::snapshot
