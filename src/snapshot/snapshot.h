// Versioned, checksummed binary snapshot of one inference run.
//
// A snapshot freezes the batch pipeline's outputs — annotated links, transit
// degrees, AS ranks, the clique, and flattened customer cones — into a
// single read-optimized artifact ("ASRK1", see format.h) that loads in one
// pass and answers lookups at interactive latency.  This is the substrate
// the serving layer (src/serve) and every future scaling direction
// (sharding, replication, multi-snapshot evolution queries) builds on.
//
// Design:
//   * CSR-style adjacency: one offsets array plus flat neighbour/relation
//     arrays, neighbours sorted per row, so a relationship lookup is a
//     binary search and neighbour-set queries are contiguous scans.
//   * Cones flattened the same way: offset+span into one sorted member
//     array; membership tests are O(log |cone|).
//   * Byte-for-byte deterministic: identical inputs produce identical files
//     (no timestamps, no pointers, fixed little-endian widths).
//   * Fail-loud: every section is CRC-checked and every structural
//     invariant re-validated on read, so corrupt or truncated files raise
//     SnapshotError instead of serving wrong answers.
//   * Zero-copy: every section is viewed through a std::span that points
//     either at heap mirrors (stream loads, the builder) or straight into
//     an mmap'd file (map_file) — the accessors cannot tell the difference,
//     and N processes mapping one snapshot share a single page-cache copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "asn/asn.h"
#include "core/degrees.h"
#include "snapshot/format.h"
#include "topology/as_graph.h"
#include "topology/serialization.h"
#include "topology/topology_view.h"
#include "util/mmap_file.h"
#include "util/result.h"

namespace asrank::snapshot {

struct ContainerView;  // snapshot.cpp: one parsed ASRK1 section table

/// One row of the frozen ranking (mirrors core::RankEntry).
struct TopEntry {
  std::uint32_t rank = 0;  ///< 1-based
  Asn as;
  std::size_t cone_size = 0;
  std::size_t transit_degree = 0;

  friend bool operator==(const TopEntry&, const TopEntry&) = default;
};

/// Sentinel in neighbor_ids() rows for a neighbour ASN that resolves to no
/// dense id.  Unreachable through files the writer produced (the id
/// translation is total there); it exists so a crafted CRC-valid file can
/// never make the lazily-derived id arrays index out of bounds.
inline constexpr std::uint32_t kNoNeighborId = 0xffffffffu;

/// Immutable read-optimized view over one frozen inference run.  All
/// accessors are const and safe to call concurrently.  Move-only: the
/// section spans alias either the index's own heap mirrors or its file
/// mapping, so a copy would dangle.
class SnapshotIndex {
 public:
  SnapshotIndex() = default;
  SnapshotIndex(const SnapshotIndex&) = delete;
  SnapshotIndex& operator=(const SnapshotIndex&) = delete;
  SnapshotIndex(SnapshotIndex&&) noexcept = default;
  SnapshotIndex& operator=(SnapshotIndex&&) noexcept = default;

  /// Zero-copy load: mmap `path` and serve every section straight from the
  /// mapping.  Container integrity is fully checked (magic, version, file
  /// size, header and per-section CRCs, bounds, alignment) plus the O(n)
  /// structural invariants (sorted AS table, offset-table shape, rank
  /// uniqueness, clique validity); the O(links)+O(cone) deep invariants are
  /// attested by the section CRCs and re-checked only on the heap path.
  /// On a big-endian host this falls back to an equivalent heap decode of
  /// the mapped bytes.
  [[nodiscard]] static Result<SnapshotIndex> map_file(const std::string& path);

  /// True when the section spans point into an mmap'd file.
  [[nodiscard]] bool mmap_backed() const noexcept { return mapping_ != nullptr; }

  [[nodiscard]] std::size_t as_count() const noexcept { return asns_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept { return link_count_; }
  [[nodiscard]] bool has_as(Asn as) const noexcept { return id_of(as).has_value(); }

  /// All ASes, sorted ascending.
  [[nodiscard]] std::span<const Asn> ases() const noexcept { return asns_; }

  /// Relationship of `neighbor` from `as`'s perspective (O(log degree)).
  [[nodiscard]] std::optional<RelView> relationship(Asn as, Asn neighbor) const noexcept;

  /// All neighbours of `as`, sorted ascending (empty span if unknown).
  [[nodiscard]] std::span<const Asn> neighbors(Asn as) const noexcept;

  [[nodiscard]] std::vector<Asn> providers(Asn as) const { return filter(as, RelView::kProvider); }
  [[nodiscard]] std::vector<Asn> customers(Asn as) const { return filter(as, RelView::kCustomer); }
  [[nodiscard]] std::vector<Asn> peers(Asn as) const { return filter(as, RelView::kPeer); }
  [[nodiscard]] std::vector<Asn> siblings(Asn as) const { return filter(as, RelView::kSibling); }

  /// 1-based rank, or nullopt for ASes the ranking did not cover.
  [[nodiscard]] std::optional<std::uint32_t> rank(Asn as) const noexcept;

  /// The AS holding 1-based rank `rank`, if any.
  [[nodiscard]] std::optional<Asn> as_at_rank(std::uint32_t rank) const noexcept;

  /// Top `n` entries in rank order.
  [[nodiscard]] std::vector<TopEntry> top(std::size_t n) const;

  /// Customer cone members (sorted ascending; empty if unknown/uncovered).
  [[nodiscard]] std::span<const Asn> cone(Asn as) const noexcept;
  [[nodiscard]] std::size_t cone_size(Asn as) const noexcept { return cone(as).size(); }

  /// O(log |cone|) membership test.
  [[nodiscard]] bool in_cone(Asn as, Asn member) const noexcept;

  [[nodiscard]] std::uint32_t transit_degree(Asn as) const noexcept;

  /// Clique members, sorted ascending.
  [[nodiscard]] std::span<const Asn> clique() const noexcept { return clique_; }

  // Flat-section accessors (the exact serialized layout): the substrate for
  // derived representations built outside this class, e.g. the serving
  // layer's core::ConeBitset.
  [[nodiscard]] std::span<const std::uint64_t> cone_offsets() const noexcept {
    return cone_off_;
  }
  [[nodiscard]] std::span<const Asn> cone_members() const noexcept { return cone_mem_; }

  // Dense-id accessors.  The node id space is the row index of the sorted AS
  // table — identical to the topology::AsnInterner id space of the view the
  // snapshot was built from.  The id-keyed adjacency and clique structures
  // are derived on load (never serialized); mmap-backed indexes defer the
  // O(links · log n) neighbour-id translation until the first caller needs
  // it, so mapping stays CRC-bound.

  /// Dense id of `as` (row in the sorted AS table), or nullopt if unknown.
  [[nodiscard]] std::optional<std::uint32_t> node_id(Asn as) const noexcept {
    return id_of(as);
  }
  /// ASN at dense id `id` (must be < as_count()).
  [[nodiscard]] Asn asn_at(std::uint32_t id) const noexcept { return asns_[id]; }
  /// Neighbor ids of `id`, ascending (≡ ascending ASN).  Derived lazily and
  /// thread-safely on first use for mmap-backed indexes.
  [[nodiscard]] std::span<const std::uint32_t> neighbor_ids(std::uint32_t id) const;
  /// RelView codes parallel to neighbor_ids(id).
  [[nodiscard]] std::span<const std::uint8_t> relationship_codes(std::uint32_t id) const noexcept;
  /// O(1) bitmap test; `id` must be < as_count().
  [[nodiscard]] bool id_in_clique(std::uint32_t id) const noexcept {
    return (clique_bits_[id >> 6] >> (id & 63)) & 1ULL;
  }

  // Multi-algorithm access.  One index can carry the full section set once
  // per inference algorithm (see format.h); slot 0 is the primary and is
  // served by this object's own accessors, so single-algorithm callers never
  // notice the machinery.  Files without a directory section load as
  // {"asrank"}.

  /// Number of algorithm section sets (>= 1).
  [[nodiscard]] std::size_t algorithm_count() const noexcept {
    return 1 + extras_.size();
  }
  /// Algorithm names in slot order; [0] names the primary.
  [[nodiscard]] std::span<const std::string> algorithm_names() const noexcept {
    return algo_names_;
  }
  /// Slot of `name`, nullopt when this snapshot does not carry it.
  [[nodiscard]] std::optional<std::size_t> algorithm_slot(
      std::string_view name) const noexcept;
  /// The index for slot `slot` (0 returns *this); `slot` must be
  /// < algorithm_count().  Extra slots are fully validated, self-contained
  /// indexes sharing this object's file mapping when mmap-backed.
  [[nodiscard]] const SnapshotIndex& algorithm_at(std::size_t slot) const noexcept {
    return slot == 0 ? *this : *extras_[slot - 1];
  }

 private:
  friend SnapshotIndex build_snapshot(const topology::TopologyView&,
                                      const std::unordered_map<Asn, std::size_t>&,
                                      const ConeMap&, std::span<const Asn>);
  friend Result<SnapshotIndex> try_read_snapshot(std::istream&);
  friend Result<void> try_write_snapshot(const SnapshotIndex&, std::ostream&);
  friend Result<SnapshotIndex> combine_snapshots(
      std::vector<std::pair<std::string, SnapshotIndex>> parts);

  /// How much of the structure finalize_and_validate() re-checks.  kFull is
  /// the heap path: every per-link and per-cone-member invariant.  kMapped
  /// trusts the section CRCs for those O(links)+O(cone) properties and only
  /// runs the O(n) table checks required for memory-safe accessors.
  enum class Validation { kFull, kMapped };

  /// Heap mirrors of the nine sections; empty when mmap-backed.
  struct HeapStore {
    std::vector<Asn> asns;
    std::vector<std::uint64_t> adj_off;
    std::vector<Asn> adj_nbr;
    std::vector<std::uint8_t> adj_rel;
    std::vector<std::uint64_t> cone_off;
    std::vector<Asn> cone_mem;
    std::vector<std::uint32_t> rank;
    std::vector<std::uint32_t> tdeg;
    std::vector<Asn> clique;
  };

  /// neighbor_ids() backing store, derived on first use (std::once_flag is
  /// immovable, so it lives behind a pointer to keep the index movable).
  struct LazyNeighborIds {
    std::once_flag once;
    std::vector<std::uint32_t> ids;
  };

  [[nodiscard]] std::optional<std::uint32_t> id_of(Asn as) const noexcept;
  [[nodiscard]] std::vector<Asn> filter(Asn as, RelView want) const;

  /// Point the section spans at the heap mirrors (after decode/build).
  void bind_heap() noexcept;

  /// The adj_nbr_ → dense-id translation, built once on demand.
  [[nodiscard]] const std::vector<std::uint32_t>& dense_neighbor_ids() const;

  /// Decode an in-memory ASRK1 image into heap mirrors + full validation
  /// (the stream loader, and map_file's big-endian fallback).
  [[nodiscard]] static Result<SnapshotIndex> decode_image(
      std::span<const std::uint8_t> data);

  /// Decode algorithm slot `slot`'s nine sections into heap mirrors + full
  /// validation.
  [[nodiscard]] static Result<SnapshotIndex> decode_sections(
      const ContainerView& container, std::size_t slot);
  /// Map algorithm slot `slot`'s nine sections in place (little-endian
  /// hosts; `mapping` keeps the spans alive) + kMapped validation.
  [[nodiscard]] static Result<SnapshotIndex> map_sections(
      const ContainerView& container, std::size_t slot,
      std::shared_ptr<const util::MappedFile> mapping);
  /// Parse the algorithm directory (if present) and load every extra slot
  /// into `primary`, heap-decoded or mapped to match the primary's backing.
  [[nodiscard]] static Result<void> attach_algorithms(
      const ContainerView& container, SnapshotIndex& primary,
      const std::shared_ptr<const util::MappedFile>& mapping);

  /// Re-derive by_rank_/link_count_/clique_bits_ and check structural
  /// invariants per `depth`; the Error names the violated invariant
  /// (ErrorCode::kCorrupt).  Shared by the builder and both load paths so
  /// corrupt-but-CRC-valid data also fails loudly.
  [[nodiscard]] Result<void> finalize_and_validate(Validation depth);

  HeapStore heap_;
  std::shared_ptr<const util::MappedFile> mapping_;  ///< keeps spans alive

  // Section views — over heap_ or mapping_; every accessor reads these.
  std::span<const Asn> asns_;                ///< sorted ascending; index = id
  std::span<const std::uint64_t> adj_off_;   ///< n+1
  std::span<const Asn> adj_nbr_;             ///< sorted ascending per row
  std::span<const std::uint8_t> adj_rel_;    ///< RelView codes, parallel to adj_nbr_
  std::span<const std::uint64_t> cone_off_;  ///< n+1
  std::span<const Asn> cone_mem_;            ///< sorted ascending per row
  std::span<const std::uint32_t> rank_;      ///< 1-based; 0 = unranked
  std::span<const std::uint32_t> tdeg_;
  std::span<const Asn> clique_;              ///< sorted ascending

  // Derived (not serialized).
  std::vector<std::uint32_t> by_rank_;     ///< by_rank_[r-1] = id with rank r
  std::vector<std::uint64_t> clique_bits_; ///< ceil(n/64) membership words
  std::size_t link_count_ = 0;
  std::unique_ptr<LazyNeighborIds> nbr_ids_ = std::make_unique<LazyNeighborIds>();

  // Multi-algorithm state.  algo_names_[0] names this index's own sections;
  // extras_[s-1] is slot s.  Extra indexes never nest further.
  std::vector<std::string> algo_names_ = {"asrank"};
  std::vector<std::unique_ptr<SnapshotIndex>> extras_;
};

/// Freeze one inference run from an already-frozen TopologyView.  The
/// view's CSR layout coincides with the ASRK1 section layout (sorted AS
/// table, id-ascending rows ≡ ASN-ascending rows, RelView codes), so the
/// adjacency sections are bulk copies plus one id→ASN translation pass.
/// `transit_degrees` may omit ASes (treated as 0); every cone key and
/// clique member must be a node of `view`, and every cone must contain its
/// own AS — violations throw SnapshotError.
[[nodiscard]] SnapshotIndex build_snapshot(
    const topology::TopologyView& view,
    const std::unordered_map<Asn, std::size_t>& transit_degrees,
    const ConeMap& cones, std::span<const Asn> clique);

/// Convenience overload that freezes `graph` first.
[[nodiscard]] SnapshotIndex build_snapshot(
    const AsGraph& graph, const std::unordered_map<Asn, std::size_t>& transit_degrees,
    const ConeMap& cones, const std::vector<Asn>& clique);

/// Convenience overload over the pipeline's Degrees ranking.
[[nodiscard]] SnapshotIndex build_snapshot(const AsGraph& graph,
                                           const core::Degrees& degrees,
                                           const ConeMap& cones,
                                           const std::vector<Asn>& clique);

/// Merge per-algorithm indexes into one multi-algorithm index: parts[0]
/// becomes the primary (slot 0, served by the merged index's own
/// accessors), the rest become extra slots in order.  Each part must be
/// single-algorithm (kInvalidArgument otherwise); names must be unique,
/// 1..64 chars of [A-Za-z0-9._:-], and at most kMaxAlgorithms parts.  The
/// slots stay fully independent — AS tables, cones, and ranks may differ
/// per algorithm.  A one-part combine with name "asrank" round-trips
/// byte-identically to the plain single-algorithm writer.
[[nodiscard]] Result<SnapshotIndex> combine_snapshots(
    std::vector<std::pair<std::string, SnapshotIndex>> parts);

/// Serialize in ASRK1 format.  Deterministic: equal indexes produce
/// byte-identical output.  Fails with ErrorCode::kIo when the stream write
/// fails; never leaves `os` half-written short of that.
[[nodiscard]] Result<void> try_write_snapshot(const SnapshotIndex& index,
                                              std::ostream& os);

/// Parse and fully validate an ASRK1 stream.  Fails (kTruncated / kCorrupt /
/// kUnsupported / kNotFound, context naming the exact defect) on bad magic,
/// unsupported version, truncation, CRC mismatch, or any structural
/// inconsistency; never returns a partially-initialized index.
[[nodiscard]] Result<SnapshotIndex> try_read_snapshot(std::istream& is);

/// Throwing boundary wrapper over try_write_snapshot: Error → SnapshotError
/// with the identical message.
void write_snapshot(const SnapshotIndex& index, std::ostream& os);

/// Throwing boundary wrapper over try_read_snapshot: Error → SnapshotError
/// with the identical message.
[[nodiscard]] SnapshotIndex read_snapshot(std::istream& is);

/// File-path conveniences (binary mode; read slurps the whole file).
void write_snapshot_file(const SnapshotIndex& index, const std::string& path);
[[nodiscard]] SnapshotIndex read_snapshot_file(const std::string& path);

/// Result-rail variant of read_snapshot_file: kNotFound when the file cannot
/// be opened, otherwise the try_read_snapshot error class.  This is the
/// hot-reload entry point — a failed load must not throw across the serving
/// layer.
[[nodiscard]] Result<SnapshotIndex> try_read_snapshot_file(const std::string& path);

/// Zero-copy counterpart of try_read_snapshot_file: SnapshotIndex::map_file
/// on the Result rail, same error classes.  The serving layer's default
/// load path.
[[nodiscard]] Result<SnapshotIndex> try_map_snapshot_file(const std::string& path);

}  // namespace asrank::snapshot
