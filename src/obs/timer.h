// RAII wall-clock timers feeding the metrics registry.
//
//   void Pipeline::vote_on_paths() {
//     obs::StageTimer timer("voting");
//     ...
//   }
//
// records one observation into asrank_stage_duration_micros{stage="voting"}
// in the global registry (plus a trace-level log line) when the scope ends.
// Timers observe and log only — they never touch the data being computed,
// so enabling observability cannot perturb inference output.
#pragma once

#include <chrono>
#include <cstdint>
#include <string_view>

#include "obs/log.h"
#include "obs/metrics.h"

namespace asrank::obs {

/// Observes elapsed microseconds into `histogram` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram) noexcept
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->observe(elapsed_micros());
  }

  [[nodiscard]] std::uint64_t elapsed_micros() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// The per-stage duration histogram in `registry` (metric
/// asrank_stage_duration_micros, one series per stage label).
[[nodiscard]] inline Histogram& stage_histogram(
    std::string_view stage, Registry& registry = Registry::global()) {
  return registry.histogram("asrank_stage_duration_micros",
                            "Wall-clock duration of one pipeline stage run",
                            kLatencyBucketsMicros,
                            {{"stage", std::string(stage)}});
}

/// Times one named pipeline stage into the global registry and emits a
/// trace-level log line on completion.  The registry lookup is one mutexed
/// map find per stage run — noise against any real stage body.
class StageTimer {
 public:
  explicit StageTimer(std::string_view stage)
      : stage_(stage), timer_(&stage_histogram(stage)) {}
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer() {
    Logger& logger = Logger::global();
    if (logger.enabled(LogLevel::kTrace)) {
      logger.log(LogLevel::kTrace, "stage complete",
                 {{"stage", stage_}, {"micros", timer_.elapsed_micros()}});
    }
  }

 private:
  std::string_view stage_;
  ScopedTimer timer_;
};

}  // namespace asrank::obs
