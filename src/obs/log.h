// Leveled structured logging: one line per event, text or JSON-lines.
//
//   obs::log_info("snapshot loaded", {{"ases", n}, {"path", path}});
//     text:  2026-08-06T12:00:00.123Z INFO snapshot loaded ases=42 path=run.asrk
//     json:  {"ts":"2026-08-06T12:00:00.123Z","level":"info",
//             "msg":"snapshot loaded","ases":42,"path":"run.asrk"}
//
// Configuration sources, later wins: defaults (info, text, stderr) →
// ASRANK_LOG / ASRANK_LOG_JSON environment → --log-level / --log-json CLI
// flags.  The enabled() check is one relaxed atomic load, so disabled-level
// call sites cost nothing beyond evaluating their field expressions; sink
// writes serialize under a mutex (whole lines, never interleaved).
//
// Logging is for humans and log pipelines; counters and latencies belong in
// obs::Registry (metrics.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

namespace asrank::obs {

enum class LogLevel : std::uint8_t { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;
/// Case-insensitive: "trace" "debug" "info" "warn" "warning" "error" "off".
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view text) noexcept;

/// One key/value pair.  Numeric and boolean values render unquoted in JSON;
/// strings are quoted and escaped.
struct LogField {
  LogField(std::string_view key, std::string_view value)
      : key(key), value(value), quoted(true) {}
  LogField(std::string_view key, const char* value)
      : key(key), value(value), quoted(true) {}
  LogField(std::string_view key, const std::string& value)
      : key(key), value(value), quoted(true) {}
  LogField(std::string_view key, bool value)
      : key(key), value(value ? "true" : "false"), quoted(false) {}
  LogField(std::string_view key, double value);
  template <typename T>
    requires std::is_integral_v<T>
  LogField(std::string_view key, T value)
      : key(key), value(std::to_string(value)), quoted(false) {}

  std::string_view key;
  std::string value;
  bool quoted;
};

class Logger {
 public:
  /// The process logger; first use applies ASRANK_LOG / ASRANK_LOG_JSON.
  [[nodiscard]] static Logger& global();

  void set_level(LogLevel level) noexcept {
    level_.store(static_cast<std::uint8_t>(level), std::memory_order_relaxed);
  }
  void set_json(bool json) noexcept { json_.store(json, std::memory_order_relaxed); }
  /// Redirect output (tests); nullptr restores stderr.
  void set_sink(std::ostream* sink);

  [[nodiscard]] LogLevel level() const noexcept {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] bool json() const noexcept {
    return json_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled(LogLevel l) const noexcept {
    return static_cast<std::uint8_t>(l) >= level_.load(std::memory_order_relaxed);
  }

  void log(LogLevel level, std::string_view msg,
           std::initializer_list<LogField> fields = {});

  /// Re-read ASRANK_LOG / ASRANK_LOG_JSON (global() does this once).
  void configure_from_env();

 private:
  Logger() = default;

  std::atomic<std::uint8_t> level_{static_cast<std::uint8_t>(LogLevel::kInfo)};
  std::atomic<bool> json_{false};
  std::mutex sink_mutex_;
  std::ostream* sink_ = nullptr;  ///< nullptr = stderr
};

inline void log_debug(std::string_view msg, std::initializer_list<LogField> fields = {}) {
  Logger& logger = Logger::global();
  if (logger.enabled(LogLevel::kDebug)) logger.log(LogLevel::kDebug, msg, fields);
}
inline void log_info(std::string_view msg, std::initializer_list<LogField> fields = {}) {
  Logger& logger = Logger::global();
  if (logger.enabled(LogLevel::kInfo)) logger.log(LogLevel::kInfo, msg, fields);
}
inline void log_warn(std::string_view msg, std::initializer_list<LogField> fields = {}) {
  Logger& logger = Logger::global();
  if (logger.enabled(LogLevel::kWarn)) logger.log(LogLevel::kWarn, msg, fields);
}
inline void log_error(std::string_view msg, std::initializer_list<LogField> fields = {}) {
  Logger& logger = Logger::global();
  if (logger.enabled(LogLevel::kError)) logger.log(LogLevel::kError, msg, fields);
}

}  // namespace asrank::obs
