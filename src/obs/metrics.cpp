#include "obs/metrics.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace asrank::obs {

// ------------------------------------------------------------- histogram --

Histogram::Histogram(std::span<const std::uint64_t> bounds)
    : bounds_(bounds.begin(), bounds.end()), buckets_(bounds.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i - 1] >= bounds_[i]) {
      throw std::logic_error("histogram bounds must be strictly ascending");
    }
  }
}

void Histogram::observe(std::uint64_t value) noexcept {
  // First bucket whose inclusive upper bound holds the value; +Inf otherwise.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

// -------------------------------------------------------------- registry --

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

namespace {

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += labels[i].first;
    out += "=\"";
    out += escape_label_value(labels[i].second);
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

Registry::Family& Registry::family_for(std::string_view name, std::string_view help,
                                       Type type) {
  const auto it = families_.find(name);
  if (it != families_.end()) {
    if (it->second.type != type) {
      throw std::logic_error("metric '" + std::string(name) +
                             "' re-registered with a different type");
    }
    return it->second;
  }
  Family family;
  family.type = type;
  family.help = std::string(help);
  return families_.emplace(std::string(name), std::move(family)).first->second;
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = family_for(name, help, Type::kCounter);
  Series& series = family.series[render_labels(labels)];
  if (!series.counter) series.counter = std::make_unique<Counter>();
  return *series.counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = family_for(name, help, Type::kGauge);
  Series& series = family.series[render_labels(labels)];
  if (!series.gauge) series.gauge = std::make_unique<Gauge>();
  return *series.gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::span<const std::uint64_t> bounds,
                               const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = family_for(name, help, Type::kHistogram);
  Series& series = family.series[render_labels(labels)];
  if (!series.histogram) series.histogram = std::make_unique<Histogram>(bounds);
  return *series.histogram;
}

std::string Registry::render_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) os << "# HELP " << name << ' ' << family.help << '\n';
    os << "# TYPE " << name << ' '
       << (family.type == Type::kCounter
               ? "counter"
               : family.type == Type::kGauge ? "gauge" : "histogram")
       << '\n';
    for (const auto& [label_str, series] : family.series) {
      switch (family.type) {
        case Type::kCounter:
          os << name << label_str << ' ' << series.counter->value() << '\n';
          break;
        case Type::kGauge:
          os << name << label_str << ' ' << series.gauge->value() << '\n';
          break;
        case Type::kHistogram: {
          const Histogram& hist = *series.histogram;
          // `le` merges into the series labels: {a="x",le="10"}.
          const std::string prefix =
              label_str.empty() ? "{le=\"" : label_str.substr(0, label_str.size() - 1) + ",le=\"";
          const auto bounds = hist.bounds();
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < bounds.size(); ++i) {
            cumulative += hist.bucket_count(i);
            os << name << "_bucket" << prefix << bounds[i] << "\"} " << cumulative
               << '\n';
          }
          os << name << "_bucket" << prefix << "+Inf\"} " << hist.count() << '\n';
          os << name << "_sum" << label_str << ' ' << hist.sum() << '\n';
          os << name << "_count" << label_str << ' ' << hist.count() << '\n';
          break;
        }
      }
    }
  }
  return os.str();
}

}  // namespace asrank::obs
