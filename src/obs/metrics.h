// Process-wide metrics: named counters, gauges, and fixed-bucket histograms
// with lock-free hot paths.
//
// Design contract (what makes this safe to wire into inference kernels):
//   * Registration is rare and takes a mutex; the returned Counter& /
//     Gauge& / Histogram& references are stable for the registry's lifetime
//     (series are heap-allocated and never moved).
//   * Observation is hot and lock-free: a counter bump is one relaxed
//     fetch_add; a histogram observe is one branchless-ish bounds scan plus
//     three relaxed fetch_adds (bucket, count, sum).  No allocation, no
//     locking, no syscalls — safe inside the cone-closure and valley-free
//     loops without perturbing results or benchmarks.
//   * Rendering (Prometheus text exposition, /metrics style) walks every
//     series under the registry mutex with relaxed loads; totals are exact
//     for quiesced writers and monotone snapshots otherwise.
//
// There is one process-global Registry (Registry::global()) used by the
// pipeline stages and asrankd; tests pass their own Registry instance for
// isolated counts.  Naming scheme (docs/OBSERVABILITY.md): library metrics
// are `asrank_*`, daemon metrics are `asrankd_*`, durations are `*_micros`,
// monotone counters end in `_total`.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace asrank::obs {

/// Monotonically increasing counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Settable signed gauge (queue depths, loaded-snapshot sizes).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram with Prometheus `le` (inclusive upper bound)
/// semantics.  Bounds are strictly ascending; an implicit +Inf bucket
/// catches the overflow.  Sum and count are exact u64 tallies, so
/// sum()/count() reproduces a plain total_micros/count average bit-for-bit.
class Histogram {
 public:
  explicit Histogram(std::span<const std::uint64_t> bounds);

  void observe(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::span<const std::uint64_t> bounds() const noexcept { return bounds_; }
  /// Non-cumulative count of bucket `i`; `i == bounds().size()` is +Inf.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Default latency bucket bounds, in microseconds: sub-microsecond lookups
/// through second-long batch stages.
inline constexpr std::uint64_t kLatencyBucketsMicros[] = {
    1,    2,    5,     10,    20,    50,     100,    200,    500,
    1000, 2000, 5000,  10000, 20000, 50000,  100000, 200000, 500000,
    1000000};

/// Label set, rendered in the given order: {{"type", "rank"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-global registry (pipeline stages, asrankd).
  [[nodiscard]] static Registry& global();

  /// Get-or-create.  Re-registration with the same name+labels returns the
  /// same series; registering a name with a different metric type throws
  /// std::logic_error (a naming bug, not a runtime condition).  `help` is
  /// kept from the first registration.
  [[nodiscard]] Counter& counter(std::string_view name, std::string_view help = {},
                                 const Labels& labels = {});
  [[nodiscard]] Gauge& gauge(std::string_view name, std::string_view help = {},
                             const Labels& labels = {});
  [[nodiscard]] Histogram& histogram(
      std::string_view name, std::string_view help = {},
      std::span<const std::uint64_t> bounds = kLatencyBucketsMicros,
      const Labels& labels = {});

  /// Prometheus text exposition format, version 0.0.4: families sorted by
  /// name, series sorted by label string — fully deterministic for a given
  /// set of registrations.
  [[nodiscard]] std::string render_prometheus() const;

 private:
  enum class Type : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Series {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Type type = Type::kCounter;
    std::string help;
    std::map<std::string, Series> series;  ///< key = rendered label string
  };

  Family& family_for(std::string_view name, std::string_view help, Type type);

  mutable std::mutex mutex_;
  std::map<std::string, Family, std::less<>> families_;
};

/// Rendered label string: `{a="x",b="y"}`, empty for no labels.  Values are
/// escaped per the exposition format (backslash, quote, newline).
[[nodiscard]] std::string render_labels(const Labels& labels);

}  // namespace asrank::obs
