#include "obs/log.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <sstream>

#include "util/strings.h"

namespace asrank::obs {

namespace {

std::string utc_timestamp() {
  const auto now = std::chrono::system_clock::now();
  const auto secs = std::chrono::time_point_cast<std::chrono::seconds>(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(now - secs);
  const std::time_t t = std::chrono::system_clock::to_time_t(secs);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[80];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min,
                tm.tm_sec, static_cast<int>(millis.count()));
  return buf;
}

void append_json_string(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Text-mode values with spaces/quotes get quoted so lines stay splittable.
void append_text_value(std::string& out, const LogField& field) {
  const bool needs_quotes =
      field.quoted && (field.value.find(' ') != std::string::npos ||
                       field.value.find('"') != std::string::npos ||
                       field.value.empty());
  if (needs_quotes) {
    append_json_string(out, field.value);
  } else {
    out += field.value;
  }
}

}  // namespace

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view text) noexcept {
  const std::string lower = util::to_lower(util::trim(text));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

LogField::LogField(std::string_view key, double value) : key(key), quoted(false) {
  std::ostringstream os;
  os << value;
  this->value = os.str();
}

Logger& Logger::global() {
  static Logger* instance = [] {
    auto* logger = new Logger();
    logger->configure_from_env();
    return logger;
  }();
  return *instance;
}

void Logger::configure_from_env() {
  if (const char* level = std::getenv("ASRANK_LOG")) {
    if (const auto parsed = parse_log_level(level)) set_level(*parsed);
  }
  if (const char* json = std::getenv("ASRANK_LOG_JSON")) {
    const std::string_view v = json;
    set_json(!v.empty() && v != "0" && v != "false");
  }
}

void Logger::set_sink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_ = sink;
}

void Logger::log(LogLevel level, std::string_view msg,
                 std::initializer_list<LogField> fields) {
  if (!enabled(level)) return;

  std::string line;
  line.reserve(96);
  const std::string ts = utc_timestamp();
  if (json()) {
    line += "{\"ts\":";
    append_json_string(line, ts);
    line += ",\"level\":";
    append_json_string(line, to_string(level));
    line += ",\"msg\":";
    append_json_string(line, msg);
    for (const LogField& field : fields) {
      line.push_back(',');
      append_json_string(line, field.key);
      line.push_back(':');
      if (field.quoted) {
        append_json_string(line, field.value);
      } else {
        line += field.value;
      }
    }
    line.push_back('}');
  } else {
    line += ts;
    line.push_back(' ');
    std::string upper(to_string(level));
    for (char& c : upper) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    line += upper;
    line.push_back(' ');
    line += msg;
    for (const LogField& field : fields) {
      line.push_back(' ');
      line += field.key;
      line.push_back('=');
      append_text_value(line, field);
    }
  }
  line.push_back('\n');

  std::lock_guard<std::mutex> lock(sink_mutex_);
  std::ostream& out = sink_ ? *sink_ : std::cerr;
  out << line;
  out.flush();
}

}  // namespace asrank::obs
