// serve::Transport — the wire-exchange layer of the asrankd client stack,
// extracted from Client so the framing / deadline / reconnect / backoff
// logic exists exactly once.  Client owns one Transport for its single
// connection; ClusterClient owns one per endpoint.
//
// A Transport is one TCP connection to one endpoint.  `try_exchange` sends a
// binary frame and reads the response frame, retrying refused/shed exchanges
// up to TransportConfig::max_retries times with capped equal-jitter backoff.
// All failures are typed asrank::Error codes: kTimeout (connect/read budget
// expired), kRefused (connection refused or server closed mid-exchange),
// kShedding (admission controller turned us away), kUnknownEpoch /
// kUnknownAlgorithm (server-reported), kProtocol (framing violation), kIo.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/rng.h"

namespace asrank::serve {

struct TransportConfig {
  int connect_timeout_ms = 5000;  ///< <= 0 = block indefinitely
  int io_timeout_ms = 5000;       ///< per-response read budget; <= 0 = block
  int max_retries = 0;            ///< extra attempts after refused/shed
  int backoff_base_ms = 50;
  int backoff_cap_ms = 2000;
  std::uint64_t backoff_seed = 0x5eed5eed5eed5eedULL;
  /// Injectable sleep (tests observe/skip the waits); default really sleeps.
  std::function<void(int)> sleep_ms;
};

/// Capped exponential backoff with equal jitter:
/// d = min(cap, base << attempt); delay = d/2 + uniform[0, d/2].
/// Deterministic for a given rng state (seeded from TransportConfig).
[[nodiscard]] int backoff_delay_ms(int attempt, int base_ms, int cap_ms,
                                   util::Rng& rng);

/// Server-reported error text -> typed code.  The server's error strings are
/// part of the wire contract (docs/SERVING.md), so prefix-matching here is a
/// protocol decode, not a heuristic.
[[nodiscard]] ErrorCode classify_server_error(std::string_view text) noexcept;

class Transport {
 public:
  /// Lazy transport: remembers the endpoint, connects on first exchange.
  Transport(std::string host, std::uint16_t port, TransportConfig config = {});

  /// Eager connect with the config's deadline.  kRefused when the server
  /// refuses, kTimeout when the deadline expires.
  [[nodiscard]] static Result<Transport> dial(const std::string& host,
                                              std::uint16_t port,
                                              TransportConfig config = {});

  ~Transport();

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;
  Transport(Transport&& other) noexcept;
  Transport& operator=(Transport&& other) noexcept;

  /// One request/response exchange with refused/shed retry + backoff.
  [[nodiscard]] Result<std::vector<std::uint8_t>> try_exchange(
      const std::vector<std::uint8_t>& request);
  /// The exchange body for a single attempt (no retry).
  [[nodiscard]] Result<std::vector<std::uint8_t>> exchange_once(
      const std::vector<std::uint8_t>& request);
  /// (Re)connect if not connected.
  [[nodiscard]] Result<void> ensure_connected();
  void disconnect() noexcept;

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const std::string& host() const noexcept { return host_; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// "host:port", for logs, metrics labels, and error context.
  [[nodiscard]] std::string endpoint() const {
    return host_ + ":" + std::to_string(port_);
  }
  [[nodiscard]] const TransportConfig& config() const noexcept { return config_; }

 private:
  void sleep_for(int ms);

  std::string host_;
  std::uint16_t port_ = 0;
  TransportConfig config_;
  util::Rng backoff_rng_;
  int fd_ = -1;
};

}  // namespace asrank::serve
