#include "serve/transport.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "serve/protocol.h"

namespace asrank::serve {

int backoff_delay_ms(int attempt, int base_ms, int cap_ms, util::Rng& rng) {
  base_ms = std::max(1, base_ms);
  cap_ms = std::max(base_ms, cap_ms);
  const int shift = std::min(attempt, 20);
  const std::int64_t exp = static_cast<std::int64_t>(base_ms) << shift;
  const auto d = static_cast<int>(std::min<std::int64_t>(exp, cap_ms));
  // Equal jitter: half deterministic, half uniform — retries from many
  // clients decorrelate without ever collapsing to zero delay.
  return d / 2 + static_cast<int>(rng.uniform(static_cast<std::uint64_t>(d / 2) + 1));
}

ErrorCode classify_server_error(std::string_view text) noexcept {
  if (text.starts_with("unknown epoch")) return ErrorCode::kUnknownEpoch;
  if (text.starts_with("unknown algorithm")) return ErrorCode::kUnknownAlgorithm;
  return ErrorCode::kProtocol;
}

// ----------------------------------------------------------- lifecycle --

Transport::Transport(std::string host, std::uint16_t port,
                     TransportConfig config)
    : host_(std::move(host)), port_(port), config_(std::move(config)) {
  backoff_rng_.reseed(config_.backoff_seed);
}

Result<Transport> Transport::dial(const std::string& host, std::uint16_t port,
                                  TransportConfig config) {
  Transport transport(host, port, std::move(config));
  ASRANK_TRY_VOID(transport.ensure_connected());
  return transport;
}

Transport::~Transport() { disconnect(); }

Transport::Transport(Transport&& other) noexcept
    : host_(std::move(other.host_)),
      port_(other.port_),
      config_(std::move(other.config_)),
      backoff_rng_(other.backoff_rng_),
      fd_(std::exchange(other.fd_, -1)) {}

Transport& Transport::operator=(Transport&& other) noexcept {
  if (this != &other) {
    disconnect();
    host_ = std::move(other.host_);
    port_ = other.port_;
    config_ = std::move(other.config_);
    backoff_rng_ = other.backoff_rng_;
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Transport::disconnect() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void Transport::sleep_for(int ms) {
  if (ms <= 0) return;
  if (config_.sleep_ms) {
    config_.sleep_ms(ms);
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
}

Result<void> Transport::ensure_connected() {
  if (fd_ >= 0) return {};

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return make_error(ErrorCode::kIo,
                      std::string("socket: ") + std::strerror(errno));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return make_error(ErrorCode::kInvalidArgument, "bad server address: " + host_);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  // Deadline-aware connect: non-blocking connect, poll for writability,
  // then read SO_ERROR for the real outcome.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (config_.connect_timeout_ms > 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  const auto fail = [&](ErrorCode code, const std::string& what) -> Result<void> {
    ::close(fd);
    return make_error(code, "connect " + host_ + ":" + std::to_string(port_) +
                                ": " + what);
  };

  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno == EINPROGRESS && config_.connect_timeout_ms > 0) {
      pollfd pfd{fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, config_.connect_timeout_ms);
      if (ready == 0) return fail(ErrorCode::kTimeout, "timed out");
      if (ready < 0) return fail(ErrorCode::kIo, std::strerror(errno));
      int soerr = 0;
      socklen_t len = sizeof soerr;
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
      if (soerr != 0) {
        return fail(soerr == ECONNREFUSED ? ErrorCode::kRefused : ErrorCode::kIo,
                    std::strerror(soerr));
      }
    } else {
      return fail(errno == ECONNREFUSED ? ErrorCode::kRefused : ErrorCode::kIo,
                  std::strerror(errno));
    }
  }
  if (config_.connect_timeout_ms > 0) ::fcntl(fd, F_SETFL, flags);
  fd_ = fd;
  return {};
}

// ------------------------------------------------------------ exchange --

Result<std::vector<std::uint8_t>> Transport::exchange_once(
    const std::vector<std::uint8_t>& req) {
  ASRANK_TRY_VOID(ensure_connected());
  const int deadline = config_.io_timeout_ms > 0 ? config_.io_timeout_ms : -1;
  try {
    write_frame(fd_, req);
    std::uint8_t marker = 0;
    if (!read_exact(fd_, &marker, 1, deadline)) {
      // The server closing right after our write is how a pre-shed or
      // mid-shutdown connection looks; surface as refused so retry logic
      // reconnects.
      disconnect();
      return make_error(ErrorCode::kRefused, "server closed connection");
    }
    if (marker != kBinaryMarker) {
      // A text line in binary mode is the admission controller's shed
      // notice ("ERR shedding: ...\n"); anything else is a framing bug.
      std::string line(1, static_cast<char>(marker));
      char c = 0;
      while (line.size() < 256 && read_exact(fd_, &c, 1, deadline) && c != '\n') {
        line.push_back(c);
      }
      disconnect();
      if (line.starts_with("ERR shedding")) {
        return make_error(ErrorCode::kShedding, line);
      }
      return make_error(ErrorCode::kProtocol, "unexpected response framing");
    }
    auto payload = read_frame_body(fd_, deadline);
    WireReader reader(payload);
    ASRANK_TRY(status_byte, reader.u8());
    if (static_cast<Status>(status_byte) != Status::kOk) {
      const auto text = reader.rest_as_text();
      return make_error(classify_server_error(text), "server error: " + text);
    }
    // Strip the status byte so callers decode the body only.
    return std::vector<std::uint8_t>(payload.begin() + 1, payload.end());
  } catch (const TimeoutError& error) {
    disconnect();
    return make_error(ErrorCode::kTimeout, error.what());
  } catch (const ProtocolError& error) {
    disconnect();
    return make_error(ErrorCode::kIo, error.what());
  }
}

Result<std::vector<std::uint8_t>> Transport::try_exchange(
    const std::vector<std::uint8_t>& req) {
  int attempt = 0;
  while (true) {
    auto response = exchange_once(req);
    if (response.ok()) return response;
    const auto code = response.error().code;
    const bool retryable =
        code == ErrorCode::kRefused || code == ErrorCode::kShedding;
    if (!retryable || attempt >= config_.max_retries) return response;
    sleep_for(backoff_delay_ms(attempt, config_.backoff_base_ms,
                               config_.backoff_cap_ms, backoff_rng_));
    ++attempt;
  }
}

}  // namespace asrank::serve
