#include "serve/cluster_map.h"

#include <algorithm>
#include <numeric>

#include "util/hash.h"
#include "util/strings.h"

namespace asrank::serve {

Result<ClusterMap> ClusterMap::make(std::vector<ClusterEndpoint> endpoints,
                                    ClusterMapConfig config) {
  if (endpoints.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "cluster map needs at least one endpoint");
  }
  if (config.slots == 0) {
    return make_error(ErrorCode::kInvalidArgument, "cluster map needs at least one slot");
  }
  if (config.replication == 0) {
    return make_error(ErrorCode::kInvalidArgument, "cluster replication must be >= 1");
  }
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    for (std::size_t j = i + 1; j < endpoints.size(); ++j) {
      if (endpoints[i] == endpoints[j]) {
        return make_error(ErrorCode::kInvalidArgument,
                          "duplicate cluster endpoint " + endpoints[i].label());
      }
    }
  }

  ClusterMap map;
  map.endpoints_ = std::move(endpoints);
  map.config_ = config;
  map.replication_ = std::min(config.replication, map.endpoints_.size());

  // Rendezvous: rank every endpoint by mix64(slot, label) per slot and keep
  // the top `replication_` as that slot's ordered replica list.
  std::vector<std::uint64_t> label_hashes;
  label_hashes.reserve(map.endpoints_.size());
  for (const auto& endpoint : map.endpoints_) {
    label_hashes.push_back(util::fnv1a_64(endpoint.label()));
  }
  map.replica_table_.resize(map.config_.slots * map.replication_);
  std::vector<std::size_t> order(map.endpoints_.size());
  for (std::size_t slot = 0; slot < map.config_.slots; ++slot) {
    std::iota(order.begin(), order.end(), 0);
    const std::uint64_t slot_hash = util::splitmix64(slot);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return util::mix64(slot_hash, label_hashes[a]) >
                              util::mix64(slot_hash, label_hashes[b]);
                     });
    for (std::size_t r = 0; r < map.replication_; ++r) {
      map.replica_table_[slot * map.replication_ + r] = order[r];
    }
  }
  return map;
}

Result<ClusterMap> ClusterMap::parse(std::string_view spec,
                                     ClusterMapConfig config) {
  std::vector<ClusterEndpoint> endpoints;
  for (const auto token : util::split(spec, ',')) {
    const auto entry = util::trim(token);
    if (entry.empty()) continue;
    const auto colon = entry.rfind(':');
    if (colon == std::string_view::npos || colon == 0) {
      return make_error(ErrorCode::kInvalidArgument,
                        "bad cluster endpoint '" + std::string(entry) +
                            "' (want host:port)");
    }
    const auto port = util::parse_unsigned<std::uint16_t>(entry.substr(colon + 1));
    if (!port || *port == 0) {
      return make_error(ErrorCode::kInvalidArgument,
                        "bad cluster endpoint port in '" + std::string(entry) + "'");
    }
    endpoints.push_back({std::string(entry.substr(0, colon)), *port});
  }
  if (endpoints.empty()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "empty cluster endpoint list '" + std::string(spec) + "'");
  }
  return make(std::move(endpoints), config);
}

std::size_t ClusterMap::slot_of(Asn as) const noexcept {
  return static_cast<std::size_t>(util::splitmix64(as.value()) % config_.slots);
}

std::span<const std::size_t> ClusterMap::replicas(std::size_t slot) const {
  return {replica_table_.data() + slot * replication_, replication_};
}

}  // namespace asrank::serve
