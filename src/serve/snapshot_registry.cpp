#include "serve/snapshot_registry.h"

#include <algorithm>
#include <chrono>

#include "algo/registry.h"
#include "obs/log.h"

namespace asrank::serve {

namespace {

[[nodiscard]] bool label_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == ':' || c == '-';
}

}  // namespace

SnapshotRegistry::SnapshotRegistry(SnapshotRegistryConfig config,
                                   obs::Registry* registry)
    : config_(config),
      registry_(registry),
      gen_(std::make_shared<const Generation>()),
      reloads_total_(&registry->counter(
          "asrankd_reloads_total",
          "Successful snapshot (re)loads beyond the initial install")),
      reload_failures_total_(&registry->counter(
          "asrankd_reload_failures_total",
          "Snapshot loads rejected (unreadable, corrupt, bad label)")),
      reload_duration_(&registry->histogram(
          "asrankd_reload_duration_micros",
          "Wall time of snapshot load + install")),
      epochs_loaded_(&registry->gauge("asrankd_epochs_loaded",
                                      "Resident snapshot epochs")),
      generations_retired_total_(&registry->counter(
          "asrankd_snapshot_generations_retired_total",
          "Snapshot generations handed to epoch-based reclamation")),
      generations_reclaimed_total_(&registry->counter(
          "asrankd_snapshot_generations_reclaimed_total",
          "Retired snapshot generations freed after reader quiesce")),
      ebr_pending_(&registry->gauge(
          "asrankd_ebr_pending_reclaims",
          "Retired snapshot generations awaiting reader quiesce")) {
  config_.retention = std::max<std::size_t>(1, config_.retention);
  gen_raw_.store(generation().get(), std::memory_order_release);
}

QueryEngine* SnapshotRegistry::ReadView::epoch(std::string_view label) const noexcept {
  const auto* entry = find_epoch(label);
  return entry == nullptr ? nullptr : entry->engine.get();
}

const SnapshotRegistry::Entry* SnapshotRegistry::ReadView::find_epoch(
    std::string_view label) const noexcept {
  for (const auto& entry : gen_->entries) {
    if (entry->label == label) {
      entry->last_used.store(
          registry_->use_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      return entry.get();
    }
  }
  return nullptr;
}

std::vector<std::string> SnapshotRegistry::ReadView::epochs() const {
  std::vector<std::string> out;
  out.reserve(gen_->entries.size());
  for (const auto& entry : gen_->entries) out.push_back(entry->label);
  return out;
}

void SnapshotRegistry::reclaim_pass() noexcept {
  if (ebr_.pending() == 0) return;
  const std::size_t freed = ebr_.try_advance();
  if (freed != 0) generations_reclaimed_total_->inc(freed);
  ebr_pending_->set(static_cast<std::int64_t>(ebr_.pending()));
}

bool SnapshotRegistry::valid_label(std::string_view label) noexcept {
  if (label.empty() || label.size() > 64) return false;
  return std::all_of(label.begin(), label.end(), label_char);
}

Result<std::string> SnapshotRegistry::derive_label(const std::string& path) {
  const auto slash = path.find_last_of('/');
  std::string stem = slash == std::string::npos ? path : path.substr(slash + 1);
  const auto dot = stem.find_last_of('.');
  if (dot != std::string::npos && dot > 0) stem.resize(dot);
  if (!valid_label(stem)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "cannot derive epoch label from path '" + path + "'");
  }
  return stem;
}

std::shared_ptr<QueryEngine> SnapshotRegistry::current() const noexcept {
  const auto gen = generation();
  if (gen->entries.empty()) return nullptr;
  return gen->entries.front()->engine;
}

std::string SnapshotRegistry::current_label() const {
  const auto gen = generation();
  if (gen->entries.empty()) return {};
  return gen->entries.front()->label;
}

std::shared_ptr<QueryEngine> SnapshotRegistry::epoch(std::string_view label) const {
  const auto gen = generation();
  for (const auto& entry : gen->entries) {
    if (entry->label == label) {
      entry->last_used.store(use_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                             std::memory_order_relaxed);
      return entry->engine;
    }
  }
  return nullptr;
}

std::vector<std::string> SnapshotRegistry::epochs() const {
  const auto gen = generation();
  std::vector<std::string> out;
  out.reserve(gen->entries.size());
  for (const auto& entry : gen->entries) out.push_back(entry->label);
  return out;
}

std::size_t SnapshotRegistry::epoch_count() const noexcept {
  return generation()->entries.size();
}

Result<std::shared_ptr<QueryEngine>> SnapshotRegistry::install(
    const std::string& label, snapshot::SnapshotIndex index) {
  return install_impl(label, std::move(index), /*dedupe=*/false, nullptr);
}

Result<std::shared_ptr<QueryEngine>> SnapshotRegistry::install_impl(
    const std::string& label, snapshot::SnapshotIndex index, bool dedupe,
    std::string* final_label) {
  if (!valid_label(label)) {
    reload_failures_total_->inc();
    return make_error(ErrorCode::kInvalidArgument,
                      "invalid epoch label '" + label +
                          "' (want 1-64 chars of [A-Za-z0-9._:-])");
  }

  // An epoch label that is also an algorithm name would make the text rail's
  // `@<selector>` prefix ambiguous: the first @ token resolves as an epoch
  // label first and only falls back to an algorithm name (docs/SERVING.md),
  // so installing such an epoch silently shadows the algorithm.  Reject the
  // collision at install/RELOAD time instead.
  const auto collision = [&]() -> std::string {
    if (algo::resolve(label).ok()) return "a registered algorithm name";
    for (const auto& name : index.algorithm_names()) {
      if (label == name) return "an algorithm section of the snapshot";
    }
    for (const auto& entry : generation()->entries) {
      for (const auto& name : entry->algo_names) {
        if (label == name) {
          return "an algorithm section of resident epoch '" + entry->label + "'";
        }
      }
    }
    return {};
  }();
  if (!collision.empty()) {
    reload_failures_total_->inc();
    return make_error(ErrorCode::kInvalidArgument,
                      "ambiguous epoch label '" + label + "': collides with " +
                          collision +
                          " (@<selector> tries epoch labels before algorithms)");
  }

  auto shared_index =
      std::make_shared<const snapshot::SnapshotIndex>(std::move(index));
  auto engine = std::make_shared<QueryEngine>(
      shared_index, config_.cache_capacity, registry_, config_.cone_bitset);
  const std::size_t as_count = engine->index().as_count();
  // One engine per algorithm section; slot 0 reuses the primary engine so
  // @algo-qualified queries for the primary share its caches and counters.
  std::vector<std::shared_ptr<QueryEngine>> engines;
  engines.push_back(engine);
  for (std::size_t slot = 1; slot < shared_index->algorithm_count(); ++slot) {
    engines.push_back(std::make_shared<QueryEngine>(
        shared_index, config_.cache_capacity, registry_, config_.cone_bitset,
        slot));
  }

  std::lock_guard<std::mutex> lock(reload_mutex_);
  const auto old_gen = generation();
  const bool first_install = old_gen->entries.empty();

  std::string effective = label;
  if (dedupe) {
    const auto taken = [&](const std::string& candidate) {
      return std::any_of(old_gen->entries.begin(), old_gen->entries.end(),
                         [&](const auto& e) { return e->label == candidate; });
    };
    for (std::uint64_t n = 2; taken(effective); ++n) {
      const std::string suffix = "-" + std::to_string(n);
      std::string base = label;
      if (base.size() + suffix.size() > 64) base.resize(64 - suffix.size());
      effective = base + suffix;
    }
  }
  if (final_label != nullptr) *final_label = effective;

  auto entry = std::make_shared<Entry>(effective, engine);
  entry->engines = std::move(engines);
  const auto names = shared_index->algorithm_names();
  entry->algo_names.assign(names.begin(), names.end());
  entry->last_used.store(use_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
  const std::size_t algo_count = entry->algo_names.size();

  // Copy-on-write: new entry first, prior entries (minus any same-label one)
  // after, then evict the least-recently-used tail past the retention bound.
  auto next = std::make_shared<Generation>();
  next->entries.push_back(std::move(entry));
  for (const auto& old : old_gen->entries) {
    if (old->label != effective) next->entries.push_back(old);
  }
  std::vector<std::string> evicted;
  while (next->entries.size() > config_.retention) {
    auto victim = next->entries.begin() + 1;  // never evict the current epoch
    for (auto it = victim + 1; it != next->entries.end(); ++it) {
      if ((*it)->last_used.load(std::memory_order_relaxed) <
          (*victim)->last_used.load(std::memory_order_relaxed)) {
        victim = it;
      }
    }
    evicted.push_back((*victim)->label);
    next->entries.erase(victim);
  }

  std::shared_ptr<const Generation> published(std::move(next));
  const Generation* published_raw = published.get();
  gen_.store(std::move(published), std::memory_order_release);
  gen_raw_.store(published_raw, std::memory_order_release);
  // The replaced generation may still be visible to EBR-guarded readers that
  // loaded gen_raw_ before the store above; park its ownership in the
  // reclamation domain instead of dropping it here.
  ebr_.retire([keep = old_gen]() mutable { keep.reset(); });
  generations_retired_total_->inc();
  ebr_pending_->set(static_cast<std::int64_t>(ebr_.pending()));
  reclaim_pass();

  if (!first_install) reloads_total_->inc();
  epochs_loaded_->set(static_cast<std::int64_t>(generation()->entries.size()));
  registry_->gauge("asrankd_epoch_ases", "ASes in a resident epoch",
                   {{"epoch", effective}})
      .set(static_cast<std::int64_t>(as_count));
  for (const auto& gone : evicted) {
    registry_->gauge("asrankd_epoch_ases", "ASes in a resident epoch",
                     {{"epoch", gone}})
        .set(0);
  }

  obs::log_info("snapshot epoch installed",
                {{"epoch", effective},
                 {"ases", as_count},
                 {"algorithms", algo_count},
                 {"resident", generation()->entries.size()},
                 {"evicted", evicted.size()}});
  return engine;
}

Result<SnapshotRegistry::InstalledEpoch> SnapshotRegistry::load_file(
    const std::string& path, const std::string& label) {
  const auto start = std::chrono::steady_clock::now();

  std::string requested = label;
  const bool derived_label = requested.empty();
  if (derived_label) {
    auto derived = derive_label(path);
    if (!derived.ok()) {
      reload_failures_total_->inc();
      obs::log_warn("snapshot reload rejected",
                    {{"path", path}, {"error", derived.error().context}});
      return derived.take_error();
    }
    requested = std::move(derived).value();
  }

  auto index = config_.mmap_load ? snapshot::try_map_snapshot_file(path)
                                 : snapshot::try_read_snapshot_file(path);
  if (!index.ok()) {
    reload_failures_total_->inc();
    obs::log_warn("snapshot reload rejected",
                  {{"path", path},
                   {"epoch", requested},
                   {"error", index.error().context}});
    return index.take_error();
  }

  // Derived (filename-stem) labels de-duplicate instead of replacing: the
  // operator never typed the colliding name.  Explicit labels replace.
  std::string installed_as;
  auto installed = install_impl(requested, std::move(index).value(), derived_label,
                                &installed_as);
  if (!installed.ok()) return installed.take_error();
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  reload_duration_->observe(static_cast<std::uint64_t>(micros));
  return InstalledEpoch{std::move(installed_as), std::move(installed).value()};
}

}  // namespace asrank::serve
