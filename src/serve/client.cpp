#include "serve/client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "serve/protocol.h"

namespace asrank::serve {

namespace {

WireWriter request(Op op) {
  WireWriter writer;
  writer.u8(static_cast<std::uint8_t>(op));
  return writer;
}

/// Wrap a payload in WITH_EPOCH when an epoch is named.
std::vector<std::uint8_t> with_epoch(std::string_view epoch, WireWriter inner) {
  if (epoch.empty()) return inner.take();
  WireWriter outer;
  outer.u8(static_cast<std::uint8_t>(Op::kWithEpoch));
  outer.str16(epoch);
  outer.bytes(inner.payload());
  return outer.take();
}

Result<std::vector<Asn>> read_list(WireReader& reader) {
  ASRANK_TRY(count, reader.u32());
  std::vector<Asn> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ASRANK_TRY(asn, reader.u32());
    out.emplace_back(asn);
  }
  return out;
}

/// Server-reported error text -> typed code.  The server's error strings are
/// part of the wire contract (docs/SERVING.md), so prefix-matching here is a
/// protocol decode, not a heuristic.
[[nodiscard]] ErrorCode classify_server_error(std::string_view text) noexcept {
  if (text.starts_with("unknown epoch")) return ErrorCode::kUnknownEpoch;
  if (text.starts_with("unknown algorithm")) return ErrorCode::kUnknownAlgorithm;
  return ErrorCode::kProtocol;
}

}  // namespace

int backoff_delay_ms(int attempt, int base_ms, int cap_ms, util::Rng& rng) {
  base_ms = std::max(1, base_ms);
  cap_ms = std::max(base_ms, cap_ms);
  const int shift = std::min(attempt, 20);
  const std::int64_t exp = static_cast<std::int64_t>(base_ms) << shift;
  const auto d = static_cast<int>(std::min<std::int64_t>(exp, cap_ms));
  // Equal jitter: half deterministic, half uniform — retries from many
  // clients decorrelate without ever collapsing to zero delay.
  return d / 2 + static_cast<int>(rng.uniform(static_cast<std::uint64_t>(d / 2) + 1));
}

// ----------------------------------------------------------- lifecycle --

Result<Client> Client::dial(const std::string& host, std::uint16_t port,
                            ClientConfig config) {
  Client client;
  client.host_ = host;
  client.port_ = port;
  client.config_ = std::move(config);
  client.backoff_rng_.reseed(client.config_.backoff_seed);
  ASRANK_TRY_VOID(client.ensure_connected());
  return client;
}

Client::~Client() { disconnect(); }

Client::Client(Client&& other) noexcept
    : host_(std::move(other.host_)),
      port_(other.port_),
      config_(std::move(other.config_)),
      backoff_rng_(other.backoff_rng_),
      fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    disconnect();
    host_ = std::move(other.host_);
    port_ = other.port_;
    config_ = std::move(other.config_);
    backoff_rng_ = other.backoff_rng_;
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Client::disconnect() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void Client::sleep_for(int ms) {
  if (ms <= 0) return;
  if (config_.sleep_ms) {
    config_.sleep_ms(ms);
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
}

Result<void> Client::ensure_connected() {
  if (fd_ >= 0) return {};

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return make_error(ErrorCode::kIo,
                      std::string("socket: ") + std::strerror(errno));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return make_error(ErrorCode::kInvalidArgument, "bad server address: " + host_);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  // Deadline-aware connect: non-blocking connect, poll for writability,
  // then read SO_ERROR for the real outcome.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (config_.connect_timeout_ms > 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  const auto fail = [&](ErrorCode code, const std::string& what) -> Result<void> {
    ::close(fd);
    return make_error(code, "connect " + host_ + ":" + std::to_string(port_) +
                                ": " + what);
  };

  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno == EINPROGRESS && config_.connect_timeout_ms > 0) {
      pollfd pfd{fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, config_.connect_timeout_ms);
      if (ready == 0) return fail(ErrorCode::kTimeout, "timed out");
      if (ready < 0) return fail(ErrorCode::kIo, std::strerror(errno));
      int soerr = 0;
      socklen_t len = sizeof soerr;
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
      if (soerr != 0) {
        return fail(soerr == ECONNREFUSED ? ErrorCode::kRefused : ErrorCode::kIo,
                    std::strerror(soerr));
      }
    } else {
      return fail(errno == ECONNREFUSED ? ErrorCode::kRefused : ErrorCode::kIo,
                  std::strerror(errno));
    }
  }
  if (config_.connect_timeout_ms > 0) ::fcntl(fd, F_SETFL, flags);
  fd_ = fd;
  return {};
}

std::vector<std::uint8_t> Client::scoped(std::string_view epoch,
                                         std::vector<std::uint8_t> inner) const {
  if (!algorithm_.empty()) {
    WireWriter algo;
    algo.u8(static_cast<std::uint8_t>(Op::kWithAlgo));
    algo.str16(algorithm_);
    algo.bytes(inner);
    inner = algo.take();
  }
  if (epoch.empty()) return inner;
  WireWriter outer;
  outer.u8(static_cast<std::uint8_t>(Op::kWithEpoch));
  outer.str16(epoch);
  outer.bytes(inner);
  return outer.take();
}

// ------------------------------------------------------------ exchange --

Result<std::vector<std::uint8_t>> Client::exchange_once(
    const std::vector<std::uint8_t>& req) {
  ASRANK_TRY_VOID(ensure_connected());
  const int deadline = config_.io_timeout_ms > 0 ? config_.io_timeout_ms : -1;
  try {
    write_frame(fd_, req);
    std::uint8_t marker = 0;
    if (!read_exact(fd_, &marker, 1, deadline)) {
      // The server closing right after our write is how a pre-shed or
      // mid-shutdown connection looks; surface as refused so retry logic
      // reconnects.
      disconnect();
      return make_error(ErrorCode::kRefused, "server closed connection");
    }
    if (marker != kBinaryMarker) {
      // A text line in binary mode is the admission controller's shed
      // notice ("ERR shedding: ...\n"); anything else is a framing bug.
      std::string line(1, static_cast<char>(marker));
      char c = 0;
      while (line.size() < 256 && read_exact(fd_, &c, 1, deadline) && c != '\n') {
        line.push_back(c);
      }
      disconnect();
      if (line.starts_with("ERR shedding")) {
        return make_error(ErrorCode::kShedding, line);
      }
      return make_error(ErrorCode::kProtocol, "unexpected response framing");
    }
    auto payload = read_frame_body(fd_, deadline);
    WireReader reader(payload);
    ASRANK_TRY(status_byte, reader.u8());
    if (static_cast<Status>(status_byte) != Status::kOk) {
      const auto text = reader.rest_as_text();
      return make_error(classify_server_error(text), "server error: " + text);
    }
    // Strip the status byte so callers decode the body only.
    return std::vector<std::uint8_t>(payload.begin() + 1, payload.end());
  } catch (const TimeoutError& error) {
    disconnect();
    return make_error(ErrorCode::kTimeout, error.what());
  } catch (const ProtocolError& error) {
    disconnect();
    return make_error(ErrorCode::kIo, error.what());
  }
}

Result<std::vector<std::uint8_t>> Client::try_exchange(
    const std::vector<std::uint8_t>& req) {
  int attempt = 0;
  while (true) {
    auto response = exchange_once(req);
    if (response.ok()) return response;
    const auto code = response.error().code;
    const bool retryable =
        code == ErrorCode::kRefused || code == ErrorCode::kShedding;
    if (!retryable || attempt >= config_.max_retries) return response;
    sleep_for(backoff_delay_ms(attempt, config_.backoff_base_ms,
                               config_.backoff_cap_ms, backoff_rng_));
    ++attempt;
  }
}

// ------------------------------------------------------ Result surface --

Result<std::optional<RelView>> Client::try_relationship(Asn a, Asn b,
                                                        std::string_view epoch) {
  auto req = request(Op::kRelationship);
  req.u32(a.value());
  req.u32(b.value());
  ASRANK_TRY(body, try_exchange(scoped(epoch, req.take())));
  WireReader reader(body);
  ASRANK_TRY(code, reader.u8());
  if (code == kRelNone) return std::optional<RelView>{};
  const auto view = rel_from_code(code);
  if (!view) {
    return make_error(ErrorCode::kProtocol, "bad relationship code in response");
  }
  return std::optional<RelView>{*view};
}

Result<std::optional<std::uint32_t>> Client::try_rank(Asn as,
                                                      std::string_view epoch) {
  auto req = request(Op::kRank);
  req.u32(as.value());
  ASRANK_TRY(body, try_exchange(scoped(epoch, req.take())));
  WireReader reader(body);
  ASRANK_TRY(rank, reader.u32());
  if (rank == 0) return std::optional<std::uint32_t>{};
  return std::optional<std::uint32_t>{rank};
}

Result<std::uint64_t> Client::try_cone_size(Asn as, std::string_view epoch) {
  auto req = request(Op::kConeSize);
  req.u32(as.value());
  ASRANK_TRY(body, try_exchange(scoped(epoch, req.take())));
  WireReader reader(body);
  return reader.u64();
}

Result<std::vector<Asn>> Client::try_cone(Asn as, std::string_view epoch) {
  auto req = request(Op::kCone);
  req.u32(as.value());
  ASRANK_TRY(body, try_exchange(scoped(epoch, req.take())));
  WireReader reader(body);
  return read_list(reader);
}

Result<bool> Client::try_in_cone(Asn as, Asn member, std::string_view epoch) {
  auto req = request(Op::kInCone);
  req.u32(as.value());
  req.u32(member.value());
  ASRANK_TRY(body, try_exchange(scoped(epoch, req.take())));
  WireReader reader(body);
  ASRANK_TRY(flag, reader.u8());
  return flag != 0;
}

Result<std::vector<Asn>> Client::try_providers(Asn as, std::string_view epoch) {
  auto req = request(Op::kProviders);
  req.u32(as.value());
  ASRANK_TRY(body, try_exchange(scoped(epoch, req.take())));
  WireReader reader(body);
  return read_list(reader);
}

Result<std::vector<Asn>> Client::try_customers(Asn as, std::string_view epoch) {
  auto req = request(Op::kCustomers);
  req.u32(as.value());
  ASRANK_TRY(body, try_exchange(scoped(epoch, req.take())));
  WireReader reader(body);
  return read_list(reader);
}

Result<std::vector<Asn>> Client::try_peers(Asn as, std::string_view epoch) {
  auto req = request(Op::kPeers);
  req.u32(as.value());
  ASRANK_TRY(body, try_exchange(scoped(epoch, req.take())));
  WireReader reader(body);
  return read_list(reader);
}

Result<std::vector<snapshot::TopEntry>> Client::try_top(std::uint32_t n,
                                                        std::string_view epoch) {
  auto req = request(Op::kTop);
  req.u32(n);
  ASRANK_TRY(body, try_exchange(scoped(epoch, req.take())));
  WireReader reader(body);
  ASRANK_TRY(count, reader.u32());
  std::vector<snapshot::TopEntry> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    snapshot::TopEntry entry;
    ASRANK_TRY(rank, reader.u32());
    ASRANK_TRY(asn, reader.u32());
    ASRANK_TRY(cone, reader.u64());
    ASRANK_TRY(tdeg, reader.u32());
    entry.rank = rank;
    entry.as = Asn(asn);
    entry.cone_size = cone;
    entry.transit_degree = tdeg;
    out.push_back(entry);
  }
  return out;
}

Result<std::vector<Asn>> Client::try_cone_intersection(Asn a, Asn b,
                                                       std::string_view epoch) {
  auto req = request(Op::kConeIntersect);
  req.u32(a.value());
  req.u32(b.value());
  ASRANK_TRY(body, try_exchange(scoped(epoch, req.take())));
  WireReader reader(body);
  return read_list(reader);
}

Result<std::vector<Asn>> Client::try_path_to_clique(Asn as,
                                                    std::string_view epoch) {
  auto req = request(Op::kPathToClique);
  req.u32(as.value());
  ASRANK_TRY(body, try_exchange(scoped(epoch, req.take())));
  WireReader reader(body);
  return read_list(reader);
}

Result<std::vector<Asn>> Client::try_clique(std::string_view epoch) {
  ASRANK_TRY(body, try_exchange(scoped(epoch, request(Op::kClique).take())));
  WireReader reader(body);
  return read_list(reader);
}

Result<std::string> Client::try_stats_text(std::string_view epoch) {
  ASRANK_TRY(body, try_exchange(scoped(epoch, request(Op::kStats).take())));
  WireReader reader(body);
  return reader.rest_as_text();
}

Result<std::string> Client::try_metrics_text() {
  ASRANK_TRY(body, try_exchange(request(Op::kMetrics).take()));
  WireReader reader(body);
  return reader.rest_as_text();
}

Result<void> Client::try_ping() {
  ASRANK_TRY(body, try_exchange(request(Op::kPing).take()));
  (void)body;
  return {};
}

Result<std::vector<std::string>> Client::try_epochs() {
  ASRANK_TRY(body, try_exchange(request(Op::kEpochs).take()));
  WireReader reader(body);
  ASRANK_TRY(count, reader.u32());
  std::vector<std::string> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ASRANK_TRY(label, reader.str16());
    out.push_back(std::move(label));
  }
  return out;
}

Result<ConeDiff> Client::try_cone_diff(Asn as, std::string_view epoch_a,
                                       std::string_view epoch_b) {
  auto req = request(Op::kConeDiff);
  req.u32(as.value());
  req.str16(epoch_a);
  req.str16(epoch_b);
  ASRANK_TRY(body, try_exchange(req.take()));
  WireReader reader(body);
  ConeDiff diff;
  ASRANK_TRY(added, read_list(reader));
  ASRANK_TRY(removed, read_list(reader));
  diff.added = std::move(added);
  diff.removed = std::move(removed);
  return diff;
}

Result<ReloadInfo> Client::try_reload(const std::string& path,
                                      const std::string& label) {
  auto req = request(Op::kReload);
  req.str16(path);
  req.str16(label);
  ASRANK_TRY(body, try_exchange(req.take()));
  WireReader reader(body);
  ReloadInfo info;
  ASRANK_TRY(installed, reader.str16());
  ASRANK_TRY(ases, reader.u32());
  info.label = std::move(installed);
  info.ases = ases;
  return info;
}

Result<DisagreeReport> Client::try_disagree(std::string_view algo_a,
                                            std::string_view algo_b,
                                            std::uint32_t limit,
                                            std::string_view epoch) {
  auto req = request(Op::kDisagree);
  req.str16(algo_a);
  req.str16(algo_b);
  req.u32(limit);
  ASRANK_TRY(body, try_exchange(with_epoch(epoch, std::move(req))));
  WireReader reader(body);
  DisagreeReport report;
  ASRANK_TRY(total, reader.u32());
  ASRANK_TRY(returned, reader.u32());
  report.total = total;
  report.rows.reserve(returned);
  const auto decode_rel =
      [](std::uint8_t code) -> Result<std::optional<RelView>> {
    if (code == kRelNone) return std::optional<RelView>{};
    const auto view = rel_from_code(code);
    if (!view) {
      return make_error(ErrorCode::kProtocol, "bad relationship code in response");
    }
    return std::optional<RelView>{*view};
  };
  for (std::uint32_t i = 0; i < returned; ++i) {
    ASRANK_TRY(a, reader.u32());
    ASRANK_TRY(b, reader.u32());
    ASRANK_TRY(code_a, reader.u8());
    ASRANK_TRY(code_b, reader.u8());
    Disagreement row;
    row.a = Asn(a);
    row.b = Asn(b);
    ASRANK_TRY(first, decode_rel(code_a));
    ASRANK_TRY(second, decode_rel(code_b));
    row.first = first;
    row.second = second;
    report.rows.push_back(row);
  }
  return report;
}

}  // namespace asrank::serve
