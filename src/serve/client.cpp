#include "serve/client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "serve/protocol.h"

namespace asrank::serve {

namespace {

WireWriter request(Op op) {
  WireWriter writer;
  writer.u8(static_cast<std::uint8_t>(op));
  return writer;
}

/// The client's error surface is ProtocolError, so decode failures cross
/// back from the Result rail here.
template <typename T>
T unwrap(Result<T> result) {
  if (!result.ok()) throw ProtocolError(result.error().context);
  return std::move(result).value();
}

std::vector<Asn> read_list(WireReader& reader) {
  const std::uint32_t count = unwrap(reader.u32());
  std::vector<Asn> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.emplace_back(unwrap(reader.u32()));
  return out;
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw ProtocolError(std::string("socket: ") + std::strerror(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw ProtocolError("bad server address: " + host);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string what = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw ProtocolError("connect " + host + ":" + std::to_string(port) + ": " + what);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

std::vector<std::uint8_t> Client::exchange(const std::vector<std::uint8_t>& req) {
  if (fd_ < 0) throw ProtocolError("client is disconnected");
  write_frame(fd_, req);
  std::uint8_t marker = 0;
  if (!read_exact(fd_, &marker, 1)) throw ProtocolError("server closed connection");
  if (marker != kBinaryMarker) throw ProtocolError("unexpected response framing");
  auto payload = read_frame_body(fd_);
  WireReader reader(payload);
  const auto status = static_cast<Status>(unwrap(reader.u8()));
  if (status != Status::kOk) {
    throw ProtocolError("server error: " + reader.rest_as_text());
  }
  // Strip the status byte so callers decode the body only.
  return {payload.begin() + 1, payload.end()};
}

std::optional<RelView> Client::relationship(Asn a, Asn b) {
  auto req = request(Op::kRelationship);
  req.u32(a.value());
  req.u32(b.value());
  const auto body = exchange(req.take());
  WireReader reader(body);
  const std::uint8_t code = unwrap(reader.u8());
  if (code == kRelNone) return std::nullopt;
  const auto view = rel_from_code(code);
  if (!view) throw ProtocolError("bad relationship code in response");
  return view;
}

std::optional<std::uint32_t> Client::rank(Asn as) {
  auto req = request(Op::kRank);
  req.u32(as.value());
  const auto body = exchange(req.take());
  WireReader reader(body);
  const std::uint32_t rank = unwrap(reader.u32());
  if (rank == 0) return std::nullopt;
  return rank;
}

std::uint64_t Client::cone_size(Asn as) {
  auto req = request(Op::kConeSize);
  req.u32(as.value());
  const auto body = exchange(req.take());
  WireReader reader(body);
  return unwrap(reader.u64());
}

std::vector<Asn> Client::cone(Asn as) {
  auto req = request(Op::kCone);
  req.u32(as.value());
  const auto body = exchange(req.take());
  WireReader reader(body);
  return read_list(reader);
}

bool Client::in_cone(Asn as, Asn member) {
  auto req = request(Op::kInCone);
  req.u32(as.value());
  req.u32(member.value());
  const auto body = exchange(req.take());
  WireReader reader(body);
  return unwrap(reader.u8()) != 0;
}

std::vector<Asn> Client::providers(Asn as) {
  auto req = request(Op::kProviders);
  req.u32(as.value());
  const auto body = exchange(req.take());
  WireReader reader(body);
  return read_list(reader);
}

std::vector<Asn> Client::customers(Asn as) {
  auto req = request(Op::kCustomers);
  req.u32(as.value());
  const auto body = exchange(req.take());
  WireReader reader(body);
  return read_list(reader);
}

std::vector<Asn> Client::peers(Asn as) {
  auto req = request(Op::kPeers);
  req.u32(as.value());
  const auto body = exchange(req.take());
  WireReader reader(body);
  return read_list(reader);
}

std::vector<snapshot::TopEntry> Client::top(std::uint32_t n) {
  auto req = request(Op::kTop);
  req.u32(n);
  const auto body = exchange(req.take());
  WireReader reader(body);
  const std::uint32_t count = unwrap(reader.u32());
  std::vector<snapshot::TopEntry> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    snapshot::TopEntry entry;
    entry.rank = unwrap(reader.u32());
    entry.as = Asn(unwrap(reader.u32()));
    entry.cone_size = unwrap(reader.u64());
    entry.transit_degree = unwrap(reader.u32());
    out.push_back(entry);
  }
  return out;
}

std::vector<Asn> Client::cone_intersection(Asn a, Asn b) {
  auto req = request(Op::kConeIntersect);
  req.u32(a.value());
  req.u32(b.value());
  const auto body = exchange(req.take());
  WireReader reader(body);
  return read_list(reader);
}

std::vector<Asn> Client::path_to_clique(Asn as) {
  auto req = request(Op::kPathToClique);
  req.u32(as.value());
  const auto body = exchange(req.take());
  WireReader reader(body);
  return read_list(reader);
}

std::vector<Asn> Client::clique() {
  const auto body = exchange(request(Op::kClique).take());
  WireReader reader(body);
  return read_list(reader);
}

std::string Client::stats_text() {
  const auto body = exchange(request(Op::kStats).take());
  WireReader reader(body);
  return reader.rest_as_text();
}

std::string Client::metrics_text() {
  const auto body = exchange(request(Op::kMetrics).take());
  WireReader reader(body);
  return reader.rest_as_text();
}

void Client::ping() { (void)exchange(request(Op::kPing).take()); }

}  // namespace asrank::serve
