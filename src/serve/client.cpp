#include "serve/client.h"

#include <utility>

#include "serve/protocol.h"
#include "serve/wire_ops.h"

namespace asrank::serve {

// ----------------------------------------------------------- lifecycle --

Result<Client> Client::dial(const std::string& host, std::uint16_t port,
                            ClientConfig config) {
  ASRANK_TRY(transport, Transport::dial(host, port, std::move(config)));
  return Client(std::move(transport));
}

// ------------------------------------------------------ scoped surface --

Result<std::optional<RelView>> Client::try_relationship(
    Asn a, Asn b, const QueryScope& scope) {
  auto req = wire::request(Op::kRelationship);
  req.u32(a.value());
  req.u32(b.value());
  ASRANK_TRY(body, transport_.try_exchange(wire::apply_scope(scope, req.take())));
  WireReader reader(body);
  ASRANK_TRY(code, reader.u8());
  return wire::decode_rel_opt(code);
}

Result<std::optional<std::uint32_t>> Client::try_rank(Asn as,
                                                      const QueryScope& scope) {
  auto req = wire::request(Op::kRank);
  req.u32(as.value());
  ASRANK_TRY(body, transport_.try_exchange(wire::apply_scope(scope, req.take())));
  WireReader reader(body);
  ASRANK_TRY(rank, reader.u32());
  if (rank == 0) return std::optional<std::uint32_t>{};
  return std::optional<std::uint32_t>{rank};
}

Result<std::uint64_t> Client::try_cone_size(Asn as, const QueryScope& scope) {
  auto req = wire::request(Op::kConeSize);
  req.u32(as.value());
  ASRANK_TRY(body, transport_.try_exchange(wire::apply_scope(scope, req.take())));
  WireReader reader(body);
  return reader.u64();
}

Result<std::vector<Asn>> Client::try_cone(Asn as, const QueryScope& scope) {
  auto req = wire::request(Op::kCone);
  req.u32(as.value());
  ASRANK_TRY(body, transport_.try_exchange(wire::apply_scope(scope, req.take())));
  return wire::decode_asn_list(body);
}

Result<bool> Client::try_in_cone(Asn as, Asn member, const QueryScope& scope) {
  auto req = wire::request(Op::kInCone);
  req.u32(as.value());
  req.u32(member.value());
  ASRANK_TRY(body, transport_.try_exchange(wire::apply_scope(scope, req.take())));
  WireReader reader(body);
  ASRANK_TRY(flag, reader.u8());
  return flag != 0;
}

Result<std::vector<Asn>> Client::try_providers(Asn as, const QueryScope& scope) {
  auto req = wire::request(Op::kProviders);
  req.u32(as.value());
  ASRANK_TRY(body, transport_.try_exchange(wire::apply_scope(scope, req.take())));
  return wire::decode_asn_list(body);
}

Result<std::vector<Asn>> Client::try_customers(Asn as, const QueryScope& scope) {
  auto req = wire::request(Op::kCustomers);
  req.u32(as.value());
  ASRANK_TRY(body, transport_.try_exchange(wire::apply_scope(scope, req.take())));
  return wire::decode_asn_list(body);
}

Result<std::vector<Asn>> Client::try_peers(Asn as, const QueryScope& scope) {
  auto req = wire::request(Op::kPeers);
  req.u32(as.value());
  ASRANK_TRY(body, transport_.try_exchange(wire::apply_scope(scope, req.take())));
  return wire::decode_asn_list(body);
}

Result<std::vector<snapshot::TopEntry>> Client::try_top(std::uint32_t n,
                                                        const QueryScope& scope) {
  auto req = wire::request(Op::kTop);
  req.u32(n);
  ASRANK_TRY(body, transport_.try_exchange(wire::apply_scope(scope, req.take())));
  return wire::decode_top(body);
}

Result<std::vector<Asn>> Client::try_cone_intersection(Asn a, Asn b,
                                                       const QueryScope& scope) {
  auto req = wire::request(Op::kConeIntersect);
  req.u32(a.value());
  req.u32(b.value());
  ASRANK_TRY(body, transport_.try_exchange(wire::apply_scope(scope, req.take())));
  return wire::decode_asn_list(body);
}

Result<std::vector<Asn>> Client::try_path_to_clique(Asn as,
                                                    const QueryScope& scope) {
  auto req = wire::request(Op::kPathToClique);
  req.u32(as.value());
  ASRANK_TRY(body, transport_.try_exchange(wire::apply_scope(scope, req.take())));
  return wire::decode_asn_list(body);
}

Result<std::vector<Asn>> Client::try_clique(const QueryScope& scope) {
  ASRANK_TRY(body, transport_.try_exchange(
                       wire::apply_scope(scope, wire::request(Op::kClique).take())));
  return wire::decode_asn_list(body);
}

Result<std::string> Client::try_stats_text(const QueryScope& scope) {
  ASRANK_TRY(body, transport_.try_exchange(
                       wire::apply_scope(scope, wire::request(Op::kStats).take())));
  WireReader reader(body);
  return reader.rest_as_text();
}

Result<std::vector<std::string>> Client::try_algos(const QueryScope& scope) {
  ASRANK_TRY(body, transport_.try_exchange(wire::apply_epoch(
                       scope.epoch, wire::request(Op::kAlgos).take())));
  return wire::decode_labels(body);
}

Result<DisagreeReport> Client::try_disagree(std::string_view algo_a,
                                            std::string_view algo_b,
                                            std::uint32_t limit,
                                            const QueryScope& scope) {
  auto req = wire::request(Op::kDisagree);
  req.str16(algo_a);
  req.str16(algo_b);
  req.u32(limit);
  ASRANK_TRY(body,
             transport_.try_exchange(wire::apply_epoch(scope.epoch, req.take())));
  return wire::decode_disagree(body);
}

// ----------------------------------------------- legacy epoch delegates --

Result<std::optional<RelView>> Client::try_relationship(Asn a, Asn b,
                                                        std::string_view epoch) {
  return try_relationship(a, b, effective(epoch));
}

Result<std::optional<std::uint32_t>> Client::try_rank(Asn as,
                                                      std::string_view epoch) {
  return try_rank(as, effective(epoch));
}

Result<std::uint64_t> Client::try_cone_size(Asn as, std::string_view epoch) {
  return try_cone_size(as, effective(epoch));
}

Result<std::vector<Asn>> Client::try_cone(Asn as, std::string_view epoch) {
  return try_cone(as, effective(epoch));
}

Result<bool> Client::try_in_cone(Asn as, Asn member, std::string_view epoch) {
  return try_in_cone(as, member, effective(epoch));
}

Result<std::vector<Asn>> Client::try_providers(Asn as, std::string_view epoch) {
  return try_providers(as, effective(epoch));
}

Result<std::vector<Asn>> Client::try_customers(Asn as, std::string_view epoch) {
  return try_customers(as, effective(epoch));
}

Result<std::vector<Asn>> Client::try_peers(Asn as, std::string_view epoch) {
  return try_peers(as, effective(epoch));
}

Result<std::vector<snapshot::TopEntry>> Client::try_top(std::uint32_t n,
                                                        std::string_view epoch) {
  return try_top(n, effective(epoch));
}

Result<std::vector<Asn>> Client::try_cone_intersection(Asn a, Asn b,
                                                       std::string_view epoch) {
  return try_cone_intersection(a, b, effective(epoch));
}

Result<std::vector<Asn>> Client::try_path_to_clique(Asn as,
                                                    std::string_view epoch) {
  return try_path_to_clique(as, effective(epoch));
}

Result<std::vector<Asn>> Client::try_clique(std::string_view epoch) {
  return try_clique(effective(epoch));
}

Result<std::string> Client::try_stats_text(std::string_view epoch) {
  return try_stats_text(effective(epoch));
}

Result<std::vector<std::string>> Client::try_algos(std::string_view epoch) {
  return try_algos(effective(epoch));
}

Result<DisagreeReport> Client::try_disagree(std::string_view algo_a,
                                            std::string_view algo_b,
                                            std::uint32_t limit,
                                            std::string_view epoch) {
  return try_disagree(algo_a, algo_b, limit, effective(epoch));
}

// --------------------------------------------------- unscoped requests --

Result<std::string> Client::try_metrics_text() {
  ASRANK_TRY(body, transport_.try_exchange(wire::request(Op::kMetrics).take()));
  WireReader reader(body);
  return reader.rest_as_text();
}

Result<void> Client::try_ping() {
  ASRANK_TRY(body, transport_.try_exchange(wire::request(Op::kPing).take()));
  (void)body;
  return {};
}

Result<std::vector<std::string>> Client::try_epochs() {
  ASRANK_TRY(body, transport_.try_exchange(wire::request(Op::kEpochs).take()));
  return wire::decode_labels(body);
}

Result<ConeDiff> Client::try_cone_diff(Asn as, std::string_view epoch_a,
                                       std::string_view epoch_b) {
  auto req = wire::request(Op::kConeDiff);
  req.u32(as.value());
  req.str16(epoch_a);
  req.str16(epoch_b);
  ASRANK_TRY(body, transport_.try_exchange(req.take()));
  return wire::decode_cone_diff(body);
}

Result<ReloadInfo> Client::try_reload(const std::string& path,
                                      const std::string& label) {
  auto req = wire::request(Op::kReload);
  req.str16(path);
  req.str16(label);
  ASRANK_TRY(body, transport_.try_exchange(req.take()));
  return wire::decode_reload(body);
}

}  // namespace asrank::serve
