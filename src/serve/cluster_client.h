// ClusterClient: a smart client over N asrankd endpoints.
//
// Layers, bottom to top:
//
//   * ClusterMap — static shard map: ASN -> slot -> ordered replica list
//     (consistent rendezvous hashing, see cluster_map.h).
//   * Per-endpoint serve::Transport + circuit breaker.  Connection-class
//     failures (refused / timeout / io / shedding) trip a breaker from
//     closed to open after `failure_threshold` consecutive failures; open
//     breakers cool down with the same capped equal-jitter backoff the
//     transport uses for retries, then admit a single half-open probe whose
//     outcome closes or re-opens the breaker.  Routed queries fail over
//     across a slot's replicas in preference order, skipping open breakers;
//     exhausting the list yields typed kUnavailable.
//   * Scatter-gather for cross-shard queries with bounded fan-out
//     concurrency: TOP is merged k-way (rank order, exact-duplicate rows
//     collapse), EPOCHS/ALGOS are intersected preserving the first
//     responder's order, and a cone intersection whose operands live on
//     different shards fetches both cones and intersects client-side.
//   * Epoch consistency: when the caller's QueryScope names no epoch, every
//     dispatch resolves the cluster-wide epoch (newest label resident on
//     every reachable endpoint), pins it on each sub-request via WITH_EPOCH,
//     and — if any replica has since dropped that vintage — invalidates the
//     cached label and re-resolves exactly once before failing typed
//     kEpochSkew.  A scope that names an epoch explicitly bypasses the
//     machinery (kUnknownEpoch propagates raw).
//
// ClusterClient speaks only the scoped query surface (QueryScope per call);
// there is no mutable algorithm/epoch state.  Like serve::Client it is not
// thread-safe: one instance per caller thread.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "asn/asn.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/cluster_map.h"
#include "serve/query_scope.h"
#include "serve/transport.h"
#include "snapshot/snapshot.h"
#include "topology/relationship.h"
#include "util/result.h"
#include "util/rng.h"

namespace asrank::serve {

/// Circuit-breaker state of one endpoint.  Numeric values are the
/// asrank_cluster_endpoint_state gauge encoding.
enum class HealthState : std::uint8_t { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

[[nodiscard]] constexpr std::string_view to_string(HealthState state) noexcept {
  switch (state) {
    case HealthState::kClosed: return "closed";
    case HealthState::kHalfOpen: return "half-open";
    case HealthState::kOpen: return "open";
  }
  return "?";
}

struct ClusterClientConfig {
  TransportConfig transport;    ///< applied to every per-endpoint transport
  int failure_threshold = 3;    ///< consecutive failures to open a breaker
  int open_base_ms = 200;       ///< breaker cool-down backoff base
  int open_cap_ms = 10'000;     ///< breaker cool-down backoff cap
  std::size_t max_fanout = 4;   ///< concurrent sub-requests per scatter
  std::uint64_t backoff_seed = 0xc105ee40c105ee40ULL;  ///< breaker jitter rng
  /// Injectable monotonic clock (milliseconds) for breaker cool-downs;
  /// default is steady_clock.  Tests step it to cross open windows.
  std::function<std::uint64_t()> now_ms;
  /// Metrics sink for asrank_cluster_*; nullptr = obs::Registry::global().
  obs::Registry* metrics = nullptr;
};

/// One row of cluster-status output / the chaos test's assertions.
struct EndpointStatus {
  std::string endpoint;        ///< "host:port"
  HealthState state = HealthState::kClosed;
  bool reachable = false;
  std::string current_epoch;   ///< first EPOCHS label when reachable
  std::string error;           ///< last probe error message when unreachable
};

class ClusterClient {
 public:
  ClusterClient(ClusterMap map, ClusterClientConfig config = {});

  ClusterClient(const ClusterClient&) = delete;
  ClusterClient& operator=(const ClusterClient&) = delete;

  // ------------------------------------------------ scoped query surface --

  Result<std::optional<RelView>> try_relationship(Asn a, Asn b,
                                                  const QueryScope& scope = {});
  Result<std::optional<std::uint32_t>> try_rank(Asn as,
                                                const QueryScope& scope = {});
  Result<std::uint64_t> try_cone_size(Asn as, const QueryScope& scope = {});
  Result<std::vector<Asn>> try_cone(Asn as, const QueryScope& scope = {});
  Result<bool> try_in_cone(Asn as, Asn member, const QueryScope& scope = {});
  Result<std::vector<Asn>> try_providers(Asn as, const QueryScope& scope = {});
  Result<std::vector<Asn>> try_customers(Asn as, const QueryScope& scope = {});
  Result<std::vector<Asn>> try_peers(Asn as, const QueryScope& scope = {});
  Result<std::vector<Asn>> try_path_to_clique(Asn as,
                                              const QueryScope& scope = {});
  /// Scatter to the minimal healthy endpoint cover of all slots, k-way
  /// merged by rank with exact-duplicate rows collapsed, truncated to n.
  Result<std::vector<snapshot::TopEntry>> try_top(std::uint32_t n,
                                                  const QueryScope& scope = {});
  /// Same-slot operands route like a per-AS query; cross-shard operands
  /// fetch both cones concurrently and intersect client-side.
  Result<std::vector<Asn>> try_cone_intersection(Asn a, Asn b,
                                                 const QueryScope& scope = {});
  Result<std::vector<Asn>> try_clique(const QueryScope& scope = {});
  Result<std::string> try_stats_text(const QueryScope& scope = {});
  /// Labels resident on every reachable endpoint, in the first reachable
  /// endpoint's order (current first).
  Result<std::vector<std::string>> try_epochs();
  /// Algorithm sections present on every cover endpoint under the scoped
  /// epoch, first responder's order (primary first).
  Result<std::vector<std::string>> try_algos(const QueryScope& scope = {});
  Result<DisagreeReport> try_disagree(std::string_view algo_a,
                                      std::string_view algo_b,
                                      std::uint32_t limit = 0,
                                      const QueryScope& scope = {});
  Result<ConeDiff> try_cone_diff(Asn as, std::string_view epoch_a,
                                 std::string_view epoch_b);
  /// Reachability of at least one endpoint.
  Result<void> try_ping();

  // ------------------------------------------------------ introspection --

  /// The cluster-wide epoch queries are currently pinned to (resolving it if
  /// no label is cached).  kEpochSkew when the reachable endpoints share no
  /// label, kUnavailable when none answer.
  Result<std::string> try_resolved_epoch();
  /// Drop the cached cluster epoch; the next dispatch re-resolves.
  void invalidate_epoch();

  /// Probe every endpoint (EPOCHS round-trip) and report breaker state +
  /// current epoch.  Feeds `asrank_cli cluster-status` and the chaos test.
  std::vector<EndpointStatus> probe_endpoints();

  [[nodiscard]] HealthState endpoint_state(std::size_t index) const;
  [[nodiscard]] const ClusterMap& map() const noexcept { return map_; }
  [[nodiscard]] obs::Registry& metrics() const noexcept { return *metrics_; }

 private:
  struct EndpointHealth {
    HealthState state = HealthState::kClosed;
    int consecutive_failures = 0;
    int open_spins = 0;            ///< opens since the last success
    std::uint64_t open_until_ms = 0;
  };

  [[nodiscard]] std::uint64_t now_ms() const;
  /// Breaker gate: may endpoint `index` receive a request now?  Transitions
  /// open -> half-open when the cool-down has elapsed.
  [[nodiscard]] bool admit(std::size_t index);
  void on_success(std::size_t index);
  void on_failure(std::size_t index, ErrorCode code);
  void set_state_locked(std::size_t index, HealthState next);

  /// One breaker-gated exchange on one endpoint.  kUnavailable when the
  /// breaker rejects the request without touching the wire.
  [[nodiscard]] Result<std::vector<std::uint8_t>> exchange_on(
      std::size_t index, const std::vector<std::uint8_t>& frame);

  /// Minimal endpoint set covering every slot (first admitted replica per
  /// slot); kUnavailable when some slot has no admitted replica.
  [[nodiscard]] Result<std::vector<std::size_t>> cover_endpoints();

  /// Exchange `frame` against `candidates` in preference order, failing over
  /// on connection-class errors; kUnavailable on exhaustion.  Server-typed
  /// errors (unknown epoch/algorithm, protocol) return immediately — the
  /// endpoint answered, so another replica would answer the same.
  [[nodiscard]] Result<std::vector<std::uint8_t>> over_endpoints(
      std::span<const std::size_t> candidates,
      const std::vector<std::uint8_t>& frame, std::string_view what);
  /// over_endpoints on slot_of(key)'s replica list.
  [[nodiscard]] Result<std::vector<std::uint8_t>> routed(
      Asn key, const std::vector<std::uint8_t>& frame);
  /// over_endpoints on the full endpoint list (single-endpoint ops).
  [[nodiscard]] Result<std::vector<std::uint8_t>> single(
      const std::vector<std::uint8_t>& frame);

  /// Run one job per endpoint index with bounded concurrency; results land
  /// in index order.
  void fan_out(const std::vector<std::size_t>& targets,
               const std::function<void(std::size_t pos, std::size_t endpoint)>& job);

  /// Resolve (or return the cached) cluster-wide epoch label.
  [[nodiscard]] Result<std::string> resolve_epoch();
  /// EPOCHS from every endpoint; per-endpoint results, reachable flags set.
  [[nodiscard]] std::vector<std::optional<std::vector<std::string>>>
  scatter_epochs();

  /// Run `body` under an epoch-pinned scope with the one bounded re-resolve
  /// retry on kUnknownEpoch (the skew signal).  Defined in the .cpp — all
  /// instantiations are local to it.
  template <typename Fn>
  auto pinned(const QueryScope& scope, std::string_view op, Fn&& body)
      -> decltype(body(scope));

  ClusterMap map_;
  ClusterClientConfig config_;
  std::vector<Transport> transports_;  ///< one per endpoint, index-aligned
  /// Serializes wire use of one endpoint when concurrent fan-out jobs route
  /// to the same replica (e.g. both halves of a cross-shard intersection).
  std::vector<std::unique_ptr<std::mutex>> transport_mutex_;

  mutable std::mutex mutex_;  ///< guards health_, epoch cache, breaker rng
  std::vector<EndpointHealth> health_;
  util::Rng breaker_rng_;
  std::optional<std::string> resolved_epoch_;

  obs::Registry* metrics_ = nullptr;
  obs::Counter* fanout_total_ = nullptr;
  obs::Counter* failovers_total_ = nullptr;
  obs::Counter* epoch_resolves_total_ = nullptr;
  obs::Counter* epoch_skew_total_ = nullptr;
  obs::Counter* unavailable_total_ = nullptr;
  obs::Histogram* latency_ = nullptr;
};

}  // namespace asrank::serve
