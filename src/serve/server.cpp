#include "serve/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "obs/log.h"
#include "runtime/ebr.h"
#include "runtime/reactor.h"
#include "runtime/timer_queue.h"
#include "serve/protocol.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace asrank::serve {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw ProtocolError(what + ": " + std::strerror(errno));
}

void encode_list(WireWriter& writer, std::span<const Asn> list) {
  writer.u32(static_cast<std::uint32_t>(list.size()));
  for (const Asn as : list) writer.u32(as.value());
}

std::vector<std::uint8_t> error_response(const std::string& message) {
  WireWriter writer;
  writer.u8(static_cast<std::uint8_t>(Status::kError));
  writer.text(message);
  return writer.take();
}

std::string join_asns(std::span<const Asn> list) {
  std::ostringstream os;
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (i != 0) os << ' ';
    os << list[i].value();
  }
  return os.str();
}

/// The self-pipe write end for the signal handler (one server per process).
std::atomic<int> g_signal_fd{-1};

void on_signal(int sig) {
  const int fd = g_signal_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = sig == SIGHUP ? 'h' : 's';
    // Best-effort: if the pipe is full a command byte is already pending.
    [[maybe_unused]] const auto n = ::write(fd, &byte, 1);
  }
}

/// Engine-scoped opcodes (everything answerable from one epoch).  Registry
/// ops (EPOCHS/CONE_DIFF/RELOAD/WITH_EPOCH) are handled by the caller and
/// rejected here so they cannot nest.
Result<void> dispatch_engine_op(QueryEngine& engine, Op op, WireReader& reader,
                                WireWriter& writer) {
  switch (op) {
    case Op::kRelationship: {
      ASRANK_TRY(a, reader.u32());
      ASRANK_TRY(b, reader.u32());
      const auto view = engine.relationship(Asn(a), Asn(b));
      writer.u8(view ? static_cast<std::uint8_t>(*view) : kRelNone);
      break;
    }
    case Op::kRank: {
      ASRANK_TRY(as, reader.u32());
      writer.u32(engine.rank(Asn(as)).value_or(0));
      break;
    }
    case Op::kConeSize: {
      ASRANK_TRY(as, reader.u32());
      writer.u64(engine.cone_size(Asn(as)));
      break;
    }
    case Op::kCone: {
      ASRANK_TRY(as, reader.u32());
      encode_list(writer, engine.cone(Asn(as)));
      break;
    }
    case Op::kInCone: {
      ASRANK_TRY(as, reader.u32());
      ASRANK_TRY(member, reader.u32());
      writer.u8(engine.in_cone(Asn(as), Asn(member)) ? 1 : 0);
      break;
    }
    case Op::kProviders: {
      ASRANK_TRY(as, reader.u32());
      encode_list(writer, engine.providers(Asn(as)));
      break;
    }
    case Op::kCustomers: {
      ASRANK_TRY(as, reader.u32());
      encode_list(writer, engine.customers(Asn(as)));
      break;
    }
    case Op::kPeers: {
      ASRANK_TRY(as, reader.u32());
      encode_list(writer, engine.peers(Asn(as)));
      break;
    }
    case Op::kTop: {
      ASRANK_TRY(n, reader.u32());
      const auto entries = engine.top(n);
      writer.u32(static_cast<std::uint32_t>(entries.size()));
      for (const auto& entry : entries) {
        writer.u32(entry.rank);
        writer.u32(entry.as.value());
        writer.u64(entry.cone_size);
        writer.u32(static_cast<std::uint32_t>(entry.transit_degree));
      }
      break;
    }
    case Op::kConeIntersect: {
      ASRANK_TRY(a, reader.u32());
      ASRANK_TRY(b, reader.u32());
      encode_list(writer, *engine.cone_intersection(Asn(a), Asn(b)));
      break;
    }
    case Op::kPathToClique: {
      ASRANK_TRY(as, reader.u32());
      encode_list(writer, *engine.path_to_clique(Asn(as)));
      break;
    }
    case Op::kClique: {
      encode_list(writer, engine.clique());
      break;
    }
    case Op::kStats: {
      engine.record_stats_query();
      writer.text(engine.render_stats());
      break;
    }
    case Op::kPing: {
      engine.ping();
      break;
    }
    case Op::kMetrics: {
      engine.registry()
          .counter("asrankd_metrics_requests_total",
                   "METRICS opcode / `metrics` text command serves")
          .inc();
      writer.text(engine.registry().render_prometheus());
      break;
    }
    default:
      return make_error(ErrorCode::kProtocol,
                        "unknown opcode " +
                            std::to_string(static_cast<unsigned>(op)));
  }
  if (!reader.done()) {
    return make_error(ErrorCode::kProtocol, "trailing bytes after request operands");
  }
  return {};
}

/// Current-epoch entry or a kNotFound Error before the first install.  The
/// raw pointer stays valid for the caller's EBR critical section.
Result<const SnapshotRegistry::Entry*> require_current(
    const SnapshotRegistry::ReadView& view) {
  const auto* entry = view.current_entry();
  if (entry == nullptr) return make_error(ErrorCode::kNotFound, "no snapshot loaded");
  return entry;
}

Result<const SnapshotRegistry::Entry*> require_epoch(
    const SnapshotRegistry::ReadView& view, const std::string& label) {
  const auto* entry = view.find_epoch(label);
  if (entry == nullptr) {
    return make_error(ErrorCode::kUnknownEpoch, "unknown epoch '" + label + "'");
  }
  view.owner()
      .registry()
      .counter("asrankd_epoch_queries_total", "Queries naming an explicit epoch")
      .inc();
  return entry;
}

/// Algorithm-qualified engine within one epoch.  The "unknown algorithm"
/// prefix is part of the wire contract (the client maps it to
/// kUnknownAlgorithm), so keep it stable.
Result<QueryEngine*> require_algo(const SnapshotRegistry::ReadView& view,
                                  const SnapshotRegistry::Entry& entry,
                                  const std::string& name) {
  auto* engine = entry.algo(name);
  if (engine == nullptr) {
    std::string carried;
    for (const auto& algo : entry.algo_names) {
      if (!carried.empty()) carried += ", ";
      carried += algo;
    }
    return make_error(ErrorCode::kUnknownAlgorithm,
                      "unknown algorithm '" + name + "' (epoch '" + entry.label +
                          "' carries: " + carried + ")");
  }
  view.owner()
      .registry()
      .counter("asrankd_algo_selected_queries_total",
               "Queries naming an explicit algorithm")
      .inc();
  return engine;
}

/// One DISAGREE row: a link where two algorithm sections differ.  rel_a /
/// rel_b are RelView codes from `a`'s perspective, or kRelNone when that
/// algorithm has no such link.
struct DisagreeRow {
  Asn a;
  Asn b;
  std::uint8_t rel_a;
  std::uint8_t rel_b;
};

/// Links on which two algorithm sections disagree, over the union of both
/// link sets: canonical a < b, ascending (a, b).  A link present in only one
/// section always disagrees (the other side reports kRelNone).
std::vector<DisagreeRow> disagreements(const snapshot::SnapshotIndex& first,
                                       const snapshot::SnapshotIndex& second) {
  std::vector<DisagreeRow> out;
  const auto scan = [&out](const snapshot::SnapshotIndex& from,
                           const snapshot::SnapshotIndex& to, bool shared_links) {
    const std::size_t n = from.as_count();
    for (std::uint32_t id = 0; id < n; ++id) {
      const Asn a = from.asn_at(id);
      const auto neighbors = from.neighbor_ids(id);
      const auto rels = from.relationship_codes(id);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        // kNoNeighborId guard, as in the clique-path BFS: only reachable
        // through a crafted CRC-valid file.
        if (neighbors[i] >= n) continue;
        const Asn b = from.asn_at(neighbors[i]);
        if (!(a < b)) continue;  // canonical orientation only
        const auto other = to.relationship(a, b);
        if (shared_links) {
          const std::uint8_t theirs =
              other ? static_cast<std::uint8_t>(*other) : kRelNone;
          if (rels[i] != theirs) out.push_back({a, b, rels[i], theirs});
        } else if (!other) {
          // Second pass collects links only the second algorithm inferred.
          out.push_back({a, b, kRelNone, rels[i]});
        }
      }
    }
  };
  scan(first, second, /*shared_links=*/true);
  scan(second, first, /*shared_links=*/false);
  std::sort(out.begin(), out.end(), [](const DisagreeRow& x, const DisagreeRow& y) {
    return x.a == y.a ? x.b < y.b : x.a < y.a;
  });
  return out;
}

/// Entry-scoped opcodes: WITH_ALGO qualification and DISAGREE comparison;
/// everything else runs against the entry's primary engine.  WITH_EPOCH is
/// handled by the caller, and WITH_ALGO cannot nest inside itself (the inner
/// payload goes straight to the engine dispatcher).
Result<void> dispatch_entry_op(const SnapshotRegistry::ReadView& view,
                               const SnapshotRegistry::Entry& entry, Op op,
                               WireReader& reader, WireWriter& writer) {
  switch (op) {
    case Op::kWithAlgo: {
      ASRANK_TRY(name, reader.str16());
      ASRANK_TRY(engine, require_algo(view, entry, name));
      WireReader inner(reader.rest());
      ASRANK_TRY(inner_op, inner.u8());
      return dispatch_engine_op(*engine, static_cast<Op>(inner_op), inner, writer);
    }
    case Op::kAlgos: {
      if (!reader.done()) {
        return make_error(ErrorCode::kProtocol,
                          "trailing bytes after request operands");
      }
      writer.u32(static_cast<std::uint32_t>(entry.algo_names.size()));
      for (const auto& name : entry.algo_names) writer.str16(name);
      return {};
    }
    case Op::kDisagree: {
      ASRANK_TRY(name_a, reader.str16());
      ASRANK_TRY(name_b, reader.str16());
      ASRANK_TRY(limit, reader.u32());
      if (!reader.done()) {
        return make_error(ErrorCode::kProtocol,
                          "trailing bytes after request operands");
      }
      ASRANK_TRY(engine_a, require_algo(view, entry, name_a));
      ASRANK_TRY(engine_b, require_algo(view, entry, name_b));
      view.owner()
          .registry()
          .counter("asrankd_disagreements_total", "DISAGREE queries served")
          .inc();
      const auto rows = disagreements(engine_a->index(), engine_b->index());
      const std::size_t returned =
          limit == 0 ? rows.size()
                     : std::min<std::size_t>(limit, rows.size());
      writer.u32(static_cast<std::uint32_t>(rows.size()));
      writer.u32(static_cast<std::uint32_t>(returned));
      for (std::size_t i = 0; i < returned; ++i) {
        writer.u32(rows[i].a.value());
        writer.u32(rows[i].b.value());
        writer.u8(rows[i].rel_a);
        writer.u8(rows[i].rel_b);
      }
      return {};
    }
    default:
      return dispatch_engine_op(*entry.engine, op, reader, writer);
  }
}

}  // namespace

// ------------------------------------------------------ request handlers --

std::vector<std::uint8_t> handle_binary_request(
    const SnapshotRegistry::ReadView& view, std::span<const std::uint8_t> payload,
    bool local_peer) {
  // Request decoding runs on the Result rail; a decode Error (truncated
  // operand, unknown opcode, trailing bytes) becomes an error response at
  // this boundary.  The catch-all remains for query execution itself.
  const auto respond = [&view, payload,
                        local_peer]() -> Result<std::vector<std::uint8_t>> {
    WireReader reader(payload);
    ASRANK_TRY(op_byte, reader.u8());
    const auto op = static_cast<Op>(op_byte);
    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(Status::kOk));
    switch (op) {
      case Op::kEpochs: {
        const auto labels = view.epochs();
        writer.u32(static_cast<std::uint32_t>(labels.size()));
        for (const auto& label : labels) writer.str16(label);
        if (!reader.done()) {
          return make_error(ErrorCode::kProtocol,
                            "trailing bytes after request operands");
        }
        return writer.take();
      }
      case Op::kConeDiff: {
        ASRANK_TRY(asn, reader.u32());
        ASRANK_TRY(label_a, reader.str16());
        ASRANK_TRY(label_b, reader.str16());
        if (!reader.done()) {
          return make_error(ErrorCode::kProtocol,
                            "trailing bytes after request operands");
        }
        ASRANK_TRY(entry_a, require_epoch(view, label_a));
        ASRANK_TRY(entry_b, require_epoch(view, label_b));
        view.owner()
            .registry()
            .counter("asrankd_cone_diffs_total", "CONE_DIFF queries served")
            .inc();
        auto* engine_a = entry_a->engine.get();
        auto* engine_b = entry_b->engine.get();
        const auto cone_a = engine_a->cone(Asn(asn));
        const auto cone_b = engine_b->cone(Asn(asn));
        encode_list(writer, engine_b->cone_minus(Asn(asn), cone_a));  // added in B
        encode_list(writer, engine_a->cone_minus(Asn(asn), cone_b));  // removed in B
        return writer.take();
      }
      case Op::kReload: {
        ASRANK_TRY(path, reader.str16());
        ASRANK_TRY(label, reader.str16());
        if (!reader.done()) {
          return make_error(ErrorCode::kProtocol,
                            "trailing bytes after request operands");
        }
        if (!local_peer) {
          return make_error(ErrorCode::kInvalidArgument,
                            "reload denied: not a local peer");
        }
        ASRANK_TRY(loaded, view.owner().load_file(path, label));
        writer.str16(loaded.label);
        writer.u32(static_cast<std::uint32_t>(loaded.engine->index().as_count()));
        return writer.take();
      }
      case Op::kWithEpoch: {
        ASRANK_TRY(label, reader.str16());
        ASRANK_TRY(entry, require_epoch(view, label));
        WireReader inner(reader.rest());
        ASRANK_TRY(inner_op, inner.u8());
        ASRANK_TRY_VOID(dispatch_entry_op(view, *entry, static_cast<Op>(inner_op),
                                          inner, writer));
        return writer.take();
      }
      default: {
        ASRANK_TRY(entry, require_current(view));
        ASRANK_TRY_VOID(dispatch_entry_op(view, *entry, op, reader, writer));
        return writer.take();
      }
    }
  };

  try {
    auto response = respond();
    if (!response.ok()) return error_response(response.error().context);
    return std::move(response).value();
  } catch (const std::exception& error) {
    return error_response(error.what());
  }
}

std::vector<std::uint8_t> handle_binary_request(SnapshotRegistry& registry,
                                                std::span<const std::uint8_t> payload,
                                                bool local_peer) {
  runtime::ebr::Guard guard(registry.reclaim_domain());
  return handle_binary_request(registry.read_view(), payload, local_peer);
}

std::string handle_text_request(const SnapshotRegistry::ReadView& view,
                                std::string_view line, bool local_peer) {
  auto tokens = util::split_ws(util::trim(line));
  if (tokens.empty()) return "ERR empty command";

  // "@<selector> ..." prefixes scope the command.  The first @token resolves
  // as a resident epoch label, falling back to an algorithm name in the
  // current epoch; a second @token must be an algorithm within the selected
  // epoch.  So "@rib-a @gao2001 CONE 42", "@gao2001 CONE 42", and
  // "@rib-a CONE 42" all read naturally.
  const SnapshotRegistry::Entry* scope = nullptr;
  QueryEngine* engine = nullptr;
  while (!tokens.empty() && tokens[0].size() > 1 && tokens[0].front() == '@') {
    const std::string label(tokens[0].substr(1));
    if (scope == nullptr && engine == nullptr) {
      if (const auto* entry = view.find_epoch(label); entry != nullptr) {
        view.owner()
            .registry()
            .counter("asrankd_epoch_queries_total",
                     "Queries naming an explicit epoch")
            .inc();
        scope = entry;
        tokens.erase(tokens.begin());
        continue;
      }
      // Not a resident epoch: try it as an algorithm of the current epoch,
      // reporting both namespaces on a miss (the selector is ambiguous).
      auto current = require_current(view);
      if (!current.ok()) return "ERR " + current.error().context;
      auto scoped = require_algo(view, *current.value(), label);
      if (!scoped.ok()) return "ERR unknown epoch or algorithm '" + label + "'";
      scope = current.value();
      engine = scoped.value();
      tokens.erase(tokens.begin());
      continue;
    }
    if (engine != nullptr) return "ERR at most one @<algorithm> selector";
    auto scoped = require_algo(view, *scope, label);
    if (!scoped.ok()) return "ERR " + scoped.error().context;
    engine = scoped.value();
    tokens.erase(tokens.begin());
  }
  if ((scope != nullptr || engine != nullptr) && tokens.empty()) {
    return "ERR usage: @<epoch|algorithm> <command>";
  }
  if (engine == nullptr && scope != nullptr) engine = scope->engine.get();
  const auto cmd = util::to_lower(tokens[0]);

  const auto arg_as = [&tokens](std::size_t i) -> std::optional<Asn> {
    if (i >= tokens.size()) return std::nullopt;
    return Asn::parse(tokens[i]);
  };
  const auto want_args = [&tokens](std::size_t n) { return tokens.size() == n + 1; };

  try {
    if (cmd == "ping") return "OK pong";
    if (cmd == "help") {
      return "OK commands: PING REL RANK CONESIZE CONE INCONE PROVIDERS "
             "CUSTOMERS PEERS TOP INTERSECT CLIQUEPATH CLIQUE STATS METRICS "
             "EPOCHS ALGOS CONEDIFF DISAGREE RELOAD HELP QUIT (prefix "
             "@<epoch> and/or @<algorithm> scopes a command)";
    }
    if (cmd == "epochs") {
      std::string out = "OK";
      for (const auto& label : view.epochs()) out += " " + label;
      return out;
    }
    if (cmd == "algos" || cmd == "algorithms") {
      const SnapshotRegistry::Entry* base = scope;
      if (base == nullptr) {
        auto current = require_current(view);
        if (!current.ok()) return "ERR " + current.error().context;
        base = current.value();
      }
      std::string out = "OK";
      for (const auto& name : base->algo_names) out += " " + name;
      return out;
    }
    if (cmd == "disagree") {
      if (tokens.size() != 3 && tokens.size() != 4) {
        return "ERR usage: DISAGREE <algoA> <algoB> [limit]";
      }
      std::uint32_t limit = 0;
      if (tokens.size() == 4) {
        const auto parsed = util::parse_unsigned<std::uint32_t>(tokens[3]);
        if (!parsed) return "ERR usage: DISAGREE <algoA> <algoB> [limit]";
        limit = *parsed;
      }
      const SnapshotRegistry::Entry* base = scope;
      if (base == nullptr) {
        auto current = require_current(view);
        if (!current.ok()) return "ERR " + current.error().context;
        base = current.value();
      }
      auto a = require_algo(view, *base, std::string(tokens[1]));
      if (!a.ok()) return "ERR " + a.error().context;
      auto b = require_algo(view, *base, std::string(tokens[2]));
      if (!b.ok()) return "ERR " + b.error().context;
      view.owner()
          .registry()
          .counter("asrankd_disagreements_total", "DISAGREE queries served")
          .inc();
      const auto rows = disagreements(a.value()->index(), b.value()->index());
      const std::size_t shown =
          limit == 0 ? rows.size() : std::min<std::size_t>(limit, rows.size());
      const auto rel_text = [](std::uint8_t code) -> std::string {
        if (code == kRelNone) return "none";
        return std::string(to_string(static_cast<RelView>(code)));
      };
      std::ostringstream os;
      os << "OK " << rows.size();
      for (std::size_t i = 0; i < shown; ++i) {
        os << ' ' << rows[i].a.value() << ':' << rows[i].b.value() << ':'
           << rel_text(rows[i].rel_a) << ':' << rel_text(rows[i].rel_b);
      }
      return os.str();
    }
    if (cmd == "conediff") {
      const auto as = arg_as(1);
      if (!want_args(3) || !as) return "ERR usage: CONEDIFF <asn> <epochA> <epochB>";
      auto a = require_epoch(view, std::string(tokens[2]));
      if (!a.ok()) return "ERR " + a.error().context;
      auto b = require_epoch(view, std::string(tokens[3]));
      if (!b.ok()) return "ERR " + b.error().context;
      view.owner()
          .registry()
          .counter("asrankd_cone_diffs_total", "CONE_DIFF queries served")
          .inc();
      auto* engine_a = a.value()->engine.get();
      auto* engine_b = b.value()->engine.get();
      const auto cone_a = engine_a->cone(*as);
      const auto cone_b = engine_b->cone(*as);
      std::ostringstream os;
      os << "OK";
      for (const Asn added : engine_b->cone_minus(*as, cone_a)) {
        os << " +" << added.value();
      }
      for (const Asn removed : engine_a->cone_minus(*as, cone_b)) {
        os << " -" << removed.value();
      }
      return os.str();
    }
    if (cmd == "reload") {
      if (!local_peer) return "ERR reload denied: not a local peer";
      if (tokens.size() != 2 && tokens.size() != 3) {
        return "ERR usage: RELOAD <path> [epoch]";
      }
      auto loaded = view.owner().load_file(
          std::string(tokens[1]),
          tokens.size() == 3 ? std::string(tokens[2]) : std::string());
      if (!loaded.ok()) return "ERR " + loaded.error().context;
      return "OK " + loaded.value().label + " " +
             std::to_string(loaded.value().engine->index().as_count());
    }

    // Everything below is engine-scoped: default to the current epoch's
    // primary algorithm.
    if (engine == nullptr) {
      auto current = require_current(view);
      if (!current.ok()) return "ERR " + current.error().context;
      engine = current.value()->engine.get();
    }

    if (cmd == "rel") {
      const auto a = arg_as(1), b = arg_as(2);
      if (!want_args(2) || !a || !b) return "ERR usage: REL <asn> <asn>";
      const auto rel = engine->relationship(*a, *b);
      return std::string("OK ") + (rel ? std::string(to_string(*rel)) : "none");
    }
    if (cmd == "rank") {
      const auto as = arg_as(1);
      if (!want_args(1) || !as) return "ERR usage: RANK <asn>";
      return "OK " + std::to_string(engine->rank(*as).value_or(0));
    }
    if (cmd == "conesize") {
      const auto as = arg_as(1);
      if (!want_args(1) || !as) return "ERR usage: CONESIZE <asn>";
      return "OK " + std::to_string(engine->cone_size(*as));
    }
    if (cmd == "cone") {
      const auto as = arg_as(1);
      if (!want_args(1) || !as) return "ERR usage: CONE <asn>";
      return "OK " + join_asns(engine->cone(*as));
    }
    if (cmd == "incone") {
      const auto a = arg_as(1), b = arg_as(2);
      if (!want_args(2) || !a || !b) return "ERR usage: INCONE <asn> <member>";
      return engine->in_cone(*a, *b) ? "OK yes" : "OK no";
    }
    if (cmd == "providers" || cmd == "customers" || cmd == "peers") {
      const auto as = arg_as(1);
      if (!want_args(1) || !as) return "ERR usage: " + util::to_lower(cmd) + " <asn>";
      const auto list = cmd == "providers" ? engine->providers(*as)
                        : cmd == "customers" ? engine->customers(*as)
                                             : engine->peers(*as);
      return "OK " + join_asns(list);
    }
    if (cmd == "top") {
      if (!want_args(1)) return "ERR usage: TOP <n>";
      const auto n = util::parse_unsigned<std::uint32_t>(tokens[1]);
      if (!n) return "ERR usage: TOP <n>";
      std::ostringstream os;
      os << "OK";
      for (const auto& entry : engine->top(*n)) {
        os << ' ' << entry.rank << ':' << entry.as.value() << ':' << entry.cone_size
           << ':' << entry.transit_degree;
      }
      return os.str();
    }
    if (cmd == "intersect") {
      const auto a = arg_as(1), b = arg_as(2);
      if (!want_args(2) || !a || !b) return "ERR usage: INTERSECT <asn> <asn>";
      return "OK " + join_asns(*engine->cone_intersection(*a, *b));
    }
    if (cmd == "cliquepath") {
      const auto as = arg_as(1);
      if (!want_args(1) || !as) return "ERR usage: CLIQUEPATH <asn>";
      return "OK " + join_asns(*engine->path_to_clique(*as));
    }
    if (cmd == "clique") return "OK " + join_asns(engine->clique());
    if (cmd == "stats") {
      engine->record_stats_query();
      std::string out = "OK\n" + engine->render_stats() + ".";
      return out;
    }
    if (cmd == "metrics") {
      engine->registry()
          .counter("asrankd_metrics_requests_total",
                   "METRICS opcode / `metrics` text command serves")
          .inc();
      return "OK\n" + engine->registry().render_prometheus() + ".";
    }
    return "ERR unknown command '" + std::string(tokens[0]) + "' (try HELP)";
  } catch (const std::exception& error) {
    return std::string("ERR ") + error.what();
  }
}

std::string handle_text_request(SnapshotRegistry& registry, std::string_view line,
                                bool local_peer) {
  runtime::ebr::Guard guard(registry.reclaim_domain());
  return handle_text_request(registry.read_view(), line, local_peer);
}

// ------------------------------------------- task-runtime worker context --

struct Server::WorkerCtx {
  std::unordered_map<std::uint64_t, std::unique_ptr<TaskConn>> conns;
  /// Connections closed during a dispatch batch; freed on the next pass so a
  /// handler may deregister itself mid-callback (see runtime::IoHandler).
  std::vector<std::unique_ptr<TaskConn>> graveyard;
  runtime::ebr::Domain::Slot* ebr_slot = nullptr;
  std::uint64_t next_conn_id = 1;
};

// -------------------------------------- resumable connection state machine --

/// One task-runtime connection: a buffered, non-blocking state machine that
/// the owning worker resumes from reactor readiness, timer checkpoints, and
/// shutdown.  Requests are parsed out of rbuf_ (binary frames and text lines
/// interleave freely, as in the blocking runtime), executed under an EBR
/// guard, and responses accumulate in wbuf_ with write interest armed only
/// while flushes would block.
class Server::TaskConn final : public runtime::IoHandler {
 public:
  TaskConn(Server& server, std::size_t worker, std::uint64_t id, int fd, bool local)
      : server_(server), worker_(worker), id_(id), fd_(fd), local_(local) {}

  [[nodiscard]] bool closed() const noexcept { return closed_; }

  void start() {
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
      fail("fcntl(O_NONBLOCK)");
      return;
    }
    if (!reactor().add(fd_, runtime::Reactor::kRead, this)) {
      fail("reactor add");
      return;
    }
    registered_ = true;
    update_timers();
  }

  void on_io(std::uint32_t events) override {
    if (closed_) return;
    if ((events & runtime::Reactor::kWrite) != 0) {
      flush();
      if (closed_) return;
    }
    if ((events & runtime::Reactor::kRead) != 0) handle_readable();
  }

  void on_timer(std::uint32_t kind) {
    if (closed_) return;
    bool& entry = kind == kTimerIdle ? idle_entry_ : deadline_entry_;
    entry = false;
    const auto logical = kind == kTimerIdle ? idle_deadline_ : query_deadline_;
    if (logical == kNever) return;  // deadline lapsed; checkpoint is stale
    const auto now = Clock::now();
    if (now < logical) {
      // The logical deadline moved later (new request / new idle period);
      // re-arm one checkpoint at the current target.
      ensure_timer(kind, logical);
      return;
    }
    if (kind == kTimerIdle) {
      server_.idle_timeouts_total_->inc();
    } else {
      server_.deadline_timeouts_total_->inc();
    }
    close_conn();
  }

  /// Server shutdown: one best-effort non-blocking flush, then close — the
  /// blocking runtime's "finish the current request, drop the rest" shape.
  void shutdown_close() {
    if (closed_) return;
    closing_ = true;
    flush();
    if (!closed_) close_conn();
  }

 private:
  enum : std::uint32_t { kTimerIdle = 1, kTimerDeadline = 2 };
  using Clock = std::chrono::steady_clock;
  static constexpr Clock::time_point kNever = Clock::time_point::max();
  static constexpr std::size_t kMaxTextLine = 4096;
  static constexpr std::size_t kReadChunk = 16384;

  runtime::Reactor& reactor() { return server_.scheduler_->reactor(worker_); }

  void handle_readable() {
    bool eof = false;
    char chunk[kReadChunk];
    for (;;) {
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n > 0) {
        rbuf_.insert(rbuf_.end(), chunk, chunk + n);
        continue;  // edge-triggered: drain until EAGAIN
      }
      if (n == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      fail(std::string("recv: ") + std::strerror(errno));
      return;
    }
    process_input();
    if (closed_) return;
    if (eof) {
      if (!rbuf_.empty() && !closing_) {
        // EOF mid-request, same as the blocking runtime's truncated read.
        fail("unexpected EOF mid-request");
        return;
      }
      closing_ = true;  // clean EOF: flush what we owe, then close
    }
    update_timers();
    flush();
  }

  void process_input() {
    std::size_t pos = 0;
    while (!closed_ && !closing_) {
      const std::size_t avail = rbuf_.size() - pos;
      if (avail == 0) break;
      if (rbuf_[pos] == kBinaryMarker) {
        if (avail < 5) break;  // partial header
        const std::uint32_t len =
            static_cast<std::uint32_t>(rbuf_[pos + 1]) |
            static_cast<std::uint32_t>(rbuf_[pos + 2]) << 8 |
            static_cast<std::uint32_t>(rbuf_[pos + 3]) << 16 |
            static_cast<std::uint32_t>(rbuf_[pos + 4]) << 24;
        if (len > kMaxPayload) {
          fail("frame length " + std::to_string(len) + " exceeds limit");
          return;
        }
        if (avail < 5 + static_cast<std::size_t>(len)) break;  // partial body
        server_.frames_total_->inc();
        const std::span<const std::uint8_t> payload(rbuf_.data() + pos + 5, len);
        std::vector<std::uint8_t> response;
        {
          runtime::ebr::Guard guard(server_.registry_.reclaim_domain(), *ebr_slot());
          response =
              handle_binary_request(server_.registry_.read_view(), payload, local_);
        }
        append_frame(response);
        pos += 5 + static_cast<std::size_t>(len);
      } else {
        const auto* begin = rbuf_.data() + pos;
        const auto* nl =
            static_cast<const std::uint8_t*>(std::memchr(begin, '\n', avail));
        if (nl == nullptr) {
          if (avail > kMaxTextLine) {
            fail("text command too long");
            return;
          }
          break;  // partial line
        }
        const std::size_t line_len = static_cast<std::size_t>(nl - begin);
        if (line_len > kMaxTextLine) {
          fail("text command too long");
          return;
        }
        const std::string_view line(reinterpret_cast<const char*>(begin), line_len);
        pos += line_len + 1;
        const auto trimmed = util::trim(line);
        if (util::iequals(trimmed, "quit") || util::iequals(trimmed, "exit")) {
          closing_ = true;  // close after the pending responses flush
          break;
        }
        server_.text_commands_total_->inc();
        std::string response;
        {
          runtime::ebr::Guard guard(server_.registry_.reclaim_domain(), *ebr_slot());
          response = handle_text_request(server_.registry_.read_view(), line, local_);
        }
        response += '\n';
        wbuf_.insert(wbuf_.end(), response.begin(), response.end());
      }
    }
    if (!closed_ && pos > 0) {
      rbuf_.erase(rbuf_.begin(), rbuf_.begin() + static_cast<std::ptrdiff_t>(pos));
    }
  }

  void append_frame(std::span<const std::uint8_t> payload) {
    const auto len = static_cast<std::uint32_t>(payload.size());
    wbuf_.push_back(kBinaryMarker);
    wbuf_.push_back(static_cast<std::uint8_t>(len & 0xFF));
    wbuf_.push_back(static_cast<std::uint8_t>((len >> 8) & 0xFF));
    wbuf_.push_back(static_cast<std::uint8_t>((len >> 16) & 0xFF));
    wbuf_.push_back(static_cast<std::uint8_t>((len >> 24) & 0xFF));
    wbuf_.insert(wbuf_.end(), payload.begin(), payload.end());
  }

  void flush() {
    while (wpos_ < wbuf_.size()) {
      const ssize_t n = ::write(fd_, wbuf_.data() + wpos_, wbuf_.size() - wpos_);
      if (n > 0) {
        wpos_ += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!want_write_) {
          want_write_ = true;
          reactor().modify(fd_, runtime::Reactor::kRead | runtime::Reactor::kWrite);
        }
        return;
      }
      fail(std::string("send: ") + std::strerror(errno));
      return;
    }
    wbuf_.clear();
    wpos_ = 0;
    if (want_write_) {
      want_write_ = false;
      reactor().modify(fd_, runtime::Reactor::kRead);
    }
    if (closing_) close_conn();
  }

  /// Re-derive which logical deadline governs: the query deadline while a
  /// partial request sits in rbuf_, the idle timeout while awaiting a first
  /// byte.  Heap checkpoints are reused lazily (at most one per kind).
  void update_timers() {
    if (closed_ || closing_) {
      idle_deadline_ = kNever;
      query_deadline_ = kNever;
      return;
    }
    if (!rbuf_.empty()) {
      idle_deadline_ = kNever;
      if (server_.config_.query_deadline_ms > 0 && query_deadline_ == kNever) {
        query_deadline_ =
            Clock::now() + std::chrono::milliseconds(server_.config_.query_deadline_ms);
        ensure_timer(kTimerDeadline, query_deadline_);
      }
    } else {
      query_deadline_ = kNever;
      if (server_.config_.idle_timeout_ms > 0) {
        idle_deadline_ =
            Clock::now() + std::chrono::milliseconds(server_.config_.idle_timeout_ms);
        ensure_timer(kTimerIdle, idle_deadline_);
      }
    }
  }

  void ensure_timer(std::uint32_t kind, Clock::time_point deadline) {
    bool& entry = kind == kTimerIdle ? idle_entry_ : deadline_entry_;
    if (entry) return;  // live checkpoint will re-arm itself if needed
    entry = true;
    server_.scheduler_->timers(worker_).schedule(deadline, id_, kind);
  }

  void fail(const std::string& what) {
    server_.protocol_errors_total_->inc();
    obs::log_warn("connection dropped", {{"error", what}});
    close_conn();
  }

  void close_conn() {
    if (closed_) return;
    closed_ = true;
    if (registered_) reactor().remove(fd_);
    ::close(fd_);
    fd_ = -1;
    server_.active_connections_.fetch_sub(1, std::memory_order_relaxed);
    // Defer destruction to the worker's next pass: we may be deep inside
    // this object's own on_io/on_timer frame right now.
    auto& ctx = *server_.worker_ctx_[worker_];
    auto it = ctx.conns.find(id_);
    if (it != ctx.conns.end()) {
      ctx.graveyard.push_back(std::move(it->second));
      ctx.conns.erase(it);
    }
  }

  runtime::ebr::Domain::Slot* ebr_slot() {
    return server_.worker_ctx_[worker_]->ebr_slot;
  }

  Server& server_;
  const std::size_t worker_;
  const std::uint64_t id_;
  int fd_;
  const bool local_;
  bool registered_ = false;
  bool closing_ = false;  ///< QUIT / clean EOF: close once wbuf_ drains
  bool closed_ = false;
  bool want_write_ = false;
  std::vector<std::uint8_t> rbuf_;
  std::vector<std::uint8_t> wbuf_;
  std::size_t wpos_ = 0;
  Clock::time_point idle_deadline_ = kNever;
  Clock::time_point query_deadline_ = kNever;
  bool idle_entry_ = false;      ///< an idle checkpoint is in the timer heap
  bool deadline_entry_ = false;  ///< a deadline checkpoint is in the heap
};

// ---------------------------------------------------------------- server --

Server::Server(SnapshotRegistry& registry, ServerConfig config)
    : registry_(registry),
      config_(std::move(config)),
      connections_total_(&registry.registry().counter(
          "asrankd_connections_total", "TCP connections accepted")),
      frames_total_(&registry.registry().counter(
          "asrankd_frames_total", "Binary request frames served")),
      text_commands_total_(&registry.registry().counter(
          "asrankd_text_commands_total", "Text-mode command lines served")),
      protocol_errors_total_(&registry.registry().counter(
          "asrankd_protocol_errors_total",
          "Connections dropped on framing or socket errors")),
      shed_total_(&registry.registry().counter(
          "asrankd_connections_shed_total",
          "Connections refused at the admission limit")),
      idle_timeouts_total_(&registry.registry().counter(
          "asrankd_idle_timeouts_total",
          "Connections closed after the idle timeout")),
      deadline_timeouts_total_(&registry.registry().counter(
          "asrankd_deadline_timeouts_total",
          "Connections closed when a request missed its read deadline")),
      admission_steals_total_(&registry.registry().counter(
          "asrankd_runtime_admission_steals_total",
          "Admissions adopted by a worker other than the acceptor's hint")) {
  // threads == 0 means "use every hardware thread", matching
  // InferenceConfig::threads; the resolved count is logged and exported so
  // deployments can see what 0 meant on this machine.
  threads_ = util::resolve_threads(config_.threads);
  registry.registry()
      .gauge("asrankd_worker_threads", "Resolved serving worker count")
      .set(static_cast<std::int64_t>(threads_));

  // The worker poll tick bounds both idle-timeout resolution and the
  // worst-case lag before a worker notices anything its wakeup path does
  // not already cover; derive it from the idle timeout instead of a fixed
  // 200ms so short timeouts stay accurate.
  poll_tick_ms_ = 200;
  if (config_.idle_timeout_ms > 0) {
    poll_tick_ms_ = std::clamp(config_.idle_timeout_ms / 4, 5, 200);
  }

  if (::pipe(stop_pipe_) != 0) sys_fail("pipe");
  if (::pipe(shutdown_pipe_) != 0) sys_fail("pipe");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) sys_fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    throw ProtocolError("bad listen address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    sys_fail("bind " + config_.host + ":" + std::to_string(config_.port));
  }
  if (::listen(listen_fd_, config_.backlog) != 0) sys_fail("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    sys_fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  obs::log_info("asrankd workers resolved",
                {{"requested", config_.threads},
                 {"resolved", threads_},
                 {"runtime", config_.runtime == RuntimeMode::kTask ? "task" : "blocking"}});
}

Server::~Server() {
  if (scheduler_) {
    scheduler_->stop();
    scheduler_->join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (const int fd : stop_pipe_) {
    if (fd >= 0) ::close(fd);
  }
  for (const int fd : shutdown_pipe_) {
    if (fd >= 0) ::close(fd);
  }
  if (g_signal_fd.load(std::memory_order_relaxed) == stop_pipe_[1]) {
    g_signal_fd.store(-1, std::memory_order_relaxed);
  }
}

void Server::install_signal_handlers() {
  g_signal_fd.store(stop_pipe_[1], std::memory_order_relaxed);
  struct sigaction action{};
  action.sa_handler = on_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGHUP, &action, nullptr);
}

void Server::stop() noexcept {
  const char byte = 's';
  [[maybe_unused]] const auto n = ::write(stop_pipe_[1], &byte, 1);
}

void Server::run() {
  if (config_.runtime == RuntimeMode::kBlocking) {
    run_blocking();
  } else {
    run_task();
  }
}

void Server::accept_loop(const std::function<void(Pending)>& dispatch) {
  bool stopping = false;
  while (!stopping) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) {
      // Drain pending command bytes: 's' = stop, 'h' = SIGHUP reload.
      char cmds[16];
      const ssize_t n = ::read(stop_pipe_[0], cmds, sizeof cmds);
      bool reload = false;
      for (ssize_t i = 0; i < n; ++i) {
        if (cmds[i] == 's') stopping = true;
        if (cmds[i] == 'h') reload = true;
      }
      if (reload && !stopping) {
        if (config_.reload_path.empty()) {
          obs::log_warn("SIGHUP ignored: no --reload snapshot path configured");
        } else {
          // Errors are already counted and logged by the registry; the old
          // epoch keeps serving either way.
          (void)registry_.load_file(config_.reload_path, config_.reload_label);
        }
      }
      if (stopping) break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      sockaddr_in peer{};
      socklen_t peer_len = sizeof peer;
      const int client =
          ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &peer_len);
      if (client < 0) continue;
      if (config_.max_connections > 0 &&
          active_connections_.load(std::memory_order_relaxed) >=
              config_.max_connections) {
        // Load shedding: one parseable text line, then close.  Binary
        // clients recognize the non-0x01 first byte as a shed notice.
        static constexpr char kShedLine[] =
            "ERR shedding: connection limit reached, retry later\n";
        [[maybe_unused]] const auto w =
            ::write(client, kShedLine, sizeof kShedLine - 1);
        ::close(client);
        shed_total_->inc();
        continue;
      }
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      const bool local =
          (ntohl(peer.sin_addr.s_addr) >> 24) == 127;  // 127.0.0.0/8
      connections_.fetch_add(1, std::memory_order_relaxed);
      active_connections_.fetch_add(1, std::memory_order_relaxed);
      connections_total_->inc();
      dispatch(Pending{client, local});
    }
  }
  running_.store(false, std::memory_order_release);
}

// ------------------------------------------------------------ task runtime --

void Server::run_task() {
  running_.store(true, std::memory_order_release);

  runtime::TaskSchedulerConfig scfg;
  scfg.workers = threads_;
  scfg.tick_ms = poll_tick_ms_;
  scfg.metric_prefix = "asrankd_runtime";
  scheduler_ = std::make_unique<runtime::TaskScheduler>(scfg, &registry_.registry());

  // Admission capacity tracks the connection bound, so with max_connections
  // set the queue can never overflow (queued-but-unadopted sockets already
  // count against active_connections_).
  const std::size_t admission_cap =
      config_.max_connections > 0 ? std::max<std::size_t>(config_.max_connections, 64)
                                  : 4096;
  admissions_ = std::make_unique<runtime::BoundedMpmcQueue<Admission>>(admission_cap);

  worker_ctx_.clear();
  for (std::size_t i = 0; i < threads_; ++i) {
    worker_ctx_.push_back(std::make_unique<WorkerCtx>());
  }

  runtime::TaskScheduler::Hooks hooks;
  hooks.on_start = [this](std::size_t w) {
    worker_ctx_[w]->ebr_slot = registry_.reclaim_domain().acquire_slot();
  };
  hooks.on_stop = [this](std::size_t w) { close_worker_connections(w); };
  hooks.on_pass = [this](std::size_t w) {
    const bool did = drain_admissions(w);
    registry_.reclaim_pass();
    return did;
  };
  hooks.on_timer = [this](std::size_t w, std::uint64_t id, std::uint32_t kind) {
    conn_timer_fired(w, id, kind);
  };
  scheduler_->start(std::move(hooks));

  accept_loop([this](Pending pending) {
    const auto hint = rr_hint_.fetch_add(1, std::memory_order_relaxed) %
                      static_cast<std::uint32_t>(threads_);
    if (!admissions_->try_push(Admission{pending.fd, pending.local, hint})) {
      // Admission queue full (only reachable with max_connections == 0):
      // shed exactly like the accept-path limit, undoing the active count.
      static constexpr char kShedLine[] =
          "ERR shedding: connection limit reached, retry later\n";
      [[maybe_unused]] const auto w =
          ::write(pending.fd, kShedLine, sizeof kShedLine - 1);
      ::close(pending.fd);
      shed_total_->inc();
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    scheduler_->post(hint, [this, hint] { drain_admissions(hint); });
  });

  scheduler_->stop();
  scheduler_->join();
  // Sockets accepted but never adopted by a worker.
  while (auto admission = admissions_->try_pop()) {
    ::close(admission->fd);
    active_connections_.fetch_sub(1, std::memory_order_relaxed);
  }
  scheduler_.reset();
  admissions_.reset();
  worker_ctx_.clear();
}

bool Server::drain_admissions(std::size_t worker) {
  auto& ctx = *worker_ctx_[worker];
  bool did = !ctx.graveyard.empty();
  ctx.graveyard.clear();
  if (admissions_->size_approx() == 0) return did;
  while (auto admission = admissions_->try_pop()) {
    adopt_connection(worker, *admission);
    did = true;
  }
  return did;
}

void Server::adopt_connection(std::size_t worker, const Admission& admission) {
  if (admission.hint != worker) admission_steals_total_->inc();
  auto& ctx = *worker_ctx_[worker];
  const std::uint64_t id = ctx.next_conn_id++;
  auto conn = std::make_unique<TaskConn>(*this, worker, id, admission.fd,
                                         admission.local);
  TaskConn* raw = conn.get();
  ctx.conns.emplace(id, std::move(conn));
  raw->start();
  // Data may have arrived before registration; both backends report initial
  // readiness, but one explicit kick makes it deterministic.
  if (!raw->closed()) raw->on_io(runtime::Reactor::kRead);
}

void Server::conn_timer_fired(std::size_t worker, std::uint64_t conn_id,
                              std::uint32_t kind) {
  auto& ctx = *worker_ctx_[worker];
  const auto it = ctx.conns.find(conn_id);
  if (it == ctx.conns.end()) return;  // connection already gone; stale checkpoint
  it->second->on_timer(kind);
}

void Server::close_worker_connections(std::size_t worker) {
  auto& ctx = *worker_ctx_[worker];
  std::vector<TaskConn*> open;
  open.reserve(ctx.conns.size());
  for (auto& [id, conn] : ctx.conns) open.push_back(conn.get());
  for (auto* conn : open) conn->shutdown_close();  // moves entries to graveyard
  ctx.graveyard.clear();
  ctx.conns.clear();
  if (ctx.ebr_slot != nullptr) {
    registry_.reclaim_domain().release_slot(ctx.ebr_slot);
    ctx.ebr_slot = nullptr;
  }
}

// -------------------------------------------------------- blocking runtime --

void Server::run_blocking() {
  running_.store(true, std::memory_order_release);
  // Chunk 0 of the pool runs inline on this thread, which becomes the
  // accept loop; chunks 1..threads are the connection workers.
  util::ThreadPool pool(threads_ + 1);
  pool.for_chunks(threads_ + 1, [this](std::size_t chunk, std::size_t, std::size_t) {
    if (chunk == 0) {
      accept_loop([this](Pending pending) {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        pending_.push_back(pending);
        queue_cv_.notify_one();
      });
      // Broadcast shutdown: one byte, never drained, so every worker's poll
      // on the read end turns level-triggered readable at once — workers
      // exit within one syscall instead of one poll tick.
      const char byte = 'x';
      [[maybe_unused]] const auto n = ::write(shutdown_pipe_[1], &byte, 1);
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        for (std::size_t i = 0; i < threads_; ++i) pending_.push_back({-1, false});
      }
      queue_cv_.notify_all();
    } else {
      connection_worker();
    }
  });
}

void Server::connection_worker() {
  auto& domain = registry_.reclaim_domain();
  auto* slot = domain.acquire_slot();
  while (true) {
    Pending next{-1, false};
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return !pending_.empty(); });
      next = pending_.front();
      pending_.pop_front();
    }
    if (next.fd < 0) break;
    try {
      handle_connection(next.fd, next.local, *slot);
    } catch (const TimeoutError&) {
      // A request that missed its read deadline; already counted.
      deadline_timeouts_total_->inc();
    } catch (const std::exception& error) {
      // Per-connection failures (malformed framing, resets) must not take
      // the worker down; the socket is simply closed.
      protocol_errors_total_->inc();
      obs::log_warn("connection dropped", {{"error", error.what()}});
    }
    ::close(next.fd);
    active_connections_.fetch_sub(1, std::memory_order_relaxed);
  }
  domain.release_slot(slot);
}

void Server::handle_connection(int fd, bool local_peer,
                               runtime::ebr::Domain::Slot& slot) {
  using Clock = std::chrono::steady_clock;
  while (true) {
    // Interruptible first-byte wait: bounded by the idle timeout, woken
    // instantly by the shutdown broadcast pipe.
    std::uint8_t first = 0;
    const auto idle_deadline =
        Clock::now() + std::chrono::milliseconds(
                           config_.idle_timeout_ms > 0 ? config_.idle_timeout_ms
                                                       : 0);
    while (true) {
      pollfd pfds[2] = {{fd, POLLIN, 0}, {shutdown_pipe_[0], POLLIN, 0}};
      const int ready = ::poll(pfds, 2, poll_tick_ms_);
      if (!running_.load(std::memory_order_acquire)) return;
      if (ready < 0 && errno != EINTR) return;
      if (ready > 0) {
        if (pfds[1].revents != 0) return;  // shutdown broadcast
        if (pfds[0].revents != 0) break;
      }
      if (config_.idle_timeout_ms > 0 && Clock::now() >= idle_deadline) {
        idle_timeouts_total_->inc();
        return;
      }
    }
    if (!read_exact(fd, &first, 1)) return;  // clean EOF between requests

    // From the first byte on, the query deadline governs reads.
    const int deadline_ms = config_.query_deadline_ms > 0 ? config_.query_deadline_ms : -1;

    if (first == kBinaryMarker) {
      const auto request = read_frame_body(fd, deadline_ms);
      frames_total_->inc();
      std::vector<std::uint8_t> response;
      {
        runtime::ebr::Guard guard(registry_.reclaim_domain(), slot);
        response = handle_binary_request(registry_.read_view(), request, local_peer);
      }
      write_frame(fd, response);
      continue;
    }

    // Text mode: `first` begins a newline-terminated command.  The whole
    // line shares one deadline budget.
    const auto query_deadline =
        Clock::now() + std::chrono::milliseconds(deadline_ms > 0 ? deadline_ms : 0);
    std::string line(1, static_cast<char>(first));
    char c = 0;
    while (true) {
      int remaining = -1;
      if (deadline_ms > 0) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                              query_deadline - Clock::now())
                              .count();
        remaining = left > 0 ? static_cast<int>(left) : 0;
      }
      if (!read_exact(fd, &c, 1, remaining) || c == '\n') break;
      line.push_back(c);
      if (line.size() > 4096) throw ProtocolError("text command too long");
    }
    const auto trimmed = util::trim(line);
    if (util::iequals(trimmed, "quit") || util::iequals(trimmed, "exit")) return;
    text_commands_total_->inc();
    std::string response;
    {
      runtime::ebr::Guard guard(registry_.reclaim_domain(), slot);
      response = handle_text_request(registry_.read_view(), line, local_peer);
    }
    response += "\n";
    write_all(fd, response.data(), response.size());
  }
}

}  // namespace asrank::serve
