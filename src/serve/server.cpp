#include "serve/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <sstream>

#include "obs/log.h"
#include "serve/protocol.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace asrank::serve {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw ProtocolError(what + ": " + std::strerror(errno));
}

void encode_list(WireWriter& writer, std::span<const Asn> list) {
  writer.u32(static_cast<std::uint32_t>(list.size()));
  for (const Asn as : list) writer.u32(as.value());
}

std::vector<std::uint8_t> error_response(const std::string& message) {
  WireWriter writer;
  writer.u8(static_cast<std::uint8_t>(Status::kError));
  writer.text(message);
  return writer.take();
}

std::string join_asns(std::span<const Asn> list) {
  std::ostringstream os;
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (i != 0) os << ' ';
    os << list[i].value();
  }
  return os.str();
}

/// The self-pipe write end for the signal handler (one server per process).
std::atomic<int> g_signal_fd{-1};

void on_signal(int) {
  const int fd = g_signal_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    // Best-effort: if the pipe is full a stop byte is already pending.
    [[maybe_unused]] const auto n = ::write(fd, &byte, 1);
  }
}

}  // namespace

// ------------------------------------------------------ request handlers --

std::vector<std::uint8_t> handle_binary_request(QueryEngine& engine,
                                                std::span<const std::uint8_t> payload) {
  // Request decoding runs on the Result rail; a decode Error (truncated
  // operand, unknown opcode, trailing bytes) becomes an error response at
  // this boundary.  The catch-all remains for query execution itself.
  const auto respond = [&engine,
                        payload]() -> Result<std::vector<std::uint8_t>> {
    WireReader reader(payload);
    ASRANK_TRY(op_byte, reader.u8());
    const auto op = static_cast<Op>(op_byte);
    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(Status::kOk));
    switch (op) {
      case Op::kRelationship: {
        ASRANK_TRY(a, reader.u32());
        ASRANK_TRY(b, reader.u32());
        const auto view = engine.relationship(Asn(a), Asn(b));
        writer.u8(view ? static_cast<std::uint8_t>(*view) : kRelNone);
        break;
      }
      case Op::kRank: {
        ASRANK_TRY(as, reader.u32());
        writer.u32(engine.rank(Asn(as)).value_or(0));
        break;
      }
      case Op::kConeSize: {
        ASRANK_TRY(as, reader.u32());
        writer.u64(engine.cone_size(Asn(as)));
        break;
      }
      case Op::kCone: {
        ASRANK_TRY(as, reader.u32());
        encode_list(writer, engine.cone(Asn(as)));
        break;
      }
      case Op::kInCone: {
        ASRANK_TRY(as, reader.u32());
        ASRANK_TRY(member, reader.u32());
        writer.u8(engine.in_cone(Asn(as), Asn(member)) ? 1 : 0);
        break;
      }
      case Op::kProviders: {
        ASRANK_TRY(as, reader.u32());
        encode_list(writer, engine.providers(Asn(as)));
        break;
      }
      case Op::kCustomers: {
        ASRANK_TRY(as, reader.u32());
        encode_list(writer, engine.customers(Asn(as)));
        break;
      }
      case Op::kPeers: {
        ASRANK_TRY(as, reader.u32());
        encode_list(writer, engine.peers(Asn(as)));
        break;
      }
      case Op::kTop: {
        ASRANK_TRY(n, reader.u32());
        const auto entries = engine.top(n);
        writer.u32(static_cast<std::uint32_t>(entries.size()));
        for (const auto& entry : entries) {
          writer.u32(entry.rank);
          writer.u32(entry.as.value());
          writer.u64(entry.cone_size);
          writer.u32(static_cast<std::uint32_t>(entry.transit_degree));
        }
        break;
      }
      case Op::kConeIntersect: {
        ASRANK_TRY(a, reader.u32());
        ASRANK_TRY(b, reader.u32());
        encode_list(writer, *engine.cone_intersection(Asn(a), Asn(b)));
        break;
      }
      case Op::kPathToClique: {
        ASRANK_TRY(as, reader.u32());
        encode_list(writer, *engine.path_to_clique(Asn(as)));
        break;
      }
      case Op::kClique: {
        encode_list(writer, engine.clique());
        break;
      }
      case Op::kStats: {
        engine.record_stats_query();
        writer.text(engine.render_stats());
        break;
      }
      case Op::kPing: {
        engine.ping();
        break;
      }
      case Op::kMetrics: {
        engine.registry()
            .counter("asrankd_metrics_requests_total",
                     "METRICS opcode / `metrics` text command serves")
            .inc();
        writer.text(engine.registry().render_prometheus());
        break;
      }
      default:
        return make_error(ErrorCode::kProtocol,
                          "unknown opcode " +
                              std::to_string(static_cast<unsigned>(op)));
    }
    if (!reader.done()) {
      return make_error(ErrorCode::kProtocol, "trailing bytes after request operands");
    }
    return writer.take();
  };

  try {
    auto response = respond();
    if (!response.ok()) return error_response(response.error().context);
    return std::move(response).value();
  } catch (const std::exception& error) {
    return error_response(error.what());
  }
}

std::string handle_text_request(QueryEngine& engine, std::string_view line) {
  const auto tokens = util::split_ws(util::trim(line));
  if (tokens.empty()) return "ERR empty command";
  const auto cmd = util::to_lower(tokens[0]);

  const auto arg_as = [&tokens](std::size_t i) -> std::optional<Asn> {
    if (i >= tokens.size()) return std::nullopt;
    return Asn::parse(tokens[i]);
  };
  const auto want_args = [&tokens](std::size_t n) { return tokens.size() == n + 1; };

  try {
    if (cmd == "ping") return "OK pong";
    if (cmd == "help") {
      return "OK commands: PING REL RANK CONESIZE CONE INCONE PROVIDERS "
             "CUSTOMERS PEERS TOP INTERSECT CLIQUEPATH CLIQUE STATS METRICS "
             "HELP QUIT";
    }
    if (cmd == "rel") {
      const auto a = arg_as(1), b = arg_as(2);
      if (!want_args(2) || !a || !b) return "ERR usage: REL <asn> <asn>";
      const auto view = engine.relationship(*a, *b);
      return std::string("OK ") + (view ? std::string(to_string(*view)) : "none");
    }
    if (cmd == "rank") {
      const auto as = arg_as(1);
      if (!want_args(1) || !as) return "ERR usage: RANK <asn>";
      return "OK " + std::to_string(engine.rank(*as).value_or(0));
    }
    if (cmd == "conesize") {
      const auto as = arg_as(1);
      if (!want_args(1) || !as) return "ERR usage: CONESIZE <asn>";
      return "OK " + std::to_string(engine.cone_size(*as));
    }
    if (cmd == "cone") {
      const auto as = arg_as(1);
      if (!want_args(1) || !as) return "ERR usage: CONE <asn>";
      return "OK " + join_asns(engine.cone(*as));
    }
    if (cmd == "incone") {
      const auto a = arg_as(1), b = arg_as(2);
      if (!want_args(2) || !a || !b) return "ERR usage: INCONE <asn> <member>";
      return engine.in_cone(*a, *b) ? "OK yes" : "OK no";
    }
    if (cmd == "providers" || cmd == "customers" || cmd == "peers") {
      const auto as = arg_as(1);
      if (!want_args(1) || !as) return "ERR usage: " + util::to_lower(cmd) + " <asn>";
      const auto list = cmd == "providers" ? engine.providers(*as)
                        : cmd == "customers" ? engine.customers(*as)
                                             : engine.peers(*as);
      return "OK " + join_asns(list);
    }
    if (cmd == "top") {
      if (!want_args(1)) return "ERR usage: TOP <n>";
      const auto n = util::parse_unsigned<std::uint32_t>(tokens[1]);
      if (!n) return "ERR usage: TOP <n>";
      std::ostringstream os;
      os << "OK";
      for (const auto& entry : engine.top(*n)) {
        os << ' ' << entry.rank << ':' << entry.as.value() << ':' << entry.cone_size
           << ':' << entry.transit_degree;
      }
      return os.str();
    }
    if (cmd == "intersect") {
      const auto a = arg_as(1), b = arg_as(2);
      if (!want_args(2) || !a || !b) return "ERR usage: INTERSECT <asn> <asn>";
      return "OK " + join_asns(*engine.cone_intersection(*a, *b));
    }
    if (cmd == "cliquepath") {
      const auto as = arg_as(1);
      if (!want_args(1) || !as) return "ERR usage: CLIQUEPATH <asn>";
      return "OK " + join_asns(*engine.path_to_clique(*as));
    }
    if (cmd == "clique") return "OK " + join_asns(engine.clique());
    if (cmd == "stats") {
      engine.record_stats_query();
      std::string out = "OK\n" + engine.render_stats() + ".";
      return out;
    }
    if (cmd == "metrics") {
      engine.registry()
          .counter("asrankd_metrics_requests_total",
                   "METRICS opcode / `metrics` text command serves")
          .inc();
      return "OK\n" + engine.registry().render_prometheus() + ".";
    }
    return "ERR unknown command '" + std::string(tokens[0]) + "' (try HELP)";
  } catch (const std::exception& error) {
    return std::string("ERR ") + error.what();
  }
}

// ---------------------------------------------------------------- server --

Server::Server(QueryEngine& engine, ServerConfig config)
    : engine_(engine),
      config_(std::move(config)),
      connections_total_(&engine.registry().counter(
          "asrankd_connections_total", "TCP connections accepted")),
      frames_total_(&engine.registry().counter(
          "asrankd_frames_total", "Binary request frames served")),
      text_commands_total_(&engine.registry().counter(
          "asrankd_text_commands_total", "Text-mode command lines served")),
      protocol_errors_total_(&engine.registry().counter(
          "asrankd_protocol_errors_total",
          "Connections dropped on framing or socket errors")) {
  config_.threads = std::max<std::size_t>(1, config_.threads);

  if (::pipe(stop_pipe_) != 0) sys_fail("pipe");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) sys_fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    throw ProtocolError("bad listen address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    sys_fail("bind " + config_.host + ":" + std::to_string(config_.port));
  }
  if (::listen(listen_fd_, config_.backlog) != 0) sys_fail("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    sys_fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (const int fd : stop_pipe_) {
    if (fd >= 0) ::close(fd);
  }
  if (g_signal_fd.load(std::memory_order_relaxed) == stop_pipe_[1]) {
    g_signal_fd.store(-1, std::memory_order_relaxed);
  }
}

void Server::install_signal_handlers() {
  g_signal_fd.store(stop_pipe_[1], std::memory_order_relaxed);
  struct sigaction action{};
  action.sa_handler = on_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

void Server::stop() noexcept {
  const char byte = 's';
  [[maybe_unused]] const auto n = ::write(stop_pipe_[1], &byte, 1);
}

void Server::run() {
  running_.store(true, std::memory_order_release);
  // Chunk 0 of the pool runs inline on this thread, which becomes the
  // accept loop; chunks 1..threads are the connection workers.
  util::ThreadPool pool(config_.threads + 1);
  pool.for_chunks(config_.threads + 1, [this](std::size_t chunk, std::size_t, std::size_t) {
    if (chunk == 0) {
      accept_loop();
    } else {
      connection_worker();
    }
  });
}

void Server::accept_loop() {
  while (true) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // stop requested
    if ((fds[0].revents & POLLIN) != 0) {
      const int client = ::accept(listen_fd_, nullptr, nullptr);
      if (client < 0) continue;
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      connections_.fetch_add(1, std::memory_order_relaxed);
      connections_total_->inc();
      std::lock_guard<std::mutex> lock(queue_mutex_);
      pending_.push_back(client);
      queue_cv_.notify_one();
    }
  }

  running_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (std::size_t i = 0; i < config_.threads; ++i) pending_.push_back(-1);
  }
  queue_cv_.notify_all();
}

void Server::connection_worker() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return !pending_.empty(); });
      fd = pending_.front();
      pending_.pop_front();
    }
    if (fd < 0) return;
    try {
      handle_connection(fd);
    } catch (const std::exception& error) {
      // Per-connection failures (malformed framing, resets) must not take
      // the worker down; the socket is simply closed.
      protocol_errors_total_->inc();
      obs::log_warn("connection dropped", {{"error", error.what()}});
    }
    ::close(fd);
  }
}

void Server::handle_connection(int fd) {
  while (true) {
    // Interruptible first-byte wait so idle keep-alive connections do not
    // pin workers past shutdown.
    std::uint8_t first = 0;
    while (true) {
      pollfd pfd{fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 200);
      if (!running_.load(std::memory_order_acquire)) return;
      if (ready < 0 && errno != EINTR) return;
      if (ready > 0) break;
    }
    if (!read_exact(fd, &first, 1)) return;  // clean EOF between requests

    if (first == kBinaryMarker) {
      const auto request = read_frame_body(fd);
      frames_total_->inc();
      const auto response = handle_binary_request(engine_, request);
      write_frame(fd, response);
      continue;
    }

    // Text mode: `first` begins a newline-terminated command.
    std::string line(1, static_cast<char>(first));
    char c = 0;
    while (read_exact(fd, &c, 1) && c != '\n') {
      line.push_back(c);
      if (line.size() > 4096) throw ProtocolError("text command too long");
    }
    const auto trimmed = util::trim(line);
    if (util::iequals(trimmed, "quit") || util::iequals(trimmed, "exit")) return;
    text_commands_total_->inc();
    const std::string response = handle_text_request(engine_, line) + "\n";
    write_all(fd, response.data(), response.size());
  }
}

}  // namespace asrank::serve
