#include "serve/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <sstream>

#include "obs/log.h"
#include "serve/protocol.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace asrank::serve {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw ProtocolError(what + ": " + std::strerror(errno));
}

void encode_list(WireWriter& writer, std::span<const Asn> list) {
  writer.u32(static_cast<std::uint32_t>(list.size()));
  for (const Asn as : list) writer.u32(as.value());
}

std::vector<std::uint8_t> error_response(const std::string& message) {
  WireWriter writer;
  writer.u8(static_cast<std::uint8_t>(Status::kError));
  writer.text(message);
  return writer.take();
}

std::string join_asns(std::span<const Asn> list) {
  std::ostringstream os;
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (i != 0) os << ' ';
    os << list[i].value();
  }
  return os.str();
}

/// The self-pipe write end for the signal handler (one server per process).
std::atomic<int> g_signal_fd{-1};

void on_signal(int sig) {
  const int fd = g_signal_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = sig == SIGHUP ? 'h' : 's';
    // Best-effort: if the pipe is full a command byte is already pending.
    [[maybe_unused]] const auto n = ::write(fd, &byte, 1);
  }
}

/// Engine-scoped opcodes (everything answerable from one epoch).  Registry
/// ops (EPOCHS/CONE_DIFF/RELOAD/WITH_EPOCH) are handled by the caller and
/// rejected here so they cannot nest.
Result<void> dispatch_engine_op(QueryEngine& engine, Op op, WireReader& reader,
                                WireWriter& writer) {
  switch (op) {
    case Op::kRelationship: {
      ASRANK_TRY(a, reader.u32());
      ASRANK_TRY(b, reader.u32());
      const auto view = engine.relationship(Asn(a), Asn(b));
      writer.u8(view ? static_cast<std::uint8_t>(*view) : kRelNone);
      break;
    }
    case Op::kRank: {
      ASRANK_TRY(as, reader.u32());
      writer.u32(engine.rank(Asn(as)).value_or(0));
      break;
    }
    case Op::kConeSize: {
      ASRANK_TRY(as, reader.u32());
      writer.u64(engine.cone_size(Asn(as)));
      break;
    }
    case Op::kCone: {
      ASRANK_TRY(as, reader.u32());
      encode_list(writer, engine.cone(Asn(as)));
      break;
    }
    case Op::kInCone: {
      ASRANK_TRY(as, reader.u32());
      ASRANK_TRY(member, reader.u32());
      writer.u8(engine.in_cone(Asn(as), Asn(member)) ? 1 : 0);
      break;
    }
    case Op::kProviders: {
      ASRANK_TRY(as, reader.u32());
      encode_list(writer, engine.providers(Asn(as)));
      break;
    }
    case Op::kCustomers: {
      ASRANK_TRY(as, reader.u32());
      encode_list(writer, engine.customers(Asn(as)));
      break;
    }
    case Op::kPeers: {
      ASRANK_TRY(as, reader.u32());
      encode_list(writer, engine.peers(Asn(as)));
      break;
    }
    case Op::kTop: {
      ASRANK_TRY(n, reader.u32());
      const auto entries = engine.top(n);
      writer.u32(static_cast<std::uint32_t>(entries.size()));
      for (const auto& entry : entries) {
        writer.u32(entry.rank);
        writer.u32(entry.as.value());
        writer.u64(entry.cone_size);
        writer.u32(static_cast<std::uint32_t>(entry.transit_degree));
      }
      break;
    }
    case Op::kConeIntersect: {
      ASRANK_TRY(a, reader.u32());
      ASRANK_TRY(b, reader.u32());
      encode_list(writer, *engine.cone_intersection(Asn(a), Asn(b)));
      break;
    }
    case Op::kPathToClique: {
      ASRANK_TRY(as, reader.u32());
      encode_list(writer, *engine.path_to_clique(Asn(as)));
      break;
    }
    case Op::kClique: {
      encode_list(writer, engine.clique());
      break;
    }
    case Op::kStats: {
      engine.record_stats_query();
      writer.text(engine.render_stats());
      break;
    }
    case Op::kPing: {
      engine.ping();
      break;
    }
    case Op::kMetrics: {
      engine.registry()
          .counter("asrankd_metrics_requests_total",
                   "METRICS opcode / `metrics` text command serves")
          .inc();
      writer.text(engine.registry().render_prometheus());
      break;
    }
    default:
      return make_error(ErrorCode::kProtocol,
                        "unknown opcode " +
                            std::to_string(static_cast<unsigned>(op)));
  }
  if (!reader.done()) {
    return make_error(ErrorCode::kProtocol, "trailing bytes after request operands");
  }
  return {};
}

/// Current-epoch engine or a kNotFound Error before the first install.
Result<std::shared_ptr<QueryEngine>> require_current(SnapshotRegistry& registry) {
  auto engine = registry.current();
  if (!engine) return make_error(ErrorCode::kNotFound, "no snapshot loaded");
  return engine;
}

Result<std::shared_ptr<QueryEngine>> require_epoch(SnapshotRegistry& registry,
                                                   const std::string& label) {
  auto engine = registry.epoch(label);
  if (!engine) {
    return make_error(ErrorCode::kUnknownEpoch, "unknown epoch '" + label + "'");
  }
  registry.registry()
      .counter("asrankd_epoch_queries_total",
               "Queries naming an explicit epoch")
      .inc();
  return engine;
}

}  // namespace

// ------------------------------------------------------ request handlers --

std::vector<std::uint8_t> handle_binary_request(SnapshotRegistry& registry,
                                                std::span<const std::uint8_t> payload,
                                                bool local_peer) {
  // Request decoding runs on the Result rail; a decode Error (truncated
  // operand, unknown opcode, trailing bytes) becomes an error response at
  // this boundary.  The catch-all remains for query execution itself.
  const auto respond = [&registry, payload,
                        local_peer]() -> Result<std::vector<std::uint8_t>> {
    WireReader reader(payload);
    ASRANK_TRY(op_byte, reader.u8());
    const auto op = static_cast<Op>(op_byte);
    WireWriter writer;
    writer.u8(static_cast<std::uint8_t>(Status::kOk));
    switch (op) {
      case Op::kEpochs: {
        const auto labels = registry.epochs();
        writer.u32(static_cast<std::uint32_t>(labels.size()));
        for (const auto& label : labels) writer.str16(label);
        if (!reader.done()) {
          return make_error(ErrorCode::kProtocol,
                            "trailing bytes after request operands");
        }
        return writer.take();
      }
      case Op::kConeDiff: {
        ASRANK_TRY(asn, reader.u32());
        ASRANK_TRY(label_a, reader.str16());
        ASRANK_TRY(label_b, reader.str16());
        if (!reader.done()) {
          return make_error(ErrorCode::kProtocol,
                            "trailing bytes after request operands");
        }
        ASRANK_TRY(engine_a, require_epoch(registry, label_a));
        ASRANK_TRY(engine_b, require_epoch(registry, label_b));
        registry.registry()
            .counter("asrankd_cone_diffs_total", "CONE_DIFF queries served")
            .inc();
        const auto cone_a = engine_a->cone(Asn(asn));
        const auto cone_b = engine_b->cone(Asn(asn));
        encode_list(writer, engine_b->cone_minus(Asn(asn), cone_a));  // added in B
        encode_list(writer, engine_a->cone_minus(Asn(asn), cone_b));  // removed in B
        return writer.take();
      }
      case Op::kReload: {
        ASRANK_TRY(path, reader.str16());
        ASRANK_TRY(label, reader.str16());
        if (!reader.done()) {
          return make_error(ErrorCode::kProtocol,
                            "trailing bytes after request operands");
        }
        if (!local_peer) {
          return make_error(ErrorCode::kInvalidArgument,
                            "reload denied: not a local peer");
        }
        ASRANK_TRY(loaded, registry.load_file(path, label));
        writer.str16(loaded.label);
        writer.u32(static_cast<std::uint32_t>(loaded.engine->index().as_count()));
        return writer.take();
      }
      case Op::kWithEpoch: {
        ASRANK_TRY(label, reader.str16());
        ASRANK_TRY(engine, require_epoch(registry, label));
        WireReader inner(reader.rest());
        ASRANK_TRY(inner_op, inner.u8());
        ASRANK_TRY_VOID(
            dispatch_engine_op(*engine, static_cast<Op>(inner_op), inner, writer));
        return writer.take();
      }
      default: {
        ASRANK_TRY(engine, require_current(registry));
        ASRANK_TRY_VOID(dispatch_engine_op(*engine, op, reader, writer));
        return writer.take();
      }
    }
  };

  try {
    auto response = respond();
    if (!response.ok()) return error_response(response.error().context);
    return std::move(response).value();
  } catch (const std::exception& error) {
    return error_response(error.what());
  }
}

std::string handle_text_request(SnapshotRegistry& registry, std::string_view line,
                                bool local_peer) {
  auto tokens = util::split_ws(util::trim(line));
  if (tokens.empty()) return "ERR empty command";

  // "@<epoch> <cmd> ..." routes the command to a named resident epoch.
  std::shared_ptr<QueryEngine> engine;
  if (tokens[0].size() > 1 && tokens[0].front() == '@') {
    const std::string label(tokens[0].substr(1));
    auto scoped = require_epoch(registry, label);
    if (!scoped.ok()) return "ERR " + scoped.error().context;
    engine = std::move(scoped).value();
    tokens.erase(tokens.begin());
    if (tokens.empty()) return "ERR usage: @<epoch> <command>";
  }
  const auto cmd = util::to_lower(tokens[0]);

  const auto arg_as = [&tokens](std::size_t i) -> std::optional<Asn> {
    if (i >= tokens.size()) return std::nullopt;
    return Asn::parse(tokens[i]);
  };
  const auto want_args = [&tokens](std::size_t n) { return tokens.size() == n + 1; };

  try {
    if (cmd == "ping") return "OK pong";
    if (cmd == "help") {
      return "OK commands: PING REL RANK CONESIZE CONE INCONE PROVIDERS "
             "CUSTOMERS PEERS TOP INTERSECT CLIQUEPATH CLIQUE STATS METRICS "
             "EPOCHS CONEDIFF RELOAD HELP QUIT (prefix @<epoch> targets a "
             "resident epoch)";
    }
    if (cmd == "epochs") {
      std::string out = "OK";
      for (const auto& label : registry.epochs()) out += " " + label;
      return out;
    }
    if (cmd == "conediff") {
      const auto as = arg_as(1);
      if (!want_args(3) || !as) return "ERR usage: CONEDIFF <asn> <epochA> <epochB>";
      auto a = require_epoch(registry, std::string(tokens[2]));
      if (!a.ok()) return "ERR " + a.error().context;
      auto b = require_epoch(registry, std::string(tokens[3]));
      if (!b.ok()) return "ERR " + b.error().context;
      registry.registry()
          .counter("asrankd_cone_diffs_total", "CONE_DIFF queries served")
          .inc();
      const auto cone_a = a.value()->cone(*as);
      const auto cone_b = b.value()->cone(*as);
      std::ostringstream os;
      os << "OK";
      for (const Asn added : b.value()->cone_minus(*as, cone_a)) {
        os << " +" << added.value();
      }
      for (const Asn removed : a.value()->cone_minus(*as, cone_b)) {
        os << " -" << removed.value();
      }
      return os.str();
    }
    if (cmd == "reload") {
      if (!local_peer) return "ERR reload denied: not a local peer";
      if (tokens.size() != 2 && tokens.size() != 3) {
        return "ERR usage: RELOAD <path> [epoch]";
      }
      auto loaded = registry.load_file(
          std::string(tokens[1]),
          tokens.size() == 3 ? std::string(tokens[2]) : std::string());
      if (!loaded.ok()) return "ERR " + loaded.error().context;
      return "OK " + loaded.value().label + " " +
             std::to_string(loaded.value().engine->index().as_count());
    }

    // Everything below is engine-scoped: default to the current epoch.
    if (!engine) {
      auto current = require_current(registry);
      if (!current.ok()) return "ERR " + current.error().context;
      engine = std::move(current).value();
    }

    if (cmd == "rel") {
      const auto a = arg_as(1), b = arg_as(2);
      if (!want_args(2) || !a || !b) return "ERR usage: REL <asn> <asn>";
      const auto view = engine->relationship(*a, *b);
      return std::string("OK ") + (view ? std::string(to_string(*view)) : "none");
    }
    if (cmd == "rank") {
      const auto as = arg_as(1);
      if (!want_args(1) || !as) return "ERR usage: RANK <asn>";
      return "OK " + std::to_string(engine->rank(*as).value_or(0));
    }
    if (cmd == "conesize") {
      const auto as = arg_as(1);
      if (!want_args(1) || !as) return "ERR usage: CONESIZE <asn>";
      return "OK " + std::to_string(engine->cone_size(*as));
    }
    if (cmd == "cone") {
      const auto as = arg_as(1);
      if (!want_args(1) || !as) return "ERR usage: CONE <asn>";
      return "OK " + join_asns(engine->cone(*as));
    }
    if (cmd == "incone") {
      const auto a = arg_as(1), b = arg_as(2);
      if (!want_args(2) || !a || !b) return "ERR usage: INCONE <asn> <member>";
      return engine->in_cone(*a, *b) ? "OK yes" : "OK no";
    }
    if (cmd == "providers" || cmd == "customers" || cmd == "peers") {
      const auto as = arg_as(1);
      if (!want_args(1) || !as) return "ERR usage: " + util::to_lower(cmd) + " <asn>";
      const auto list = cmd == "providers" ? engine->providers(*as)
                        : cmd == "customers" ? engine->customers(*as)
                                             : engine->peers(*as);
      return "OK " + join_asns(list);
    }
    if (cmd == "top") {
      if (!want_args(1)) return "ERR usage: TOP <n>";
      const auto n = util::parse_unsigned<std::uint32_t>(tokens[1]);
      if (!n) return "ERR usage: TOP <n>";
      std::ostringstream os;
      os << "OK";
      for (const auto& entry : engine->top(*n)) {
        os << ' ' << entry.rank << ':' << entry.as.value() << ':' << entry.cone_size
           << ':' << entry.transit_degree;
      }
      return os.str();
    }
    if (cmd == "intersect") {
      const auto a = arg_as(1), b = arg_as(2);
      if (!want_args(2) || !a || !b) return "ERR usage: INTERSECT <asn> <asn>";
      return "OK " + join_asns(*engine->cone_intersection(*a, *b));
    }
    if (cmd == "cliquepath") {
      const auto as = arg_as(1);
      if (!want_args(1) || !as) return "ERR usage: CLIQUEPATH <asn>";
      return "OK " + join_asns(*engine->path_to_clique(*as));
    }
    if (cmd == "clique") return "OK " + join_asns(engine->clique());
    if (cmd == "stats") {
      engine->record_stats_query();
      std::string out = "OK\n" + engine->render_stats() + ".";
      return out;
    }
    if (cmd == "metrics") {
      engine->registry()
          .counter("asrankd_metrics_requests_total",
                   "METRICS opcode / `metrics` text command serves")
          .inc();
      return "OK\n" + engine->registry().render_prometheus() + ".";
    }
    return "ERR unknown command '" + std::string(tokens[0]) + "' (try HELP)";
  } catch (const std::exception& error) {
    return std::string("ERR ") + error.what();
  }
}

// ---------------------------------------------------------------- server --

Server::Server(SnapshotRegistry& registry, ServerConfig config)
    : registry_(registry),
      config_(std::move(config)),
      connections_total_(&registry.registry().counter(
          "asrankd_connections_total", "TCP connections accepted")),
      frames_total_(&registry.registry().counter(
          "asrankd_frames_total", "Binary request frames served")),
      text_commands_total_(&registry.registry().counter(
          "asrankd_text_commands_total", "Text-mode command lines served")),
      protocol_errors_total_(&registry.registry().counter(
          "asrankd_protocol_errors_total",
          "Connections dropped on framing or socket errors")),
      shed_total_(&registry.registry().counter(
          "asrankd_connections_shed_total",
          "Connections refused at the admission limit")),
      idle_timeouts_total_(&registry.registry().counter(
          "asrankd_idle_timeouts_total",
          "Connections closed after the idle timeout")),
      deadline_timeouts_total_(&registry.registry().counter(
          "asrankd_deadline_timeouts_total",
          "Connections closed when a request missed its read deadline")) {
  config_.threads = std::max<std::size_t>(1, config_.threads);
  // The worker poll tick bounds both idle-timeout resolution and the
  // worst-case lag before a worker notices anything the broadcast pipe does
  // not already wake it for; derive it from the idle timeout instead of a
  // fixed 200ms so short timeouts stay accurate.
  poll_tick_ms_ = 200;
  if (config_.idle_timeout_ms > 0) {
    poll_tick_ms_ = std::clamp(config_.idle_timeout_ms / 4, 5, 200);
  }

  if (::pipe(stop_pipe_) != 0) sys_fail("pipe");
  if (::pipe(shutdown_pipe_) != 0) sys_fail("pipe");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) sys_fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    throw ProtocolError("bad listen address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    sys_fail("bind " + config_.host + ":" + std::to_string(config_.port));
  }
  if (::listen(listen_fd_, config_.backlog) != 0) sys_fail("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    sys_fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (const int fd : stop_pipe_) {
    if (fd >= 0) ::close(fd);
  }
  for (const int fd : shutdown_pipe_) {
    if (fd >= 0) ::close(fd);
  }
  if (g_signal_fd.load(std::memory_order_relaxed) == stop_pipe_[1]) {
    g_signal_fd.store(-1, std::memory_order_relaxed);
  }
}

void Server::install_signal_handlers() {
  g_signal_fd.store(stop_pipe_[1], std::memory_order_relaxed);
  struct sigaction action{};
  action.sa_handler = on_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGHUP, &action, nullptr);
}

void Server::stop() noexcept {
  const char byte = 's';
  [[maybe_unused]] const auto n = ::write(stop_pipe_[1], &byte, 1);
}

void Server::run() {
  running_.store(true, std::memory_order_release);
  // Chunk 0 of the pool runs inline on this thread, which becomes the
  // accept loop; chunks 1..threads are the connection workers.
  util::ThreadPool pool(config_.threads + 1);
  pool.for_chunks(config_.threads + 1, [this](std::size_t chunk, std::size_t, std::size_t) {
    if (chunk == 0) {
      accept_loop();
    } else {
      connection_worker();
    }
  });
}

void Server::accept_loop() {
  bool stopping = false;
  while (!stopping) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) {
      // Drain pending command bytes: 's' = stop, 'h' = SIGHUP reload.
      char cmds[16];
      const ssize_t n = ::read(stop_pipe_[0], cmds, sizeof cmds);
      bool reload = false;
      for (ssize_t i = 0; i < n; ++i) {
        if (cmds[i] == 's') stopping = true;
        if (cmds[i] == 'h') reload = true;
      }
      if (reload && !stopping) {
        if (config_.reload_path.empty()) {
          obs::log_warn("SIGHUP ignored: no --reload snapshot path configured");
        } else {
          // Errors are already counted and logged by the registry; the old
          // epoch keeps serving either way.
          (void)registry_.load_file(config_.reload_path, config_.reload_label);
        }
      }
      if (stopping) break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      sockaddr_in peer{};
      socklen_t peer_len = sizeof peer;
      const int client =
          ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer), &peer_len);
      if (client < 0) continue;
      if (config_.max_connections > 0 &&
          active_connections_.load(std::memory_order_relaxed) >=
              config_.max_connections) {
        // Load shedding: one parseable text line, then close.  Binary
        // clients recognize the non-0x01 first byte as a shed notice.
        static constexpr char kShedLine[] =
            "ERR shedding: connection limit reached, retry later\n";
        [[maybe_unused]] const auto w =
            ::write(client, kShedLine, sizeof kShedLine - 1);
        ::close(client);
        shed_total_->inc();
        continue;
      }
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      const bool local =
          (ntohl(peer.sin_addr.s_addr) >> 24) == 127;  // 127.0.0.0/8
      connections_.fetch_add(1, std::memory_order_relaxed);
      active_connections_.fetch_add(1, std::memory_order_relaxed);
      connections_total_->inc();
      std::lock_guard<std::mutex> lock(queue_mutex_);
      pending_.push_back({client, local});
      queue_cv_.notify_one();
    }
  }

  running_.store(false, std::memory_order_release);
  // Broadcast shutdown: one byte, never drained, so every worker's poll on
  // the read end turns level-triggered readable at once — workers exit
  // within one syscall instead of one poll tick.
  const char byte = 'x';
  [[maybe_unused]] const auto n = ::write(shutdown_pipe_[1], &byte, 1);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (std::size_t i = 0; i < config_.threads; ++i) pending_.push_back({-1, false});
  }
  queue_cv_.notify_all();
}

void Server::connection_worker() {
  while (true) {
    Pending next{-1, false};
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return !pending_.empty(); });
      next = pending_.front();
      pending_.pop_front();
    }
    if (next.fd < 0) return;
    try {
      handle_connection(next.fd, next.local);
    } catch (const TimeoutError&) {
      // A request that missed its read deadline; already counted.
      deadline_timeouts_total_->inc();
    } catch (const std::exception& error) {
      // Per-connection failures (malformed framing, resets) must not take
      // the worker down; the socket is simply closed.
      protocol_errors_total_->inc();
      obs::log_warn("connection dropped", {{"error", error.what()}});
    }
    ::close(next.fd);
    active_connections_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Server::handle_connection(int fd, bool local_peer) {
  using Clock = std::chrono::steady_clock;
  while (true) {
    // Interruptible first-byte wait: bounded by the idle timeout, woken
    // instantly by the shutdown broadcast pipe.
    std::uint8_t first = 0;
    const auto idle_deadline =
        Clock::now() + std::chrono::milliseconds(
                           config_.idle_timeout_ms > 0 ? config_.idle_timeout_ms
                                                       : 0);
    while (true) {
      pollfd pfds[2] = {{fd, POLLIN, 0}, {shutdown_pipe_[0], POLLIN, 0}};
      const int ready = ::poll(pfds, 2, poll_tick_ms_);
      if (!running_.load(std::memory_order_acquire)) return;
      if (ready < 0 && errno != EINTR) return;
      if (ready > 0) {
        if (pfds[1].revents != 0) return;  // shutdown broadcast
        if (pfds[0].revents != 0) break;
      }
      if (config_.idle_timeout_ms > 0 && Clock::now() >= idle_deadline) {
        idle_timeouts_total_->inc();
        return;
      }
    }
    if (!read_exact(fd, &first, 1)) return;  // clean EOF between requests

    // From the first byte on, the query deadline governs reads.
    const int deadline_ms = config_.query_deadline_ms > 0 ? config_.query_deadline_ms : -1;

    if (first == kBinaryMarker) {
      const auto request = read_frame_body(fd, deadline_ms);
      frames_total_->inc();
      const auto response = handle_binary_request(registry_, request, local_peer);
      write_frame(fd, response);
      continue;
    }

    // Text mode: `first` begins a newline-terminated command.  The whole
    // line shares one deadline budget.
    const auto query_deadline =
        Clock::now() + std::chrono::milliseconds(deadline_ms > 0 ? deadline_ms : 0);
    std::string line(1, static_cast<char>(first));
    char c = 0;
    while (true) {
      int remaining = -1;
      if (deadline_ms > 0) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                              query_deadline - Clock::now())
                              .count();
        remaining = left > 0 ? static_cast<int>(left) : 0;
      }
      if (!read_exact(fd, &c, 1, remaining) || c == '\n') break;
      line.push_back(c);
      if (line.size() > 4096) throw ProtocolError("text command too long");
    }
    const auto trimmed = util::trim(line);
    if (util::iequals(trimmed, "quit") || util::iequals(trimmed, "exit")) return;
    text_commands_total_->inc();
    const std::string response = handle_text_request(registry_, line, local_peer) + "\n";
    write_all(fd, response.data(), response.size());
  }
}

}  // namespace asrank::serve
