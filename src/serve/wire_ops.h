// Shared request encoders / response decoders for the asrankd binary
// protocol, used by both serve::Client (one connection) and
// serve::ClusterClient (fan-out over many Transports).  Keeping the codecs
// here means a cluster answer is byte-identical to a single-server answer by
// construction: both sides build the same frames and decode the same bodies.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "asn/asn.h"
#include "serve/protocol.h"
#include "serve/query_scope.h"
#include "snapshot/snapshot.h"
#include "topology/relationship.h"
#include "util/result.h"

namespace asrank::serve {

/// CONE_DIFF result: members entering/leaving the cone from epoch A to B.
struct ConeDiff {
  std::vector<Asn> added;
  std::vector<Asn> removed;

  friend bool operator==(const ConeDiff&, const ConeDiff&) = default;
};

/// RELOAD result: the installed epoch label and its AS count.
struct ReloadInfo {
  std::string label;
  std::uint32_t ases = 0;

  friend bool operator==(const ReloadInfo&, const ReloadInfo&) = default;
};

/// One DISAGREE row: a link the two algorithms classify differently.
/// nullopt = that algorithm has no such link.
struct Disagreement {
  Asn a;
  Asn b;
  std::optional<RelView> first;   ///< from a's perspective, first algorithm
  std::optional<RelView> second;  ///< from a's perspective, second algorithm

  friend bool operator==(const Disagreement&, const Disagreement&) = default;
};

/// DISAGREE result: total disagreement count plus the (possibly truncated)
/// rows, ascending (a, b) with a < b.
struct DisagreeReport {
  std::uint32_t total = 0;
  std::vector<Disagreement> rows;

  friend bool operator==(const DisagreeReport&, const DisagreeReport&) = default;
};

}  // namespace asrank::serve

namespace asrank::serve::wire {

/// Start a request payload: u8 opcode, operands appended by the caller.
[[nodiscard]] WireWriter request(Op op);

/// Wrap an engine-scoped request in WITH_ALGO (inner) and WITH_EPOCH
/// (outer) as the scope names them.  The nesting order is wire contract:
/// WITH_EPOCH selects the registry entry, WITH_ALGO the engine inside it.
[[nodiscard]] std::vector<std::uint8_t> apply_scope(
    const QueryScope& scope, std::vector<std::uint8_t> inner);

/// Wrap a registry-scoped request (kDisagree, kAlgos) in WITH_EPOCH only;
/// these ops name algorithms explicitly or not at all, so scope.algorithm is
/// ignored.
[[nodiscard]] std::vector<std::uint8_t> apply_epoch(
    std::string_view epoch, std::vector<std::uint8_t> inner);

// ----------------------------------------------------- response decoders --

[[nodiscard]] Result<std::optional<RelView>> decode_rel_opt(std::uint8_t code);
[[nodiscard]] Result<std::vector<Asn>> decode_asn_list(
    std::span<const std::uint8_t> body);
[[nodiscard]] Result<std::vector<snapshot::TopEntry>> decode_top(
    std::span<const std::uint8_t> body);
/// u32 count + {str16} list (kEpochs, kAlgos responses).
[[nodiscard]] Result<std::vector<std::string>> decode_labels(
    std::span<const std::uint8_t> body);

/// Read a u32-count-prefixed ASN list from an open reader (for bodies that
/// carry more than one list, e.g. CONE_DIFF).
[[nodiscard]] Result<std::vector<Asn>> read_asn_list(WireReader& reader);

[[nodiscard]] Result<ConeDiff> decode_cone_diff(
    std::span<const std::uint8_t> body);
[[nodiscard]] Result<ReloadInfo> decode_reload(
    std::span<const std::uint8_t> body);
[[nodiscard]] Result<DisagreeReport> decode_disagree(
    std::span<const std::uint8_t> body);

}  // namespace asrank::serve::wire
