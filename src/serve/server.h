// asrankd — a small blocking-TCP daemon serving snapshot queries.
//
// Architecture: the listening socket is bound in the constructor (so
// ephemeral port 0 works for tests), and run() drives one accept loop plus
// `threads` connection workers on a util::ThreadPool — the accept loop runs
// inline as chunk 0, accepted sockets flow to workers through a small
// blocking queue, and each worker serves one connection at a time
// (length-prefixed binary frames and/or newline text commands, see
// protocol.h).  Shutdown is cooperative and signal-safe: stop() — or the
// SIGINT/SIGTERM handler installed by install_signal_handlers() — writes to
// a self-pipe, the accept loop drains, a broadcast pipe plus queue sentinels
// wake every worker immediately (no poll-tick latency), and run() returns
// after all in-flight requests complete.
//
// The server serves a SnapshotRegistry, not a single engine: queries default
// to the current epoch, may name any resident epoch, and SIGHUP (or the
// RELOAD command from a loopback peer) hot-swaps a new snapshot in without
// dropping in-flight queries (see snapshot_registry.h).
//
// Self-defense: per-connection idle timeout, per-query read deadline, and a
// max-connection admission bound — over-limit connections get one
// "ERR shedding: ..." line and are closed (clients surface
// ErrorCode::kShedding and may back off and retry).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "serve/snapshot_registry.h"

namespace asrank::serve {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7464;     ///< 0 = kernel-assigned (see Server::port())
  std::size_t threads = 4;       ///< connection workers (>= 1)
  int backlog = 64;
  /// Close a keep-alive connection after this long with no request bytes.
  /// <= 0 disables.  Also bounds the worker poll tick (capped at 200ms), so
  /// a small idle timeout tightens shutdown latency too.
  int idle_timeout_ms = 60000;
  /// Budget for reading the rest of a request once its first byte arrived.
  /// <= 0 disables.
  int query_deadline_ms = 5000;
  /// Admission bound on simultaneously-open connections; further accepts
  /// are shed with one "ERR shedding" line.  0 disables.
  std::size_t max_connections = 256;
  /// Snapshot path re-read on SIGHUP ("" disables SIGHUP reloads).
  std::string reload_path;
  /// Epoch label for SIGHUP reloads ("" = derive from reload_path).
  std::string reload_label;
};

class Server {
 public:
  /// Binds and listens immediately; throws ProtocolError on failure.  The
  /// registry must outlive the server.
  Server(SnapshotRegistry& registry, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The actually-bound port (resolves config.port == 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Serve until stop() (or a handled signal) is observed.  Blocking.
  void run();

  /// Request shutdown.  Thread-safe, idempotent, and safe to call before or
  /// during run().
  void stop() noexcept;

  /// Route SIGINT/SIGTERM to stop() and SIGHUP to a reload of
  /// config.reload_path, via a self-pipe write (async-signal-safe).  Only
  /// one server per process may install.
  void install_signal_handlers();

  /// Connections accepted so far (for tests and the daemon's exit log).
  [[nodiscard]] std::uint64_t connections_served() const noexcept {
    return connections_.load(std::memory_order_relaxed);
  }

  /// The worker poll tick derived from idle_timeout_ms (exposed so tests
  /// can assert shutdown latency stays under one tick).
  [[nodiscard]] int poll_tick_ms() const noexcept { return poll_tick_ms_; }

 private:
  void accept_loop();
  void connection_worker();
  void handle_connection(int fd, bool local_peer);

  SnapshotRegistry& registry_;
  ServerConfig config_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};      ///< signal/stop commands to accept loop
  int shutdown_pipe_[2] = {-1, -1};  ///< written once at stop, never drained
  std::uint16_t port_ = 0;
  int poll_tick_ms_ = 200;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::size_t> active_connections_{0};

  // Daemon counters in the registry's obs::Registry (resolved at bind time).
  obs::Counter* connections_total_;     ///< asrankd_connections_total
  obs::Counter* frames_total_;          ///< asrankd_frames_total
  obs::Counter* text_commands_total_;   ///< asrankd_text_commands_total
  obs::Counter* protocol_errors_total_; ///< asrankd_protocol_errors_total
  obs::Counter* shed_total_;            ///< asrankd_connections_shed_total
  obs::Counter* idle_timeouts_total_;   ///< asrankd_idle_timeouts_total
  obs::Counter* deadline_timeouts_total_; ///< asrankd_deadline_timeouts_total

  // Accepted sockets awaiting a worker; fd -1 is the shutdown sentinel.
  struct Pending {
    int fd;
    bool local;  ///< peer is loopback (may issue RELOAD)
  };
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> pending_;
};

/// Decode and execute one binary request payload; always returns a response
/// payload (status byte first), never throws for malformed requests.
/// `local_peer` gates the RELOAD opcode (loopback connections only).
[[nodiscard]] std::vector<std::uint8_t> handle_binary_request(
    SnapshotRegistry& registry, std::span<const std::uint8_t> payload,
    bool local_peer = true);

/// Execute one text-mode command line; returns the full response text
/// (possibly multi-line for STATS, "."-terminated), without trailing
/// newline.  QUIT is the caller's business (it closes the connection).
/// Commands may be prefixed with "@<epoch>" to query a named epoch.
[[nodiscard]] std::string handle_text_request(SnapshotRegistry& registry,
                                              std::string_view line,
                                              bool local_peer = true);

}  // namespace asrank::serve
