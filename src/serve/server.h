// asrankd — the snapshot-query daemon.
//
// Two serving runtimes share one wire protocol, one handler layer, and one
// accept loop (bound in the constructor so ephemeral port 0 works in tests):
//
//   * RuntimeMode::kTask (default): a non-blocking, task-scheduled runtime.
//     run() keeps the accept loop inline on the calling thread; accepted
//     sockets flow through a bounded lock-free MPMC admission queue to
//     per-core workers (runtime::TaskScheduler).  Each worker owns an
//     edge-notified reactor (epoll on Linux, poll fallback) and drives
//     resumable per-connection state machines — read-frame → decode →
//     execute → write — parked on the reactor between steps, so thousands
//     of idle connections cost no threads.  Snapshot lookups run under
//     epoch-based-reclamation guards (SnapshotRegistry::ReadView): the hot
//     path never bumps a shared_ptr refcount.
//   * RuntimeMode::kBlocking: the original thread-per-worker baseline
//     (kept for A/B measurement in bench_serve_load); one blocking worker
//     serves one connection at a time.
//
// Both runtimes are byte-identical on the wire: length-prefixed binary
// frames and/or newline text commands (protocol.h), identical STATS/METRICS
// bytes, and the same idle-timeout / query-deadline / max-connection
// shedding semantics.  Shutdown is cooperative and signal-safe: stop() — or
// the SIGINT/SIGTERM handler installed by install_signal_handlers() —
// writes to a self-pipe; the accept loop drains, every worker is woken
// immediately (reactor wakeups in task mode, a broadcast pipe plus queue
// sentinels in blocking mode), and run() returns after in-flight requests
// complete.
//
// The server serves a SnapshotRegistry, not a single engine: queries default
// to the current epoch, may name any resident epoch, and SIGHUP (or the
// RELOAD command from a loopback peer) hot-swaps a new snapshot in without
// dropping in-flight queries (see snapshot_registry.h).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "runtime/mpmc_queue.h"
#include "runtime/scheduler.h"
#include "serve/snapshot_registry.h"

namespace asrank::serve {

/// Which serving substrate run() drives.  Wire behavior is identical; kTask
/// multiplexes connections on per-core reactors, kBlocking dedicates one
/// blocking worker per in-flight connection (the pre-runtime baseline).
enum class RuntimeMode : std::uint8_t { kTask, kBlocking };

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7464;  ///< 0 = kernel-assigned (see Server::port())
  /// Worker count; 0 = hardware concurrency (the resolved value is logged at
  /// startup and exported as asrankd_worker_threads).
  std::size_t threads = 4;
  int backlog = 64;
  /// Close a keep-alive connection after this long with no request bytes.
  /// <= 0 disables.  Also bounds the worker poll tick (capped at 200ms), so
  /// a small idle timeout tightens shutdown latency too.
  int idle_timeout_ms = 60000;
  /// Budget for reading the rest of a request once its first byte arrived.
  /// <= 0 disables.
  int query_deadline_ms = 5000;
  /// Admission bound on simultaneously-open connections; further accepts
  /// are shed with one "ERR shedding" line.  0 disables.
  std::size_t max_connections = 256;
  /// Snapshot path re-read on SIGHUP ("" disables SIGHUP reloads).
  std::string reload_path;
  /// Epoch label for SIGHUP reloads ("" = derive from reload_path).
  std::string reload_label;
  /// Serving substrate (see RuntimeMode).
  RuntimeMode runtime = RuntimeMode::kTask;
};

class Server {
 public:
  /// Binds and listens immediately; throws ProtocolError on failure.  The
  /// registry must outlive the server.
  Server(SnapshotRegistry& registry, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The actually-bound port (resolves config.port == 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Serve until stop() (or a handled signal) is observed.  Blocking.
  void run();

  /// Request shutdown.  Thread-safe, idempotent, and safe to call before or
  /// during run().
  void stop() noexcept;

  /// Route SIGINT/SIGTERM to stop() and SIGHUP to a reload of
  /// config.reload_path, via a self-pipe write (async-signal-safe).  Only
  /// one server per process may install.
  void install_signal_handlers();

  /// Connections accepted so far (for tests and the daemon's exit log).
  [[nodiscard]] std::uint64_t connections_served() const noexcept {
    return connections_.load(std::memory_order_relaxed);
  }

  /// The worker poll tick derived from idle_timeout_ms (exposed so tests
  /// can assert shutdown latency stays under one tick).
  [[nodiscard]] int poll_tick_ms() const noexcept { return poll_tick_ms_; }

  /// Resolved worker count (config.threads, with 0 mapped to hardware
  /// concurrency at construction).
  [[nodiscard]] std::size_t worker_threads() const noexcept { return threads_; }

 private:
  // An accepted socket on its way to a worker.
  struct Pending {
    int fd;
    bool local;  ///< peer is loopback (may issue RELOAD)
  };
  // Admission-queue entry for the task runtime; `hint` is the worker the
  // acceptor nominated (round-robin) — any worker may pop it, a mismatch is
  // counted as a steal.
  struct Admission {
    int fd = -1;
    bool local = false;
    std::uint32_t hint = 0;
  };
  class TaskConn;
  struct WorkerCtx;

  void accept_loop(const std::function<void(Pending)>& dispatch);

  // Task runtime.
  void run_task();
  bool drain_admissions(std::size_t worker);
  void adopt_connection(std::size_t worker, const Admission& admission);
  void conn_timer_fired(std::size_t worker, std::uint64_t conn_id,
                        std::uint32_t kind);
  void close_worker_connections(std::size_t worker);

  // Blocking baseline.
  void run_blocking();
  void connection_worker();
  void handle_connection(int fd, bool local_peer, runtime::ebr::Domain::Slot& slot);

  SnapshotRegistry& registry_;
  ServerConfig config_;
  std::size_t threads_ = 1;  ///< resolved worker count
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};      ///< signal/stop commands to accept loop
  int shutdown_pipe_[2] = {-1, -1};  ///< written once at stop, never drained
  std::uint16_t port_ = 0;
  int poll_tick_ms_ = 200;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::size_t> active_connections_{0};

  // Daemon counters in the registry's obs::Registry (resolved at bind time).
  obs::Counter* connections_total_;       ///< asrankd_connections_total
  obs::Counter* frames_total_;            ///< asrankd_frames_total
  obs::Counter* text_commands_total_;     ///< asrankd_text_commands_total
  obs::Counter* protocol_errors_total_;   ///< asrankd_protocol_errors_total
  obs::Counter* shed_total_;              ///< asrankd_connections_shed_total
  obs::Counter* idle_timeouts_total_;     ///< asrankd_idle_timeouts_total
  obs::Counter* deadline_timeouts_total_; ///< asrankd_deadline_timeouts_total
  obs::Counter* admission_steals_total_;  ///< asrankd_runtime_admission_steals_total

  // Task-runtime state, alive for the duration of run_task().
  std::unique_ptr<runtime::TaskScheduler> scheduler_;
  std::unique_ptr<runtime::BoundedMpmcQueue<Admission>> admissions_;
  std::vector<std::unique_ptr<WorkerCtx>> worker_ctx_;
  std::atomic<std::uint32_t> rr_hint_{0};

  // Blocking-baseline state: accepted sockets awaiting a worker; fd -1 is
  // the shutdown sentinel.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> pending_;
};

/// Decode and execute one binary request payload; always returns a response
/// payload (status byte first), never throws for malformed requests.
/// `local_peer` gates the RELOAD opcode (loopback connections only).  The
/// view-taking overload is the hot path: the caller must hold an EBR guard
/// on the registry's reclaim_domain() (see SnapshotRegistry::ReadView); the
/// registry-taking overload pins a transient guard itself.
[[nodiscard]] std::vector<std::uint8_t> handle_binary_request(
    const SnapshotRegistry::ReadView& view, std::span<const std::uint8_t> payload,
    bool local_peer = true);
[[nodiscard]] std::vector<std::uint8_t> handle_binary_request(
    SnapshotRegistry& registry, std::span<const std::uint8_t> payload,
    bool local_peer = true);

/// Execute one text-mode command line; returns the full response text
/// (possibly multi-line for STATS, "."-terminated), without trailing
/// newline.  QUIT is the caller's business (it closes the connection).
/// Commands may be prefixed with "@<epoch>" to query a named epoch.  Guard
/// discipline matches handle_binary_request above.
[[nodiscard]] std::string handle_text_request(const SnapshotRegistry::ReadView& view,
                                              std::string_view line,
                                              bool local_peer = true);
[[nodiscard]] std::string handle_text_request(SnapshotRegistry& registry,
                                              std::string_view line,
                                              bool local_peer = true);

}  // namespace asrank::serve
