// asrankd — a small blocking-TCP daemon serving snapshot queries.
//
// Architecture: the listening socket is bound in the constructor (so
// ephemeral port 0 works for tests), and run() drives one accept loop plus
// `threads` connection workers on a util::ThreadPool — the accept loop runs
// inline as chunk 0, accepted sockets flow to workers through a small
// blocking queue, and each worker serves one connection at a time
// (length-prefixed binary frames and/or newline text commands, see
// protocol.h).  Shutdown is cooperative and signal-safe: stop() — or the
// SIGINT/SIGTERM handler installed by install_signal_handlers() — writes to
// a self-pipe, the accept loop drains, sentinels wake every worker, and
// run() returns after all in-flight requests complete.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "serve/query_engine.h"

namespace asrank::serve {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7464;     ///< 0 = kernel-assigned (see Server::port())
  std::size_t threads = 4;       ///< connection workers (>= 1)
  int backlog = 64;
};

class Server {
 public:
  /// Binds and listens immediately; throws ProtocolError on failure.  The
  /// engine must outlive the server.
  Server(QueryEngine& engine, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The actually-bound port (resolves config.port == 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Serve until stop() (or a handled signal) is observed.  Blocking.
  void run();

  /// Request shutdown.  Thread-safe, idempotent, and safe to call before or
  /// during run().
  void stop() noexcept;

  /// Route SIGINT/SIGTERM to this server's stop() via a self-pipe write
  /// (async-signal-safe).  Only one server per process may install.
  void install_signal_handlers();

  /// Connections accepted so far (for tests and the daemon's exit log).
  [[nodiscard]] std::uint64_t connections_served() const noexcept {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void connection_worker();
  void handle_connection(int fd);

  QueryEngine& engine_;
  ServerConfig config_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> connections_{0};

  // Daemon counters in the engine's registry (resolved once at bind time).
  obs::Counter* connections_total_;     ///< asrankd_connections_total
  obs::Counter* frames_total_;          ///< asrankd_frames_total
  obs::Counter* text_commands_total_;   ///< asrankd_text_commands_total
  obs::Counter* protocol_errors_total_; ///< asrankd_protocol_errors_total

  // Accepted sockets awaiting a worker; -1 is the shutdown sentinel.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;
};

/// Decode and execute one binary request payload; always returns a response
/// payload (status byte first), never throws for malformed requests.
[[nodiscard]] std::vector<std::uint8_t> handle_binary_request(
    QueryEngine& engine, std::span<const std::uint8_t> payload);

/// Execute one text-mode command line; returns the full response text
/// (possibly multi-line for STATS, "."-terminated), without trailing
/// newline.  QUIT is the caller's business (it closes the connection).
[[nodiscard]] std::string handle_text_request(QueryEngine& engine,
                                              std::string_view line);

}  // namespace asrank::serve
