// QueryScope: the explicit (epoch, algorithm) pair a query is answered
// under.  Replaces the old implicit combination of a trailing per-call
// `std::string_view epoch` parameter and mutable Client::set_algorithm
// state: a scope is a value, so it can be bound once (Client::with_scope),
// passed per call, or fanned out verbatim across a cluster without any
// shared mutable state.
//
// Empty fields mean "the server's default": an empty epoch answers from the
// current epoch, an empty algorithm from the snapshot's primary algorithm.
#pragma once

#include <string>
#include <string_view>

namespace asrank::serve {

struct QueryScope {
  std::string epoch;      ///< resident epoch label; empty = current
  std::string algorithm;  ///< algorithm section name; empty = primary

  [[nodiscard]] bool empty() const noexcept {
    return epoch.empty() && algorithm.empty();
  }

  /// This scope with the epoch replaced (used when a caller pins a resolved
  /// cluster epoch but keeps the requested algorithm).
  [[nodiscard]] QueryScope with_epoch(std::string_view label) const {
    return QueryScope{std::string(label), algorithm};
  }

  friend bool operator==(const QueryScope&, const QueryScope&) = default;
};

}  // namespace asrank::serve
