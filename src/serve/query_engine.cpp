#include "serve/query_engine.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <sstream>
#include <vector>

#include "obs/timer.h"

namespace asrank::serve {

namespace {

std::uint64_t pair_key(Asn a, Asn b) noexcept {
  return static_cast<std::uint64_t>(a.value()) << 32 | b.value();
}

/// Reusable BFS state, keyed by dense node id.  Visited-tracking is an
/// epoch stamp rather than a per-query clear or hash map: a node is visited
/// in the current query iff stamp[id] == epoch, so each query costs one
/// counter bump instead of an O(n) reset or per-hop hashing.  thread_local
/// makes concurrent queries allocation-free and race-free; the arrays grow
/// to the largest index served on this thread and are reused across engines.
struct BfsScratch {
  std::vector<std::uint32_t> parent;
  std::vector<std::uint32_t> stamp;
  std::vector<std::uint32_t> queue;
  std::uint32_t epoch = 0;
};

constexpr std::uint32_t kNoParent = 0xffffffffu;

}  // namespace

std::string_view to_string(QueryType type) noexcept {
  switch (type) {
    case QueryType::kRelationship: return "relationship";
    case QueryType::kRank: return "rank";
    case QueryType::kConeSize: return "cone_size";
    case QueryType::kCone: return "cone";
    case QueryType::kInCone: return "in_cone";
    case QueryType::kNeighborSet: return "neighbor_set";
    case QueryType::kTop: return "top";
    case QueryType::kConeIntersect: return "cone_intersect";
    case QueryType::kPathToClique: return "path_to_clique";
    case QueryType::kClique: return "clique";
    case QueryType::kStats: return "stats";
    case QueryType::kPing: return "ping";
  }
  return "?";
}

// ------------------------------------------------------------------ LRU --

std::optional<AsnList> QueryEngine::LruCache::get(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  order_.splice(order_.begin(), order_, it->second);
  return it->second->second;
}

void QueryEngine::LruCache::put(std::uint64_t key, AsnList value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = std::move(value);
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  order_.emplace_front(key, std::move(value));
  map_.emplace(key, order_.begin());
  if (map_.size() > capacity_) {
    map_.erase(order_.back().first);
    order_.pop_back();
  }
}

// ---------------------------------------------------------------- timer --

class QueryEngine::Timer {
 public:
  Timer(QueryEngine& engine, QueryType type) noexcept
      : engine_(engine), type_(type), start_(std::chrono::steady_clock::now()) {}
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() {
    const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
    engine_.record(type_, static_cast<std::uint64_t>(micros), hit_);
  }

  void mark_cache_hit() noexcept { hit_ = true; }

 private:
  QueryEngine& engine_;
  QueryType type_;
  std::chrono::steady_clock::time_point start_;
  bool hit_ = false;
};

void QueryEngine::record(QueryType type, std::uint64_t micros, bool cache_hit) {
  auto& slot = metrics_[static_cast<std::size_t>(type)];
  slot.latency->observe(micros);
  if (cache_hit) slot.cache_hits->inc();
  queries_total_->inc();
  algo_queries_total_->inc();
}

// --------------------------------------------------------------- engine --

QueryEngine::QueryEngine(std::shared_ptr<const snapshot::SnapshotIndex> index,
                         std::size_t cache_capacity, obs::Registry* registry,
                         core::ConeBitsetConfig cone_config, std::size_t algo_slot)
    : index_(std::move(index)),
      view_(&index_->algorithm_at(algo_slot)),
      algo_name_(index_->algorithm_names()[algo_slot]),
      registry_(registry),
      cache_capacity_(cache_capacity),
      intersect_cache_(cache_capacity),
      path_cache_(cache_capacity),
      cone_config_(cone_config) {
  for (std::size_t i = 0; i < kQueryTypeCount; ++i) {
    const obs::Labels labels = {
        {"type", std::string(to_string(static_cast<QueryType>(i)))}};
    metrics_[i].latency = &registry_->histogram(
        "asrankd_query_latency_micros", "Latency of one served query",
        obs::kLatencyBucketsMicros, labels);
    metrics_[i].cache_hits = &registry_->counter(
        "asrankd_query_cache_hits_total",
        "Derived queries answered from the LRU cache", labels);
  }
  queries_total_ = &registry_->counter("asrankd_queries_total",
                                       "Queries served across all types");
  algo_queries_total_ =
      &registry_->counter("asrankd_algo_queries_total",
                          "Queries served, by answering inference algorithm",
                          {{"algo", algo_name_}});
  const char* kernel_help =
      "Cone intersection/diff/membership queries by answering kernel";
  kernel_bitset_ = &registry_->counter("asrankd_cone_kernel_total", kernel_help,
                                       {{"kernel", "bitset"}});
  kernel_hybrid_ = &registry_->counter("asrankd_cone_kernel_total", kernel_help,
                                       {{"kernel", "hybrid"}});
  kernel_sorted_ = &registry_->counter("asrankd_cone_kernel_total", kernel_help,
                                       {{"kernel", "sorted"}});
}

QueryEngine::QueryEngine(snapshot::SnapshotIndex index, std::size_t cache_capacity,
                         obs::Registry* registry, core::ConeBitsetConfig cone_config)
    : QueryEngine(std::make_shared<const snapshot::SnapshotIndex>(std::move(index)),
                  cache_capacity, registry, cone_config) {}

const core::ConeBitset& QueryEngine::cone_bits() {
  std::call_once(cone_bits_once_, [this] {
    obs::ScopedTimer timer(&registry_->histogram(
        "asrankd_cone_bitset_build_micros",
        "Wall time of one lazy per-epoch ConeBitset build"));
    auto bits = std::make_unique<const core::ConeBitset>(
        view_->ases(), view_->cone_offsets(), view_->cone_members(),
        cone_config_);
    registry_->gauge("asrankd_cone_bitset_rows",
                     "Materialized cone bit rows in the newest built epoch")
        .set(static_cast<std::int64_t>(bits->row_count()));
    registry_->gauge("asrankd_cone_bitset_bytes",
                     "Bytes held by the newest built epoch's cone bitset")
        .set(static_cast<std::int64_t>(bits->memory_bytes()));
    cone_bits_store_ = std::move(bits);
  });
  return *cone_bits_store_;
}

std::optional<RelView> QueryEngine::relationship(Asn a, Asn b) {
  Timer timer(*this, QueryType::kRelationship);
  return view_->relationship(a, b);
}

std::optional<std::uint32_t> QueryEngine::rank(Asn as) {
  Timer timer(*this, QueryType::kRank);
  return view_->rank(as);
}

std::size_t QueryEngine::cone_size(Asn as) {
  Timer timer(*this, QueryType::kConeSize);
  return view_->cone_size(as);
}

std::span<const Asn> QueryEngine::cone(Asn as) {
  Timer timer(*this, QueryType::kCone);
  return view_->cone(as);
}

bool QueryEngine::in_cone(Asn as, Asn member) {
  Timer timer(*this, QueryType::kInCone);
  if (const auto id = view_->node_id(as)) {
    const auto& bits = cone_bits();
    if (bits.has_row(*id)) {
      kernel_bitset_->inc();
      const auto member_id = view_->node_id(member);
      return member_id.has_value() && bits.contains(*id, *member_id);
    }
  }
  kernel_sorted_->inc();
  return view_->in_cone(as, member);
}

std::vector<Asn> QueryEngine::providers(Asn as) {
  Timer timer(*this, QueryType::kNeighborSet);
  return view_->providers(as);
}

std::vector<Asn> QueryEngine::customers(Asn as) {
  Timer timer(*this, QueryType::kNeighborSet);
  return view_->customers(as);
}

std::vector<Asn> QueryEngine::peers(Asn as) {
  Timer timer(*this, QueryType::kNeighborSet);
  return view_->peers(as);
}

std::vector<snapshot::TopEntry> QueryEngine::top(std::size_t n) {
  Timer timer(*this, QueryType::kTop);
  return view_->top(n);
}

std::span<const Asn> QueryEngine::clique() {
  Timer timer(*this, QueryType::kClique);
  return view_->clique();
}

void QueryEngine::ping() { Timer timer(*this, QueryType::kPing); }

AsnList QueryEngine::cone_intersection(Asn a, Asn b) {
  Timer timer(*this, QueryType::kConeIntersect);
  // Normalize so (a, b) and (b, a) share one cache entry.
  if (b < a) std::swap(a, b);
  const std::uint64_t key = pair_key(a, b);
  if (auto cached = intersect_cache_.get(key)) {
    timer.mark_cache_hit();
    return *cached;
  }
  auto result = std::make_shared<std::vector<Asn>>();
  const auto id_a = view_->node_id(a);
  const auto id_b = view_->node_id(b);
  const auto& bits = cone_bits();
  const bool row_a = id_a && bits.has_row(*id_a);
  const bool row_b = id_b && bits.has_row(*id_b);
  if (row_a && row_b) {
    // Word-wise AND + ascending-id extraction; ascending id ≡ ascending
    // ASN, so this matches the sorted merge bit for bit.
    const auto ids = bits.intersect_ids(*id_a, *id_b);
    result->reserve(ids.size());
    for (const std::uint32_t id : ids) result->push_back(view_->asn_at(id));
    kernel_bitset_->inc();
  } else if (row_a || row_b) {
    // One row only: probe the other (small, sorted) cone against it.
    const std::uint32_t row_id = row_a ? *id_a : *id_b;
    for (const Asn member : view_->cone(row_a ? b : a)) {
      const auto member_id = view_->node_id(member);
      if (member_id && bits.contains(row_id, *member_id)) {
        result->push_back(member);
      }
    }
    kernel_hybrid_->inc();
  } else {
    const auto cone_a = view_->cone(a);
    const auto cone_b = view_->cone(b);
    std::set_intersection(cone_a.begin(), cone_a.end(), cone_b.begin(),
                          cone_b.end(), std::back_inserter(*result));
    kernel_sorted_->inc();
  }
  AsnList shared = std::move(result);
  intersect_cache_.put(key, shared);
  return shared;
}

std::vector<Asn> QueryEngine::cone_minus(Asn as, std::span<const Asn> other) {
  std::vector<Asn> out;
  const auto id = view_->node_id(as);
  const auto& bits = cone_bits();
  if (id && bits.has_row(*id)) {
    // Translate `other` into this epoch's id space (ASNs unknown here can't
    // be members of this cone, so dropping them from the mask is exact) and
    // subtract with one ANDNOT pass.
    std::vector<std::uint32_t> other_ids;
    other_ids.reserve(other.size());
    for (const Asn member : other) {
      if (const auto member_id = view_->node_id(member)) {
        other_ids.push_back(*member_id);
      }
    }
    const auto ids = bits.andnot_ids(*id, bits.make_mask(other_ids));
    out.reserve(ids.size());
    for (const std::uint32_t member_id : ids) {
      out.push_back(view_->asn_at(member_id));
    }
    kernel_bitset_->inc();
  } else {
    const auto mine = view_->cone(as);
    std::set_difference(mine.begin(), mine.end(), other.begin(), other.end(),
                        std::back_inserter(out));
    kernel_sorted_->inc();
  }
  return out;
}

AsnList QueryEngine::path_to_clique(Asn as) {
  Timer timer(*this, QueryType::kPathToClique);
  const std::uint64_t key = pair_key(as, Asn());
  if (auto cached = path_cache_.get(key)) {
    timer.mark_cache_hit();
    return *cached;
  }

  auto result = std::make_shared<std::vector<Asn>>();
  if (const auto root = view_->node_id(as)) {
    // BFS over provider links on dense node ids.  Frontier order is
    // deterministic: neighbor rows ascend by id (≡ ascending ASN) and the
    // flat queue preserves insertion order, so the first clique member found
    // — and the parent chain behind it — is the same on every run.
    thread_local BfsScratch scratch;
    const std::size_t n = view_->as_count();
    if (scratch.stamp.size() < n) {
      scratch.stamp.resize(n, 0);
      scratch.parent.resize(n);
    }
    if (++scratch.epoch == 0) {  // wrapped: stamps from 2^32 queries ago linger
      std::fill(scratch.stamp.begin(), scratch.stamp.end(), 0);
      scratch.epoch = 1;
    }
    const std::uint32_t epoch = scratch.epoch;
    scratch.queue.clear();
    scratch.stamp[*root] = epoch;
    scratch.parent[*root] = kNoParent;
    scratch.queue.push_back(*root);
    std::uint32_t found = kNoParent;
    for (std::size_t head = 0; head < scratch.queue.size(); ++head) {
      const std::uint32_t current = scratch.queue[head];
      if (view_->id_in_clique(current)) {
        found = current;
        break;
      }
      const auto neighbors = view_->neighbor_ids(current);
      const auto rels = view_->relationship_codes(current);
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        if (static_cast<RelView>(rels[i]) != RelView::kProvider) continue;
        const std::uint32_t provider = neighbors[i];
        // snapshot::kNoNeighborId guard: only reachable through a crafted
        // CRC-valid mmap'd file; never index scratch out of bounds.
        if (provider >= n) continue;
        if (scratch.stamp[provider] == epoch) continue;
        scratch.stamp[provider] = epoch;
        scratch.parent[provider] = current;
        scratch.queue.push_back(provider);
      }
    }
    if (found != kNoParent) {
      for (std::uint32_t hop = found; hop != kNoParent; hop = scratch.parent[hop]) {
        result->push_back(view_->asn_at(hop));
      }
      std::reverse(result->begin(), result->end());
    }
  }
  AsnList shared = std::move(result);
  path_cache_.put(key, shared);
  return shared;
}

std::array<QueryStats, kQueryTypeCount> QueryEngine::stats() const {
  // A thin view over the registry series: histogram count/sum reproduce the
  // former count/total_micros tallies exactly (both are plain u64 sums).
  std::array<QueryStats, kQueryTypeCount> out;
  for (std::size_t i = 0; i < kQueryTypeCount; ++i) {
    out[i].count = metrics_[i].latency->count();
    out[i].cache_hits = metrics_[i].cache_hits->value();
    out[i].total_micros = metrics_[i].latency->sum();
  }
  return out;
}

void QueryEngine::record_stats_query() { record(QueryType::kStats, 0, false); }

std::string QueryEngine::render_stats() const {
  const auto snapshot = stats();
  std::ostringstream os;
  os << "query_type count cache_hits avg_micros\n";
  for (std::size_t i = 0; i < kQueryTypeCount; ++i) {
    const auto& s = snapshot[i];
    const double avg = s.count == 0 ? 0.0
                                    : static_cast<double>(s.total_micros) /
                                          static_cast<double>(s.count);
    os << to_string(static_cast<QueryType>(i)) << ' ' << s.count << ' '
       << s.cache_hits << ' ' << avg << '\n';
  }
  return os.str();
}

}  // namespace asrank::serve
