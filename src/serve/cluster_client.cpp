#include "serve/cluster_client.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <tuple>
#include <utility>

#include "serve/protocol.h"
#include "serve/wire_ops.h"

namespace asrank::serve {

namespace {

/// Failure classes that indict the endpoint (trip the breaker, fail over)
/// rather than the request.  A server-typed error means the endpoint is
/// alive and every replica would answer identically.
[[nodiscard]] bool is_connection_error(ErrorCode code) noexcept {
  return code == ErrorCode::kRefused || code == ErrorCode::kTimeout ||
         code == ErrorCode::kIo || code == ErrorCode::kShedding;
}

}  // namespace

// ------------------------------------------------------------- lifecycle --

ClusterClient::ClusterClient(ClusterMap map, ClusterClientConfig config)
    : map_(std::move(map)), config_(std::move(config)) {
  breaker_rng_.reseed(config_.backoff_seed);
  const auto& endpoints = map_.endpoints();
  transports_.reserve(endpoints.size());
  for (const auto& endpoint : endpoints) {
    transports_.emplace_back(endpoint.host, endpoint.port, config_.transport);
    transport_mutex_.push_back(std::make_unique<std::mutex>());
  }
  health_.resize(endpoints.size());

  metrics_ = config_.metrics != nullptr ? config_.metrics : &obs::Registry::global();
  fanout_total_ = &metrics_->counter("asrank_cluster_fanout_requests_total",
                                     "Per-endpoint sub-requests dispatched");
  failovers_total_ = &metrics_->counter(
      "asrank_cluster_failovers_total",
      "Sub-requests retried on a later replica after a connection-class failure");
  epoch_resolves_total_ = &metrics_->counter("asrank_cluster_epoch_resolves_total",
                                             "Cluster-wide epoch resolutions");
  epoch_skew_total_ = &metrics_->counter(
      "asrank_cluster_epoch_skew_total",
      "Mixed-vintage detections (no common label, or a pinned label vanishing)");
  unavailable_total_ = &metrics_->counter(
      "asrank_cluster_unavailable_total",
      "Queries or sub-queries failed typed kUnavailable");
  latency_ = &metrics_->histogram("asrank_cluster_request_latency_micros",
                                  "Cluster query wall time");
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    metrics_->gauge("asrank_cluster_endpoint_state",
                    "Breaker state: 0 closed, 1 half-open, 2 open",
                    {{"endpoint", endpoints[i].label()}})
        .set(0);
  }
}

// --------------------------------------------------------------- breaker --

std::uint64_t ClusterClient::now_ms() const {
  if (config_.now_ms) return config_.now_ms();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void ClusterClient::set_state_locked(std::size_t index, HealthState next) {
  auto& health = health_[index];
  if (health.state == next) return;
  health.state = next;
  metrics_
      ->gauge("asrank_cluster_endpoint_state",
              "Breaker state: 0 closed, 1 half-open, 2 open",
              {{"endpoint", map_.endpoints()[index].label()}})
      .set(static_cast<std::int64_t>(next));
}

bool ClusterClient::admit(std::size_t index) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& health = health_[index];
  switch (health.state) {
    case HealthState::kClosed:
    case HealthState::kHalfOpen:
      return true;
    case HealthState::kOpen:
      if (now_ms() >= health.open_until_ms) {
        set_state_locked(index, HealthState::kHalfOpen);
        return true;
      }
      return false;
  }
  return false;
}

void ClusterClient::on_success(std::size_t index) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& health = health_[index];
  health.consecutive_failures = 0;
  health.open_spins = 0;
  set_state_locked(index, HealthState::kClosed);
}

void ClusterClient::on_failure(std::size_t index, ErrorCode code) {
  if (!is_connection_error(code)) {
    // The endpoint answered; server-typed errors are the caller's problem.
    on_success(index);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto& health = health_[index];
  const bool half_open_probe_failed = health.state == HealthState::kHalfOpen;
  ++health.consecutive_failures;
  if (!half_open_probe_failed &&
      health.consecutive_failures < config_.failure_threshold) {
    return;
  }
  // Trip (or re-trip) the breaker; cool-down grows with consecutive opens
  // using the same capped equal-jitter schedule transports retry with.
  const int delay = backoff_delay_ms(health.open_spins, config_.open_base_ms,
                                     config_.open_cap_ms, breaker_rng_);
  health.open_spins = std::min(health.open_spins + 1, 20);
  health.open_until_ms = now_ms() + static_cast<std::uint64_t>(delay);
  health.consecutive_failures = 0;
  set_state_locked(index, HealthState::kOpen);
  metrics_
      ->counter("asrank_cluster_endpoint_opens_total",
                "Breaker open transitions",
                {{"endpoint", map_.endpoints()[index].label()}})
      .inc();
}

HealthState ClusterClient::endpoint_state(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return health_[index].state;
}

// -------------------------------------------------------------- exchange --

Result<std::vector<std::uint8_t>> ClusterClient::exchange_on(
    std::size_t index, const std::vector<std::uint8_t>& frame) {
  if (!admit(index)) {
    return make_error(ErrorCode::kUnavailable,
                      "endpoint " + map_.endpoints()[index].label() +
                          ": circuit breaker open");
  }
  fanout_total_->inc();
  Result<std::vector<std::uint8_t>> result = [&] {
    std::lock_guard<std::mutex> lock(*transport_mutex_[index]);
    return transports_[index].try_exchange(frame);
  }();
  if (result.ok()) {
    on_success(index);
  } else {
    on_failure(index, result.error().code);
  }
  return result;
}

Result<std::vector<std::uint8_t>> ClusterClient::over_endpoints(
    std::span<const std::size_t> candidates,
    const std::vector<std::uint8_t>& frame, std::string_view what) {
  std::optional<Error> last;
  bool first_attempt = true;
  for (const std::size_t index : candidates) {
    if (!first_attempt) failovers_total_->inc();
    first_attempt = false;
    auto result = exchange_on(index, frame);
    if (result.ok()) return result;
    const auto code = result.error().code;
    if (!is_connection_error(code) && code != ErrorCode::kUnavailable) {
      return result;  // the endpoint answered; fail-over cannot help
    }
    last = result.take_error();
  }
  unavailable_total_->inc();
  std::string context = "no healthy replica for " + std::string(what);
  if (last) context += " (last: " + last->message() + ")";
  return make_error(ErrorCode::kUnavailable, std::move(context));
}

Result<std::vector<std::uint8_t>> ClusterClient::routed(
    Asn key, const std::vector<std::uint8_t>& frame) {
  const auto slot = map_.slot_of(key);
  return over_endpoints(map_.replicas(slot), frame,
                        "slot " + std::to_string(slot));
}

Result<std::vector<std::uint8_t>> ClusterClient::single(
    const std::vector<std::uint8_t>& frame) {
  std::vector<std::size_t> all(map_.endpoints().size());
  std::iota(all.begin(), all.end(), 0);
  return over_endpoints(all, frame, "cluster");
}

Result<std::vector<std::size_t>> ClusterClient::cover_endpoints() {
  std::vector<std::size_t> cover;
  std::vector<bool> in_cover(map_.endpoints().size(), false);
  for (std::size_t slot = 0; slot < map_.slot_count(); ++slot) {
    bool covered = false;
    for (const std::size_t index : map_.replicas(slot)) {
      if (in_cover[index]) {
        covered = true;
        break;
      }
    }
    if (covered) continue;
    for (const std::size_t index : map_.replicas(slot)) {
      if (admit(index)) {
        in_cover[index] = true;
        cover.push_back(index);
        covered = true;
        break;
      }
    }
    if (!covered) {
      unavailable_total_->inc();
      return make_error(ErrorCode::kUnavailable,
                        "no healthy replica covers slot " + std::to_string(slot));
    }
  }
  std::sort(cover.begin(), cover.end());
  return cover;
}

void ClusterClient::fan_out(
    const std::vector<std::size_t>& targets,
    const std::function<void(std::size_t pos, std::size_t endpoint)>& job) {
  const std::size_t bound = config_.max_fanout == 0 ? 1 : config_.max_fanout;
  const std::size_t workers = std::min(bound, targets.size());
  if (workers <= 1) {
    for (std::size_t pos = 0; pos < targets.size(); ++pos) job(pos, targets[pos]);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (true) {
        const std::size_t pos = next.fetch_add(1, std::memory_order_relaxed);
        if (pos >= targets.size()) break;
        job(pos, targets[pos]);
      }
    });
  }
  for (auto& worker : pool) worker.join();
}

// ----------------------------------------------------- epoch consistency --

std::vector<std::optional<std::vector<std::string>>>
ClusterClient::scatter_epochs() {
  std::vector<std::size_t> all(map_.endpoints().size());
  std::iota(all.begin(), all.end(), 0);
  std::vector<std::optional<std::vector<std::string>>> out(all.size());
  const auto frame = wire::request(Op::kEpochs).take();
  fan_out(all, [&](std::size_t pos, std::size_t index) {
    auto body = exchange_on(index, frame);
    if (!body.ok()) return;
    auto labels = wire::decode_labels(body.value());
    if (labels.ok()) out[pos] = std::move(labels).value();
  });
  return out;
}

Result<std::string> ClusterClient::resolve_epoch() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (resolved_epoch_) return *resolved_epoch_;
  }
  epoch_resolves_total_->inc();
  const auto per_endpoint = scatter_epochs();
  const std::vector<std::string>* reference = nullptr;
  std::size_t reachable = 0;
  for (const auto& labels : per_endpoint) {
    if (!labels) continue;
    ++reachable;
    if (reference == nullptr) reference = &*labels;
  }
  if (reachable == 0) {
    unavailable_total_->inc();
    return make_error(ErrorCode::kUnavailable,
                      "no cluster endpoint reachable to resolve an epoch");
  }
  // The cluster-wide epoch is the first label (newest; EPOCHS lists current
  // first) resident on every reachable endpoint.
  for (const auto& label : *reference) {
    const bool common = std::all_of(
        per_endpoint.begin(), per_endpoint.end(), [&](const auto& labels) {
          return !labels || std::find(labels->begin(), labels->end(), label) !=
                                labels->end();
        });
    if (common) {
      std::lock_guard<std::mutex> lock(mutex_);
      resolved_epoch_ = label;
      return label;
    }
  }
  epoch_skew_total_->inc();
  std::string detail;
  for (std::size_t i = 0; i < per_endpoint.size(); ++i) {
    if (!per_endpoint[i]) continue;
    if (!detail.empty()) detail += "; ";
    detail += map_.endpoints()[i].label() + "=[";
    for (std::size_t j = 0; j < per_endpoint[i]->size(); ++j) {
      if (j != 0) detail += ",";
      detail += (*per_endpoint[i])[j];
    }
    detail += "]";
  }
  return make_error(ErrorCode::kEpochSkew,
                    "no epoch resident on every reachable endpoint (" + detail +
                        ")");
}

void ClusterClient::invalidate_epoch() {
  std::lock_guard<std::mutex> lock(mutex_);
  resolved_epoch_.reset();
}

Result<std::string> ClusterClient::try_resolved_epoch() { return resolve_epoch(); }

template <typename Fn>
auto ClusterClient::pinned(const QueryScope& scope, std::string_view op, Fn&& body)
    -> decltype(body(scope)) {
  using R = decltype(body(scope));
  const auto start = std::chrono::steady_clock::now();
  const auto done = [&](R result) -> R {
    latency_->observe(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
    metrics_
        ->counter("asrank_cluster_requests_total", "Cluster queries dispatched",
                  {{"op", std::string(op)}})
        .inc();
    if (!result.ok()) {
      metrics_
          ->counter("asrank_cluster_errors_total", "Cluster queries failed",
                    {{"code", std::string(to_string(result.error().code))}})
          .inc();
    }
    return result;
  };

  // An explicitly scoped epoch bypasses the consistency machinery: the
  // caller pinned a vintage, so kUnknownEpoch is their answer, not skew.
  if (!scope.epoch.empty()) return done(body(scope));

  auto resolved = resolve_epoch();
  if (!resolved.ok()) return done(R(resolved.take_error()));
  auto first = body(scope.with_epoch(resolved.value()));
  if (first.ok() || first.error().code != ErrorCode::kUnknownEpoch) {
    return done(std::move(first));
  }
  // A replica no longer carries the pinned label: the skew signal.  One
  // bounded re-resolve, then fail typed.
  epoch_skew_total_->inc();
  invalidate_epoch();
  auto resolved_again = resolve_epoch();
  if (!resolved_again.ok()) return done(R(resolved_again.take_error()));
  auto second = body(scope.with_epoch(resolved_again.value()));
  if (second.ok() || second.error().code != ErrorCode::kUnknownEpoch) {
    return done(std::move(second));
  }
  epoch_skew_total_->inc();
  return done(R(make_error(
      ErrorCode::kEpochSkew,
      "epoch '" + resolved_again.value() +
          "' not uniformly resident after re-resolve: " + second.error().context)));
}

// --------------------------------------------------------- query surface --

Result<std::optional<RelView>> ClusterClient::try_relationship(
    Asn a, Asn b, const QueryScope& scope) {
  return pinned(scope, "rel",
                [&](const QueryScope& s) -> Result<std::optional<RelView>> {
                  auto req = wire::request(Op::kRelationship);
                  req.u32(a.value());
                  req.u32(b.value());
                  ASRANK_TRY(body, routed(a, wire::apply_scope(s, req.take())));
                  WireReader reader(body);
                  ASRANK_TRY(code, reader.u8());
                  return wire::decode_rel_opt(code);
                });
}

Result<std::optional<std::uint32_t>> ClusterClient::try_rank(
    Asn as, const QueryScope& scope) {
  return pinned(
      scope, "rank",
      [&](const QueryScope& s) -> Result<std::optional<std::uint32_t>> {
        auto req = wire::request(Op::kRank);
        req.u32(as.value());
        ASRANK_TRY(body, routed(as, wire::apply_scope(s, req.take())));
        WireReader reader(body);
        ASRANK_TRY(rank, reader.u32());
        if (rank == 0) return std::optional<std::uint32_t>{};
        return std::optional<std::uint32_t>{rank};
      });
}

Result<std::uint64_t> ClusterClient::try_cone_size(Asn as,
                                                   const QueryScope& scope) {
  return pinned(scope, "conesize",
                [&](const QueryScope& s) -> Result<std::uint64_t> {
                  auto req = wire::request(Op::kConeSize);
                  req.u32(as.value());
                  ASRANK_TRY(body, routed(as, wire::apply_scope(s, req.take())));
                  WireReader reader(body);
                  return reader.u64();
                });
}

Result<std::vector<Asn>> ClusterClient::try_cone(Asn as,
                                                 const QueryScope& scope) {
  return pinned(scope, "cone",
                [&](const QueryScope& s) -> Result<std::vector<Asn>> {
                  auto req = wire::request(Op::kCone);
                  req.u32(as.value());
                  ASRANK_TRY(body, routed(as, wire::apply_scope(s, req.take())));
                  return wire::decode_asn_list(body);
                });
}

Result<bool> ClusterClient::try_in_cone(Asn as, Asn member,
                                        const QueryScope& scope) {
  return pinned(scope, "incone", [&](const QueryScope& s) -> Result<bool> {
    auto req = wire::request(Op::kInCone);
    req.u32(as.value());
    req.u32(member.value());
    ASRANK_TRY(body, routed(as, wire::apply_scope(s, req.take())));
    WireReader reader(body);
    ASRANK_TRY(flag, reader.u8());
    return flag != 0;
  });
}

Result<std::vector<Asn>> ClusterClient::try_providers(Asn as,
                                                      const QueryScope& scope) {
  return pinned(scope, "providers",
                [&](const QueryScope& s) -> Result<std::vector<Asn>> {
                  auto req = wire::request(Op::kProviders);
                  req.u32(as.value());
                  ASRANK_TRY(body, routed(as, wire::apply_scope(s, req.take())));
                  return wire::decode_asn_list(body);
                });
}

Result<std::vector<Asn>> ClusterClient::try_customers(Asn as,
                                                      const QueryScope& scope) {
  return pinned(scope, "customers",
                [&](const QueryScope& s) -> Result<std::vector<Asn>> {
                  auto req = wire::request(Op::kCustomers);
                  req.u32(as.value());
                  ASRANK_TRY(body, routed(as, wire::apply_scope(s, req.take())));
                  return wire::decode_asn_list(body);
                });
}

Result<std::vector<Asn>> ClusterClient::try_peers(Asn as,
                                                  const QueryScope& scope) {
  return pinned(scope, "peers",
                [&](const QueryScope& s) -> Result<std::vector<Asn>> {
                  auto req = wire::request(Op::kPeers);
                  req.u32(as.value());
                  ASRANK_TRY(body, routed(as, wire::apply_scope(s, req.take())));
                  return wire::decode_asn_list(body);
                });
}

Result<std::vector<Asn>> ClusterClient::try_path_to_clique(
    Asn as, const QueryScope& scope) {
  return pinned(scope, "cliquepath",
                [&](const QueryScope& s) -> Result<std::vector<Asn>> {
                  auto req = wire::request(Op::kPathToClique);
                  req.u32(as.value());
                  ASRANK_TRY(body, routed(as, wire::apply_scope(s, req.take())));
                  return wire::decode_asn_list(body);
                });
}

Result<std::vector<snapshot::TopEntry>> ClusterClient::try_top(
    std::uint32_t n, const QueryScope& scope) {
  return pinned(
      scope, "top",
      [&](const QueryScope& s) -> Result<std::vector<snapshot::TopEntry>> {
        ASRANK_TRY(cover, cover_endpoints());
        auto req = wire::request(Op::kTop);
        req.u32(n);
        const auto frame = wire::apply_scope(s, req.take());
        std::vector<std::vector<snapshot::TopEntry>> parts(cover.size());
        std::vector<std::optional<Error>> errors(cover.size());
        fan_out(cover, [&](std::size_t pos, std::size_t index) {
          auto body = exchange_on(index, frame);
          if (!body.ok()) {
            errors[pos] = body.take_error();
            return;
          }
          auto top = wire::decode_top(body.value());
          if (!top.ok()) {
            errors[pos] = top.take_error();
            return;
          }
          parts[pos] = std::move(top).value();
        });
        for (auto& error : errors) {
          if (!error) continue;
          if (is_connection_error(error->code)) {
            unavailable_total_->inc();
            return make_error(ErrorCode::kUnavailable,
                              "TOP scatter lost a cover endpoint: " +
                                  error->message());
          }
          return *std::move(error);
        }
        // K-way merge by global rank; replicas of the same slot return
        // identical rows, so exact duplicates collapse.
        std::vector<snapshot::TopEntry> merged;
        for (auto& part : parts) {
          merged.insert(merged.end(), part.begin(), part.end());
        }
        const auto key = [](const snapshot::TopEntry& e) {
          return std::tuple(e.rank, e.as.value(), e.cone_size, e.transit_degree);
        };
        std::sort(merged.begin(), merged.end(),
                  [&](const auto& x, const auto& y) { return key(x) < key(y); });
        merged.erase(std::unique(merged.begin(), merged.end(),
                                 [&](const auto& x, const auto& y) {
                                   return key(x) == key(y);
                                 }),
                     merged.end());
        if (merged.size() > static_cast<std::size_t>(n)) merged.resize(n);
        return merged;
      });
}

Result<std::vector<Asn>> ClusterClient::try_cone_intersection(
    Asn a, Asn b, const QueryScope& scope) {
  return pinned(
      scope, "intersect",
      [&](const QueryScope& s) -> Result<std::vector<Asn>> {
        if (map_.slot_of(a) == map_.slot_of(b)) {
          // Same shard: the server computes (and caches) the intersection.
          auto req = wire::request(Op::kConeIntersect);
          req.u32(a.value());
          req.u32(b.value());
          ASRANK_TRY(body, routed(a, wire::apply_scope(s, req.take())));
          return wire::decode_asn_list(body);
        }
        // Cross-shard: fetch both cones from their own shards concurrently
        // (both pinned to the same epoch by `s`) and intersect client-side.
        const Asn operands[2] = {a, b};
        std::vector<Asn> cones[2];
        std::optional<Error> errors[2];
        fan_out({0, 1}, [&](std::size_t pos, std::size_t which) {
          auto req = wire::request(Op::kCone);
          req.u32(operands[which].value());
          auto body = routed(operands[which], wire::apply_scope(s, req.take()));
          if (!body.ok()) {
            errors[pos] = body.take_error();
            return;
          }
          auto cone = wire::decode_asn_list(body.value());
          if (!cone.ok()) {
            errors[pos] = cone.take_error();
            return;
          }
          cones[pos] = std::move(cone).value();
        });
        for (auto& error : errors) {
          if (error) return *std::move(error);
        }
        // Cones arrive ascending (wire contract); intersect in order so the
        // answer is byte-identical to the server-side CONE_INTERSECT.
        std::vector<Asn> out;
        std::set_intersection(cones[0].begin(), cones[0].end(), cones[1].begin(),
                              cones[1].end(), std::back_inserter(out));
        return out;
      });
}

Result<std::vector<Asn>> ClusterClient::try_clique(const QueryScope& scope) {
  return pinned(scope, "clique",
                [&](const QueryScope& s) -> Result<std::vector<Asn>> {
                  ASRANK_TRY(body, single(wire::apply_scope(
                                       s, wire::request(Op::kClique).take())));
                  return wire::decode_asn_list(body);
                });
}

Result<std::string> ClusterClient::try_stats_text(const QueryScope& scope) {
  return pinned(scope, "stats", [&](const QueryScope& s) -> Result<std::string> {
    ASRANK_TRY(body,
               single(wire::apply_scope(s, wire::request(Op::kStats).take())));
    WireReader reader(body);
    return reader.rest_as_text();
  });
}

Result<std::vector<std::string>> ClusterClient::try_epochs() {
  const auto per_endpoint = scatter_epochs();
  const std::vector<std::string>* reference = nullptr;
  for (const auto& labels : per_endpoint) {
    if (labels) {
      reference = &*labels;
      break;
    }
  }
  if (reference == nullptr) {
    unavailable_total_->inc();
    return make_error(ErrorCode::kUnavailable, "no cluster endpoint reachable");
  }
  // Labels every reachable endpoint carries, in the first reachable
  // endpoint's order — the cluster can only answer from common vintages.
  std::vector<std::string> out;
  for (const auto& label : *reference) {
    const bool common = std::all_of(
        per_endpoint.begin(), per_endpoint.end(), [&](const auto& labels) {
          return !labels || std::find(labels->begin(), labels->end(), label) !=
                                labels->end();
        });
    if (common) out.push_back(label);
  }
  return out;
}

Result<std::vector<std::string>> ClusterClient::try_algos(
    const QueryScope& scope) {
  return pinned(
      scope, "algos",
      [&](const QueryScope& s) -> Result<std::vector<std::string>> {
        ASRANK_TRY(cover, cover_endpoints());
        const auto frame =
            wire::apply_epoch(s.epoch, wire::request(Op::kAlgos).take());
        std::vector<std::optional<std::vector<std::string>>> parts(cover.size());
        std::vector<std::optional<Error>> errors(cover.size());
        fan_out(cover, [&](std::size_t pos, std::size_t index) {
          auto body = exchange_on(index, frame);
          if (!body.ok()) {
            errors[pos] = body.take_error();
            return;
          }
          auto names = wire::decode_labels(body.value());
          if (!names.ok()) {
            errors[pos] = names.take_error();
            return;
          }
          parts[pos] = std::move(names).value();
        });
        for (auto& error : errors) {
          if (!error) continue;
          if (is_connection_error(error->code)) {
            unavailable_total_->inc();
            return make_error(ErrorCode::kUnavailable,
                              "ALGOS scatter lost a cover endpoint: " +
                                  error->message());
          }
          return *std::move(error);
        }
        std::vector<std::string> out;
        for (const auto& name : **parts.begin()) {
          const bool common = std::all_of(
              parts.begin(), parts.end(), [&](const auto& names) {
                return std::find(names->begin(), names->end(), name) !=
                       names->end();
              });
          if (common) out.push_back(name);
        }
        return out;
      });
}

Result<DisagreeReport> ClusterClient::try_disagree(std::string_view algo_a,
                                                   std::string_view algo_b,
                                                   std::uint32_t limit,
                                                   const QueryScope& scope) {
  return pinned(scope, "disagree",
                [&](const QueryScope& s) -> Result<DisagreeReport> {
                  auto req = wire::request(Op::kDisagree);
                  req.str16(algo_a);
                  req.str16(algo_b);
                  req.u32(limit);
                  ASRANK_TRY(body, single(wire::apply_epoch(s.epoch, req.take())));
                  return wire::decode_disagree(body);
                });
}

Result<ConeDiff> ClusterClient::try_cone_diff(Asn as, std::string_view epoch_a,
                                              std::string_view epoch_b) {
  // Both epochs are explicit, so no pinning; route by the subject AS.
  auto req = wire::request(Op::kConeDiff);
  req.u32(as.value());
  req.str16(epoch_a);
  req.str16(epoch_b);
  ASRANK_TRY(body, routed(as, req.take()));
  return wire::decode_cone_diff(body);
}

Result<void> ClusterClient::try_ping() {
  ASRANK_TRY(body, single(wire::request(Op::kPing).take()));
  (void)body;
  return {};
}

// ----------------------------------------------------------------- status --

std::vector<EndpointStatus> ClusterClient::probe_endpoints() {
  std::vector<std::size_t> all(map_.endpoints().size());
  std::iota(all.begin(), all.end(), 0);
  std::vector<EndpointStatus> out(all.size());
  const auto frame = wire::request(Op::kEpochs).take();
  fan_out(all, [&](std::size_t pos, std::size_t index) {
    auto& status = out[pos];
    status.endpoint = map_.endpoints()[index].label();
    auto body = exchange_on(index, frame);
    if (body.ok()) {
      status.reachable = true;
      auto labels = wire::decode_labels(body.value());
      if (labels.ok() && !labels.value().empty()) {
        status.current_epoch = labels.value().front();
      }
    } else {
      status.error = body.error().message();
    }
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].state = endpoint_state(i);
  }
  return out;
}

}  // namespace asrank::serve
