// asrankd wire protocol (see docs/SERVING.md for the normative spec).
//
// A connection carries a sequence of independent request/response exchanges
// in either of two interleavable modes, distinguished by the first byte of
// each request:
//
//   * Binary: marker byte 0x01, then a u32 little-endian payload length,
//     then the payload (u8 opcode + fixed-width little-endian operands).
//     Responses are framed identically; the payload starts with a u8 status
//     (0 = OK, 1 = error) followed by the opcode-specific body.
//   * Text (for debugging with `nc`): any other first byte starts a
//     newline-terminated ASCII command ("REL 174 3356\n"); the response is
//     one "OK ..." or "ERR ..." line.
//
// Everything here is shared by the server, the client library, and the
// tests, so the two sides cannot drift apart.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "topology/relationship.h"
#include "util/result.h"

namespace asrank::serve {

/// Raised on malformed frames, oversized payloads, or socket failures.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error("protocol: " + what) {}
};

/// Raised by the deadline-aware I/O helpers when the deadline expires before
/// the requested bytes arrive.  A subclass so existing catch(ProtocolError)
/// sites keep working while deadline-aware callers can count timeouts
/// separately.
class TimeoutError : public ProtocolError {
 public:
  explicit TimeoutError(const std::string& what) : ProtocolError(what) {}
};

inline constexpr std::uint8_t kBinaryMarker = 0x01;
/// Upper bound on any frame payload; larger lengths are treated as corrupt
/// framing rather than an allocation request.
inline constexpr std::uint32_t kMaxPayload = 64u << 20;

enum class Op : std::uint8_t {
  kRelationship = 1,   ///< a, b -> rel code (from a's perspective)
  kRank = 2,           ///< a -> u32 rank (0 = unranked/unknown)
  kConeSize = 3,       ///< a -> u64
  kCone = 4,           ///< a -> asn list
  kInCone = 5,         ///< a, member -> u8 bool
  kProviders = 6,      ///< a -> asn list
  kCustomers = 7,      ///< a -> asn list
  kPeers = 8,          ///< a -> asn list
  kTop = 9,            ///< n -> entries {u32 rank, u32 asn, u64 cone, u32 tdeg}
  kConeIntersect = 10, ///< a, b -> asn list (derived; LRU-cached)
  kPathToClique = 11,  ///< a -> asn list, a..clique member (derived; cached)
  kClique = 12,        ///< -> asn list
  kStats = 13,         ///< -> UTF-8 stats text
  kPing = 14,          ///< -> empty
  kMetrics = 15,       ///< -> Prometheus text exposition (UTF-8)
  kEpochs = 16,        ///< -> u32 count + {str16 label} list, current first
  kConeDiff = 17,      ///< asn, str16 epochA, str16 epochB -> added + removed lists
  kReload = 18,        ///< str16 path, str16 label ("" = derive) -> str16 label + u32 ases
  kWithEpoch = 19,     ///< str16 label + inner request payload, answered from that epoch
  kDisagree = 20,      ///< str16 algoA, str16 algoB, u32 limit (0 = all) ->
                       ///< u32 total, u32 returned, entries {u32 a, u32 b,
                       ///< u8 relA, u8 relB} over the union of links, ascending
                       ///< (a, b) with a < b; kRelNone marks an absent link
  kWithAlgo = 21,      ///< str16 algorithm + inner request payload, answered by
                       ///< that algorithm's section of the epoch (nests inside
                       ///< WITH_EPOCH; engine ops nest inside it)
  kAlgos = 22,         ///< -> u32 count + {str16 name} list, the scoped epoch's
                       ///< algorithm sections, primary first (nests inside
                       ///< WITH_EPOCH only; rejected inside WITH_ALGO)
};

enum class Status : std::uint8_t { kOk = 0, kError = 1 };

/// Relationship byte: RelView values 0..3, or kRelNone for "no such link".
inline constexpr std::uint8_t kRelNone = 0xFF;

[[nodiscard]] std::optional<RelView> rel_from_code(std::uint8_t code) noexcept;

// ------------------------------------------------------- payload codecs --

/// Little-endian payload builder.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const std::uint8_t> data);
  void text(std::string_view s);
  /// u16 length prefix + raw bytes (epoch labels, snapshot paths).
  void str16(std::string_view s);

  [[nodiscard]] const std::vector<std::uint8_t>& payload() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Little-endian payload cursor; underruns yield ErrorCode::kTruncated (the
/// server turns the Error into an error response, the client into a
/// ProtocolError — neither side treats a short payload as an exception
/// internally).
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) noexcept : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool done() const noexcept { return remaining() == 0; }

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  /// Inverse of WireWriter::str16.
  Result<std::string> str16();
  /// The rest of the payload as raw bytes (for nested-request dispatch).
  [[nodiscard]] std::span<const std::uint8_t> rest() const noexcept {
    return data_.subspan(pos_);
  }
  /// The rest of the payload as UTF-8 text.
  [[nodiscard]] std::string rest_as_text();

 private:
  [[nodiscard]] Result<void> need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------------ frame I/O --

/// Write one binary frame (marker + length + payload) to `fd`; retries on
/// partial writes/EINTR, throws ProtocolError on socket failure.
void write_frame(int fd, std::span<const std::uint8_t> payload);

/// Read one binary frame payload after the 0x01 marker has already been
/// consumed.  Throws on malformed length or short read.
[[nodiscard]] std::vector<std::uint8_t> read_frame_body(int fd);

/// Read exactly n bytes; returns false on clean EOF at offset 0, throws on
/// mid-message EOF or socket error.
bool read_exact(int fd, void* buf, std::size_t n);

/// Deadline-aware read_exact: poll before every read() so a stalled peer
/// cannot pin the caller.  `deadline_ms` is a budget for the whole n bytes;
/// < 0 disables the deadline (plain blocking semantics).  Expiry throws
/// TimeoutError.
bool read_exact(int fd, void* buf, std::size_t n, int deadline_ms);

/// Deadline-aware read_frame_body; `deadline_ms` covers length + payload.
[[nodiscard]] std::vector<std::uint8_t> read_frame_body(int fd, int deadline_ms);

/// Write all n bytes, retrying on partial writes.
void write_all(int fd, const void* buf, std::size_t n);

}  // namespace asrank::serve
