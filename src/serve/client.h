// Blocking client for the asrankd binary protocol, used by `asrank_cli
// query`, the serving tests, and the CI smoke script.  One connection per
// Client (one serve::Transport); every method is one request/response
// exchange.
//
// All methods return asrank::Result<T> with a typed ErrorCode — kTimeout
// (connect/read deadline expired), kRefused (connection refused), kShedding
// (server at its admission limit), kProtocol (bad frame or server-reported
// error), kUnknownEpoch, kUnknownAlgorithm.  Refused/shed exchanges are
// retried up to TransportConfig::max_retries times with capped exponential
// equal-jitter backoff; the jitter RNG is seeded (deterministic for tests)
// and the sleep is injectable.
//
// Query scoping: every try_* query method has a scoped overload taking a
// `const QueryScope&` — the explicit (epoch, algorithm) pair the query is
// answered under, with no mutable client state involved.  A default scope
// can be bound once with with_scope().  The historical per-call
// `std::string_view epoch` overloads remain as thin delegates that combine
// the given epoch with the bound scope's algorithm (set_algorithm is now a
// shorthand for mutating the bound scope).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "asn/asn.h"
#include "serve/query_scope.h"
#include "serve/transport.h"
#include "serve/wire_ops.h"
#include "snapshot/snapshot.h"
#include "topology/relationship.h"
#include "util/result.h"

namespace asrank::serve {

/// Historical name: Client's config is exactly the transport's.
using ClientConfig = TransportConfig;

class Client {
 public:
  /// Non-throwing constructor path: connect with the config's deadline.
  /// kRefused when the server refuses, kTimeout when the deadline expires.
  [[nodiscard]] static Result<Client> dial(const std::string& host,
                                           std::uint16_t port,
                                           ClientConfig config = {});

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&&) noexcept = default;
  Client& operator=(Client&&) noexcept = default;
  ~Client() = default;

  // ------------------------------------------------------------- scope --

  /// Bind a default QueryScope; legacy (no-scope) calls are answered under
  /// it.  Returns *this for dial-then-bind chaining.
  Client& with_scope(QueryScope scope) {
    scope_ = std::move(scope);
    return *this;
  }
  [[nodiscard]] const QueryScope& scope() const noexcept { return scope_; }

  /// Shorthand for mutating the bound scope's algorithm (historical API).
  /// Empty restores the server default (the snapshot's primary algorithm).
  /// A name the serving epoch lacks surfaces as kUnknownAlgorithm per query.
  void set_algorithm(std::string name) { scope_.algorithm = std::move(name); }
  [[nodiscard]] const std::string& algorithm() const noexcept {
    return scope_.algorithm;
  }

  // --------------------------------------------------- scoped queries --
  // The scope is used exactly as given; the bound scope is not consulted.

  Result<std::optional<RelView>> try_relationship(Asn a, Asn b,
                                                  const QueryScope& scope);
  Result<std::optional<std::uint32_t>> try_rank(Asn as, const QueryScope& scope);
  Result<std::uint64_t> try_cone_size(Asn as, const QueryScope& scope);
  Result<std::vector<Asn>> try_cone(Asn as, const QueryScope& scope);
  Result<bool> try_in_cone(Asn as, Asn member, const QueryScope& scope);
  Result<std::vector<Asn>> try_providers(Asn as, const QueryScope& scope);
  Result<std::vector<Asn>> try_customers(Asn as, const QueryScope& scope);
  Result<std::vector<Asn>> try_peers(Asn as, const QueryScope& scope);
  Result<std::vector<snapshot::TopEntry>> try_top(std::uint32_t n,
                                                  const QueryScope& scope);
  Result<std::vector<Asn>> try_cone_intersection(Asn a, Asn b,
                                                 const QueryScope& scope);
  Result<std::vector<Asn>> try_path_to_clique(Asn as, const QueryScope& scope);
  Result<std::vector<Asn>> try_clique(const QueryScope& scope);
  Result<std::string> try_stats_text(const QueryScope& scope);
  /// Algorithm sections of the scoped epoch, primary first (scope.algorithm
  /// is ignored — the answer enumerates algorithms).
  Result<std::vector<std::string>> try_algos(const QueryScope& scope);
  /// Links where two algorithms of the scoped epoch differ; `limit` caps the
  /// returned rows (0 = all), the total is always exact.  scope.algorithm is
  /// ignored (both algorithms are explicit).
  Result<DisagreeReport> try_disagree(std::string_view algo_a,
                                      std::string_view algo_b,
                                      std::uint32_t limit,
                                      const QueryScope& scope);

  // ------------------------------------- legacy per-call epoch surface --
  // Thin delegates: the named epoch (empty = bound scope's epoch) combines
  // with the bound scope's algorithm.

  Result<std::optional<RelView>> try_relationship(Asn a, Asn b,
                                                  std::string_view epoch = {});
  /// nullopt = unranked.
  Result<std::optional<std::uint32_t>> try_rank(Asn as, std::string_view epoch = {});
  Result<std::uint64_t> try_cone_size(Asn as, std::string_view epoch = {});
  Result<std::vector<Asn>> try_cone(Asn as, std::string_view epoch = {});
  Result<bool> try_in_cone(Asn as, Asn member, std::string_view epoch = {});
  Result<std::vector<Asn>> try_providers(Asn as, std::string_view epoch = {});
  Result<std::vector<Asn>> try_customers(Asn as, std::string_view epoch = {});
  Result<std::vector<Asn>> try_peers(Asn as, std::string_view epoch = {});
  Result<std::vector<snapshot::TopEntry>> try_top(std::uint32_t n,
                                                  std::string_view epoch = {});
  Result<std::vector<Asn>> try_cone_intersection(Asn a, Asn b,
                                                 std::string_view epoch = {});
  Result<std::vector<Asn>> try_path_to_clique(Asn as, std::string_view epoch = {});
  Result<std::vector<Asn>> try_clique(std::string_view epoch = {});
  Result<std::string> try_stats_text(std::string_view epoch = {});
  Result<std::vector<std::string>> try_algos(std::string_view epoch = {});
  Result<DisagreeReport> try_disagree(std::string_view algo_a,
                                      std::string_view algo_b,
                                      std::uint32_t limit = 0,
                                      std::string_view epoch = {});

  // ------------------------------------------------- unscoped requests --

  Result<std::string> try_metrics_text();
  Result<void> try_ping();
  /// Resident epoch labels, current first.
  Result<std::vector<std::string>> try_epochs();
  /// Cone membership delta of `as` from `epoch_a` to `epoch_b`.
  Result<ConeDiff> try_cone_diff(Asn as, std::string_view epoch_a,
                                 std::string_view epoch_b);
  /// Ask the server to load a snapshot file (loopback connections only;
  /// empty label derives one from the path).
  Result<ReloadInfo> try_reload(const std::string& path,
                                const std::string& label = {});

  /// The underlying connection (exposed for diagnostics; ClusterClient uses
  /// its own Transports directly).
  [[nodiscard]] const Transport& transport() const noexcept { return transport_; }

 private:
  explicit Client(Transport transport) : transport_(std::move(transport)) {}

  /// The scope a legacy call resolves to: the named epoch (or the bound
  /// scope's when empty) plus the bound scope's algorithm.
  [[nodiscard]] QueryScope effective(std::string_view epoch) const {
    if (epoch.empty()) return scope_;
    return scope_.with_epoch(epoch);
  }

  Transport transport_;
  QueryScope scope_;
};

}  // namespace asrank::serve
