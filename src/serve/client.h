// Blocking client for the asrankd binary protocol, used by `asrank_cli
// query`, the serving tests, and the CI smoke script.  One connection per
// Client; every method is one request/response exchange.
//
// All methods return asrank::Result<T> with a typed ErrorCode — kTimeout
// (connect/read deadline expired), kRefused (connection refused), kShedding
// (server at its admission limit), kProtocol (bad frame or server-reported
// error), kUnknownEpoch.  Refused/shed exchanges are retried up to
// ClientConfig::max_retries times with capped exponential equal-jitter
// backoff; the jitter RNG is seeded (deterministic for tests) and the sleep
// is injectable.  (The legacy throwing forwarders were removed once every
// in-repo caller migrated to the Result rail.)
//
// Most try_* query methods take an optional trailing `epoch` label; when
// non-empty the request is wrapped in WITH_EPOCH and answered from that
// resident epoch instead of the server's current one.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "asn/asn.h"
#include "snapshot/snapshot.h"
#include "topology/relationship.h"
#include "util/result.h"
#include "util/rng.h"

namespace asrank::serve {

struct ClientConfig {
  int connect_timeout_ms = 5000;  ///< <= 0 = block indefinitely
  int io_timeout_ms = 5000;       ///< per-response read budget; <= 0 = block
  int max_retries = 0;            ///< extra attempts after refused/shed
  int backoff_base_ms = 50;
  int backoff_cap_ms = 2000;
  std::uint64_t backoff_seed = 0x5eed5eed5eed5eedULL;
  /// Injectable sleep (tests observe/skip the waits); default really sleeps.
  std::function<void(int)> sleep_ms;
};

/// CONE_DIFF result: members entering/leaving the cone from epoch A to B.
struct ConeDiff {
  std::vector<Asn> added;
  std::vector<Asn> removed;

  friend bool operator==(const ConeDiff&, const ConeDiff&) = default;
};

/// RELOAD result: the installed epoch label and its AS count.
struct ReloadInfo {
  std::string label;
  std::uint32_t ases = 0;

  friend bool operator==(const ReloadInfo&, const ReloadInfo&) = default;
};

/// One DISAGREE row: a link the two algorithms classify differently.
/// nullopt = that algorithm has no such link.
struct Disagreement {
  Asn a;
  Asn b;
  std::optional<RelView> first;   ///< from a's perspective, first algorithm
  std::optional<RelView> second;  ///< from a's perspective, second algorithm

  friend bool operator==(const Disagreement&, const Disagreement&) = default;
};

/// DISAGREE result: total disagreement count plus the (possibly truncated)
/// rows, ascending (a, b) with a < b.
struct DisagreeReport {
  std::uint32_t total = 0;
  std::vector<Disagreement> rows;

  friend bool operator==(const DisagreeReport&, const DisagreeReport&) = default;
};

/// Capped exponential backoff with equal jitter:
/// d = min(cap, base << attempt); delay = d/2 + uniform[0, d/2].
/// Deterministic for a given rng state (seeded from ClientConfig).
[[nodiscard]] int backoff_delay_ms(int attempt, int base_ms, int cap_ms,
                                   util::Rng& rng);

class Client {
 public:
  /// Non-throwing constructor path: connect with the config's deadline.
  /// kRefused when the server refuses, kTimeout when the deadline expires.
  [[nodiscard]] static Result<Client> dial(const std::string& host,
                                           std::uint16_t port,
                                           ClientConfig config = {});

  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Scope every engine query to a named algorithm: requests are wrapped in
  /// WITH_ALGO (inside WITH_EPOCH when an epoch is also named).  Empty
  /// restores the server default (the snapshot's primary algorithm).  A name
  /// the serving epoch lacks surfaces as kUnknownAlgorithm per query.
  void set_algorithm(std::string name) { algorithm_ = std::move(name); }
  [[nodiscard]] const std::string& algorithm() const noexcept { return algorithm_; }

  // ----------------------------------------------------- Result surface --

  Result<std::optional<RelView>> try_relationship(Asn a, Asn b,
                                                  std::string_view epoch = {});
  /// nullopt = unranked.
  Result<std::optional<std::uint32_t>> try_rank(Asn as, std::string_view epoch = {});
  Result<std::uint64_t> try_cone_size(Asn as, std::string_view epoch = {});
  Result<std::vector<Asn>> try_cone(Asn as, std::string_view epoch = {});
  Result<bool> try_in_cone(Asn as, Asn member, std::string_view epoch = {});
  Result<std::vector<Asn>> try_providers(Asn as, std::string_view epoch = {});
  Result<std::vector<Asn>> try_customers(Asn as, std::string_view epoch = {});
  Result<std::vector<Asn>> try_peers(Asn as, std::string_view epoch = {});
  Result<std::vector<snapshot::TopEntry>> try_top(std::uint32_t n,
                                                  std::string_view epoch = {});
  Result<std::vector<Asn>> try_cone_intersection(Asn a, Asn b,
                                                 std::string_view epoch = {});
  Result<std::vector<Asn>> try_path_to_clique(Asn as, std::string_view epoch = {});
  Result<std::vector<Asn>> try_clique(std::string_view epoch = {});
  Result<std::string> try_stats_text(std::string_view epoch = {});
  Result<std::string> try_metrics_text();
  Result<void> try_ping();

  /// Resident epoch labels, current first.
  Result<std::vector<std::string>> try_epochs();
  /// Cone membership delta of `as` from `epoch_a` to `epoch_b`.
  Result<ConeDiff> try_cone_diff(Asn as, std::string_view epoch_a,
                                 std::string_view epoch_b);
  /// Ask the server to load a snapshot file (loopback connections only;
  /// empty label derives one from the path).
  Result<ReloadInfo> try_reload(const std::string& path,
                                const std::string& label = {});
  /// Links where two algorithms of one epoch differ (the current epoch when
  /// `epoch` is empty); `limit` caps the returned rows (0 = all), the total
  /// is always exact.  Ignores set_algorithm (both algorithms are explicit).
  Result<DisagreeReport> try_disagree(std::string_view algo_a,
                                      std::string_view algo_b,
                                      std::uint32_t limit = 0,
                                      std::string_view epoch = {});

 private:
  Client() = default;

  /// One request/response exchange with refused/shed retry + backoff.
  [[nodiscard]] Result<std::vector<std::uint8_t>> try_exchange(
      const std::vector<std::uint8_t>& request);
  /// The exchange body for a single attempt (no retry).
  [[nodiscard]] Result<std::vector<std::uint8_t>> exchange_once(
      const std::vector<std::uint8_t>& request);
  /// (Re)connect if fd_ < 0.
  [[nodiscard]] Result<void> ensure_connected();
  void disconnect() noexcept;
  void sleep_for(int ms);

  /// Wrap an engine-scoped request payload in WITH_ALGO / WITH_EPOCH as
  /// configured.
  [[nodiscard]] std::vector<std::uint8_t> scoped(
      std::string_view epoch, std::vector<std::uint8_t> inner) const;

  std::string host_;
  std::uint16_t port_ = 0;
  std::string algorithm_;  ///< non-empty: wrap engine queries in WITH_ALGO
  ClientConfig config_;
  util::Rng backoff_rng_;
  int fd_ = -1;
};

}  // namespace asrank::serve
