// Blocking client for the asrankd binary protocol, used by `asrank_cli
// query`, the serving tests, and the CI smoke script.  One connection per
// Client; every method is one request/response exchange and throws
// ProtocolError on transport failures or server-reported errors.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "asn/asn.h"
#include "snapshot/snapshot.h"
#include "topology/relationship.h"

namespace asrank::serve {

class Client {
 public:
  /// Connect to an asrankd instance; throws ProtocolError on failure.
  Client(const std::string& host, std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  [[nodiscard]] std::optional<RelView> relationship(Asn a, Asn b);
  [[nodiscard]] std::optional<std::uint32_t> rank(Asn as);  ///< nullopt = unranked
  [[nodiscard]] std::uint64_t cone_size(Asn as);
  [[nodiscard]] std::vector<Asn> cone(Asn as);
  [[nodiscard]] bool in_cone(Asn as, Asn member);
  [[nodiscard]] std::vector<Asn> providers(Asn as);
  [[nodiscard]] std::vector<Asn> customers(Asn as);
  [[nodiscard]] std::vector<Asn> peers(Asn as);
  [[nodiscard]] std::vector<snapshot::TopEntry> top(std::uint32_t n);
  [[nodiscard]] std::vector<Asn> cone_intersection(Asn a, Asn b);
  [[nodiscard]] std::vector<Asn> path_to_clique(Asn as);
  [[nodiscard]] std::vector<Asn> clique();
  [[nodiscard]] std::string stats_text();
  /// Prometheus text exposition scraped via the METRICS opcode.
  [[nodiscard]] std::string metrics_text();
  void ping();

 private:
  [[nodiscard]] std::vector<std::uint8_t> exchange(
      const std::vector<std::uint8_t>& request);

  int fd_ = -1;
};

}  // namespace asrank::serve
