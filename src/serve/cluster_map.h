// ClusterMap: the static shard map of an asrankd cluster.
//
// ASNs hash onto a dense ring of `slots` shard slots (splitmix64(asn) mod
// slots); each slot owns an ordered replica list of `replication` endpoints
// chosen by rendezvous (highest-random-weight) hashing over the endpoint
// labels.  Rendezvous hashing keeps the map stable under membership change:
// removing one endpoint reassigns only the slots it served, and every client
// that agrees on the endpoint list computes the identical map with no
// coordination.
//
// The map is pure data — no sockets, no health.  ClusterClient layers
// per-endpoint transports, circuit breakers, and epoch consistency on top.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "asn/asn.h"
#include "util/result.h"

namespace asrank::serve {

struct ClusterEndpoint {
  std::string host;
  std::uint16_t port = 0;

  /// "host:port" — the rendezvous hash key and the metrics label.
  [[nodiscard]] std::string label() const {
    return host + ":" + std::to_string(port);
  }

  friend bool operator==(const ClusterEndpoint&, const ClusterEndpoint&) = default;
};

struct ClusterMapConfig {
  std::size_t slots = 64;       ///< shard slots on the hash ring
  std::size_t replication = 2;  ///< replicas per slot (clamped to cluster size)
};

class ClusterMap {
 public:
  /// Build the slot table.  kInvalidArgument on an empty endpoint list,
  /// duplicate endpoints, or zero slots/replication.
  [[nodiscard]] static Result<ClusterMap> make(
      std::vector<ClusterEndpoint> endpoints, ClusterMapConfig config = {});

  /// Parse "host:port,host:port,…" (the `--cluster` CLI argument) and build.
  [[nodiscard]] static Result<ClusterMap> parse(std::string_view spec,
                                                ClusterMapConfig config = {});

  [[nodiscard]] std::size_t slot_of(Asn as) const noexcept;

  /// Endpoint indices serving `slot`, preference order (failover walks this
  /// list front to back).
  [[nodiscard]] std::span<const std::size_t> replicas(std::size_t slot) const;

  [[nodiscard]] const std::vector<ClusterEndpoint>& endpoints() const noexcept {
    return endpoints_;
  }
  [[nodiscard]] std::size_t slot_count() const noexcept { return config_.slots; }
  /// Effective replication (requested, clamped to the cluster size).
  [[nodiscard]] std::size_t replication() const noexcept { return replication_; }

 private:
  ClusterMap() = default;

  std::vector<ClusterEndpoint> endpoints_;
  ClusterMapConfig config_;
  std::size_t replication_ = 0;
  /// Flat slot table: replicas of slot s are replica_table_[s*replication_ ..].
  std::vector<std::size_t> replica_table_;
};

}  // namespace asrank::serve
