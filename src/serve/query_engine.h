// Embeddable query layer over a frozen SnapshotIndex.
//
// The engine mirrors the index's accessors but adds the two things a
// serving process needs: per-query-type latency histograms and cache-hit
// counters (exposed via the STATS and METRICS opcodes and the serving
// bench), and an LRU cache for the derived queries whose cost is
// data-dependent — cone intersection (O(|cone a| + |cone b|)) and
// provider-path-to-clique (BFS).  All entry points are thread-safe: the
// index is held by shared_ptr-to-const and immutable, metric observations
// are lock-free atomics (obs::Registry), and the caches take a
// short-critical-section mutex.
//
// Metrics live in an obs::Registry (asrankd_query_latency_micros{type=...},
// asrankd_query_cache_hits_total{type=...}, asrankd_queries_total).  By
// default that is the process-global registry; tests pass their own for
// isolated counts.  Engines sharing one registry share series — counts are
// per registry, not per engine.
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/cone_bitset.h"
#include "obs/metrics.h"
#include "snapshot/snapshot.h"

namespace asrank::serve {

/// Shared, immutable query result (cached values are handed out without
/// copying the member vectors).
using AsnList = std::shared_ptr<const std::vector<Asn>>;

enum class QueryType : std::uint8_t {
  kRelationship = 0,
  kRank,
  kConeSize,
  kCone,
  kInCone,
  kNeighborSet,   ///< providers/customers/peers
  kTop,
  kConeIntersect,
  kPathToClique,
  kClique,
  kStats,
  kPing,
};
inline constexpr std::size_t kQueryTypeCount = 12;

[[nodiscard]] std::string_view to_string(QueryType type) noexcept;

struct QueryStats {
  std::uint64_t count = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t total_micros = 0;
};

class QueryEngine {
 public:
  /// The snapshot is shared, not copied, so several engines (or an engine
  /// plus background analysis) can serve one loaded index.  `registry`
  /// receives the engine's query metrics and must outlive it.  `cone_config`
  /// tunes the blocked-bitset cone kernels (core::ConeBitset, built lazily
  /// on the first cone intersection/diff/membership query); pass
  /// ConeBitsetConfig::disabled() to force the sorted-array kernels — the
  /// answers are identical either way (tests/test_differential.cpp).
  /// `algo_slot` selects which algorithm section of a multi-algorithm
  /// snapshot the engine answers from (SnapshotIndex::algorithm_at); slot 0
  /// is the primary and the only valid slot for single-algorithm files.
  explicit QueryEngine(std::shared_ptr<const snapshot::SnapshotIndex> index,
                       std::size_t cache_capacity = 4096,
                       obs::Registry* registry = &obs::Registry::global(),
                       core::ConeBitsetConfig cone_config = {},
                       std::size_t algo_slot = 0);

  /// Convenience for callers holding the index by value (wraps it in a
  /// shared_ptr).
  explicit QueryEngine(snapshot::SnapshotIndex index, std::size_t cache_capacity = 4096,
                       obs::Registry* registry = &obs::Registry::global(),
                       core::ConeBitsetConfig cone_config = {});

  /// The algorithm section this engine answers from (the root index for
  /// slot 0, a nested per-algorithm index otherwise).
  [[nodiscard]] const snapshot::SnapshotIndex& index() const noexcept { return *view_; }
  /// Canonical name of the algorithm behind index().
  [[nodiscard]] const std::string& algorithm() const noexcept { return algo_name_; }
  [[nodiscard]] const std::shared_ptr<const snapshot::SnapshotIndex>& index_ptr()
      const noexcept {
    return index_;
  }
  [[nodiscard]] obs::Registry& registry() const noexcept { return *registry_; }

  // Direct lookups (O(1)/O(log n) against the index).
  [[nodiscard]] std::optional<RelView> relationship(Asn a, Asn b);
  [[nodiscard]] std::optional<std::uint32_t> rank(Asn as);
  [[nodiscard]] std::size_t cone_size(Asn as);
  [[nodiscard]] std::span<const Asn> cone(Asn as);
  [[nodiscard]] bool in_cone(Asn as, Asn member);
  [[nodiscard]] std::vector<Asn> providers(Asn as);
  [[nodiscard]] std::vector<Asn> customers(Asn as);
  [[nodiscard]] std::vector<Asn> peers(Asn as);
  [[nodiscard]] std::vector<snapshot::TopEntry> top(std::size_t n);
  [[nodiscard]] std::span<const Asn> clique();
  void ping();

  // Derived queries, LRU-cached.
  /// Sorted intersection of two customer cones.
  [[nodiscard]] AsnList cone_intersection(Asn a, Asn b);
  /// Members of `as`'s cone absent from `other` (a sorted ASN list, e.g.
  /// the same AS's cone in another epoch) — one direction of a CONE_DIFF.
  /// Runs as an ANDNOT loop when `as` has a bitset row, else as a sorted
  /// set difference; the result is ascending either way.
  [[nodiscard]] std::vector<Asn> cone_minus(Asn as, std::span<const Asn> other);
  /// Shortest provider-chain from `as` to any clique member (BFS over
  /// provider links; ties broken toward lower ASNs, so the result is
  /// deterministic).  First hop is `as`, last is the clique member; empty
  /// when `as` is unknown or no provider path reaches the clique.
  [[nodiscard]] AsnList path_to_clique(Asn as);

  /// Counter snapshot, indexed by QueryType (a view over the registry's
  /// histogram/counter series).
  [[nodiscard]] std::array<QueryStats, kQueryTypeCount> stats() const;
  void record_stats_query();  ///< count a kStats serve (rendering is external)

  /// Human-readable stats table (also the STATS opcode's response body).
  [[nodiscard]] std::string render_stats() const;

  [[nodiscard]] std::size_t cache_capacity() const noexcept { return cache_capacity_; }

 private:
  /// One mutex-guarded LRU map from a packed (a, b) key to a shared list.
  class LruCache {
   public:
    explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

    [[nodiscard]] std::optional<AsnList> get(std::uint64_t key);
    void put(std::uint64_t key, AsnList value);

   private:
    std::size_t capacity_;
    std::mutex mutex_;
    std::list<std::pair<std::uint64_t, AsnList>> order_;  ///< front = most recent
    std::unordered_map<std::uint64_t,
                       std::list<std::pair<std::uint64_t, AsnList>>::iterator>
        map_;
  };

  class Timer;  ///< RAII counter update (defined in the .cpp)

  /// Registry series for one query type, resolved once in the constructor
  /// so the per-query hot path is pointer-chasing plus relaxed atomics.
  struct TypeMetrics {
    obs::Histogram* latency = nullptr;  ///< asrankd_query_latency_micros{type=}
    obs::Counter* cache_hits = nullptr; ///< asrankd_query_cache_hits_total{type=}
  };

  void record(QueryType type, std::uint64_t micros, bool cache_hit);

  /// The per-epoch cone bitset, built thread-safely on first use (cone
  /// kernels only; engines that never see a cone query never pay for it).
  [[nodiscard]] const core::ConeBitset& cone_bits();

  std::shared_ptr<const snapshot::SnapshotIndex> index_;
  /// Slot view into *index_ (== index_.get() for slot 0).  Never null; owned
  /// by index_, so the shared_ptr keeps it alive.
  const snapshot::SnapshotIndex* view_;
  std::string algo_name_;
  obs::Registry* registry_;
  std::size_t cache_capacity_;
  LruCache intersect_cache_;
  LruCache path_cache_;

  core::ConeBitsetConfig cone_config_;
  std::once_flag cone_bits_once_;
  std::unique_ptr<const core::ConeBitset> cone_bits_store_;

  std::array<TypeMetrics, kQueryTypeCount> metrics_;
  obs::Counter* queries_total_ = nullptr;  ///< asrankd_queries_total
  /// asrankd_algo_queries_total{algo=...}: per-algorithm query volume.
  obs::Counter* algo_queries_total_ = nullptr;
  /// asrankd_cone_kernel_total{kernel=bitset|hybrid|sorted}: which kernel
  /// answered each cone intersection/diff/membership query.
  obs::Counter* kernel_bitset_ = nullptr;
  obs::Counter* kernel_hybrid_ = nullptr;
  obs::Counter* kernel_sorted_ = nullptr;
};

}  // namespace asrank::serve
