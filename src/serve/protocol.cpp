#include "serve/protocol.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <poll.h>
#include <unistd.h>

namespace asrank::serve {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Milliseconds left before `deadline`, clamped to >= 0.
[[nodiscard]] int remaining_ms(SteadyClock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - SteadyClock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

}  // namespace

std::optional<RelView> rel_from_code(std::uint8_t code) noexcept {
  if (code > static_cast<std::uint8_t>(RelView::kSibling)) return std::nullopt;
  return static_cast<RelView>(code);
}

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
}

void WireWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void WireWriter::bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void WireWriter::text(std::string_view s) {
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void WireWriter::str16(std::string_view s) {
  if (s.size() > 0xffff) throw ProtocolError("str16 string too long");
  u16(static_cast<std::uint16_t>(s.size()));
  text(s);
}

Result<void> WireReader::need(std::size_t n) const {
  if (remaining() < n) {
    return make_error(ErrorCode::kTruncated,
                      "truncated payload: need " + std::to_string(n) +
                          " bytes, have " + std::to_string(remaining()));
  }
  return {};
}

Result<std::uint8_t> WireReader::u8() {
  ASRANK_TRY_VOID(need(1));
  return data_[pos_++];
}

Result<std::uint16_t> WireReader::u16() {
  ASRANK_TRY_VOID(need(2));
  const auto v = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(data_[pos_]) |
      static_cast<std::uint16_t>(data_[pos_ + 1]) << 8);
  pos_ += 2;
  return v;
}

Result<std::uint32_t> WireReader::u32() {
  ASRANK_TRY_VOID(need(4));
  const std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                          static_cast<std::uint32_t>(data_[pos_ + 1]) << 8 |
                          static_cast<std::uint32_t>(data_[pos_ + 2]) << 16 |
                          static_cast<std::uint32_t>(data_[pos_ + 3]) << 24;
  pos_ += 4;
  return v;
}

Result<std::uint64_t> WireReader::u64() {
  ASRANK_TRY(lo, u32());
  ASRANK_TRY(hi, u32());
  return static_cast<std::uint64_t>(lo) | static_cast<std::uint64_t>(hi) << 32;
}

Result<std::string> WireReader::str16() {
  ASRANK_TRY(len, u16());
  ASRANK_TRY_VOID(need(len));
  std::string out(reinterpret_cast<const char*>(data_.data()) + pos_, len);
  pos_ += len;
  return out;
}

std::string WireReader::rest_as_text() {
  std::string out(reinterpret_cast<const char*>(data_.data()) + pos_, remaining());
  pos_ = data_.size();
  return out;
}

bool read_exact(int fd, void* buf, std::size_t n) {
  auto* out = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r == 0) {
      if (got == 0) return false;
      throw ProtocolError("connection closed mid-message");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string("read: ") + std::strerror(errno));
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool read_exact(int fd, void* buf, std::size_t n, int deadline_ms) {
  if (deadline_ms < 0) return read_exact(fd, buf, n);
  const auto deadline = SteadyClock::now() + std::chrono::milliseconds(deadline_ms);
  auto* out = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, remaining_ms(deadline));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string("poll: ") + std::strerror(errno));
    }
    if (ready == 0) {
      throw TimeoutError("read timed out after " + std::to_string(deadline_ms) +
                         "ms (" + std::to_string(got) + "/" + std::to_string(n) +
                         " bytes)");
    }
    const ssize_t r = ::read(fd, out + got, n - got);
    if (r == 0) {
      if (got == 0) return false;
      throw ProtocolError("connection closed mid-message");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string("read: ") + std::strerror(errno));
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void write_all(int fd, const void* buf, std::size_t n) {
  const auto* data = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::write(fd, data + sent, n - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw ProtocolError(std::string("write: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(w);
  }
}

void write_frame(int fd, std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxPayload) throw ProtocolError("payload too large");
  // One coalesced write per frame: a separate small head write would
  // interact with Nagle + delayed ACK and cost ~40ms per request.
  std::vector<std::uint8_t> frame;
  frame.reserve(5 + payload.size());
  frame.push_back(kBinaryMarker);
  const auto len = static_cast<std::uint32_t>(payload.size());
  frame.push_back(static_cast<std::uint8_t>(len));
  frame.push_back(static_cast<std::uint8_t>(len >> 8));
  frame.push_back(static_cast<std::uint8_t>(len >> 16));
  frame.push_back(static_cast<std::uint8_t>(len >> 24));
  frame.insert(frame.end(), payload.begin(), payload.end());
  write_all(fd, frame.data(), frame.size());
}

std::vector<std::uint8_t> read_frame_body(int fd) { return read_frame_body(fd, -1); }

std::vector<std::uint8_t> read_frame_body(int fd, int deadline_ms) {
  std::uint8_t lenbuf[4];
  if (!read_exact(fd, lenbuf, sizeof lenbuf, deadline_ms)) {
    throw ProtocolError("connection closed before frame length");
  }
  const std::uint32_t len = static_cast<std::uint32_t>(lenbuf[0]) |
                            static_cast<std::uint32_t>(lenbuf[1]) << 8 |
                            static_cast<std::uint32_t>(lenbuf[2]) << 16 |
                            static_cast<std::uint32_t>(lenbuf[3]) << 24;
  if (len > kMaxPayload) {
    throw ProtocolError("frame length " + std::to_string(len) + " exceeds limit");
  }
  std::vector<std::uint8_t> payload(len);
  if (len > 0 && !read_exact(fd, payload.data(), len, deadline_ms)) {
    throw ProtocolError("connection closed mid-frame");
  }
  return payload;
}

}  // namespace asrank::serve
