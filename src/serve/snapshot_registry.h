// Hot-swappable, multi-epoch snapshot holder for asrankd.
//
// A long-lived daemon must pick up new inference runs without dropping
// queries.  SnapshotRegistry holds one QueryEngine per loaded epoch label
// ("2013-04", "rib-20260801", ...) behind an RCU-style generation pointer:
//
//   * The query hot path is ONE atomic shared_ptr load (current()) or one
//     load plus a small label scan (epoch(label)) — no locks, no waiting on
//     writers.  In-flight queries keep their engine alive through the
//     shared_ptr even while a reload swaps the generation under them.
//   * Writers (install / load_file) serialize on a mutex, build a fresh
//     generation (copy-on-write of the entry list), and publish it with one
//     atomic store.  A failed load — missing file, bad CRC, wrong version —
//     leaves the serving generation untouched and only bumps
//     asrankd_reload_failures_total.
//   * Retention is bounded: at most `retention` epochs stay resident, the
//     least-recently-queried non-current epoch is evicted when a new install
//     would exceed the bound.
//
// Instrumentation (obs::Registry): asrankd_reloads_total,
// asrankd_reload_failures_total, asrankd_reload_duration_micros,
// asrankd_epochs_loaded, asrankd_epoch_ases{epoch=...}.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "runtime/ebr.h"
#include "serve/query_engine.h"
#include "util/result.h"

namespace asrank::serve {

struct SnapshotRegistryConfig {
  /// Maximum number of resident epochs (>= 1).  Installing beyond this
  /// evicts the least-recently-queried non-current epoch.
  std::size_t retention = 4;
  /// Per-engine derived-query LRU capacity (QueryEngine cache_capacity).
  std::size_t cache_capacity = 4096;
  /// load_file() uses the zero-copy mmap loader (SnapshotIndex::map_file):
  /// epochs serve straight from the page cache and N replicas of one file
  /// share a single physical copy.  false falls back to the fully
  /// re-validating heap parse (behavior-identical answers, slower load).
  bool mmap_load = true;
  /// Blocked-bitset cone kernel tuning for each installed engine.
  core::ConeBitsetConfig cone_bitset = {};
};

class SnapshotRegistry {
 public:
  explicit SnapshotRegistry(SnapshotRegistryConfig config = {},
                            obs::Registry* registry = &obs::Registry::global());

  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// Install an already-built index under `label` and make it current.
  /// Re-installing an existing label replaces that epoch.  Fails
  /// (kInvalidArgument) on a malformed label; the serving state is then
  /// unchanged.
  Result<std::shared_ptr<QueryEngine>> install(const std::string& label,
                                               snapshot::SnapshotIndex index);

  /// What load_file installed: the engine plus the label it actually ended
  /// up under (which differs from the filename stem when de-duplication
  /// kicked in).
  struct InstalledEpoch {
    std::string label;
    std::shared_ptr<QueryEngine> engine;
  };

  /// Read an ASRK1 file and install it.  Empty `label` derives one from the
  /// file name (basename minus extension); a derived label that is already
  /// resident is de-duplicated with a `-2`, `-3`, ... suffix instead of
  /// replacing the existing epoch (re-loading "rib.asrk" twice must not
  /// silently clobber the first vintage — explicit labels keep replace
  /// semantics).  Any failure — unreadable file, truncation, CRC mismatch,
  /// bad label — leaves the current generation serving and increments
  /// asrankd_reload_failures_total.
  Result<InstalledEpoch> load_file(const std::string& path,
                                   const std::string& label = "");

  /// The current (most recently installed) engine; nullptr before the first
  /// install.  Lock-free: one atomic shared_ptr load.
  [[nodiscard]] std::shared_ptr<QueryEngine> current() const noexcept;

  /// Label of the current epoch ("" before the first install).
  [[nodiscard]] std::string current_label() const;

  /// Engine for a named epoch, or nullptr if not resident.  Lock-free; also
  /// bumps the epoch's LRU clock.
  [[nodiscard]] std::shared_ptr<QueryEngine> epoch(std::string_view label) const;

  /// Resident epoch labels, current first, then most-recently-installed
  /// first.
  [[nodiscard]] std::vector<std::string> epochs() const;

  [[nodiscard]] std::size_t epoch_count() const noexcept;

  /// Successful installs beyond the initial load (what a "reload" means
  /// operationally; mirrors asrankd_reloads_total).
  [[nodiscard]] std::uint64_t reloads() const noexcept {
    return reloads_total_->value();
  }
  [[nodiscard]] std::uint64_t reload_failures() const noexcept {
    return reload_failures_total_->value();
  }

  [[nodiscard]] obs::Registry& registry() const noexcept { return *registry_; }

  /// Epoch-based-reclamation domain that owns retired generations.  Server
  /// workers register one slot per thread and pin it per request; the
  /// convenience handler wrappers pin a transient slot per call.
  [[nodiscard]] runtime::ebr::Domain& reclaim_domain() const noexcept {
    return ebr_;
  }

  // (defined below; forward-declared for ReadView)
  struct Generation;
  struct Entry;

  /// Raw-pointer view of the published generation for EBR-guarded readers.
  /// The caller MUST hold a runtime::ebr::Guard on reclaim_domain() for the
  /// whole lifetime of the view and of every engine pointer obtained from
  /// it: the guard — not a shared_ptr refcount — is what keeps a swapped-out
  /// generation alive.  This is the serve hot path; current()/epoch() above
  /// stay for callers that want owning handles.
  class ReadView {
   public:
    /// Current engine; nullptr before the first install.
    [[nodiscard]] QueryEngine* current() const noexcept {
      return gen_->entries.empty() ? nullptr : gen_->entries.front()->engine.get();
    }
    [[nodiscard]] std::string_view current_label() const noexcept {
      return gen_->entries.empty() ? std::string_view{}
                                   : std::string_view(gen_->entries.front()->label);
    }
    /// Engine for a named epoch (bumps its LRU clock), or nullptr.
    [[nodiscard]] QueryEngine* epoch(std::string_view label) const noexcept;
    /// Entry of the current epoch (for per-algorithm dispatch), or nullptr
    /// before the first install.
    [[nodiscard]] const Entry* current_entry() const noexcept {
      return gen_->entries.empty() ? nullptr : gen_->entries.front().get();
    }
    /// Entry for a named epoch (bumps its LRU clock), or nullptr.
    [[nodiscard]] const Entry* find_epoch(std::string_view label) const noexcept;
    [[nodiscard]] std::vector<std::string> epochs() const;
    [[nodiscard]] std::size_t epoch_count() const noexcept {
      return gen_->entries.size();
    }
    /// The registry the view was taken from (for RELOAD and metrics).
    [[nodiscard]] SnapshotRegistry& owner() const noexcept { return *registry_; }

   private:
    friend class SnapshotRegistry;
    ReadView(SnapshotRegistry* registry, const Generation* gen) noexcept
        : registry_(registry), gen_(gen) {}
    SnapshotRegistry* registry_;
    const Generation* gen_;
  };

  /// Takes an EBR-guarded view of the published generation (see ReadView).
  [[nodiscard]] ReadView read_view() noexcept {
    return ReadView(this, gen_raw_.load(std::memory_order_acquire));
  }

  /// Opportunistically advances the reclamation epoch and frees quiesced
  /// generations.  Cheap when nothing is pending; workers call it when idle.
  void reclaim_pass() noexcept;

  /// Labels are operator-facing identifiers that travel over the wire and
  /// into metric labels: 1..64 chars of [A-Za-z0-9._:-].
  [[nodiscard]] static bool valid_label(std::string_view label) noexcept;

  /// Label from a snapshot path: basename minus a final extension
  /// ("/data/2013-04.asrk" -> "2013-04").  Fails (kInvalidArgument) when the
  /// result is not a valid label.
  [[nodiscard]] static Result<std::string> derive_label(const std::string& path);

  struct Entry {
    std::string label;
    /// Primary-algorithm engine (== engines[0]); the default answer path.
    std::shared_ptr<QueryEngine> engine;
    /// One engine per algorithm section in the snapshot, slot order.  A
    /// single-algorithm file yields exactly {engine}.
    std::vector<std::shared_ptr<QueryEngine>> engines;
    /// Algorithm names, slot order (mirrors SnapshotIndex::algorithm_names).
    std::vector<std::string> algo_names;
    /// LRU clock: stamped from use_clock_ on every epoch(label) hit and on
    /// install, so eviction tracks query recency, not just install order.
    mutable std::atomic<std::uint64_t> last_used{0};

    Entry(std::string l, std::shared_ptr<QueryEngine> e) noexcept
        : label(std::move(l)), engine(std::move(e)) {}

    /// Engine for a named algorithm, or nullptr if this epoch lacks it.
    [[nodiscard]] QueryEngine* algo(std::string_view name) const noexcept {
      for (std::size_t i = 0; i < algo_names.size(); ++i) {
        if (algo_names[i] == name) return engines[i].get();
      }
      return nullptr;
    }
  };

  /// One immutable published state: entries[0] is the current epoch.
  struct Generation {
    std::vector<std::shared_ptr<Entry>> entries;
  };

 private:
  [[nodiscard]] std::shared_ptr<const Generation> generation() const noexcept {
    return gen_.load(std::memory_order_acquire);
  }

  /// Shared writer path.  With `dedupe`, a label already resident is
  /// suffixed `-2`, `-3`, ... under the writer lock (collision checks and
  /// publish are atomic with respect to other writers); `*final_label`
  /// receives the label actually installed.
  Result<std::shared_ptr<QueryEngine>> install_impl(const std::string& label,
                                                    snapshot::SnapshotIndex index,
                                                    bool dedupe,
                                                    std::string* final_label);

  SnapshotRegistryConfig config_;
  obs::Registry* registry_;

  std::atomic<std::shared_ptr<const Generation>> gen_;
  /// Raw mirror of gen_ for EBR-guarded readers (read_view()).  Published
  /// after gen_; the pointee is kept alive by gen_ while current and by a
  /// retired closure in ebr_ after it is replaced.
  std::atomic<const Generation*> gen_raw_;
  mutable runtime::ebr::Domain ebr_;
  mutable std::atomic<std::uint64_t> use_clock_{0};
  std::mutex reload_mutex_;  ///< serializes writers only

  obs::Counter* reloads_total_;
  obs::Counter* reload_failures_total_;
  obs::Histogram* reload_duration_;
  obs::Gauge* epochs_loaded_;
  obs::Counter* generations_retired_total_;
  obs::Counter* generations_reclaimed_total_;
  obs::Gauge* ebr_pending_;
};

}  // namespace asrank::serve
