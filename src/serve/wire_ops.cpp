#include "serve/wire_ops.h"

#include <utility>

namespace asrank::serve::wire {

WireWriter request(Op op) {
  WireWriter writer;
  writer.u8(static_cast<std::uint8_t>(op));
  return writer;
}

std::vector<std::uint8_t> apply_scope(const QueryScope& scope,
                                      std::vector<std::uint8_t> inner) {
  if (!scope.algorithm.empty()) {
    WireWriter algo;
    algo.u8(static_cast<std::uint8_t>(Op::kWithAlgo));
    algo.str16(scope.algorithm);
    algo.bytes(inner);
    inner = algo.take();
  }
  return apply_epoch(scope.epoch, std::move(inner));
}

std::vector<std::uint8_t> apply_epoch(std::string_view epoch,
                                      std::vector<std::uint8_t> inner) {
  if (epoch.empty()) return inner;
  WireWriter outer;
  outer.u8(static_cast<std::uint8_t>(Op::kWithEpoch));
  outer.str16(epoch);
  outer.bytes(inner);
  return outer.take();
}

Result<std::optional<RelView>> decode_rel_opt(std::uint8_t code) {
  if (code == kRelNone) return std::optional<RelView>{};
  const auto view = rel_from_code(code);
  if (!view) {
    return make_error(ErrorCode::kProtocol, "bad relationship code in response");
  }
  return std::optional<RelView>{*view};
}

Result<std::vector<Asn>> read_asn_list(WireReader& reader) {
  ASRANK_TRY(count, reader.u32());
  std::vector<Asn> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ASRANK_TRY(asn, reader.u32());
    out.emplace_back(asn);
  }
  return out;
}

Result<std::vector<Asn>> decode_asn_list(std::span<const std::uint8_t> body) {
  WireReader reader(body);
  return read_asn_list(reader);
}

Result<std::vector<snapshot::TopEntry>> decode_top(
    std::span<const std::uint8_t> body) {
  WireReader reader(body);
  ASRANK_TRY(count, reader.u32());
  std::vector<snapshot::TopEntry> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    snapshot::TopEntry entry;
    ASRANK_TRY(rank, reader.u32());
    ASRANK_TRY(asn, reader.u32());
    ASRANK_TRY(cone, reader.u64());
    ASRANK_TRY(tdeg, reader.u32());
    entry.rank = rank;
    entry.as = Asn(asn);
    entry.cone_size = cone;
    entry.transit_degree = tdeg;
    out.push_back(entry);
  }
  return out;
}

Result<std::vector<std::string>> decode_labels(
    std::span<const std::uint8_t> body) {
  WireReader reader(body);
  ASRANK_TRY(count, reader.u32());
  std::vector<std::string> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ASRANK_TRY(label, reader.str16());
    out.push_back(std::move(label));
  }
  return out;
}

Result<ConeDiff> decode_cone_diff(std::span<const std::uint8_t> body) {
  WireReader reader(body);
  ConeDiff diff;
  ASRANK_TRY(added, read_asn_list(reader));
  ASRANK_TRY(removed, read_asn_list(reader));
  diff.added = std::move(added);
  diff.removed = std::move(removed);
  return diff;
}

Result<ReloadInfo> decode_reload(std::span<const std::uint8_t> body) {
  WireReader reader(body);
  ReloadInfo info;
  ASRANK_TRY(installed, reader.str16());
  ASRANK_TRY(ases, reader.u32());
  info.label = std::move(installed);
  info.ases = ases;
  return info;
}

Result<DisagreeReport> decode_disagree(std::span<const std::uint8_t> body) {
  WireReader reader(body);
  DisagreeReport report;
  ASRANK_TRY(total, reader.u32());
  ASRANK_TRY(returned, reader.u32());
  report.total = total;
  report.rows.reserve(returned);
  for (std::uint32_t i = 0; i < returned; ++i) {
    ASRANK_TRY(a, reader.u32());
    ASRANK_TRY(b, reader.u32());
    ASRANK_TRY(code_a, reader.u8());
    ASRANK_TRY(code_b, reader.u8());
    Disagreement row;
    row.a = Asn(a);
    row.b = Asn(b);
    ASRANK_TRY(first, decode_rel_opt(code_a));
    ASRANK_TRY(second, decode_rel_opt(code_b));
    row.first = first;
    row.second = second;
    report.rows.push_back(row);
  }
  return report;
}

}  // namespace asrank::serve::wire
