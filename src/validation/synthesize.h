// Validation-corpus synthesizer: the offline substitute for the paper's
// operator survey, IRR mining, and community mining.
//
// Ground truth is leaked through the three channels with realistic coverage
// bias and noise, and — crucially — through the *real parsers*: RPSL
// assertions are produced by rendering aut-num objects to text and parsing
// them back; community assertions are produced by tagging observed routes
// and decoding them.  The resulting corpus therefore behaves like the
// paper's: partial, source-skewed, and slightly wrong.
#pragma once

#include <cstddef>

#include "bgpsim/observation.h"
#include "topogen/topogen.h"
#include "util/rng.h"
#include "validation/communities.h"
#include "validation/corpus.h"
#include "validation/irr.h"
#include "validation/rpsl.h"

namespace asrank::validation {

struct SynthesisParams {
  std::uint64_t seed = 11;

  /// Direct operator reports: fraction of ground-truth links reported, and
  /// the probability a report is wrong (misremembered/ambiguous contract).
  double direct_link_fraction = 0.06;
  double direct_error = 0.005;

  /// RPSL: fraction of ASes that register an aut-num object; probability a
  /// registered policy is stale (survives a re-homing that removed the link).
  double rpsl_as_fraction = 0.20;
  double rpsl_stale_prob = 0.02;

  /// Communities: fraction of VPs that publish a tagging convention, and
  /// per-route tagging coverage/noise.
  double community_vp_fraction = 0.5;
  double community_tag_prob = 0.9;
  double community_error = 0.002;
};

struct SynthesizedValidation {
  ValidationCorpus corpus;
  std::vector<AutNum> rpsl_objects;  ///< what was "registered" (pre-parse)
  ConventionMap conventions;
  std::size_t direct_assertions = 0;
  std::size_t rpsl_assertions = 0;
  std::size_t community_assertions = 0;
};

/// Build a validation corpus from ground truth and the observation whose
/// routes carry the community tags.  Deterministic given params.seed.
[[nodiscard]] SynthesizedValidation synthesize_validation(
    const topogen::GroundTruth& truth, const bgpsim::Observation& observation,
    const SynthesisParams& params);

/// IRR registration behaviour for route objects and customer as-sets.
struct IrrSynthesisParams {
  std::uint64_t seed = 13;
  /// Fraction of originated prefixes with a registered route object.
  double route_object_fraction = 0.5;
  /// Probability a registered route object names a wrong (stale) origin.
  double stale_origin_prob = 0.01;
  /// Fraction of transit ASes that register an AS-<asn>:AS-CUSTOMERS set
  /// listing their direct customers (the common IRR convention).
  double customer_set_fraction = 0.4;
};

/// Leak prefix originations and customer sets into an IRR database, again
/// with realistic coverage and staleness.  Deterministic given params.seed.
[[nodiscard]] IrrDatabase synthesize_irr(const topogen::GroundTruth& truth,
                                         const IrrSynthesisParams& params);

/// The conventional name of an AS's customer set ("AS64500:AS-CUSTOMERS").
[[nodiscard]] std::string customer_set_name(Asn as);

}  // namespace asrank::validation
