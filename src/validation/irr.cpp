#include "validation/irr.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <unordered_set>

#include "util/strings.h"

namespace asrank::validation {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("irr line " + std::to_string(line_no) + ": " + what);
}

}  // namespace

IrrDatabase parse_irr(std::istream& is) {
  IrrDatabase database;
  std::string line;
  std::size_t line_no = 0;

  // Object state: at most one of these is active.
  std::optional<RouteObject> route;
  std::optional<AsSet> as_set;

  auto flush = [&] {
    if (route) {
      if (!route->origin.valid()) {
        throw std::runtime_error("irr: route object without origin");
      }
      database.routes.push_back(*route);
    }
    if (as_set) database.as_sets.emplace(as_set->name, std::move(*as_set));
    route.reset();
    as_set.reset();
  };

  while (std::getline(is, line)) {
    ++line_no;
    const auto text = util::trim(line);
    if (text.empty()) {
      flush();
      continue;
    }
    if (text.front() == '%' || text.front() == '#') continue;
    const auto colon = text.find(':');
    if (colon == std::string_view::npos) continue;
    const auto attr = util::to_lower(util::trim(text.substr(0, colon)));
    const auto rest = util::trim(text.substr(colon + 1));

    if (attr == "route") {
      flush();
      const auto prefix = Prefix::parse(rest);
      if (!prefix) fail(line_no, "malformed route prefix");
      route = RouteObject{*prefix, Asn{}};
    } else if (attr == "origin" && route) {
      const auto origin = Asn::parse(rest);
      if (!origin) fail(line_no, "malformed origin");
      route->origin = *origin;
    } else if (attr == "as-set") {
      flush();
      as_set = AsSet{};
      as_set->name.assign(rest.begin(), rest.end());
      std::transform(as_set->name.begin(), as_set->name.end(), as_set->name.begin(),
                     [](unsigned char c) { return std::toupper(c); });
      if (as_set->name.empty()) fail(line_no, "empty as-set name");
    } else if (attr == "members" && as_set) {
      for (const auto member : util::split(rest, ',')) {
        const auto token = util::trim(member);
        if (token.empty()) continue;
        if (const auto asn = Asn::parse(token)) {
          as_set->asn_members.push_back(*asn);
        } else {
          std::string name(token);
          std::transform(name.begin(), name.end(), name.begin(),
                         [](unsigned char c) { return std::toupper(c); });
          as_set->set_members.push_back(std::move(name));
        }
      }
    }
    // Other attributes (descr, mnt-by, source, ...) are ignored.
  }
  flush();
  return database;
}

void write_irr(const IrrDatabase& database, std::ostream& os) {
  for (const RouteObject& route : database.routes) {
    os << "route: " << route.prefix.str() << '\n';
    os << "origin: AS" << route.origin.value() << '\n';
    os << '\n';
  }
  // Deterministic order for round-trip comparison.
  std::vector<const AsSet*> sets;
  sets.reserve(database.as_sets.size());
  for (const auto& [name, set] : database.as_sets) sets.push_back(&set);
  std::sort(sets.begin(), sets.end(),
            [](const AsSet* a, const AsSet* b) { return a->name < b->name; });
  for (const AsSet* set : sets) {
    os << "as-set: " << set->name << '\n';
    os << "members:";
    bool first = true;
    for (const Asn member : set->asn_members) {
      os << (first ? " " : ", ") << "AS" << member.value();
      first = false;
    }
    for (const std::string& member : set->set_members) {
      os << (first ? " " : ", ") << member;
      first = false;
    }
    os << "\n\n";
  }
}

PrefixTable origin_table(const IrrDatabase& database) {
  PrefixTable table;
  for (const RouteObject& route : database.routes) {
    const auto existing = table.exact(route.prefix);
    if (!existing || route.origin < *existing) {
      table.insert(route.prefix, route.origin);
    }
  }
  return table;
}

std::vector<Asn> expand_as_set(const IrrDatabase& database, const std::string& name) {
  std::unordered_set<std::string> visited;
  std::unordered_set<Asn> members;
  std::vector<std::string> stack{name};
  while (!stack.empty()) {
    std::string current = std::move(stack.back());
    stack.pop_back();
    std::transform(current.begin(), current.end(), current.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    if (!visited.insert(current).second) continue;  // cycle or repeat
    const auto it = database.as_sets.find(current);
    if (it == database.as_sets.end()) continue;  // unknown nested set
    members.insert(it->second.asn_members.begin(), it->second.asn_members.end());
    stack.insert(stack.end(), it->second.set_members.begin(), it->second.set_members.end());
  }
  std::vector<Asn> out(members.begin(), members.end());
  std::sort(out.begin(), out.end());
  return out;
}

OriginValidation validate_origins(const PrefixTable& registry,
                                  const std::vector<std::pair<Prefix, Asn>>& observed) {
  OriginValidation result;
  for (const auto& [prefix, origin] : observed) {
    const auto match = registry.lookup(prefix);
    if (!match) {
      ++result.uncovered;
      continue;
    }
    ++result.checked;
    if (match->origin == origin) ++result.matched;
  }
  return result;
}

}  // namespace asrank::validation
