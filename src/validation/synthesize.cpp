#include "validation/synthesize.h"

#include <algorithm>
#include <sstream>

namespace asrank::validation {

namespace {

using topogen::GroundTruth;

/// Direct operator reports: a biased-but-mostly-correct sample of links.
std::size_t synthesize_direct(const GroundTruth& truth, const SynthesisParams& params,
                              util::Rng& rng, ValidationCorpus& corpus) {
  std::size_t count = 0;
  for (const Link& link : truth.graph.links()) {
    if (!rng.bernoulli(params.direct_link_fraction)) continue;
    Assertion assertion;
    assertion.source = Source::kDirectReport;
    assertion.a = link.a;
    assertion.b = link.b;
    assertion.type = link.type;
    if (rng.bernoulli(params.direct_error)) {
      // A wrong report: flip the relationship type (the realistic failure
      // mode: paid peering reported as plain peering and vice versa).
      if (assertion.type == LinkType::kP2C) {
        assertion.type = LinkType::kP2P;
      } else {
        assertion.type = LinkType::kP2C;  // orientation a->b arbitrary but fixed
      }
    }
    corpus.add(assertion);
    ++count;
  }
  return count;
}

/// RPSL: render registered policies to text, then parse them back through
/// the production parser.
std::size_t synthesize_rpsl(const GroundTruth& truth, const SynthesisParams& params,
                            util::Rng& rng, SynthesizedValidation& out) {
  const std::vector<Asn> ases = truth.graph.ases();
  for (const Asn as : ases) {
    if (!rng.bernoulli(params.rpsl_as_fraction)) continue;
    AutNum object;
    object.as = as;
    auto add_policy = [&](Asn neighbor, bool import_any, bool export_any) {
      object.policies.push_back(
          RpslPolicy{neighbor, import_any, export_any, /*has_import=*/true,
                     /*has_export=*/true});
    };
    for (const Asn provider : truth.graph.providers(as)) {
      add_policy(provider, /*import_any=*/true, /*export_any=*/false);
    }
    for (const Asn customer : truth.graph.customers(as)) {
      add_policy(customer, /*import_any=*/false, /*export_any=*/true);
    }
    for (const Asn peer : truth.graph.peers(as)) {
      add_policy(peer, /*import_any=*/false, /*export_any=*/false);
    }
    // Stale registration: a policy for a neighbour the AS no longer has,
    // claiming an old provider.  Produces a wrong-or-unmatchable assertion.
    if (rng.bernoulli(params.rpsl_stale_prob) && !ases.empty()) {
      const Asn ghost = ases[rng.uniform(ases.size())];
      if (ghost != as && !truth.graph.has_link(ghost, as)) {
        add_policy(ghost, /*import_any=*/true, /*export_any=*/false);
      }
    }
    if (!object.policies.empty()) out.rpsl_objects.push_back(std::move(object));
  }

  // Round-trip through text: write, re-parse, derive assertions.
  std::stringstream text;
  write_rpsl(out.rpsl_objects, text);
  const auto parsed = parse_rpsl(text);
  const auto assertions = assertions_from_rpsl(parsed);
  for (const Assertion& assertion : assertions) out.corpus.add(assertion);
  return assertions.size();
}

/// Communities: tag observed routes according to the VP's ground-truth
/// relationship with the next hop, then decode with the production decoder.
std::size_t synthesize_communities(const GroundTruth& truth,
                                   const bgpsim::Observation& observation,
                                   const SynthesisParams& params, util::Rng& rng,
                                   SynthesizedValidation& out) {
  // Which VPs publish a convention?  Only 16-bit ASNs can tag (RFC 1997).
  for (const bgpsim::VantagePoint& vp : observation.vps) {
    if (vp.as.value() > 0xffff) continue;
    if (rng.bernoulli(params.community_vp_fraction)) {
      out.conventions.emplace(vp.as, CommunityConvention{});
    }
  }

  std::vector<TaggedRoute> tagged;
  for (const bgpsim::ObservedRoute& route : observation.routes) {
    const auto convention_it = out.conventions.find(route.vp);
    if (convention_it == out.conventions.end()) continue;
    if (route.path.size() < 2) continue;
    if (!rng.bernoulli(params.community_tag_prob)) continue;

    const Asn next = route.path.at(1);
    const auto view = truth.graph.view(route.vp, next);
    if (!view) continue;  // pathology-injected hop: the router tags nothing
    const CommunityConvention& convention = convention_it->second;
    std::uint16_t value = 0;
    switch (*view) {
      case RelView::kCustomer: value = convention.from_customer; break;
      case RelView::kPeer: value = convention.from_peer; break;
      case RelView::kProvider: value = convention.from_provider; break;
      case RelView::kSibling: continue;  // no sibling tag in the convention
    }
    if (rng.bernoulli(params.community_error)) {
      value = value == convention.from_peer ? convention.from_customer
                                            : convention.from_peer;
    }
    TaggedRoute tagged_route;
    tagged_route.path = route.path;
    tagged_route.communities.push_back(
        mrt::Community{static_cast<std::uint16_t>(route.vp.value()), value});
    tagged.push_back(std::move(tagged_route));
  }

  const auto assertions = assertions_from_communities(tagged, out.conventions);
  for (const Assertion& assertion : assertions) out.corpus.add(assertion);
  return assertions.size();
}

}  // namespace

SynthesizedValidation synthesize_validation(const GroundTruth& truth,
                                            const bgpsim::Observation& observation,
                                            const SynthesisParams& params) {
  util::Rng rng(params.seed);
  SynthesizedValidation out;
  out.direct_assertions = synthesize_direct(truth, params, rng, out.corpus);
  out.rpsl_assertions = synthesize_rpsl(truth, params, rng, out);
  out.community_assertions = synthesize_communities(truth, observation, params, rng, out);
  return out;
}

std::string customer_set_name(Asn as) {
  return "AS" + as.str() + ":AS-CUSTOMERS";
}

IrrDatabase synthesize_irr(const GroundTruth& truth, const IrrSynthesisParams& params) {
  util::Rng rng(params.seed);
  IrrDatabase database;

  // Route objects: the registered origin of each covered prefix, with an
  // occasional stale record pointing at a previous holder.
  const std::vector<Asn> all_ases = truth.graph.ases();
  for (const Asn as : all_ases) {
    const auto it = truth.originated.find(as);
    if (it == truth.originated.end()) continue;
    for (const Prefix& prefix : it->second) {
      if (!rng.bernoulli(params.route_object_fraction)) continue;
      Asn origin = as;
      if (rng.bernoulli(params.stale_origin_prob)) {
        origin = all_ases[rng.uniform(all_ases.size())];
      }
      database.routes.push_back({prefix, origin});
    }
  }

  // Customer sets: transit ASes registering their direct customers, the
  // common convention behind "announce AS64500:AS-CUSTOMERS" export lines.
  for (const Asn as : all_ases) {
    const auto customers = truth.graph.customers(as);
    if (customers.empty()) continue;
    if (!rng.bernoulli(params.customer_set_fraction)) continue;
    AsSet set;
    set.name = customer_set_name(as);
    set.asn_members.assign(customers.begin(), customers.end());
    std::sort(set.asn_members.begin(), set.asn_members.end());
    // Nested sets: customers that registered their own set are referenced
    // by name (so expansion exercises recursion).
    for (const Asn customer : customers) {
      if (database.as_sets.contains(customer_set_name(customer))) {
        set.set_members.push_back(customer_set_name(customer));
      }
    }
    database.as_sets.emplace(set.name, std::move(set));
  }
  return database;
}

}  // namespace asrank::validation
