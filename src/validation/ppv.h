// Validation scoring (paper §6): positive predictive value of inferred
// relationships against the validation corpus, per source class and
// relationship type — the numbers behind the paper's headline
// "99.6% (c2p) / 98.7% (p2p)" result — plus exact accuracy against full
// ground truth, which only the simulator substrate makes possible.
#pragma once

#include <array>
#include <cstddef>

#include "topology/as_graph.h"
#include "validation/corpus.h"

namespace asrank::validation {

struct PpvCell {
  std::size_t validated = 0;  ///< inferred links with an assertion of this slice
  std::size_t correct = 0;

  [[nodiscard]] double ppv() const noexcept {
    return validated == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(validated);
  }
};

/// PPV against a validation corpus.
struct PpvReport {
  /// cells[source][0] = c2p-inferred links, cells[source][1] = p2p-inferred.
  std::array<std::array<PpvCell, 2>, 3> cells{};
  PpvCell c2p;       ///< all sources, links inferred c2p
  PpvCell p2p;       ///< all sources, links inferred p2p
  PpvCell overall;
  std::size_t inferred_links = 0;
  std::size_t validated_links = 0;  ///< inferred links covered by the corpus

  [[nodiscard]] double coverage() const noexcept {
    return inferred_links == 0
               ? 0.0
               : static_cast<double>(validated_links) / static_cast<double>(inferred_links);
  }
};

[[nodiscard]] PpvReport evaluate_ppv(const AsGraph& inferred, const ValidationCorpus& corpus);

/// Exact scoring against the full ground-truth graph (simulator only).
struct TruthAccuracy {
  std::size_t compared = 0;       ///< inferred links present in ground truth
  std::size_t unknown_links = 0;  ///< inferred links absent from ground truth
  PpvCell c2p;                    ///< links inferred c2p (direction must match)
  PpvCell p2p;
  PpvCell s2s;                    ///< links inferred s2s (sibling detection)
  std::size_t s2s_links = 0;      ///< ground-truth siblings inferred c2p/p2p
                                  ///< (excluded from the c2p/p2p PPV universe)
  std::size_t direction_errors = 0;  ///< c2p inferred with inverted provider

  [[nodiscard]] double accuracy() const noexcept {
    const std::size_t total = c2p.validated + p2p.validated;
    return total == 0
               ? 0.0
               : static_cast<double>(c2p.correct + p2p.correct) / static_cast<double>(total);
  }
};

[[nodiscard]] TruthAccuracy evaluate_against_truth(const AsGraph& inferred,
                                                   const AsGraph& truth);

}  // namespace asrank::validation
