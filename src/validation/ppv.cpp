#include "validation/ppv.h"

namespace asrank::validation {

namespace {

bool assertion_matches(const Link& inferred, const Assertion& assertion) noexcept {
  if (inferred.type == LinkType::kP2C) {
    return assertion.type == LinkType::kP2C && assertion.a == inferred.a &&
           assertion.b == inferred.b;
  }
  if (inferred.type == LinkType::kP2P) return assertion.type == LinkType::kP2P;
  return assertion.type == inferred.type;
}

}  // namespace

PpvReport evaluate_ppv(const AsGraph& inferred, const ValidationCorpus& corpus) {
  PpvReport report;
  for (const Link& link : inferred.links()) {
    ++report.inferred_links;
    const auto assertion = corpus.lookup(link.a, link.b);
    if (!assertion) continue;
    ++report.validated_links;
    const bool correct = assertion_matches(link, *assertion);
    const std::size_t type_idx = link.type == LinkType::kP2C ? 0 : 1;
    const std::size_t source_idx = static_cast<std::size_t>(assertion->source);

    auto bump = [&](PpvCell& cell) {
      ++cell.validated;
      if (correct) ++cell.correct;
    };
    bump(report.cells[source_idx][type_idx]);
    bump(link.type == LinkType::kP2C ? report.c2p : report.p2p);
    bump(report.overall);
  }
  return report;
}

TruthAccuracy evaluate_against_truth(const AsGraph& inferred, const AsGraph& truth) {
  TruthAccuracy result;
  for (const Link& link : inferred.links()) {
    const auto true_link = truth.link(link.a, link.b);
    if (!true_link) {
      ++result.unknown_links;
      continue;
    }
    ++result.compared;
    if (link.type == LinkType::kS2S) {
      ++result.s2s.validated;
      if (true_link->type == LinkType::kS2S) ++result.s2s.correct;
      continue;
    }
    if (true_link->type == LinkType::kS2S) {
      ++result.s2s_links;  // siblings are outside the c2p/p2p scoring universe
      continue;
    }
    if (link.type == LinkType::kP2C) {
      ++result.c2p.validated;
      if (true_link->type == LinkType::kP2C) {
        if (true_link->a == link.a) {
          ++result.c2p.correct;
        } else {
          ++result.direction_errors;
        }
      }
    } else if (link.type == LinkType::kP2P) {
      ++result.p2p.validated;
      if (true_link->type == LinkType::kP2P) ++result.p2p.correct;
    }
  }
  return result;
}

}  // namespace asrank::validation
