// RPSL subset parser (RFC 2622), covering the objects the paper mined from
// IRR databases to validate relationships: `aut-num` objects with `import:`
// and `export:` policy lines.
//
// Relationship semantics (paper §3.2.2):
//   import: from ASx accept ANY        -> ASx is a PROVIDER of this AS
//   export: to ASx announce ANY        -> ASx is a CUSTOMER of this AS
//   import specific + export specific  -> ASx is a PEER
//   import ANY + export ANY            -> ambiguous (mutual transit): ignored
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "asn/asn.h"
#include "validation/corpus.h"

namespace asrank::validation {

/// One parsed aut-num policy toward a neighbour.
struct RpslPolicy {
  Asn neighbor;
  bool import_any = false;   ///< accept ANY from neighbour
  bool export_any = false;   ///< announce ANY to neighbour
  bool has_import = false;
  bool has_export = false;
};

struct AutNum {
  Asn as;
  std::vector<RpslPolicy> policies;
};

/// Parse a stream of aut-num objects separated by blank lines.  Unknown
/// attributes are ignored; a malformed `aut-num:`/`import:`/`export:` line
/// raises std::runtime_error with its line number.
[[nodiscard]] std::vector<AutNum> parse_rpsl(std::istream& is);

/// Derive relationship assertions from parsed objects.  Policies that are
/// one-sided (import without export or vice versa) or mutually ANY produce
/// no assertion.
[[nodiscard]] std::vector<Assertion> assertions_from_rpsl(const std::vector<AutNum>& objects);

/// Render objects back to RPSL text (used by the corpus synthesizer, and to
/// round-trip in tests).
void write_rpsl(const std::vector<AutNum>& objects, std::ostream& os);

}  // namespace asrank::validation
