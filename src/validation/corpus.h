// Validation corpus (paper §3.2/§6): assertions about true relationships
// gathered from sources independent of the inference, used to compute the
// positive predictive value (PPV) of each algorithm's output.
//
// The paper assembled the three source classes modelled here — direct
// operator reports, RPSL policies registered in IRR databases, and BGP
// community strings — covering 34.6% of inferred links.  Conflicts between
// sources are resolved by trust order: direct > communities > RPSL (the
// paper's ordering: operators beat registries that go stale).
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "asn/asn.h"
#include "topology/relationship.h"

namespace asrank::validation {

enum class Source : std::uint8_t { kDirectReport = 0, kCommunities = 1, kRpsl = 2 };

[[nodiscard]] constexpr std::string_view to_string(Source s) noexcept {
  switch (s) {
    case Source::kDirectReport: return "direct";
    case Source::kCommunities: return "communities";
    case Source::kRpsl: return "rpsl";
  }
  return "?";
}

/// One validation assertion.  For kP2C, `a` is the asserted provider.
struct Assertion {
  Asn a;
  Asn b;
  LinkType type = LinkType::kP2P;
  Source source = Source::kDirectReport;

  friend bool operator==(const Assertion&, const Assertion&) = default;
};

/// Deduplicated assertion set with trust-order conflict resolution.
class ValidationCorpus {
 public:
  /// Add an assertion; if the link already has one from an equally or more
  /// trusted source, the existing assertion wins.  Conflicting assertions
  /// (different relationship from different sources) are counted.
  void add(const Assertion& assertion);

  [[nodiscard]] std::size_t size() const noexcept { return by_link_.size(); }
  [[nodiscard]] std::size_t conflicts() const noexcept { return conflicts_; }

  /// Assertion for a link, if any.
  [[nodiscard]] std::optional<Assertion> lookup(Asn a, Asn b) const;

  /// All assertions, in deterministic (link-key) order.
  [[nodiscard]] std::vector<Assertion> assertions() const;

  /// Count per source.
  [[nodiscard]] std::unordered_map<Source, std::size_t> source_counts() const;

 private:
  static std::uint64_t key(Asn a, Asn b) noexcept;

  std::unordered_map<std::uint64_t, Assertion> by_link_;
  std::size_t conflicts_ = 0;
};

}  // namespace asrank::validation
