// BGP community decoding (paper §3.2.3).
//
// Many networks tag routes with informational communities that encode where
// the route was learned: e.g. 3356:100 = "learned from customer".  Given the
// published conventions of participating ASes, each tagged route asserts the
// relationship between the tagging AS and the neighbour the route came from.
// The paper mined exactly this to build the largest slice of its validation
// data.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "asn/asn.h"
#include "asn/as_path.h"
#include "mrt/bgp_attrs.h"
#include "validation/corpus.h"

namespace asrank::validation {

/// One AS's published community convention for route provenance.
struct CommunityConvention {
  std::uint16_t from_customer = 100;
  std::uint16_t from_peer = 200;
  std::uint16_t from_provider = 300;
};

/// Registry of ASes whose conventions are known.
using ConventionMap = std::unordered_map<Asn, CommunityConvention>;

/// A route as needed for community mining: the AS path plus its communities.
struct TaggedRoute {
  AsPath path;  ///< VP-first orientation; the tagger is the first hop
  std::vector<mrt::Community> communities;
};

/// Decode assertions from tagged routes.  A community asn:value where `asn`
/// has a known convention and `value` matches one of its provenance tags
/// asserts the relationship between `asn` and the hop following it in the
/// path.  Routes whose first hop is not the tagging AS are searched for the
/// tagging AS anywhere in the path (communities survive propagation).
[[nodiscard]] std::vector<Assertion> assertions_from_communities(
    const std::vector<TaggedRoute>& routes, const ConventionMap& conventions);

}  // namespace asrank::validation
